"""Scenario: a theory workbench for joint Shannon-flow inequalities.

Three research workflows on top of the framework:

1. **Verify a claimed inequality** — every proof sequence from the paper's
   appendix is encoded in ``repro.tradeoff.proofs_catalog``; the LP check
   accepts each and rejects broken variants.
2. **Discover the optimal inequality** — solve OBJ(S) for a rule and
   extract the Theorem D.5 witness: the explicit (δ, γ, λ, θ) certificate
   behind the optimum, re-verified independently.
3. **Generalize** — run the §F hierarchical analysis on a brand-new query
   and get its decomposition + tradeoff, LP-verified.

Run:  python examples/inequality_workbench.py
"""

from repro.problems import HierarchicalAnalysis
from repro.query import Atom, CQAP
from repro.query.catalog import k_path_cqap
from repro.query.hypergraph import varset
from repro.tradeoff import (
    TwoPhaseRule,
    obj_with_witness,
    proofs_catalog,
    symbolic_program,
)


def verify_paper_catalog() -> None:
    print("== 1. the paper's inequality catalog ==")
    for ineq in proofs_catalog.all_inequalities():
        print(f"  {ineq.name:<18s} {str(ineq.tradeoff()):<26s} "
              f"LP-valid={ineq.verify_lp()}  "
              f"claim-match={ineq.matches_claim()}")


def discover_witness() -> None:
    print("\n== 2. witness discovery for 2-reachability at S = D ==")
    cqap = k_path_cqap(2)
    prog = symbolic_program(cqap)
    rule = TwoPhaseRule(
        frozenset({varset({"x1", "x3"})}),
        frozenset({varset({"x1", "x2", "x3"})}),
    )
    result, witness = obj_with_witness(prog, rule, 1.0)
    print(f"  OBJ(D) = 2^{result.log_time:.3f}  (paper: D^1/2)")
    lhs_s, lhs_t = witness.lhs_terms()

    def fmt(terms, tag):
        parts = []
        for (x, y), coef in sorted(terms.items(),
                                   key=lambda kv: sorted(kv[0][1])):
            cond = f"|{','.join(sorted(x))}" if x else ""
            parts.append(f"{coef:g}·h_{tag}({','.join(sorted(y))}{cond})")
        return " + ".join(parts)

    print("  extracted inequality LHS:")
    print("   ", fmt(lhs_s, "S"))
    print("   ", fmt(lhs_t, "T"))
    print("  RHS:", fmt({(frozenset(), b): c
                         for b, c in witness.theta_s.items()}, "S"),
          "+", fmt({(frozenset(), b): c
                    for b, c in witness.lambda_t.items()}, "T"))
    print("  independently verified over Γ_n × Γ_n:",
          witness.verify(prog))


def analyze_new_query() -> None:
    print("\n== 3. §F analysis of a new hierarchical query ==")
    # a 3-branch star of depth 2: root account, per-region session pairs
    cqap = CQAP(
        ("z1", "z2", "z3"), ("z1", "z2", "z3"),
        [
            Atom("R", ("acct", "reg1", "z1")),
            Atom("S", ("acct", "reg1", "z2")),
            Atom("T", ("acct", "z3")),
        ],
        name="sessions",
    )
    analysis = HierarchicalAnalysis(cqap)
    td, root = analysis.decomposition()
    print(f"  root variable: {analysis.root_var}; width w = "
          f"{analysis.width}")
    print(f"  decomposition: {td}")
    print(f"  tradeoff (first):    {analysis.first_tradeoff()}")
    print(f"  tradeoff (improved): {analysis.improved_tradeoff()}  "
          f"LP-verified={analysis.verify_improved()}")


def main() -> None:
    verify_paper_catalog()
    discover_witness()
    analyze_new_query()


if __name__ == "__main__":
    main()
