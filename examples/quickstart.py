"""Quickstart — build a space-budgeted CQAP index and answer requests.

Run:  python examples/quickstart.py
"""

from repro import CQAPIndex, catalog, path_database, singleton_request
from repro.util.counters import Counters


def main() -> None:
    # The 3-reachability CQAP of Example 2.3:
    #   φ3(x1, x4 | x1, x4) ← R1(x1,x2) ∧ R2(x2,x3) ∧ R3(x3,x4)
    cqap = catalog.k_path_cqap(3)
    print("query:", cqap)

    # A synthetic layered digraph with a few high-degree hubs.
    db = path_database(k=3, n_edges=2000, domain=200, seed=7, skew_hubs=5)
    print(f"database: |D| = {db.size} tuples per relation")

    # Preprocess once under a space budget of ~|D|^1.2 tuples.  The index
    # enumerates the paper's five PMTDs (Figure 3), derives the four
    # 2-phase disjunctive rules of Table 1, plans each with the joint
    # Shannon-flow LP, and materializes the S-views that fit.
    budget = int(db.size ** 1.2)
    index = CQAPIndex(cqap, db, space_budget=budget)
    index.preprocess()
    print(f"\nbudget {budget} tuples -> stored {index.stored_tuples}; "
          f"planner predicts online time ~2^{index.predicted_log_time:.2f}")
    print("\nplans:")
    print(index.describe())

    # Answer single access requests (is there a 3-path from u to v?).
    full = cqap.evaluate(db)
    hit = next(iter(full.tuples))
    miss = (10**9, 10**9)
    for request in (hit, miss):
        counters = Counters()
        answer = index.answer_boolean(request, counters=counters)
        print(f"\nanswer{request} = {answer} "
              f"({counters.online_work} online ops)")
        reference = cqap.answer_from_scratch(
            db, singleton_request(cqap.access, request)
        )
        assert answer == (not reference.is_empty())

    # Batched requests share one online phase (§2.1, §6.4).
    batch = list(full.tuples)[:5] + [miss]
    counters = Counters()
    result = index.answer_batch(batch, counters=counters)
    print(f"\nbatch of {len(batch)} requests -> {len(result)} hits "
          f"in {counters.online_work} online ops")


if __name__ == "__main__":
    main()
