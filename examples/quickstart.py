"""Quickstart — prepare a space-budgeted CQAP instance once, probe it many
times through the serving engine, then scale it out with the serving
facade (``repro.serve``).

Run:  python examples/quickstart.py
"""

from repro import catalog, path_database, prepare, serve, singleton_request
from repro.util.counters import Counters


def main() -> None:
    # The 3-reachability CQAP of Example 2.3:
    #   φ3(x1, x4 | x1, x4) ← R1(x1,x2) ∧ R2(x2,x3) ∧ R3(x3,x4)
    cqap = catalog.k_path_cqap(3)
    print("query:", cqap)

    # A synthetic layered digraph with a few high-degree hubs.
    db = path_database(k=3, n_edges=2000, domain=200, seed=7, skew_hubs=5)
    print(f"database: |D| = {db.size} tuples per relation")

    # prepare() pays the expensive phase exactly once under a space budget
    # of ~|D|^1.2 tuples: it enumerates the paper's five PMTDs (Figure 3),
    # derives the four 2-phase disjunctive rules of Table 1, plans each with
    # the joint Shannon-flow LP, materializes the S-views that fit, and
    # compiles the T-phase for per-probe execution.
    budget = int(db.size ** 1.2)
    pq = prepare(cqap, db, space_budget=budget)
    print(f"\nbudget {budget} tuples -> stored {pq.stored_tuples}; "
          f"planner predicts online time ~2^{pq.predicted_log_time:.2f}; "
          f"prepared in {pq.prepare_seconds * 1e3:.0f} ms")
    print("\nplans:")
    print(pq.describe())

    # Probe single access requests (is there a 3-path from u to v?).
    full = cqap.evaluate(db)
    hit = next(iter(full.tuples))
    miss = (10**9, 10**9)
    for request in (hit, miss):
        counters = Counters()
        answer = pq.probe_boolean(request, counters=counters)
        print(f"\nprobe{request} = {answer} "
              f"({counters.online_work} online ops)")
        reference = cqap.answer_from_scratch(
            db, singleton_request(cqap.access, request)
        )
        assert answer == (not reference.is_empty())

    # A repeated probe is served from the LRU answer cache.
    counters = Counters()
    pq.probe(hit, counters=counters)
    print(f"\nrepeat probe{hit}: {counters.online_work} online ops "
          f"(cache hit rate so far {pq.cache.hit_rate:.0%})")

    # Batched probes share one online phase (§2.1, §6.4) and are
    # deduplicated before execution.
    batch = list(full.tuples)[:5] + [miss, hit]
    counters = Counters()
    results = pq.probe_many(batch, counters=counters)
    hits = sum(1 for rel in results.values() if len(rel))
    print(f"\nbatch of {len(batch)} requests -> {hits} hits "
          f"in {counters.online_work} online ops")

    engine = pq.stats()["engine"]
    print(f"\nserving stats: {engine['probes_served']} probes, "
          f"{engine['online_phases']} online phases, "
          f"cache {engine['cache']['hits']}/{engine['cache']['hits'] + engine['cache']['misses']} hits, "
          f"replanned={engine['replanned']}")

    # Scale out: front the same prepared query with the serving facade.
    # backend="thread" shards inside this process; backend="process"
    # forks one worker per shard — answers are identical either way, so
    # migrating is exactly the backend= argument.
    stream = [batch, [hit, miss]]
    with serve(pq, backend="thread", shards=2, batch_size=8) as server:
        served = server.serve_all(stream)
        envelope = server.stats()
    print(f"\nserve(backend='thread', shards=2): "
          f"{envelope['server']['probes_served']} probes over "
          f"{len(served)} distinct bindings, "
          f"dedupe {envelope['scheduler']['dedupe_ratio']:.2f}, "
          f"stats schema v{envelope['schema_version']}")


if __name__ == "__main__":
    main()
