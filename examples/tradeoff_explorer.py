"""Analytic tradeoff explorer — the paper's framework as a calculator.

For any catalog CQAP this walks the whole §4 pipeline symbolically:
enumerate PMTDs, generate the 2-phase disjunctive rules, sweep the OBJ(S)
LP, and print the piecewise tradeoff with exact rational exponents — the
tool that regenerates Table 1 and Figures 4a/4b.

Run:  python examples/tradeoff_explorer.py [query]
      (query in: path2 path3 square setdisj2 setdisj3 ...)
"""

import sys

from repro.decomposition import enumerate_pmtds, trivial_pmtds
from repro.query import catalog
from repro.tradeoff import (
    PiecewiseCurve,
    fit_segment_formulas,
    rules_from_pmtds,
    symbolic_program,
)


def explore(name: str) -> None:
    cqap = catalog.by_name(name)
    print("query:   ", cqap)
    try:
        pmtds = enumerate_pmtds(cqap)
    except Exception:
        pmtds = trivial_pmtds(cqap)
    if not pmtds:
        pmtds = trivial_pmtds(cqap)
    print(f"PMTDs:    {len(pmtds)} non-redundant, non-dominant")
    for pmtd in pmtds:
        print("   ", ", ".join(pmtd.labels))
    rules = rules_from_pmtds(pmtds)
    print(f"rules:    {len(rules)} (reduced 2-phase disjunctive rules)")
    prog = symbolic_program(cqap)

    print("\nper-rule tradeoffs on log_D S in [1, 2] (|Q| = 1):")
    curves = []
    for rule in rules:
        curve = PiecewiseCurve.sample(
            lambda y, r=rule: prog.obj_for_budget(r, y).log_time,
            1.0, 2.0, steps=40,
        )
        curves.append(curve)
        formulas = fit_segment_formulas(curve)
        pretty = "; ".join(str(f) for f in formulas)
        print(f"  {rule.label:<45s} {pretty}")

    print("\nquery envelope (max over rules — §4.3):")
    env = PiecewiseCurve.sample(
        lambda y: max(prog.obj_for_budget(r, y).log_time for r in rules),
        1.0, 2.0, steps=40,
    )
    corners = " -> ".join(f"({x}, {y})" for x, y in env.breakpoints())
    print(" ", corners)
    print("\n  log_D S   log_D T")
    for i in range(0, len(env.xs), 8):
        print(f"  {env.xs[i]:>7.3f}   {env.ys[i]:>7.4f}")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "path3"
    explore(name)


if __name__ == "__main__":
    main()
