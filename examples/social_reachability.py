"""Scenario: friend-of-friend-of-friend lookups in a social graph.

A service wants to answer "can u reach v in exactly 3 follows?" with a
memory cap.  This example prepares one serving-engine instance per budget
across the space-time spectrum of Figure 4a and reports, for each budget,
the stored tuples and the measured online work — plus the batched
`probe_many` variant for feed-building workloads and the effect of the LRU
answer cache on a skewed (hot-pair) probe stream.

Run:  python examples/social_reachability.py
"""

import random

from repro import prepare
from repro.data import random_edge_relation
from repro.problems import KReachOracle, graph_database
from repro.query.catalog import k_path_cqap
from repro.util.counters import Counters


def build_graph(n_users: int = 220, n_follows: int = 2600,
                celebrities: int = 6, seed: int = 5):
    """A follows-graph with a few celebrity hubs (heavy out-degrees)."""
    rel = random_edge_relation("follows", ("src", "dst"), n_follows,
                               n_users, seed=seed, skew_hubs=celebrities)
    return set(rel.tuples), n_users


def main() -> None:
    edges, n_users = build_graph()
    n = len(edges)
    print(f"social graph: {n_users} users, {n} follows edges")

    cqap = k_path_cqap(3)
    db = graph_database(edges, 3)
    rng = random.Random(1)
    queries = [(rng.randrange(n_users), rng.randrange(n_users))
               for _ in range(50)]

    print("\n-- budget sweep (prepared engine, Figure 4a regimes) --")
    header = (f"{'budget':>10}  {'log_D S':>8}  {'stored':>7}  "
              f"{'avg ops':>8}  {'pred T':>8}")
    print(header)
    for exponent in (1.0, 1.3, 1.6, 1.9):
        budget = int(n ** exponent)
        pq = prepare(cqap, db, space_budget=budget)
        counters = Counters()
        for pair in queries:
            pq.probe_boolean(pair, counters=counters)
        predicted = 2 ** pq.predicted_log_time
        print(f"{budget:>10}  {exponent:>8.2f}  {pq.stored_tuples:>7}  "
              f"{counters.online_work / len(queries):>8.1f}  "
              f"{predicted:>8.1f}")

    print("\n-- strategies at budget = |E| --")
    for strategy in ("framework", "chain", "bfs", "full"):
        oracle = KReachOracle(edges, k=3, space_budget=n,
                              strategy=strategy)
        counters = Counters()
        hits = sum(oracle.query(u, v, counters=counters)
                   for u, v in queries)
        print(f"{strategy:>10}: stored={oracle.stored_tuples:>6}  "
              f"avg ops={counters.online_work / len(queries):>8.1f}  "
              f"hits={hits}")

    print("\n-- batched feed-building (64 pairs at once) --")
    pairs = [(rng.randrange(n_users), rng.randrange(n_users))
             for _ in range(64)]
    # cache disabled on both sides so the comparison isolates the §6.4
    # batching effect from answer-cache hits
    one_by_one = Counters()
    fresh = prepare(cqap, db, space_budget=int(n ** 1.3), cache_size=0)
    for pair in pairs:
        fresh.probe_boolean(pair, counters=one_by_one)
    batched = Counters()
    batch_pq = prepare(cqap, db, space_budget=int(n ** 1.3), cache_size=0)
    batch_pq.probe_many(pairs, counters=batched)
    print(f"one-by-one: {one_by_one.online_work} ops; "
          f"batched: {batched.online_work} ops "
          f"({one_by_one.online_work / max(1, batched.online_work):.2f}x)")

    print("\n-- hot-pair probe stream through the LRU answer cache --")
    hot = prepare(cqap, db, space_budget=int(n ** 1.3), cache_size=128)
    hot_pairs = pairs[:8]
    stream = [hot_pairs[rng.randrange(len(hot_pairs))] for _ in range(400)]
    counters = Counters()
    for pair in stream:
        hot.probe_boolean(pair, counters=counters)
    engine = hot.stats()["engine"]
    print(f"{len(stream)} probes over {len(hot_pairs)} hot pairs: "
          f"{engine['cache']['hit_rate']:.0%} cache hits, "
          f"{engine['online_phases']} online phases, "
          f"{counters.online_work} total online ops")


if __name__ == "__main__":
    main()
