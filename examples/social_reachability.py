"""Scenario: friend-of-friend-of-friend lookups in a social graph.

A service wants to answer "can u reach v in exactly 3 follows?" with a
memory cap.  This example sweeps the cap across the space-time spectrum of
Figure 4a and reports, for each budget, the stored tuples and the measured
online work — plus the batched variant for feed-building workloads.

Run:  python examples/social_reachability.py
"""

import math
import random

from repro.data import random_edge_relation
from repro.problems import KReachOracle
from repro.util.counters import Counters


def build_graph(n_users: int = 220, n_follows: int = 2600,
                celebrities: int = 6, seed: int = 5):
    """A follows-graph with a few celebrity hubs (heavy out-degrees)."""
    rel = random_edge_relation("follows", ("src", "dst"), n_follows,
                               n_users, seed=seed, skew_hubs=celebrities)
    return set(rel.tuples), n_users


def main() -> None:
    edges, n_users = build_graph()
    n = len(edges)
    print(f"social graph: {n_users} users, {n} follows edges")

    rng = random.Random(1)
    queries = [(rng.randrange(n_users), rng.randrange(n_users))
               for _ in range(50)]

    print("\n-- budget sweep (framework strategy, Figure 4a regimes) --")
    header = (f"{'budget':>10}  {'log_D S':>8}  {'stored':>7}  "
              f"{'avg ops':>8}  {'pred T':>8}")
    print(header)
    oracles = {}
    for exponent in (1.0, 1.3, 1.6, 1.9):
        budget = int(n ** exponent)
        oracle = KReachOracle(edges, k=3, space_budget=budget)
        oracles[exponent] = oracle
        counters = Counters()
        for u, v in queries:
            oracle.query(u, v, counters=counters)
        predicted = 2 ** oracle._index.predicted_log_time
        print(f"{budget:>10}  {exponent:>8.2f}  {oracle.stored_tuples:>7}  "
              f"{counters.online_work / len(queries):>8.1f}  "
              f"{predicted:>8.1f}")

    print("\n-- strategies at budget = |E| --")
    for strategy in ("framework", "chain", "bfs", "full"):
        oracle = KReachOracle(edges, k=3, space_budget=n,
                              strategy=strategy)
        counters = Counters()
        hits = sum(oracle.query(u, v, counters=counters)
                   for u, v in queries)
        print(f"{strategy:>10}: stored={oracle.stored_tuples:>6}  "
              f"avg ops={counters.online_work / len(queries):>8.1f}  "
              f"hits={hits}")

    print("\n-- batched feed-building (64 pairs at once) --")
    oracle = oracles[1.3]
    pairs = [(rng.randrange(n_users), rng.randrange(n_users))
             for _ in range(64)]
    one_by_one = Counters()
    for u, v in pairs:
        oracle.query(u, v, counters=one_by_one)
    batched = Counters()
    oracle.answer_batch(pairs, counters=batched)
    print(f"one-by-one: {one_by_one.online_work} ops; "
          f"batched: {batched.online_work} ops "
          f"({one_by_one.online_work / max(1, batched.online_work):.2f}x)")


if __name__ == "__main__":
    main()
