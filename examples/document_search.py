"""Scenario: multi-term document search over an inverted index.

"Which documents contain all of these k terms?" is exactly the k-set
intersection CQAP of §6.1 — posting lists are the sets, documents the
elements.  This example builds the §6.1 structures at several memory caps
and shows the S · T^{k-1} tradeoff on measured probe counts, including the
O(1) path for heavy (stop-word-like) term combinations.

Run:  python examples/document_search.py
"""

import random

from repro.problems import KSetDisjointnessIndex, KSetIntersectionIndex, SetFamily


def build_corpus(n_terms: int = 50, n_docs: int = 400,
                 postings: int = 6000, stop_words: int = 4,
                 seed: int = 11) -> SetFamily:
    """Posting lists with a few very frequent (heavy) terms."""
    rng = random.Random(seed)
    sets = {}
    for term in range(stop_words):
        # stop words appear in most documents
        sets[f"term{term}"] = set(rng.sample(range(n_docs),
                                             int(n_docs * 0.7)))
    placed = sum(len(s) for s in sets.values())
    term = stop_words
    while placed < postings:
        name = f"term{term % n_terms}"
        sets.setdefault(name, set())
        doc = rng.randrange(n_docs)
        if doc not in sets[name]:
            sets[name].add(doc)
            placed += 1
        term += 1
    return SetFamily.from_dict(sets)


def main() -> None:
    family = build_corpus()
    n = family.total_elements
    print(f"corpus: {len(family)} terms, {n} postings")

    print("\n-- conjunctive (AND) search, k = 2, budget sweep --")
    print(f"{'budget':>8}  {'Δ':>7}  {'#heavy':>6}  {'stored':>7}  "
          f"{'probes/query':>12}")
    rng = random.Random(3)
    terms = sorted(family.sets)
    queries = [(rng.choice(terms), rng.choice(terms)) for _ in range(60)]
    for exponent in (0.5, 1.0, 1.5):
        budget = max(1, int(n ** exponent))
        index = KSetDisjointnessIndex(family, 2, budget)
        from repro.util.counters import Counters

        counters = Counters()
        for a, b in queries:
            index.query((a, b), counters=counters)
        print(f"{budget:>8}  {index.threshold:>7.1f}  "
              f"{len(index.heavy):>6}  {index.stored_tuples:>7}  "
              f"{counters.online_work / len(queries):>12.1f}")

    print("\n-- enumerating matches (intersection variant, k = 3) --")
    index3 = KSetIntersectionIndex(family, 3, space_budget=n ** 1.5)
    sample = terms[:3]
    docs = index3.intersect(tuple(sample))
    print(f"documents containing all of {sample}: {len(docs)} "
          f"(e.g. {sorted(docs)[:8]})")

    # stop-word pairs hit the precomputed table in one probe
    from repro.util.counters import Counters

    heavy_pair = tuple(index3.heavy[:3]) if len(index3.heavy) >= 3 else None
    if heavy_pair:
        counters = Counters()
        index3.intersect(heavy_pair, counters=counters)
        print(f"heavy combo {heavy_pair}: {counters.probes} probe(s), "
              f"{counters.scans} scans — the O(1) stored path")


if __name__ == "__main__":
    main()
