"""Legacy setup shim.

All project metadata lives in ``pyproject.toml``; this file exists only so
that offline environments without the `wheel` package (where PEP 660
editable installs fail) can still run
``pip install -e . --no-build-isolation``, which falls back to
``setup.py develop`` through this shim.
"""

from setuptools import setup

setup()
