"""REP003 bad twin: a cache dropped by __getstate__ is read after unpickle."""


class Payload:
    def __init__(self, rows):
        self.rows = rows
        self._index = {r[0]: r for r in rows}

    def __getstate__(self):
        return (self.rows,)

    def __setstate__(self, state):
        (self.rows,) = state
        # _index is never rebuilt

    def lookup(self, key):
        return self._index.get(key)  # crashes in a worker: REP003
