"""REP004 clean twin: stats() sticks to declared envelope sections."""


def stats_envelope(**sections):
    return dict(sections)


class Layer:
    def stats(self):
        return stats_envelope(
            query="q",
            scheduler={"batch_calls": 0},
        )


class DictLayer:
    def stats(self):
        return {
            "schema_version": 3,
            "query": "q",
            "metrics": None,
        }
