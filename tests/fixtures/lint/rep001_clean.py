"""REP001 clean twin: every post-__init__ mutation holds the lock."""

import threading


class Scheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self.calls = 0
        self.phases = 0

    def record(self):
        with self._lock:
            self.calls += 1
            self.phases += 1

    def record_fast(self):
        with self._lock:
            self.calls += 1
