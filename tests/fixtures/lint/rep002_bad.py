"""REP002 bad twin: __eq__ charges shared counters (the PR 7 bug class)."""


class Relationish:
    def __init__(self, rows, counters):
        self.rows = rows
        self.counters = counters

    def project(self, schema, counters=None):
        target = counters or self.counters
        target.scans += len(self.rows)  # noqa-irrelevant: not a dunder
        return self.rows

    def __eq__(self, other):
        self.counters.probes += 1  # bump on shared state: REP002
        return self.project(()) == other.project(())  # default counters: REP002
