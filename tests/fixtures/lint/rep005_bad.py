"""REP005 bad twin: a bare assert guarding a library invariant."""


def choose(options):
    best = max(options, default=None)
    assert best is not None  # vanishes under -O: REP005
    return best
