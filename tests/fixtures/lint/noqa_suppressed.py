"""Suppression fixture: every finding is silenced with # repro: noqa."""


def choose(options):
    best = max(options, default=None)
    assert best is not None  # repro: noqa[REP005]
    return best


def pick(options):
    assert options  # repro: noqa
    return options[0]
