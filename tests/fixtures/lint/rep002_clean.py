"""REP002 clean twin: __eq__ uses an explicit throwaway Counters."""

from repro.util.counters import Counters


class Relationish:
    def __init__(self, rows, counters):
        self.rows = rows
        self.counters = counters

    def project(self, schema, counters=None):
        target = counters or self.counters
        target.scans += len(self.rows)
        return self.rows

    def __eq__(self, other):
        throwaway = Counters()
        throwaway.probes += 1
        return (self.project((), counters=throwaway)
                == other.project((), counters=throwaway))
