"""REP001 bad twin: a counter guarded in one method, bare in another."""

import threading


class Scheduler:
    def __init__(self):
        self._lock = threading.Lock()
        self.calls = 0
        self.phases = 0

    def record(self):
        with self._lock:
            self.calls += 1
            self.phases += 1

    def record_fast(self):
        self.calls += 1  # mutated lock-free: REP001
