"""REP004 bad twin: stats() invents keys the envelope never declared."""


def stats_envelope(**sections):
    return dict(sections)


class Layer:
    def stats(self):
        return stats_envelope(
            query="q",
            latency_p99=1.5,  # undeclared section: REP004
        )


class DictLayer:
    def stats(self):
        return {
            "schema_version": 3,
            "queue_depth": 4,  # undeclared key: REP004
        }
