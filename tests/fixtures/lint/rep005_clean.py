"""REP005 clean twin: the invariant raises a typed error."""


def choose(options):
    best = max(options, default=None)
    if best is None:
        raise ValueError("no options to choose from")
    return best
