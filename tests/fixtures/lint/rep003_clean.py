"""REP003 clean twin: __setstate__ rebuilds the cache through a helper."""


class Payload:
    def __init__(self, rows):
        self.rows = rows
        self._reset_derived()

    def _reset_derived(self):
        self._index = {r[0]: r for r in self.rows}

    def __getstate__(self):
        return (self.rows,)

    def __setstate__(self, state):
        (self.rows,) = state
        self._reset_derived()

    def lookup(self, key):
        return self._index.get(key)
