"""Tests for the serving engine: LRU cache accounting, the plan-once/
probe-many contract, batched-probe equivalence, and budget-abort survival."""

import json
import math
import random

import pytest

from repro import catalog, path_database, singleton_request
from repro.core.two_phase import S_PHASE, T_PHASE
from repro.data import triangle_database
from repro.engine import LRUCache, PreparedQuery, prepare
from repro.util.counters import Counters


def reach3_setup(n_edges=700, domain=90, seed=41, skew=4):
    cqap = catalog.k_path_cqap(3)
    db = path_database(3, n_edges, domain, seed=seed, skew_hubs=skew)
    return cqap, db


class TestLRUCache:
    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.evictions == 1

    def test_put_existing_refreshes_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, not insert
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 1

    def test_peek_touches_nothing(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        assert cache.hits == 0
        assert cache.misses == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_snapshot_shape(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)


class TestPreparedQuery:
    def test_requires_preprocessed_index(self):
        from repro.core.index import CQAPIndex

        cqap, db = reach3_setup(n_edges=200, domain=40)
        index = CQAPIndex(cqap, db, space_budget=db.size)
        with pytest.raises(ValueError):
            PreparedQuery(index)

    def test_probe_matches_from_scratch(self):
        cqap, db = reach3_setup()
        pq = prepare(cqap, db, space_budget=int(db.size ** 1.2))
        full = cqap.evaluate(db)
        hits = list(full.tuples)[:5]
        for binding in hits + [(10**9, 10**9)]:
            reference = cqap.answer_from_scratch(
                db, singleton_request(cqap.access, binding)
            )
            assert pq.probe_boolean(binding) == (not reference.is_empty())

    def test_binding_arity_checked(self):
        cqap, db = reach3_setup(n_edges=200, domain=40)
        pq = prepare(cqap, db, space_budget=db.size)
        with pytest.raises(ValueError):
            pq.probe((1, 2, 3))

    def test_repeated_probe_hits_cache_with_zero_online_work(self):
        cqap, db = reach3_setup()
        pq = prepare(cqap, db, space_budget=db.size)
        full = cqap.evaluate(db)
        binding = next(iter(full.tuples))
        first = Counters()
        cold = pq.probe(binding, counters=first)
        assert first.online_work > 0
        second = Counters()
        warm = pq.probe(binding, counters=second)
        assert second.online_work == 0
        assert warm.tuples == cold.tuples
        assert pq.cache.hits == 1
        assert pq.online_phases == 1

    def test_cache_eviction_through_probe(self):
        cqap, db = reach3_setup(n_edges=300, domain=40)
        pq = prepare(cqap, db, space_budget=db.size, cache_size=2)
        pq.probe((1, 2))
        pq.probe((3, 4))
        pq.probe((5, 6))        # evicts (1, 2)
        assert pq.cache.evictions == 1
        before = pq.online_phases
        pq.probe((1, 2))        # must recompute
        assert pq.online_phases == before + 1

    def test_stats_json_serializable(self):
        cqap, db = reach3_setup(n_edges=200, domain=40)
        pq = prepare(cqap, db, space_budget=db.size)
        pq.probe((1, 2))
        payload = json.dumps(pq.stats())
        assert "cache" in payload


class TestStatisticsAndEstimateErrorBlocks:
    def test_stats_surface_catalog_statistics(self):
        cqap, db = reach3_setup(n_edges=200, domain=40)
        pq = prepare(cqap, db, space_budget=db.size)
        block = pq.stats()["engine"]["statistics"]
        assert block["atoms"] == 3
        assert block["single_degree_keys"] == 6
        assert block["join_samples"] == 2
        assert "lp_solves" in block["lp_bounds"]

    def test_estimate_error_measured_after_preprocess(self):
        cqap, db = reach3_setup(n_edges=200, domain=40)
        # a rich budget so at least one S-target actually materializes
        pq = prepare(cqap, db, space_budget=db.size ** 2 + 1,
                     rule_selection="budget")
        block = pq.stats()["engine"]["estimate_error"]
        assert block["checks"] >= 1
        assert block["median_relative_error"] >= 0
        for entry in block["targets"]:
            assert entry["actual"] >= 0
            assert entry["estimated"] >= 0
            assert entry["relative_error"] >= 0

    def test_no_materialization_means_no_checks(self):
        cqap, db = reach3_setup(n_edges=200, domain=40)
        pq = prepare(cqap, db, space_budget=2)  # nothing fits
        block = pq.stats()["engine"]["estimate_error"]
        assert block["checks"] == len(block["targets"])
        assert block["checks"] == 0 or block["median_relative_error"] >= 0


class TestPlanOnceProbeMany:
    def test_warm_probes_never_replan_or_rematerialize(self):
        cqap, db = reach3_setup()
        pq = prepare(cqap, db, space_budget=int(db.size ** 1.2))
        planner, executor = pq._index.planner, pq._index.executor
        plan_calls = planner.plan_calls
        stored = pq.stored_tuples
        assert executor.preprocess_runs == 1
        assert executor.compile_runs == 1
        rng = random.Random(3)
        bindings = [(rng.randrange(90), rng.randrange(90))
                    for _ in range(30)]
        for binding in bindings:
            pq.probe_boolean(binding)
        pq.probe_many(bindings)
        assert planner.plan_calls == plan_calls
        assert executor.preprocess_runs == 1
        assert executor.compile_runs == 1
        assert pq.stored_tuples == stored
        assert not pq.replanned

    def test_prepare_counters_frozen(self):
        cqap, db = reach3_setup(n_edges=300, domain=50)
        pq = prepare(cqap, db, space_budget=db.size)
        prep_snapshot = pq.prepare_counters.snapshot()
        pq.probe((1, 2))
        assert pq.prepare_counters.snapshot() == prep_snapshot


class TestProbeMany:
    def test_equivalent_to_single_probes_on_reachability(self):
        cqap, db = reach3_setup()
        batched = prepare(cqap, db, space_budget=int(db.size ** 1.2))
        single = prepare(cqap, db, space_budget=int(db.size ** 1.2))
        rng = random.Random(8)
        full = list(cqap.evaluate(db).tuples)
        bindings = (full[:6]
                    + [(rng.randrange(90), rng.randrange(90))
                       for _ in range(10)])
        results = batched.probe_many(bindings)
        assert set(results) == {tuple(b) for b in bindings}
        for binding, rel in results.items():
            assert rel.tuples == single.probe(binding).tuples

    def test_equivalent_to_single_probes_on_triangle(self):
        cqap = catalog.triangle_cqap()
        db = triangle_database(300, 60, seed=3)
        batched = prepare(cqap, db, space_budget=db.size)
        single = prepare(cqap, db, space_budget=db.size)
        # the access pattern is empty: the only binding is ()
        results = batched.probe_many([(), ()])
        assert set(results) == {()}
        assert results[()].tuples == single.probe(()).tuples
        assert len(results[()]) > 0

    def test_edge_triangle_batch_matches_reference(self):
        cqap = catalog.edge_triangle_cqap()
        db = triangle_database(300, 60, seed=5)
        pq = prepare(cqap, db, space_budget=db.size)
        edges = list(db["R1"].tuples)[:12]
        results = pq.probe_many(edges)
        for edge in edges:
            reference = cqap.answer_from_scratch(
                db, singleton_request(cqap.access, edge)
            )
            assert (len(results[tuple(edge)]) > 0) == (
                not reference.is_empty()
            )

    def test_deduplicates_bindings(self):
        cqap, db = reach3_setup(n_edges=300, domain=40)
        pq = prepare(cqap, db, space_budget=db.size)
        results = pq.probe_many([(1, 2), (1, 2), (3, 4), (1, 2)])
        assert set(results) == {(1, 2), (3, 4)}
        # probes_served counts every incoming binding (duplicates
        # included), exactly as a loop of probe() calls would; the dedupe
        # saving shows up in online_phases, not a smaller served count
        assert pq.probes_served == 4
        assert pq.online_phases == 1

    def test_mixes_cache_hits_and_misses(self):
        cqap, db = reach3_setup(n_edges=300, domain=40)
        pq = prepare(cqap, db, space_budget=db.size)
        warm = pq.probe((1, 2))
        phases = pq.online_phases
        results = pq.probe_many([(1, 2), (5, 6)])
        assert results[(1, 2)].tuples == warm.tuples
        # the cached binding is excluded from the batched online phase
        assert pq.online_phases == phases + 1
        assert pq.cache.hits == 1

    def test_batched_online_work_amortizes(self):
        cqap, db = reach3_setup()
        one = prepare(cqap, db, space_budget=db.size, cache_size=0)
        many = prepare(cqap, db, space_budget=db.size, cache_size=0)
        rng = random.Random(8)
        pairs = [(rng.randrange(90), rng.randrange(90))
                 for _ in range(32)]
        single_ctr = Counters()
        for pair in pairs:
            one.probe_boolean(pair, counters=single_ctr)
        batch_ctr = Counters()
        many.probe_many(pairs, counters=batch_ctr)
        assert batch_ctr.online_work <= single_ctr.online_work

    def test_boolean_variant(self):
        cqap, db = reach3_setup(n_edges=300, domain=40)
        pq = prepare(cqap, db, space_budget=db.size)
        full = cqap.evaluate(db)
        hit = next(iter(full.tuples))
        out = pq.probe_many_boolean([hit, (10**9, 10**9)])
        assert out[hit] is True
        assert out[(10**9, 10**9)] is False

    def test_empty_batch(self):
        cqap, db = reach3_setup(n_edges=200, domain=40)
        pq = prepare(cqap, db, space_budget=db.size)
        assert pq.probe_many([]) == {}


class TestBudgetAbortFallback:
    def test_fallback_survives_repeated_probes(self):
        cqap = catalog.k_path_cqap(2)
        db = path_database(2, 300, 20, seed=2, skew_hubs=0)
        # an absurdly tight executor slack: any S-piece beyond one tuple
        # aborts during prepare and flips to the online phase
        pq = prepare(cqap, db, space_budget=db.size, budget_slack=1e-9)
        assert pq.stored_tuples <= 1
        assert pq._index.executor.budget_aborts > 0
        decisions = [d for plan in pq._index.plans
                     for d in plan.decisions]
        # aborted decisions are re-priced with the planner's LP bound for
        # the replacement online target — finite, never the old inf marker
        aborted = [d for d in decisions if d.phase == T_PHASE]
        assert aborted
        assert all(math.isfinite(d.predicted_log_size) for d in aborted)
        full = cqap.evaluate(db)
        hits = list(full.tuples)[:4]
        for _ in range(3):      # repeated probes keep serving post-abort
            for binding in hits + [(999, 999)]:
                reference = cqap.answer_from_scratch(
                    db, singleton_request(cqap.access, binding)
                )
                assert pq.probe_boolean(binding) == (
                    not reference.is_empty()
                )
        assert not pq.replanned
        assert pq._index.executor.preprocess_runs == 1

    def test_abort_happens_before_compile(self):
        # the compiled T-phase must reflect the post-abort schedule: every
        # aborted decision appears among the compiled steps
        cqap = catalog.k_path_cqap(2)
        db = path_database(2, 300, 20, seed=2, skew_hubs=0)
        pq = prepare(cqap, db, space_budget=db.size, budget_slack=1e-9)
        compiled_targets = [step.decision for step
                            in pq._index._compiled_online]
        assert pq._index.executor.budget_aborts > 0
        aborted = [d for plan in pq._index.plans
                   for d in plan.decisions
                   if d.phase == T_PHASE]
        assert aborted
        for decision in aborted:
            assert decision in compiled_targets


class TestColumnarBackend:
    """backend="columnar" is a drop-in: same answers, labeled stats."""

    def test_probe_answers_match_set_backend(self):
        cqap, db = reach3_setup(n_edges=300, domain=40)
        rng = random.Random(5)
        pairs = [(rng.randrange(40), rng.randrange(40)) for _ in range(12)]
        pq_set = prepare(cqap, db, space_budget=db.size, cache_size=0)
        pq_col = prepare(cqap, db, space_budget=db.size, cache_size=0,
                         backend="columnar")
        for pair in pairs:
            a = pq_set.probe(pair)
            b = pq_col.probe(pair)
            assert a.tuples == b.tuples
            assert a.schema == b.schema

    def test_probe_many_matches_set_backend(self):
        cqap, db = reach3_setup(n_edges=250, domain=30)
        rng = random.Random(6)
        pairs = [(rng.randrange(30), rng.randrange(30)) for _ in range(9)]
        pq_set = prepare(cqap, db, space_budget=db.size)
        pq_col = prepare(cqap, db, space_budget=db.size,
                         backend="columnar")
        got_set = pq_set.probe_many(pairs)
        got_col = pq_col.probe_many(pairs)
        assert set(got_set) == set(got_col)
        for key in got_set:
            assert got_set[key].tuples == got_col[key].tuples

    def test_stats_record_backend(self):
        cqap, db = reach3_setup(n_edges=200, domain=30)
        pq = prepare(cqap, db, space_budget=db.size, backend="columnar")
        assert pq.stats()["engine"]["relation_backend"] == "columnar"
        default = prepare(cqap, db, space_budget=db.size)
        assert default.stats()["engine"]["relation_backend"] == "set"

    def test_unknown_backend_rejected_at_prepare(self):
        cqap, db = reach3_setup(n_edges=200, domain=30)
        with pytest.raises(ValueError, match="backend"):
            prepare(cqap, db, space_budget=db.size, backend="arrow")


class TestCacheCapacityGuard:
    def test_probe_many_with_disabled_cache_stores_nothing(self):
        cqap, db = reach3_setup(n_edges=250, domain=30)
        pq = prepare(cqap, db, space_budget=db.size, cache_size=0)
        rng = random.Random(8)
        pairs = [(rng.randrange(30), rng.randrange(30)) for _ in range(6)]
        pq.probe_many(pairs)
        assert len(pq.cache) == 0
        # a replay re-runs the online phase instead of hitting the cache
        phases = pq.online_phases
        pq.probe_many(pairs)
        assert pq.online_phases > phases

    def test_probes_served_counts_every_incoming_binding(self):
        cqap, db = reach3_setup(n_edges=250, domain=30)
        pq = prepare(cqap, db, space_budget=db.size)
        pairs = [(1, 2), (1, 2), (3, 4), (1, 2)]
        pq.probe_many(pairs)
        assert pq.probes_served == len(pairs)
