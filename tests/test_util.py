"""Tests for counters and rational helpers."""

import pytest

from repro.util.counters import Counters, global_counters, reset_counters
from repro.util.rationals import approx_fraction, log2, solve_slope


class TestCounters:
    def test_online_work(self):
        ctr = Counters(probes=2, scans=3, joins_emitted=4)
        assert ctr.online_work == 9

    def test_reset(self):
        ctr = Counters(probes=5)
        ctr.notes["x"] = 1
        ctr.reset()
        assert ctr.probes == 0
        assert ctr.notes == {}

    def test_snapshot(self):
        ctr = Counters(probes=1, scans=2, stores=3, joins_emitted=4)
        snap = ctr.snapshot()
        assert snap == {
            "probes": 1, "scans": 2, "stores": 3, "joins_emitted": 4,
            "online_work": 7,
        }

    def test_subtraction(self):
        a = Counters(probes=5, scans=4)
        b = Counters(probes=2, scans=1)
        diff = a - b
        assert diff.probes == 3 and diff.scans == 3

    def test_copy_is_independent(self):
        a = Counters(probes=1)
        b = a.copy()
        b.probes += 1
        assert a.probes == 1

    def test_global_reset(self):
        global_counters.probes += 5
        out = reset_counters()
        assert out is global_counters
        assert global_counters.probes == 0


class TestRationals:
    def test_log2(self):
        assert log2(8) == 3.0

    def test_approx_fraction(self):
        from fractions import Fraction

        assert approx_fraction(0.5) == Fraction(1, 2)
        assert approx_fraction(2 / 3) == Fraction(2, 3)
        assert approx_fraction(29 / 22, max_denominator=22) == Fraction(29, 22)

    def test_approx_fraction_rejects_far_values(self):
        with pytest.raises(ValueError):
            approx_fraction(0.123456789, max_denominator=4, tol=1e-9)

    def test_solve_slope(self):
        assert solve_slope([0, 1, 2], [1, 3, 5]) == pytest.approx(2.0)

    def test_solve_slope_requires_points(self):
        with pytest.raises(ValueError):
            solve_slope([1], [2])

    def test_solve_slope_constant_x(self):
        with pytest.raises(ValueError):
            solve_slope([1, 1], [2, 3])
