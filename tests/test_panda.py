"""Tests for the PANDA proof-sequence interpreter (conditional tables)."""

import random

import pytest

from repro.core.joins import semijoin_reduce_full
from repro.core.panda import (
    CondTable,
    InterpretationError,
    ProofSequenceInterpreter,
)
from repro.core.split import SplitStep
from repro.data import Relation
from repro.polymatroid import ProofSequence, SubsetSpace, compose, decompose, mono, submod
from repro.query import Atom
from repro.util.counters import Counters


def two_path_instance(seed=4, edges=70, domain=20):
    rng = random.Random(seed)
    r1 = Relation("R1", ("x1", "x2"),
                  {(rng.randrange(domain), rng.randrange(domain))
                   for _ in range(edges)})
    r2 = Relation("R2", ("x2", "x3"),
                  {(rng.randrange(domain), rng.randrange(domain))
                   for _ in range(edges)})
    return r1, r2


class TestCondTable:
    def test_from_relation_groups(self):
        rel = Relation("R", ("a", "b"), [(1, 2), (1, 3), (2, 4)])
        table = CondTable.from_relation(rel, ("a",))
        assert table.key_count == 2
        assert table.max_degree == 2
        assert table.size == 3

    def test_unconditional(self):
        rel = Relation("R", ("a",), [(1,), (2,)])
        table = CondTable.from_relation(rel, ())
        assert table.key_count == 1
        assert table.groups[()] == {(1,), (2,)}

    def test_roundtrip(self):
        rel = Relation("R", ("a", "b"), [(1, 2), (3, 4)])
        table = CondTable.from_relation(rel, ("a",))
        assert table.to_relation() == rel

    def test_x_subset_y_required(self):
        with pytest.raises(ValueError):
            CondTable(("z",), ("a", "b"), {})


class TestSteps:
    def setup_method(self):
        self.space = SubsetSpace(["x1", "x2", "x3"])
        self.m = self.space.mask

    def test_missing_table_raises(self):
        interp = ProofSequenceInterpreter(self.space)
        with pytest.raises(InterpretationError):
            interp.apply(mono(self.m({"x1"}), self.m({"x1", "x2"})))

    def test_monotonicity_projects(self):
        interp = ProofSequenceInterpreter(self.space)
        rel = Relation("R", ("x1", "x2"), [(1, 2), (1, 3)])
        interp.add_relation(rel, ())
        interp.apply(mono(self.m({"x1"}), self.m({"x1", "x2"})))
        assert interp.table_for({"x1"}).tuples == {(1,)}

    def test_composition_joins(self):
        interp = ProofSequenceInterpreter(self.space)
        keys = Relation("K", ("x1",), [(1,), (2,)])
        cond = Relation("C", ("x1", "x2"), [(1, 10), (1, 11), (3, 12)])
        interp.add_relation(keys, ())
        interp.add_relation(cond, ("x1",))
        interp.apply(compose(self.m({"x1"}), self.m({"x1", "x2"})))
        out = interp.table_for({"x1", "x2"})
        assert out.project(("x1", "x2")).tuples == {(1, 10), (1, 11)}

    def test_decomposition_splits(self):
        interp = ProofSequenceInterpreter(self.space)
        rows = [(0, i) for i in range(9)] + [(5, 100)]
        interp.add_relation(Relation("R", ("x1", "x2"), rows), ())
        interp.apply(decompose(self.m({"x1"}), self.m({"x1", "x2"})))
        heavy_keys = interp.table_for({"x1"})
        assert heavy_keys.tuples == {(0,)}  # degree 9 > sqrt(10)

    def test_submod_then_compose_binds_wildcards(self):
        # (x1x2 | x1) --submod--> (x1x2x3 | x1x3); composing with a
        # (x1x3 | ∅) table binds x3 freely
        interp = ProofSequenceInterpreter(self.space)
        cond = Relation("C", ("x1", "x2"), [(1, 7)])
        pairs = Relation("P", ("x1", "x3"), [(1, 9), (2, 9)])
        interp.add_relation(cond, ("x1",))
        interp.add_relation(pairs, ())
        interp.apply(submod(self.m({"x1", "x2"}), self.m({"x1", "x3"})))
        interp.apply(compose(self.m({"x1", "x3"}), self.space.full_mask))
        out = interp.table_for({"x1", "x2", "x3"})
        assert out.project(("x1", "x2", "x3")).tuples == {(1, 7, 9)}


class TestSection5Sequences:
    """Execute the §5 running example's two proof sequences on real data."""

    def setup_method(self):
        self.space = SubsetSpace(["x1", "x2", "x3"])
        self.m = self.space.mask
        self.r1, self.r2 = two_path_instance()
        delta = 4
        s1 = SplitStep(Atom("R1", ("x1", "x2")), ("x1",), delta)
        s2 = SplitStep(Atom("R2", ("x2", "x3")), ("x3",), delta)
        self.h1, self.l1 = s1.partition(self.r1)
        self.h2, self.l2 = s2.partition(self.r2)

    def test_preprocessing_sequence_materializes_s13(self):
        interp = ProofSequenceInterpreter(self.space)
        interp.add_relation(self.h1.project(("x1",)), ())
        interp.add_relation(self.h2.project(("x3",)), ())
        interp.run(ProofSequence([
            submod(self.m({"x1"}), self.m({"x3"})),
            compose(self.m({"x3"}), self.m({"x1", "x3"})),
        ]))
        s13 = interp.table_for({"x1", "x3"})
        # PANDA's model: the heavy-key cross product (a superset of the
        # true S13 — §4.2's semijoin-reduce trims it)
        assert len(s13) == (len(self.h1.project(("x1",)))
                            * len(self.h2.project(("x3",))))
        reduced = semijoin_reduce_full(
            [Relation("R1", ("x1", "x2"), self.r1.tuples),
             Relation("R2", ("x2", "x3"), self.r2.tuples)],
            {"s13": s13},
        )["s13"]
        true_pairs = self.r1.join(self.r2).project(("x1", "x3"))
        assert reduced.tuples <= true_pairs.tuples

    def test_online_sequence_equals_light_join(self):
        full = self.r1.join(self.r2).project(("x1", "x3"))
        hit = next(iter(full.tuples))
        request = Relation("QA", ("x1", "x3"), [hit])
        interp = ProofSequenceInterpreter(self.space)
        interp.add_relation(self.l1, ("x1",))
        interp.add_relation(request, ())
        interp.run(ProofSequence([
            submod(self.m({"x1", "x2"}), self.m({"x1", "x3"})),
            compose(self.m({"x1", "x3"}), self.space.full_mask),
        ]))
        out = interp.table_for({"x1", "x2", "x3"})
        expected = request.join(
            Relation("R1L", ("x1", "x2"), self.l1.tuples)
        ).project(("x1", "x2", "x3"))
        assert out.project(("x1", "x2", "x3")).tuples == expected.tuples

    def test_online_work_bounded_by_light_degree(self):
        request = Relation("QA", ("x1", "x3"), [(0, 0)])
        ctr = Counters()
        interp = ProofSequenceInterpreter(self.space, counters=ctr)
        interp.add_relation(self.l1, ("x1",))
        interp.add_relation(request, ())
        interp.run(ProofSequence([
            submod(self.m({"x1", "x2"}), self.m({"x1", "x3"})),
            compose(self.m({"x1", "x3"}), self.space.full_mask),
        ]))
        # one probe for the request tuple, at most Δ = 4 scans
        assert ctr.scans <= 4
