"""Tests for the generic projection join (and its budget enforcement)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.joins import (
    BudgetExceeded,
    choose_variable_order,
    project_join,
    semijoin_reduce_full,
)
from repro.data.relation import Relation
from repro.util.counters import Counters


def rel(name, schema, rows):
    return Relation(name, schema, rows)


class TestProjectJoin:
    def test_two_path(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2), (2, 3)])
        r2 = rel("R2", ("x2", "x3"), [(2, 5), (3, 6), (9, 9)])
        out = project_join([r1, r2], ("x1", "x3"))
        assert out.tuples == {(1, 5), (2, 6)}

    def test_projection_dedup(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2), (1, 3)])
        r2 = rel("R2", ("x2", "x3"), [(2, 7), (3, 7)])
        out = project_join([r1, r2], ("x1", "x3"))
        assert out.tuples == {(1, 7)}

    def test_boolean_projection(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2)])
        r2 = rel("R2", ("x2", "x3"), [(2, 5)])
        out = project_join([r1, r2], ())
        assert out.tuples == {()}

    def test_boolean_projection_empty(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2)])
        r2 = rel("R2", ("x2", "x3"), [(9, 5)])
        out = project_join([r1, r2], ())
        assert out.is_empty()

    def test_empty_input_relation(self):
        r1 = rel("R1", ("x1", "x2"), [])
        r2 = rel("R2", ("x2", "x3"), [(2, 5)])
        assert project_join([r1, r2], ("x1",)).is_empty()

    def test_triangle(self):
        edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
        rels = [
            rel("R1", ("x1", "x2"), edges),
            rel("R2", ("x2", "x3"), edges),
            rel("R3", ("x3", "x1"), edges),
        ]
        out = project_join(rels, ("x1", "x2", "x3"))
        assert (1, 2, 3) in out.tuples
        assert (2, 3, 1) in out.tuples
        assert all(
            (a, b) in set(edges) and (b, c) in set(edges)
            and (c, a) in set(edges)
            for a, b, c in out.tuples
        )

    def test_unknown_projection_variable(self):
        with pytest.raises(ValueError):
            project_join([rel("R", ("a",), [(1,)])], ("zz",))

    def test_budget_enforced(self):
        r1 = rel("R1", ("x1",), [(i,) for i in range(100)])
        with pytest.raises(BudgetExceeded):
            project_join([r1], ("x1",), limit=10)

    def test_budget_not_triggered_below_limit(self):
        r1 = rel("R1", ("x1",), [(i,) for i in range(5)])
        out = project_join([r1], ("x1",), limit=10)
        assert len(out) == 5

    def test_explicit_order(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2)])
        r2 = rel("R2", ("x2", "x3"), [(2, 5)])
        out = project_join([r1, r2], ("x3",), order=["x3", "x2", "x1"])
        assert out.tuples == {(5,)}

    def test_bad_order_rejected(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2)])
        with pytest.raises(ValueError):
            project_join([r1], ("x1",), order=["x1"])

    def test_selection_pushdown_via_singleton(self):
        # a singleton "request" relation should keep work near-constant
        big = rel("R", ("x1", "x2"),
                  [(i, i + 1) for i in range(1000)])
        req = rel("Q", ("x1",), [(7,)])
        ctr = Counters()
        out = project_join([req, big], ("x1", "x2"), counters=ctr)
        assert out.tuples == {(7, 8)}
        assert ctr.scans < 50  # not a full scan of R


class TestVariableOrder:
    def test_starts_with_smallest_relation(self):
        small = rel("Q", ("x9",), [(1,)])
        big = rel("R", ("x1", "x9"), [(i, 1) for i in range(50)])
        order = choose_variable_order([big, small], ("x1",))
        assert order[0] == "x9"

    def test_covers_all_variables(self):
        r1 = rel("R1", ("a", "b"), [(1, 2)])
        r2 = rel("R2", ("b", "c"), [(2, 3)])
        assert set(choose_variable_order([r1, r2], ("a",))) == {"a", "b", "c"}


class TestAgainstBruteForce:
    """Randomized equivalence with the naive pairwise-join evaluator."""

    def brute(self, relations, onto):
        current = relations[0]
        for nxt in relations[1:]:
            current = current.join(nxt)
        if onto:
            return current.project(onto).tuples
        return {()} if len(current) else set()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_paths(self, seed):
        rng = random.Random(seed)
        rels = []
        for i in range(3):
            rows = {(rng.randrange(8), rng.randrange(8)) for _ in range(15)}
            rels.append(rel(f"R{i}", (f"x{i}", f"x{i+1}"), rows))
        onto = ("x0", "x3")
        assert project_join(rels, onto).tuples == self.brute(rels, onto)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_stars(self, seed):
        rng = random.Random(100 + seed)
        rels = []
        for i in range(3):
            rows = {(rng.randrange(6), rng.randrange(6)) for _ in range(12)}
            rels.append(rel(f"R{i}", ("y", f"x{i}"), rows))
        onto = ("x0", "x1", "x2")
        assert project_join(rels, onto).tuples == self.brute(rels, onto)

    @given(
        rows1=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                      max_size=20),
        rows2=st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                      max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_two_relations(self, rows1, rows2):
        r1 = rel("R1", ("a", "b"), rows1)
        r2 = rel("R2", ("b", "c"), rows2)
        got = project_join([r1, r2], ("a", "c")).tuples
        expected = {
            (a, c) for a, b in rows1 for b2, c in rows2 if b == b2
        }
        assert got == expected


class TestSemijoinReduceFull:
    def test_spurious_tuples_removed(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2)])
        r2 = rel("R2", ("x2", "x3"), [(2, 3)])
        dirty = rel("V", ("x1", "x3"), [(1, 3), (9, 9)])
        reduced = semijoin_reduce_full([r1, r2], {"v": dirty})
        assert reduced["v"].tuples == {(1, 3)}

    def test_exact_views_untouched(self):
        r1 = rel("R1", ("x1", "x2"), [(1, 2), (4, 5)])
        r2 = rel("R2", ("x2", "x3"), [(2, 3), (5, 6)])
        exact = project_join([r1, r2], ("x1", "x3"), name="V")
        reduced = semijoin_reduce_full([r1, r2], {"v": exact})
        assert reduced["v"].tuples == exact.tuples
