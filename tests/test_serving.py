"""Tests for the sharded, batched serving layer (``repro.serving``).

The load-bearing property is shard-count invariance: a probe routed to its
home shard must see exactly the answer the unsharded index would give, for
every shard count and either backend.  The differential harness fuzzes
this against the oracle; here it is pinned down deterministically,
together with the scheduler's ordering/dedupe contract, the server's
backpressure, the ``serve()`` facade and its deprecation shims, the stats
envelope shape, and the budget-split accounting.  (The process fleet's own
failure modes live in ``tests/test_fleet.py``.)
"""

import json
import random
import threading
import warnings

import pytest

from repro.core.index import CQAPIndex
from repro.data import path_database
from repro.engine import prepare
from repro.query.catalog import k_path_cqap
from repro.serving import (
    BatchScheduler,
    Server,
    ShardedIndex,
    access_hash,
    serve,
    validate_stats,
)
from repro.util.counters import Counters

DOMAIN = 60


@pytest.fixture(scope="module")
def prepared():
    cqap = k_path_cqap(3)
    db = path_database(3, 400, DOMAIN, seed=11, skew_hubs=4)
    index = CQAPIndex(cqap, db, int(db.size ** 1.2))
    index.preprocess()
    return index


@pytest.fixture(scope="module")
def pairs():
    rng = random.Random(5)
    return [(rng.randrange(DOMAIN), rng.randrange(DOMAIN))
            for _ in range(30)]


class TestAccessHash:
    def test_deterministic_and_spread(self):
        assert access_hash((3, 17)) == access_hash((3, 17))
        assert access_hash((3, 17)) != access_hash((17, 3))
        shards = {access_hash((i, j)) % 4
                  for i in range(8) for j in range(8)}
        assert shards == {0, 1, 2, 3}

    def test_equal_values_hash_equal_across_types(self):
        # routing must respect the engine's own equality: (1, 2) and
        # (1.0, 2.0) are the same dict key, so they must share a shard
        assert access_hash((1, 2)) == access_hash((1.0, 2.0))
        assert access_hash((1, 2)) == access_hash((True, 2))
        assert access_hash((0,)) == access_hash((-0.0,))
        assert access_hash((1.5,)) != access_hash((1,))
        assert access_hash(("1",)) != access_hash((1,))

    def test_numeric_type_of_binding_does_not_change_answers(self,
                                                             prepared):
        sharded = ShardedIndex(prepared, n_shards=4)
        for pair in [(1, 2), (3, 4)]:
            as_int = sharded.probe(pair)
            as_float = sharded.probe(tuple(float(v) for v in pair))
            assert frozenset(as_float.tuples) == frozenset(as_int.tuples)
            assert frozenset(as_int.tuples) == \
                frozenset(prepared.answer(pair).tuples)


class TestShardedIndex:
    def test_requires_preprocessed_index(self, prepared):
        raw = CQAPIndex(prepared.cqap, prepared.db, 100)
        with pytest.raises(ValueError, match="preprocessed"):
            ShardedIndex(raw)

    def test_shard_count_validated(self, prepared):
        with pytest.raises(ValueError, match="positive"):
            ShardedIndex(prepared, n_shards=0)

    def test_routing_total_and_stable(self, prepared, pairs):
        sharded = ShardedIndex(prepared, n_shards=5)
        for pair in pairs:
            key = sharded.normalize(pair)
            shard = sharded.shard_of(key)
            assert 0 <= shard < 5
            assert shard == sharded.shard_of(key)

    def test_partitions_disjointly_cover_targets(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=4)
        assert sharded._target_parts, "expected partitionable S-targets"
        for target, parts in sharded._target_parts.items():
            original = prepared.s_targets[target]
            assert sum(len(p) for p in parts) == len(original)
            seen = set()
            for part in parts:
                assert not (part.tuples & seen)
                seen |= part.tuples
            assert seen == original.tuples

    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_probe_matches_unsharded(self, prepared, pairs, n_shards):
        sharded = ShardedIndex(prepared, n_shards=n_shards)
        for pair in pairs:
            expected = prepared.answer(pair)
            got = sharded.probe(pair)
            assert frozenset(got.tuples) == frozenset(expected.tuples)

    def test_single_shard_partitions_nothing(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=1)
        assert sharded.partitioned_tuples == 0
        assert sharded.replicated_tuples == prepared.stored_tuples

    def test_budget_split_accounting(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=4)
        split = sharded.budget_split()
        assert split["shards"] == 4
        assert split["per_shard_budget"] * 4 == \
            pytest.approx(split["global_budget"])
        assert sum(split["per_shard_partitioned"]) == \
            split["partitioned_tuples"]
        assert split["partitioned_tuples"] + split["replicated_tuples"] \
            == prepared.stored_tuples

    def test_selection_snapshot_records_budget_split(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=3)
        stats = validate_stats(sharded.stats())
        selection = stats["engine"]["selection"]
        assert selection["budget_split"]["shards"] == 3
        assert selection["budget_split"] == stats["engine"]["budget_split"]
        # the unsharded snapshot stays split-free
        assert "budget_split" not in prepared.selection.snapshot()
        json.dumps(stats)  # the whole snapshot is JSON-serializable

    def test_per_shard_lifecycle_counters(self, prepared, pairs):
        sharded = ShardedIndex(prepared, n_shards=4)
        for pair in pairs:
            sharded.probe(pair)
        per_shard = [s.probes_served for s in sharded.shards]
        assert sum(per_shard) == len(pairs)
        # online phases happen on the probed shard only
        for shard in sharded.shards:
            assert shard.online_phases == shard.probes_served
            assert shard.executor.online_runs == shard.online_phases

    def test_prepare_sharded_shim_is_gone(self):
        import repro.serving as serving
        assert not hasattr(serving, "prepare_sharded")


class TestSelectionKeyExposure:
    def test_s_view_keys_declare_access_prefix(self, prepared):
        access = tuple(prepared.cqap.access)
        entries = prepared.selection.s_view_keys(access)
        assert entries, "expected at least one S-routed rule"
        for entry in entries:
            assert entry["s_target"] == tuple(sorted(entry["s_target"]))
            expected = set(access) <= set(entry["s_target"])
            assert entry["partitionable"] == expected
            if entry["partitionable"]:
                assert entry["access_prefix"] == access
            else:
                assert entry["access_prefix"] == ()


class TestBatchScheduler:
    def test_input_order_and_duplicate_sharing(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=4)
        batch = [(1, 2), (3, 4), (1, 2), (5, 6), (3, 4)]
        with BatchScheduler(sharded) as sched:
            out = sched.run(batch)
        assert len(out) == len(batch)
        assert out[0] is out[2]          # duplicates share one relation
        assert out[1] is out[4]
        for pair, rel in zip(batch, out):
            assert frozenset(rel.tuples) == \
                frozenset(prepared.answer(pair).tuples)

    def test_matches_probe_many(self, prepared, pairs):
        pq = prepare(prepared.cqap, prepared.db,
                     int(prepared.db.size ** 1.2))
        sharded = ShardedIndex(prepared, n_shards=4)
        with BatchScheduler(sharded) as sched:
            out = dict(zip([sharded.normalize(p) for p in pairs],
                           sched.run(pairs)))
        reference = pq.probe_many(pairs)
        assert set(out) == set(reference)
        for key, rel in reference.items():
            assert frozenset(out[key].tuples) == frozenset(rel.tuples)

    def test_dedupe_and_cache_accounting(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=4)
        batch = [(1, 2), (1, 2), (3, 4), (1, 2)]
        with BatchScheduler(sharded) as sched:
            sched.run(batch)
            assert sched.probes_in == 4
            assert sched.unique_probes == 2
            assert sched.cache_served == 0
            phases = sched.shard_phases
            # an identical batch is served wholly from the cache
            sched.run(batch)
            assert sched.cache_served == 2
            assert sched.shard_phases == phases
            assert sched.dedupe_ratio == pytest.approx(8 / 4)
            stats = validate_stats(sched.stats())
            assert stats["scheduler"]["cache"]["hits"] == 2

    def test_counters_forwarded(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=2)
        ctr = Counters()
        with BatchScheduler(sharded, cache_size=0) as sched:
            sched.run([(1, 2), (3, 4)], counters=ctr)
        assert ctr.online_work > 0

    def test_empty_batch(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=4)
        with BatchScheduler(sharded) as sched:
            assert sched.run([]) == []

    def test_close_is_idempotent(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=4)
        sched = BatchScheduler(sharded)
        sched.run([(1, 2), (3, 4), (5, 6), (7, 8)])
        sched.close()
        sched.close()


class TestServeFacade:
    def test_serves_stream_in_order(self, prepared, pairs):
        with serve(prepared, backend="thread", shards=4,
                   batch_size=4) as server:
            served = list(server.serve(iter(pairs)))
            normalize = server.backend.normalize
        assert [key for key, _ in served] == \
            [normalize(p) for p in pairs]
        for key, rel in served:
            assert frozenset(rel.tuples) == \
                frozenset(prepared.answer(key).tuples)
        assert server.probes_served == len(pairs)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_drop_in_interchangeable(self, prepared, pairs,
                                              backend):
        # the acceptance contract: the ONLY difference between a thread
        # and a process deployment is the backend= argument
        with serve(prepared, backend=backend, shards=3,
                   batch_size=8) as server:
            served = server.serve_all(iter(pairs))
        for key, rel in served.items():
            assert frozenset(rel.tuples) == \
                frozenset(prepared.answer(key).tuples)

    def test_rejects_unknown_backend(self, prepared):
        with pytest.raises(ValueError, match="backend"):
            serve(prepared, backend="greenlet")

    def test_rejects_unprepared_input(self, prepared):
        with pytest.raises(TypeError, match="prepare"):
            serve("not a prepared query")

    def test_accepts_prepared_query_handle(self, pairs):
        cqap = k_path_cqap(2)
        db = path_database(2, 120, 40, seed=3)
        pq = prepare(cqap, db, space_budget=db.size)
        with serve(pq, backend="thread", shards=2) as server:
            (_, rel), = list(server.serve([(1, 2)]))
        assert frozenset(rel.tuples) == \
            frozenset(pq.probe((1, 2)).tuples)

    def test_accepts_pre_batched_streams(self, prepared):
        batches = [[(1, 2), (3, 4)], [(5, 6)]]
        with serve(prepared, backend="thread", shards=2,
                   batch_size=2) as server:
            served = list(server.serve(batches))
        assert [key for key, _ in served] == [(1, 2), (3, 4), (5, 6)]

    def test_backpressure_bounds_lookahead(self, prepared, pairs):
        produced = []

        def stream():
            for pair in pairs:
                produced.append(pair)
                yield pair

        window = 2 * 2  # batch_size * max_pending_batches
        with serve(prepared, backend="thread", shards=2, batch_size=2,
                   max_pending_batches=2) as server:
            consumed = 0
            for _ in server.serve(stream()):
                consumed += 1
                # the producer never ran more than the window ahead of
                # what the consumer has taken out
                assert len(produced) - consumed <= window
        assert consumed == len(pairs)
        assert server.peak_pending <= window

    def test_backpressure_holds_for_burst_batches(self, prepared, pairs):
        # one huge pre-formed batch must not blow past the pending window:
        # pre-batched items are unpacked lazily, one binding per pull
        window = 2 * 2
        with serve(prepared, backend="thread", shards=2, batch_size=2,
                   max_pending_batches=2) as server:
            served = list(server.serve([list(pairs)]))
        assert len(served) == len(pairs)
        assert server.peak_pending <= window

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_stats_envelope_shape(self, prepared, pairs, backend):
        with serve(prepared, backend=backend, shards=3,
                   batch_size=8) as server:
            list(server.serve(iter(pairs)))
            stats = validate_stats(server.stats())
        json.dumps(stats)
        assert stats["backend"] == backend
        assert stats["server"]["batches_served"] == (len(pairs) + 7) // 8
        assert len(stats["shards"]) == 3
        assert stats["scheduler"]["probes_in"] == len(pairs)
        assert stats["engine"]["budget_split"]["shards"] == 3

    def test_envelope_shape_is_uniform_across_layers(self, prepared,
                                                     pairs):
        # satellite contract: one versioned schema for every stats()
        pq = prepare(prepared.cqap, prepared.db,
                     int(prepared.db.size ** 1.2))
        sharded = ShardedIndex(prepared, n_shards=2)
        with BatchScheduler(sharded) as sched:
            sched.run(pairs[:4])
            layers = [pq.stats(), sharded.stats(), sched.stats()]
        with serve(prepared, backend="thread", shards=2) as server:
            list(server.serve(pairs[:4]))
            layers.append(server.stats())
        versions = set()
        for payload in layers:
            validate_stats(payload)
            versions.add(payload["schema_version"])
            json.dumps(payload)
        assert len(versions) == 1

    def test_parameter_validation(self, prepared):
        with pytest.raises(ValueError):
            serve(prepared, backend="thread", batch_size=0)
        with pytest.raises(ValueError):
            serve(prepared, backend="thread", max_pending_batches=0)

    def test_probe_server_shim_is_gone(self):
        import repro.serving as serving
        assert not hasattr(serving, "ProbeServer")

    def test_internal_layers_do_not_warn(self, prepared):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sharded = ShardedIndex(prepared, n_shards=2)
            with BatchScheduler(sharded) as sched:
                sched.run([(1, 2)])
            with serve(prepared, backend="thread", shards=2) as server:
                list(server.serve([(1, 2)]))


class TestConcurrentEngineCounters:
    def test_prepared_query_counters_consistent_under_threads(self):
        cqap = k_path_cqap(2)
        db = path_database(2, 150, 40, seed=9)
        pq = prepare(cqap, db, space_budget=int(db.size ** 1.2))
        binding = (1, 2)
        pq.probe(binding)            # prime the cache
        n_threads, per_thread = 4, 50
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker():
            barrier.wait()
            try:
                for _ in range(per_thread):
                    pq.probe(binding)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # no lost increments: the lock makes the counter exact
        assert pq.probes_served == 1 + n_threads * per_thread
        cache = pq.cache.snapshot()
        assert cache["hits"] + cache["misses"] == pq.probes_served


class TestSchedulerIdleStats:
    def test_idle_dedupe_ratio_is_neutral_one(self, prepared):
        sharded = ShardedIndex(prepared, n_shards=2)
        with BatchScheduler(sharded) as scheduler:
            # no batch has run: ratio must read 1.0 (no redundancy seen),
            # never the impossible 0.0
            assert scheduler.dedupe_ratio == 1.0
            section = scheduler.scheduler_section()
            assert section["dedupe_ratio"] == 1.0
            assert section["probes_in"] == 0


class TestColumnarServing:
    def test_thread_backend_serves_columnar_identically(self, prepared,
                                                        pairs):
        cqap, db = prepared.cqap, prepared.db
        columnar = CQAPIndex(cqap, db, prepared.space_budget,
                             relation_backend="columnar").preprocess()
        with serve(prepared, backend="thread", shards=3) as ref, \
                serve(columnar, backend="thread", shards=3) as col:
            want = {k: rel.tuples for k, rel in ref.serve(pairs)}
            got = {k: rel.tuples for k, rel in col.serve(pairs)}
        assert got == want

    def test_shard_payloads_carry_backend(self, prepared):
        from repro.serving.sharding import shard_payloads

        cqap, db = prepared.cqap, prepared.db
        columnar = CQAPIndex(cqap, db, prepared.space_budget,
                             relation_backend="columnar").preprocess()
        for payload in shard_payloads(columnar, n_shards=2):
            assert payload.relation_backend == "columnar"
        for payload in shard_payloads(prepared, n_shards=2):
            assert payload.relation_backend == "set"
