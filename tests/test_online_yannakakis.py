"""Tests for Online Yannakakis (Theorem 3.7 / Appendix A / Figure 5)."""

import random

import pytest

from repro.core.joins import project_join
from repro.core.online_yannakakis import OnlineYannakakis
from repro.data import Database, Relation
from repro.decomposition import PMTD, TreeDecomposition
from repro.query import Atom, CQAP, ConjunctiveQuery
from repro.query.catalog import k_path_cqap
from repro.util.counters import Counters


def three_reach_setup(seed=0, domain=10, edges=35):
    rng = random.Random(seed)
    cqap = k_path_cqap(3)
    db = Database()
    for name, schema in (("R1", ("x1", "x2")), ("R2", ("x2", "x3")),
                         ("R3", ("x3", "x4"))):
        rows = {(rng.randrange(domain), rng.randrange(domain))
                for _ in range(edges)}
        db.add(Relation(name, schema, rows))
    rels = [Relation(a.relation, a.variables, db[a.relation].tuples)
            for a in cqap.atoms]
    return cqap, db, rels


class TestValidation:
    def test_missing_s_view_rejected(self):
        cqap, db, rels = three_reach_setup()
        td = TreeDecomposition(
            {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
        )
        pmtd = PMTD(td, 0, (1,), cqap.head, cqap.access)
        with pytest.raises(ValueError):
            OnlineYannakakis(pmtd, {})

    def test_wrong_schema_rejected(self):
        cqap, db, rels = three_reach_setup()
        td = TreeDecomposition(
            {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
        )
        pmtd = PMTD(td, 0, (1,), cqap.head, cqap.access)
        wrong = Relation("S", ("x1", "x2"), [])
        with pytest.raises(ValueError):
            OnlineYannakakis(pmtd, {1: wrong})

    def test_missing_t_view_rejected(self):
        cqap, db, rels = three_reach_setup()
        td = TreeDecomposition(
            {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
        )
        pmtd = PMTD(td, 0, (1,), cqap.head, cqap.access)
        s13 = project_join(rels, ("x1", "x3"))
        oy = OnlineYannakakis(pmtd, {1: s13})
        req = Relation("Q", ("x1", "x4"), [(0, 0)])
        with pytest.raises(ValueError):
            oy.answer(req, {})


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_pmtd_matches_from_scratch(self, seed):
        cqap, db, rels = three_reach_setup(seed)
        td = TreeDecomposition(
            {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
        )
        pmtd = PMTD(td, 0, (1,), cqap.head, cqap.access)
        s13 = project_join(rels, ("x1", "x3"))
        oy = OnlineYannakakis(pmtd, {1: s13})
        rng = random.Random(seed)
        for _ in range(40):
            u, v = rng.randrange(10), rng.randrange(10)
            req = Relation("Q", ("x1", "x4"), [(u, v)])
            t134 = project_join(rels + [req], ("x1", "x3", "x4"))
            psi = oy.answer(req, {0: t134})
            expected = cqap.answer_from_scratch(db, req)
            assert psi.project(("x1", "x4")).tuples == expected.tuples

    def test_batch_request(self):
        cqap, db, rels = three_reach_setup(3)
        full = cqap.evaluate(db)
        td = TreeDecomposition(
            {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
        )
        pmtd = PMTD(td, 0, (1,), cqap.head, cqap.access)
        s13 = project_join(rels, ("x1", "x3"))
        oy = OnlineYannakakis(pmtd, {1: s13})
        req = Relation("Q", ("x1", "x4"),
                       list(full.tuples)[:5] + [(99, 99)])
        t134 = project_join(rels + [req], ("x1", "x3", "x4"))
        psi = oy.answer(req, {0: t134})
        assert psi.project(("x1", "x4")).tuples == set(
            list(full.tuples)[:5]
        )

    def test_s_views_never_scanned_online(self):
        """Theorem 3.7's hallmark: time independent of S-view size."""
        cqap, db, rels = three_reach_setup(7, domain=12, edges=60)
        td = TreeDecomposition(
            {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
        )
        pmtd = PMTD(td, 0, (1,), cqap.head, cqap.access)
        s13 = project_join(rels, ("x1", "x3"))
        # inflate the S-view with junk that the semijoin will ignore
        inflated = Relation("S13", s13.schema,
                            set(s13.tuples)
                            | {(1000 + i, 2000 + i) for i in range(500)})
        oy = OnlineYannakakis(pmtd, {1: inflated})
        req = Relation("Q", ("x1", "x4"), [(0, 0)])
        t134 = project_join(rels + [req], ("x1", "x3", "x4"))
        ctr = Counters()
        oy.answer(req, {0: t134}, counters=ctr)
        # online scans touch T-views and the request only; the 500 junk
        # tuples must not be scanned
        assert ctr.scans < 200

    def test_stored_tuples_accounting(self):
        cqap, db, rels = three_reach_setup(1)
        td = TreeDecomposition({0: {"x1", "x2", "x3", "x4"}}, [])
        pmtd = PMTD(td, 0, (0,), cqap.head, cqap.access)
        s14 = project_join(rels, ("x1", "x4"))
        oy = OnlineYannakakis(pmtd, {0: s14})
        assert oy.stored_tuples == len(s14)


class TestExampleA1:
    """The Figure 5 walkthrough: 9 variables, mixed S/T tree."""

    def build(self, seed=0, domain=6, rows=30):
        rng = random.Random(seed)

        def rand_rel(name, schema):
            data = {tuple(rng.randrange(domain) for _ in schema)
                    for _ in range(rows)}
            return Relation(name, schema, data)

        # view relations named as in Example A.1
        relations = {
            "T12": rand_rel("T12", ("x1", "x2")),
            "T13": rand_rel("T13", ("x1", "x3")),
            "T345": rand_rel("T345", ("x3", "x4", "x5")),
            "S45": rand_rel("S45", ("x4", "x5", "x6")),
            "S37": rand_rel("S37", ("x3", "x7")),
            "S78": rand_rel("S78", ("x7", "x8", "x9")),
        }
        td = TreeDecomposition(
            {
                0: {"x1", "x2"},
                1: {"x1", "x3"},
                2: {"x3", "x4", "x5"},
                3: {"x3", "x7"},
                4: {"x4", "x5", "x6"},
                5: {"x7", "x8", "x9"},
            },
            [(0, 1), (1, 2), (1, 3), (2, 4), (3, 5)],
        )
        head = ("x1", "x2", "x3", "x4", "x7", "x8")
        pmtd = PMTD(td, 0, (3, 4, 5), head, ("x1", "x2"))
        return relations, td, pmtd, head

    def test_views_match_paper_labels(self):
        # ν(4) = {x4,x5,x6} ∩ (H ∪ χ(2)) = {x4,x5}; ν(5) = χ(5) ∩ H = {x7,x8}
        _, _, pmtd, _ = self.build()
        assert sorted(pmtd.labels) == sorted(
            ["T12", "T13", "T345", "S45", "S37", "S78"]
        )

    def test_matches_brute_force(self):
        relations, td, pmtd, head = self.build(seed=2)
        # S-views are the ν-projections of the generator relations — exactly
        # the atoms of the paper's ψ: S45(x4,x5), S37(x3,x7), S78(x7,x8)
        s_views = {}
        for node, view in pmtd.s_views.items():
            base = {4: "S45", 3: "S37", 5: "S78"}[node]
            rel = relations[base]
            s_views[node] = rel.project(tuple(sorted(view.variables)),
                                        name=view.label)
        oy = OnlineYannakakis(pmtd, s_views)

        rng = random.Random(9)
        for trial in range(25):
            u, v = rng.randrange(6), rng.randrange(6)
            req = Relation("Q12", ("x1", "x2"), [(u, v)])
            t_views = {
                node: relations[{0: "T12", 1: "T13", 2: "T345"}[node]].copy(
                    name=view.label
                )
                for node, view in pmtd.t_views.items()
            }
            psi = oy.answer(req, t_views)
            # brute force over ψ's own atoms (projected S-views included)
            ext = Database()
            ext.add(Relation("__QA__", ("x1", "x2"), req.tuples))
            atoms = [Atom("__QA__", ("x1", "x2"))]
            for node, rel in {**t_views, **s_views}.items():
                name = f"view{node}"
                ext.add(Relation(name, rel.schema, rel.tuples))
                atoms.append(Atom(name, rel.schema))
            expected = ConjunctiveQuery(head, atoms).evaluate(ext)
            assert psi.project(head).tuples == expected.tuples
