"""Unit tests for the columnar relation backend and compiled probe kernels.

The contract under test is the drop-in promise of ``backend="columnar"``:
every operator produces bit-identical answers to the set backend, charges
the same counter *totals*, survives pickling with its caches dropped, and
preserves its type through every derivation path (operators, partition,
``_wrap``).  ``CompiledProbePlan`` is held to the same standard against
the interpreted :func:`~repro.core.joins.project_join`.
"""

import pickle
import random

import pytest

from repro.core.joins import project_join
from repro.core.kernels import CompiledProbePlan
from repro.data.columnar import (
    HAVE_NUMPY,
    RELATION_BACKENDS,
    ColumnarRelation,
    relation_class,
    to_backend,
)
from repro.data.relation import Relation, SchemaError
from repro.util.counters import Counters


def crel(name, schema, rows):
    return ColumnarRelation(name, schema, rows)


def random_rows(rng, arity, n, domain):
    return {tuple(rng.randrange(domain) for _ in range(arity))
            for _ in range(n)}


class TestBackendRegistry:
    def test_names_resolve(self):
        assert relation_class("set") is Relation
        assert relation_class("columnar") is ColumnarRelation
        assert set(RELATION_BACKENDS) == {"set", "columnar"}

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="columnar"):
            relation_class("arrow")

    def test_to_backend_round_trip(self):
        r = Relation("R", ("a", "b"), [(1, 2)])
        c = to_backend(r, "columnar")
        assert type(c) is ColumnarRelation
        assert c.tuples is r.tuples  # zero-copy adoption
        back = to_backend(c, "set")
        assert type(back) is Relation
        assert back == r

    def test_to_backend_is_identity_on_matching_type(self):
        c = crel("R", ("a",), [(1,)])
        assert to_backend(c, "columnar") is c


class TestOperatorEquivalence:
    """Randomized: every operator matches the set backend bit-for-bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_project_semijoin_join_match_set_backend(self, seed):
        rng = random.Random(seed)
        rows_r = random_rows(rng, 3, 200, 12)
        rows_s = random_rows(rng, 2, 150, 12)
        r_set = Relation("R", ("a", "b", "c"), rows_r)
        s_set = Relation("S", ("b", "d"), rows_s)
        r_col = crel("R", ("a", "b", "c"), rows_r)
        s_col = crel("S", ("b", "d"), rows_s)

        assert r_col.project(("c", "a")).tuples == \
            r_set.project(("c", "a")).tuples
        assert r_col.semijoin(s_col).tuples == r_set.semijoin(s_set).tuples
        assert r_col.join(s_col).tuples == r_set.join(s_set).tuples
        assert r_col.index_on(("b",)).keys() == r_set.index_on(("b",)).keys()
        assert r_col.select_equals({"a": 3}).tuples == \
            r_set.select_equals({"a": 3}).tuples

    def test_counter_totals_match_set_backend(self):
        rng = random.Random(7)
        rows_r = random_rows(rng, 2, 120, 10)
        rows_s = random_rows(rng, 2, 90, 10)
        totals = {}
        for cls in (Relation, ColumnarRelation):
            ctr = Counters()
            r = cls("R", ("a", "b"), rows_r)
            s = cls("S", ("b", "c"), rows_s)
            r.project(("a",), counters=ctr)
            r.semijoin(s, counters=ctr)
            r.join(s, counters=ctr)
            totals[cls] = (ctr.scans, ctr.probes, ctr.joins_emitted)
        assert totals[Relation] == totals[ColumnarRelation]

    def test_edge_cases_match_base(self):
        empty = crel("E", ("a", "b"), [])
        assert empty.project(("a",)).tuples == set()
        assert empty.project(()).tuples == set()
        assert empty.index_on(()) == {}
        one = crel("O", ("a",), [(1,)])
        assert one.project(()).tuples == {()}
        assert list(one.index_on(())) == [()]
        # disjoint-schema semijoin degrades to emptiness gating
        other_empty = crel("X", ("z",), [])
        assert one.semijoin(other_empty).tuples == set()
        other_full = crel("Y", ("z",), [(9,)])
        assert one.semijoin(other_full).tuples == {(1,)}

    def test_unknown_vars_raise_like_base(self):
        c = crel("R", ("a",), [(1,)])
        with pytest.raises(SchemaError):
            c.project(("z",))
        with pytest.raises(SchemaError):
            c.index_on(("z",))
        with pytest.raises(SchemaError):
            c.select_equals({"z": 1})

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy-less container")
    def test_vectorized_semijoin_matches_hash_path(self):
        # above the vectorization threshold with all-int key columns the
        # np.isin mask path runs; it must agree with the base semantics
        rng = random.Random(11)
        rows_r = {(rng.randrange(500), rng.randrange(50))
                  for _ in range(600)}
        rows_s = {(rng.randrange(500), rng.randrange(50))
                  for _ in range(400)}
        r_col = crel("R", ("a", "b"), rows_r)
        s_col = crel("S", ("a", "c"), rows_s)
        r_set = Relation("R", ("a", "b"), rows_r)
        s_set = Relation("S", ("a", "c"), rows_s)
        assert r_col.semijoin(s_col).tuples == r_set.semijoin(s_set).tuples

    def test_non_int_columns_fall_back_not_convert(self):
        # 1.5 must NOT match 1: float columns disqualify vectorization
        # rather than being coerced to int64
        rows_r = {(float(i) + 0.5, i) for i in range(200)}
        rows_s = {(float(i), i) for i in range(200)}
        r_col = crel("R", ("a", "b"), rows_r)
        s_col = crel("S", ("a", "c"), rows_s)
        assert r_col.semijoin(s_col).tuples == set()
        strs = crel("T", ("a",), {(f"k{i}",) for i in range(200)})
        assert strs.semijoin(crel("U", ("a",), {("k1",)})).tuples == {("k1",)}


class TestTypePreservation:
    def test_operators_return_columnar(self):
        r = crel("R", ("a", "b"), [(1, 2), (3, 4)])
        s = crel("S", ("b", "c"), [(2, 5)])
        for out in (r.project(("a",)), r.semijoin(s), r.join(s),
                    r.select_equals({"a": 1}), r.copy(),
                    r.union(crel("R2", ("a", "b"), [(9, 9)]))):
            assert type(out) is ColumnarRelation

    def test_partition_preserves_type(self):
        r = crel("R", ("a", "b"), [(i, i + 1) for i in range(10)])
        shards = r.partition_by_hash(("a",), 3)
        assert all(type(s) is ColumnarRelation for s in shards)
        reunion = set().union(*(s.tuples for s in shards))
        assert reunion == r.tuples


class TestCacheDiscipline:
    def test_mutation_resets_column_caches(self):
        r = crel("R", ("a", "b"), [(1, 2)])
        r.index_on(("a",))          # materialize rows/columns/indexes
        assert r._rows is not None
        r.add((3, 4))
        assert r._rows is None
        assert r._columns is None
        assert r._int_cols == {}
        assert r.index_on(("a",)).keys() == {(1,), (3,)}

    def test_pickle_round_trip_drops_caches(self):
        r = crel("R", ("a", "b"), [(1, 2), (3, 4)])
        r.index_on(("a",))
        r.project(("a",))
        clone = pickle.loads(pickle.dumps(r))
        assert type(clone) is ColumnarRelation
        assert clone == r
        assert clone._rows is None
        assert clone._columns is None
        assert clone._int_cols == {}
        assert clone._indexes == {}


class TestCompiledProbePlan:
    def _setup(self, seed=3, n=300, domain=25):
        rng = random.Random(seed)
        r = Relation("R", ("x1", "x2"), random_rows(rng, 2, n, domain))
        s = Relation("S", ("x2", "x3"), random_rows(rng, 2, n, domain))
        return r, s

    def test_matches_project_join_and_counters(self):
        r, s = self._setup()
        onto, access = ("x1", "x3"), ("x1",)
        plan = CompiledProbePlan([r, s], onto, access)
        request = Relation("Q_A", access, {(k,) for k in range(8)})
        ctr_plan, ctr_ref = Counters(), Counters()
        got = plan.execute(request, ctr_plan, "out")
        want = project_join([request, r, s], onto, counters=ctr_ref)
        assert got.tuples == want.tuples
        assert got.schema == tuple(want.schema)
        assert (ctr_plan.probes, ctr_plan.scans, ctr_plan.joins_emitted) \
            == (ctr_ref.probes, ctr_ref.scans, ctr_ref.joins_emitted)

    def test_empty_access_ignores_request(self):
        r, s = self._setup(seed=5, n=60)
        plan = CompiledProbePlan([r, s], ("x1", "x3"), ())
        got = plan.execute(None, Counters(), "out")
        want = project_join([r, s], ("x1", "x3"))
        assert got.tuples == want.tuples

    def test_static_indexes_pinned_at_compile_time(self):
        # the paper's online bound assumes S-view indexes are built during
        # preprocessing: every pinnable participant must come pre-warmed
        r, s = self._setup(seed=9, n=80)
        plan = CompiledProbePlan([r, s], ("x1", "x3"), ("x1",))
        pinnable = [part for parts in plan.levels for part in parts
                    if part[5]]
        assert pinnable
        assert all(part[6] is not None for part in pinnable)
        # the request participant (slot 0) is never pinned
        for parts in plan.levels:
            for part in parts:
                if part[0] == 0:
                    assert not part[5] and part[6] is None

    def test_rel_cls_controls_output_backend(self):
        r, s = self._setup(seed=4, n=50)
        plan = CompiledProbePlan([r, s], ("x1", "x3"), ("x1",),
                                 rel_cls=ColumnarRelation)
        out = plan.execute(Relation("Q_A", ("x1",), {(1,)}),
                           Counters(), "out")
        assert type(out) is ColumnarRelation

    def test_pickle_recompiles_identically(self):
        r, s = self._setup(seed=6, n=120)
        plan = CompiledProbePlan([r, s], ("x1", "x3"), ("x1",))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.order == plan.order
        assert clone.onto == plan.onto
        request = Relation("Q_A", ("x1",), {(2,), (3,)})
        assert clone.execute(request, Counters(), "o").tuples == \
            plan.execute(request, Counters(), "o").tuples
