"""Tests for piecewise-linear curves, envelopes, and tradeoff formulas."""

from fractions import Fraction as F

import pytest

from repro.tradeoff.curves import (
    PiecewiseCurve,
    Segment,
    TradeoffFormula,
    envelope_max,
    envelope_min,
    fit_segment_formulas,
)


def vee(x):
    """A V-shaped test curve with a kink at 1."""
    return abs(x - 1.0)


class TestPiecewiseCurve:
    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            PiecewiseCurve([1.0], [2.0])

    def test_sample_and_value(self):
        curve = PiecewiseCurve.sample(lambda x: 2 * x, 0.0, 1.0, steps=10)
        assert curve.value_at(0.55) == pytest.approx(1.1)

    def test_value_clamps_outside_range(self):
        curve = PiecewiseCurve([0.0, 1.0], [5.0, 7.0])
        assert curve.value_at(-1.0) == 5.0
        assert curve.value_at(2.0) == 7.0

    def test_single_segment(self):
        curve = PiecewiseCurve.sample(lambda x: 3 - x, 0.0, 2.0, steps=20)
        segments = curve.segments()
        assert len(segments) == 1
        assert segments[0].slope == F(-1)
        assert segments[0].intercept == F(3)

    def test_kink_on_grid(self):
        curve = PiecewiseCurve.sample(vee, 0.0, 2.0, steps=20)
        points = curve.breakpoints()
        assert (F(1), F(0)) in points

    def test_kink_off_grid_recovered_exactly(self):
        # kink at 1/3 while sampling on a 1/20 grid: the straddle interval
        # must be dropped and the breakpoint recovered by intersection
        curve = PiecewiseCurve.sample(lambda x: abs(x - 1 / 3), 0.0, 1.0,
                                      steps=20)
        points = curve.breakpoints()
        assert (F(1, 3), F(0)) in points

    def test_three_segments(self):
        def fn(x):
            return max(0.0, min(2 - x, 6 - 4 * x))

        curve = PiecewiseCurve.sample(fn, 1.0, 2.0, steps=60)
        segments = curve.segments()
        slopes = [seg.slope for seg in segments]
        assert slopes == [F(-1), F(-4), F(0)]
        assert segments[0].x_end == F(4, 3)
        assert segments[1].x_end == F(3, 2)


class TestEnvelopes:
    def test_max(self):
        a = PiecewiseCurve([0.0, 1.0], [0.0, 1.0])
        b = PiecewiseCurve([0.0, 1.0], [1.0, 0.0])
        env = envelope_max([a, b])
        assert env.value_at(0.0) == 1.0
        assert env.value_at(1.0) == 1.0

    def test_min(self):
        a = PiecewiseCurve([0.0, 1.0], [0.0, 1.0])
        b = PiecewiseCurve([0.0, 1.0], [1.0, 0.0])
        env = envelope_min([a, b])
        assert env.value_at(0.0) == 0.0
        assert env.value_at(1.0) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            envelope_max([])

    def test_union_grid(self):
        a = PiecewiseCurve([0.0, 1.0], [0.0, 2.0])
        b = PiecewiseCurve([0.0, 0.5, 1.0], [3.0, 0.0, 3.0])
        env = envelope_max([a, b])
        assert 0.5 in env.xs


class TestTradeoffFormula:
    def test_log_time(self):
        f = TradeoffFormula(F(1), F(2), F(2), F(2))  # S·T² = D²Q²
        assert f.log_time(1.0, log_d=1.0, log_q=0.0) == pytest.approx(0.5)
        assert f.log_time(1.0, log_d=1.0, log_q=0.5) == pytest.approx(1.0)

    def test_zero_t_exponent_raises(self):
        f = TradeoffFormula(F(1), F(0), F(2))
        with pytest.raises(ValueError):
            f.log_time(1.0)

    def test_normalized_identifies_scalings(self):
        a = TradeoffFormula(F(3), F(2), F(6), F(2))
        b = TradeoffFormula(F(3, 2), F(1), F(3), F(1))
        assert a.normalized() == b.normalized()

    def test_repr(self):
        f = TradeoffFormula(F(3, 2), F(1), F(3), F(1))
        assert "S^3/2" in repr(f)
        assert "D^3" in repr(f)

    def test_repr_trivial_rhs(self):
        f = TradeoffFormula(F(1), F(1), F(0), F(0))
        assert repr(f).endswith("1")

    def test_curve_with_floor(self):
        f = TradeoffFormula(F(1), F(1), F(2))  # T = D²/S
        curve = f.curve(1.0, 3.0, floor=0.0, steps=20)
        assert curve.value_at(2.5) == 0.0  # clamped
        assert curve.value_at(1.5) == pytest.approx(0.5)


class TestFitSegments:
    def test_recovers_single_formula(self):
        f = TradeoffFormula(F(1), F(2), F(2))
        curve = f.curve(1.0, 1.8, steps=30)
        fitted = fit_segment_formulas(curve)
        assert len(fitted) == 1
        assert fitted[0].normalized() == f.normalized()

    def test_recovers_piecewise(self):
        def fn(x):
            return min(2 - x, (6 - 4 * x))

        curve = PiecewiseCurve.sample(fn, 1.0, 1.45, steps=45)
        fitted = fit_segment_formulas(curve)
        norms = {f.normalized() for f in fitted}
        assert TradeoffFormula(F(1), F(1), F(2)).normalized() in norms
        assert TradeoffFormula(F(4), F(1), F(6)).normalized() in norms

    def test_q_probe(self):
        f = TradeoffFormula(F(1), F(2), F(2), F(2))

        def q_probe(x_mid, dq):
            return f.log_time(x_mid, 1.0, dq) - f.log_time(x_mid, 1.0, 0.0)

        curve = f.curve(1.0, 1.8, steps=30)
        fitted = fit_segment_formulas(curve, q_slope_probe=q_probe)
        assert fitted[0].normalized() == f.normalized()
