"""Tests for the project-invariant linter (repro.analysis.lint)."""

import json
import threading
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_paths, lint_source, render_json, render_text
from repro.analysis.lint import all_rules
from repro.serving.batching import BatchScheduler
from repro.util.counters import Counters

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
RULE_CODES = ("REP001", "REP002", "REP003", "REP004", "REP005")


def _codes(findings):
    return {f.rule for f in findings}


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert [r.code for r in all_rules()] == list(RULE_CODES)

    def test_rules_carry_descriptions(self):
        for rule in all_rules():
            assert rule.name
            assert rule.description


class TestFixtures:
    """Each rule flags its bad fixture and passes the clean twin."""

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_bad_fixture_is_flagged(self, code):
        findings = lint_paths([FIXTURES / f"{code.lower()}_bad.py"])
        assert code in _codes(findings), (
            f"{code} did not flag its bad fixture: {findings}"
        )

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_bad_fixture_triggers_only_its_rule(self, code):
        findings = lint_paths([FIXTURES / f"{code.lower()}_bad.py"])
        assert _codes(findings) == {code}

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_clean_twin_passes(self, code):
        findings = lint_paths([FIXTURES / f"{code.lower()}_clean.py"])
        assert findings == []

    def test_rep004_flags_both_shapes(self):
        # the envelope-call kwarg and the dict-literal key both drift
        findings = lint_paths([FIXTURES / "rep004_bad.py"])
        messages = " ".join(f.message for f in findings)
        assert "latency_p99" in messages
        assert "queue_depth" in messages


class TestSuppression:
    def test_noqa_fixture_is_clean(self):
        assert lint_paths([FIXTURES / "noqa_suppressed.py"]) == []

    def test_targeted_noqa_suppresses_only_listed_rule(self):
        source = "def f(x):\n    assert x  # repro: noqa[REP001]\n"
        findings = lint_source(source)
        assert _codes(findings) == {"REP005"}

    def test_blanket_noqa_suppresses_everything(self):
        source = "def f(x):\n    assert x  # repro: noqa\n"
        assert lint_source(source) == []


class TestLiveTree:
    def test_src_tree_is_lint_clean(self):
        """The shipped package must pass its own linter (all rules)."""
        src = Path(repro.__file__).resolve().parent
        findings = lint_paths([src])
        assert findings == [], render_text(findings)


class TestOutput:
    def test_render_text_names_location_and_rule(self):
        findings = lint_paths([FIXTURES / "rep005_bad.py"])
        text = render_text(findings)
        assert "rep005_bad.py" in text
        assert "REP005" in text
        assert "finding(s)" in text

    def test_render_json_round_trips(self):
        findings = lint_paths([FIXTURES / "rep005_bad.py"])
        payload = json.loads(render_json(findings))
        assert payload["count"] == len(findings) > 0
        assert payload["findings"][0]["rule"] == "REP005"
        assert payload["findings"][0]["line"] > 0

    def test_render_text_on_clean_run(self):
        assert render_text([]) == "no findings"


class TestCli:
    def test_cli_exit_codes(self):
        from repro.analysis.__main__ import main

        assert main([str(FIXTURES / "rep005_bad.py")]) == 1
        assert main([str(FIXTURES / "rep005_clean.py")]) == 0

    def test_cli_select_unknown_rule(self):
        from repro.analysis.__main__ import main

        assert main(["--select", "REP999",
                     str(FIXTURES / "rep005_clean.py")]) == 2

    def test_cli_select_restricts_rules(self):
        from repro.analysis.__main__ import main

        # REP001 alone does not flag a bare assert
        assert main(["--select", "REP001",
                     str(FIXTURES / "rep005_bad.py")]) == 0


class _StubBackend:
    """Minimal shard-backend contract for scheduler unit tests."""

    n_shards = 1

    def normalize(self, binding):
        return binding

    def shard_of(self, key):
        return 0

    def answer_group(self, shard_id, group):
        return {key: None for key in group}, Counters()


class _Event:
    changed = True
    affected_keys = None


class TestBatchSchedulerStatsLock:
    """Regression for the REP001 audit: delta-feed counters are locked.

    ``on_index_delta`` fires on whatever thread applies the index delta,
    concurrently with the serving loop; before the ``_stats_lock`` fix
    its bare ``+=`` was a read-modify-write race that lost updates.
    """

    def test_concurrent_deltas_count_exactly(self):
        scheduler = BatchScheduler(_StubBackend(), cache_size=4)
        threads, per_thread = 8, 400

        def storm():
            event = _Event()
            for _ in range(per_thread):
                scheduler.on_index_delta(event)

        workers = [threading.Thread(target=storm) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert scheduler.updates_seen == threads * per_thread
        scheduler.close()

    def test_unchanged_events_do_not_count(self):
        scheduler = BatchScheduler(_StubBackend(), cache_size=4)

        class _Noop:
            changed = False
            affected_keys = None

        scheduler.on_index_delta(_Noop())
        assert scheduler.updates_seen == 0
        scheduler.close()
