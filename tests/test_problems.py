"""Tests for the problem-specific structures (the paper's applications)."""

import math
import random

import pytest

from repro.data import (
    Database,
    Relation,
    hierarchical_binary_tree_database,
    random_edge_relation,
    set_family,
)
from repro.problems import (
    AdaptedKaraBaseline,
    EdgeTriangleIndex,
    KReachOracle,
    KSetDisjointnessIndex,
    KSetIntersectionIndex,
    SetFamily,
    SquareOracle,
    TrianglePairIndex,
    is_hierarchical,
    canonical_order,
    static_width,
)
from repro.query.catalog import (
    hierarchical_binary_tree_cqap,
    k_path_cqap,
    k_set_disjointness_cqap,
)
from repro.util.counters import Counters


class TestSetDisjointness:
    def family(self, seed=0):
        membership = set_family(40, 60, 500, seed=seed, heavy_sets=3)
        return SetFamily(membership)

    @pytest.mark.parametrize("k", [2, 3])
    def test_boolean_matches_brute_force(self, k):
        fam = self.family(k)
        index = KSetDisjointnessIndex(fam, k, space_budget=400)
        rng = random.Random(k)
        ids = list(fam.sets)
        for _ in range(80):
            combo = [rng.choice(ids) for _ in range(k)]
            assert index.query(combo) == index.brute_force(combo)

    def test_heavy_combo_single_probe(self):
        fam = SetFamily.from_dict({
            "a": set(range(50)), "b": set(range(25, 75)),
            "c": {100}, "d": {101},
        })
        index = KSetDisjointnessIndex(fam, 2, space_budget=100)
        assert set(index.heavy) == {"a", "b"}
        ctr = Counters()
        assert index.query(("a", "b"), counters=ctr)
        assert ctr.probes == 1 and ctr.scans == 0

    def test_light_query_scans_lightest(self):
        fam = SetFamily.from_dict({
            "a": set(range(50)), "c": {1, 2, 60},
        })
        index = KSetDisjointnessIndex(fam, 2, space_budget=4)
        ctr = Counters()
        assert index.query(("a", "c"), counters=ctr)
        assert ctr.scans <= 3  # scans the 3-element set, not the 50

    def test_threshold_formula(self):
        fam = self.family(5)
        n = fam.total_elements
        s = 100.0
        index = KSetDisjointnessIndex(fam, 2, space_budget=s)
        assert index.threshold == pytest.approx(n / math.sqrt(s))

    def test_space_shrinks_with_budget(self):
        fam = self.family(7)
        big = KSetDisjointnessIndex(fam, 2, space_budget=2000)
        small = KSetDisjointnessIndex(fam, 2, space_budget=10)
        assert small.stored_tuples <= big.stored_tuples

    def test_intersection_enumeration(self):
        fam = self.family(9)
        index = KSetIntersectionIndex(fam, 2, space_budget=3000)
        rng = random.Random(1)
        ids = list(fam.sets)
        for _ in range(50):
            a, b = rng.choice(ids), rng.choice(ids)
            expected = fam.members(a) & fam.members(b)
            assert index.intersect((a, b)) == expected
            assert index.query((a, b)) == bool(expected)

    def test_bad_arity(self):
        fam = self.family(2)
        index = KSetDisjointnessIndex(fam, 2, space_budget=50)
        with pytest.raises(ValueError):
            index.query(("a", "b", "c"))


class TestTriangles:
    def edges(self, seed=0):
        rel = random_edge_relation("E", ("a", "b"), 120, 25, seed=seed)
        return set(rel.tuples)

    def test_pair_index_matches_brute_force(self):
        edges = self.edges(1)
        index = TrianglePairIndex(edges)
        expected = {
            (u, w)
            for (u, x2) in edges for (a, w) in edges
            if a == x2 and (w, u) in edges
        }
        assert index.all_pairs() == expected

    def test_linear_space(self):
        edges = self.edges(2)
        index = TrianglePairIndex(edges)
        assert index.is_linear

    def test_edge_triangle_detection(self):
        edges = self.edges(3)
        index = EdgeTriangleIndex(edges)
        for edge in list(edges)[:40]:
            assert index.query(edge) == index.brute_force(edge, edges)

    def test_edge_triangle_probe_cost(self):
        edges = self.edges(4)
        index = EdgeTriangleIndex(edges)
        ctr = Counters()
        index.query(next(iter(edges)), counters=ctr)
        assert ctr.probes == 1 and ctr.scans == 0


class TestReachabilityOracle:
    def edges(self, seed=0, n=160, domain=40):
        rel = random_edge_relation("E", ("a", "b"), n, domain, seed=seed,
                                   skew_hubs=3)
        return set(rel.tuples)

    @pytest.mark.parametrize("strategy", ["framework", "chain", "full",
                                          "bfs"])
    def test_strategies_agree_k2(self, strategy):
        edges = self.edges(5)
        oracle = KReachOracle(edges, 2, space_budget=200, strategy=strategy)
        rng = random.Random(3)
        for _ in range(30):
            u, v = rng.randrange(40), rng.randrange(40)
            assert oracle.query(u, v) == oracle.brute_force(u, v), (
                f"{strategy} differs at {(u, v)}"
            )

    @pytest.mark.parametrize("strategy", ["framework", "chain"])
    def test_strategies_agree_k3(self, strategy):
        edges = self.edges(7, n=120, domain=30)
        oracle = KReachOracle(edges, 3, space_budget=400, strategy=strategy)
        rng = random.Random(4)
        for _ in range(20):
            u, v = rng.randrange(30), rng.randrange(30)
            assert oracle.query(u, v) == oracle.brute_force(u, v)

    def test_batching(self):
        edges = self.edges(8, n=120, domain=30)
        oracle = KReachOracle(edges, 3, space_budget=300)
        rng = random.Random(5)
        pairs = [(rng.randrange(30), rng.randrange(30)) for _ in range(25)]
        got = oracle.answer_batch(pairs)
        expected = {p for p in pairs if oracle.brute_force(*p)}
        assert got == expected

    def test_full_strategy_space(self):
        edges = self.edges(9, n=100, domain=25)
        oracle = KReachOracle(edges, 2, space_budget=0, strategy="full")
        assert oracle.stored_tuples == len(
            k_path_cqap(2).evaluate(oracle.db)
        )

    def test_bfs_strategy_no_space(self):
        edges = self.edges(10)
        oracle = KReachOracle(edges, 2, space_budget=0, strategy="bfs")
        assert oracle.stored_tuples == 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            KReachOracle([(0, 1)], 2, 10, strategy="nope")


class TestSquareOracle:
    def test_matches_brute_force(self):
        rel = random_edge_relation("E", ("a", "b"), 150, 30, seed=2,
                                   skew_hubs=2)
        oracle = SquareOracle(rel.tuples, space_budget=150)
        rng = random.Random(6)
        for _ in range(25):
            u, w = rng.randrange(30), rng.randrange(30)
            assert oracle.query(u, w) == oracle.brute_force(u, w)


class TestHierarchical:
    def test_is_hierarchical(self):
        assert is_hierarchical(hierarchical_binary_tree_cqap())
        assert is_hierarchical(k_path_cqap(2))  # x2 dominates x1 and x3
        # 3-path: atoms(x2) = {R1,R2} and atoms(x3) = {R2,R3} overlap
        # without nesting
        assert not is_hierarchical(k_path_cqap(3))
        assert is_hierarchical(k_set_disjointness_cqap(3))

    def test_canonical_order(self):
        parents = canonical_order(hierarchical_binary_tree_cqap())
        assert parents["x"] is None
        assert parents["y1"] == "x"
        assert parents["y2"] == "x"
        assert parents["z1"] == "y1"
        assert parents["z4"] == "y2"

    def test_static_width_fig6(self):
        assert static_width(hierarchical_binary_tree_cqap()) == 4.0

    @pytest.mark.parametrize("epsilon", [0.0, 0.3, 0.6, 1.0])
    def test_kara_baseline_matches_brute_force(self, epsilon):
        db = hierarchical_binary_tree_database(120, 12, seed=3, heavy_x=2)
        baseline = AdaptedKaraBaseline(db, epsilon)
        cqap = hierarchical_binary_tree_cqap()
        full = cqap.evaluate(db)
        rng = random.Random(int(epsilon * 10))
        hits = list(full.tuples)
        for _ in range(25):
            if hits and rng.random() < 0.6:
                z = rng.choice(hits)
            else:
                z = tuple(rng.randrange(12) for _ in range(4))
            assert baseline.query(z) == baseline.brute_force(db, z), (
                f"eps={epsilon} mismatch at {z}"
            )

    def test_kara_space_grows_with_epsilon(self):
        db = hierarchical_binary_tree_database(150, 10, seed=5, heavy_x=2)
        lo = AdaptedKaraBaseline(db, 0.1)
        hi = AdaptedKaraBaseline(db, 0.9)
        # more epsilon -> fewer heavy x -> more direct materialization
        assert len(hi.heavy_x) <= len(lo.heavy_x)

    def test_framework_route_matches_brute_force(self):
        from repro.problems import HierarchicalIndex

        db = hierarchical_binary_tree_database(80, 8, seed=7, heavy_x=1)
        index = HierarchicalIndex(db, space_budget=db.size * 4)
        cqap = hierarchical_binary_tree_cqap()
        full = cqap.evaluate(db)
        rng = random.Random(11)
        hits = list(full.tuples)
        for _ in range(15):
            if hits and rng.random() < 0.6:
                z = rng.choice(hits)
            else:
                z = tuple(rng.randrange(8) for _ in range(4))
            expected = AdaptedKaraBaseline(db, 0.5).brute_force(db, z)
            assert index.query(z) == expected, f"mismatch at {z}"


class TestAtMostKReach:
    def test_matches_brute_force(self):
        from repro.problems import AtMostKReachOracle

        rel = random_edge_relation("E", ("a", "b"), 140, 35, seed=12,
                                   skew_hubs=2)
        oracle = AtMostKReachOracle(rel.tuples, 3, space_budget=200)
        rng = random.Random(7)
        for _ in range(30):
            u, v = rng.randrange(35), rng.randrange(35)
            assert oracle.query(u, v) == oracle.brute_force(u, v), (u, v)

    def test_direct_edge_is_one_probe(self):
        from repro.problems import AtMostKReachOracle

        oracle = AtMostKReachOracle([(1, 2)], 3, space_budget=10)
        ctr = Counters()
        assert oracle.query(1, 2, counters=ctr)
        assert ctr.probes == 1

    def test_space_is_sum_of_suboracles(self):
        from repro.problems import AtMostKReachOracle

        rel = random_edge_relation("E", ("a", "b"), 100, 25, seed=13)
        oracle = AtMostKReachOracle(rel.tuples, 3, space_budget=500,
                                    strategy="full")
        assert oracle.stored_tuples == sum(
            o.stored_tuples for o in oracle.oracles
        )


class TestEmptyAccessThroughIndex:
    def test_triangle_cqap(self):
        from repro.core import CQAPIndex
        from repro.data import triangle_database
        from repro.query.catalog import triangle_cqap

        cqap = triangle_cqap()
        db = triangle_database(150, 30, seed=3)
        index = CQAPIndex(cqap, db, space_budget=db.size * 2).preprocess()
        got = index.answer(())
        assert got.tuples == cqap.evaluate(db).tuples


class TestFourReach:
    def test_chain_strategy_k4(self):
        rel = random_edge_relation("E", ("a", "b"), 90, 22, seed=14,
                                   skew_hubs=2)
        oracle = KReachOracle(rel.tuples, 4, space_budget=200,
                              strategy="chain")
        rng = random.Random(9)
        for _ in range(12):
            u, v = rng.randrange(22), rng.randrange(22)
            assert oracle.query(u, v) == oracle.brute_force(u, v), (u, v)

    @pytest.mark.slow
    def test_framework_strategy_k4(self):
        # the full §E.8 11-PMTD set: 32 rules, heavier planning
        rel = random_edge_relation("E", ("a", "b"), 60, 15, seed=15)
        oracle = KReachOracle(rel.tuples, 4, space_budget=120,
                              strategy="framework")
        rng = random.Random(10)
        for _ in range(6):
            u, v = rng.randrange(15), rng.randrange(15)
            assert oracle.query(u, v) == oracle.brute_force(u, v), (u, v)
