"""Unit tests for tree decompositions: validity, rooted helpers, free-connex."""

import pytest

from repro.decomposition.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
    path_decomposition,
)
from repro.query.catalog import k_path_cqap
from repro.query.hypergraph import Hypergraph, varset


def three_reach_td():
    """The Figure 1 left decomposition: {x1,x3,x4} - {x1,x2,x3}."""
    return TreeDecomposition(
        {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
    )


class TestStructure:
    def test_single_bag(self):
        td = TreeDecomposition({0: {"a", "b"}}, [])
        assert len(td) == 1
        assert td.all_variables == {"a", "b"}

    def test_empty_raises(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition({}, [])

    def test_wrong_edge_count_raises(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition({0: {"a"}, 1: {"a"}}, [])

    def test_disconnected_raises(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition(
                {0: {"a"}, 1: {"a"}, 2: {"a"}}, [(0, 1), (0, 1)]
            )

    def test_unknown_node_in_edge_raises(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition({0: {"a"}}, [(0, 5)])

    def test_running_intersection_violation(self):
        # variable a appears in bags 0 and 2 but not the middle bag
        with pytest.raises(DecompositionError):
            TreeDecomposition(
                {0: {"a"}, 1: {"b"}, 2: {"a"}}, [(0, 1), (1, 2)]
            )

    def test_path_decomposition_builder(self):
        td = path_decomposition([{"a", "b"}, {"b", "c"}, {"c", "d"}])
        assert len(td) == 3
        assert td.neighbors(1) == {0, 2}


class TestValidity:
    def test_covers(self):
        td = three_reach_td()
        h = Hypergraph(
            {"x1", "x2", "x3", "x4"},
            [{"x1", "x2"}, {"x2", "x3"}, {"x3", "x4"}, {"x1", "x4"}],
        )
        td.validate(h)  # no raise

    def test_missing_edge_coverage(self):
        td = TreeDecomposition({0: {"x1", "x2"}}, [])
        h = Hypergraph({"x1", "x2", "x3"}, [{"x1", "x2"}, {"x2", "x3"}])
        with pytest.raises(DecompositionError):
            td.validate(h)

    def test_non_redundant(self):
        assert three_reach_td().is_non_redundant()
        redundant = TreeDecomposition(
            {0: {"a", "b"}, 1: {"a"}}, [(0, 1)]
        )
        assert not redundant.is_non_redundant()


class TestRooted:
    def test_parent_and_children(self):
        td = path_decomposition([{"a", "b"}, {"b", "c"}, {"c", "d"}])
        parents = td.parent_map(0)
        assert parents == {0: None, 1: 0, 2: 1}
        assert td.children_map(0) == {0: [1], 1: [2], 2: []}

    def test_subtree(self):
        td = path_decomposition([{"a", "b"}, {"b", "c"}, {"c", "d"}])
        assert td.subtree(1, 0) == {1, 2}
        assert td.subtree(1, 2) == {1, 0}

    def test_ancestors(self):
        td = path_decomposition([{"a", "b"}, {"b", "c"}, {"c", "d"}])
        assert td.ancestors(2, 0) == [1, 0]
        assert td.ancestors(0, 0) == []

    def test_top(self):
        td = three_reach_td()
        assert td.top("x1", 0) == 0  # x1 in both bags; root is higher
        assert td.top("x2", 0) == 1

    def test_depths(self):
        td = path_decomposition([{"a", "b"}, {"b", "c"}, {"c", "d"}])
        assert td.depths(0) == {0: 0, 1: 1, 2: 2}

    def test_root_to_leaf_paths(self):
        td = TreeDecomposition(
            {0: {"a"}, 1: {"a", "b"}, 2: {"a", "c"}}, [(0, 1), (0, 2)]
        )
        paths = td.root_to_leaf_paths(0)
        assert sorted(paths) == [[0, 1], [0, 2]]


class TestFreeConnex:
    def test_head_in_root_always_free_connex(self):
        td = three_reach_td()
        assert td.is_free_connex_wrt(0, {"x1", "x4"})

    def test_violation(self):
        # head variable x4 only occurs below the non-head variable x2's top
        td = TreeDecomposition(
            {0: {"x1", "x2"}, 1: {"x2", "x4"}}, [(0, 1)]
        )
        assert not td.is_free_connex_wrt(0, {"x1", "x4"})

    def test_full_head_always_free_connex(self):
        td = three_reach_td()
        assert td.is_free_connex_wrt(0, {"x1", "x2", "x3", "x4"})

    def test_empty_head_always_free_connex(self):
        td = three_reach_td()
        assert td.is_free_connex_wrt(0, set())

    def test_example_a1_decomposition_is_free_connex(self):
        # Figure 5: head {x1,x2,x3,x4,x7,x8}; non-head x5,x6,x9 at the bottom
        td = TreeDecomposition(
            {
                0: {"x1", "x2"},
                1: {"x1", "x3"},
                2: {"x3", "x4", "x5"},
                3: {"x3", "x7"},
                4: {"x4", "x5", "x6"},
                5: {"x7", "x8", "x9"},
            },
            [(0, 1), (1, 2), (1, 3), (2, 4), (3, 5)],
        )
        head = {"x1", "x2", "x3", "x4", "x7", "x8"}
        assert td.is_free_connex_wrt(0, head)
        # rooted at the bottom it is not: x9's top (node 5) sits above x1/x2
        assert not td.is_free_connex_wrt(5, head)

    def test_signature_identifies_same_shape(self):
        td1 = three_reach_td()
        td2 = TreeDecomposition(
            {7: {"x1", "x2", "x3"}, 9: {"x1", "x3", "x4"}}, [(7, 9)]
        )
        assert td1.signature() == td2.signature()
