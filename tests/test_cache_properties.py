"""Property tests for the engine's LRU answer cache.

A tiny reference model (plain list of (key, value) pairs, most-recent last)
is replayed against :class:`repro.engine.cache.LRUCache` on random
operation sequences; eviction order, contents, and hit/miss/eviction
accounting must match exactly.  Edge capacities (0 and 1) and overwrite
accounting get dedicated tests.
"""

from hypothesis import given, settings, strategies as st

from repro.engine.cache import LRUCache


class ModelLRU:
    """Executable specification: ordered pairs, most recently used last."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.pairs = []  # [(key, value)], LRU first
        self.hits = self.misses = self.evictions = 0

    def get(self, key):
        for i, (k, v) in enumerate(self.pairs):
            if k == key:
                self.hits += 1
                self.pairs.append(self.pairs.pop(i))
                return v
        self.misses += 1
        return None

    def put(self, key, value):
        if self.capacity <= 0:
            return
        for i, (k, _) in enumerate(self.pairs):
            if k == key:
                self.pairs.pop(i)
                break
        self.pairs.append((key, value))
        while len(self.pairs) > self.capacity:
            self.pairs.pop(0)
            self.evictions += 1


ops_strategy = st.lists(
    st.tuples(st.sampled_from(["get", "put"]), st.integers(0, 5),
              st.integers(0, 100)),
    max_size=60,
)


class TestLRUCacheProperties:
    @given(capacity=st.integers(0, 6), ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_model(self, capacity, ops):
        cache = LRUCache(capacity)
        model = ModelLRU(capacity)
        for op, key, value in ops:
            if op == "get":
                assert cache.get(key) == model.get(key)
            else:
                cache.put(key, value)
                model.put(key, value)
            assert len(cache) == len(model.pairs)
        assert (cache.hits, cache.misses, cache.evictions) == \
               (model.hits, model.misses, model.evictions)
        # eviction order: peek must agree on every surviving key
        for key, value in model.pairs:
            assert cache.peek(key) == value

    @given(ops=ops_strategy)
    @settings(max_examples=100, deadline=None)
    def test_capacity_bound_never_violated(self, ops):
        cache = LRUCache(3)
        for op, key, value in ops:
            cache.get(key) if op == "get" else cache.put(key, value)
            assert len(cache) <= 3

    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh a; b is now LRU
        cache.put("c", 3)               # evicts b
        assert "b" not in cache
        assert cache.peek("a") == 1 and cache.peek("c") == 3
        assert cache.evictions == 1

    def test_put_refreshes_recency_of_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)              # overwrite refreshes a; b is LRU
        cache.put("c", 3)
        assert "b" not in cache and cache.peek("a") == 10

    def test_capacity_zero_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.get("a") is None   # still a miss: puts are no-ops
        assert (cache.hits, cache.misses, cache.evictions) == (0, 2, 0)
        assert cache.hit_rate == 0.0

    def test_capacity_one_thrashes_correctly(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" not in cache and cache.get("b") == 2
        assert cache.evictions == 1
        cache.put("b", 20)              # overwrite must not evict
        assert cache.evictions == 1 and cache.peek("b") == 20

    def test_overwrite_accounting(self):
        cache = LRUCache(4)
        cache.put("k", 1)
        assert cache.get("k") == 1
        cache.put("k", 2)               # overwrite: no miss, no eviction
        assert cache.get("k") == 2
        assert (cache.hits, cache.misses, cache.evictions) == (2, 0, 0)
        assert len(cache) == 1
        assert cache.hit_rate == 1.0

    def test_clear_preserves_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (1, 1)
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 0 and snapshot["hits"] == 1


class TestLRUCacheConcurrency:
    """The cache's lock contract: counters stay exact under contention.

    Hypothesis drives the shape (capacity, op mix); each example replays
    the same op list from several threads at once through a barrier.  The
    sequential model can't predict interleaved *contents*, but the locked
    counters must still balance: every ``get`` is exactly one hit or one
    miss, the capacity bound holds at all times, and no operation raises.
    """

    @given(
        capacity=st.integers(1, 8),
        n_threads=st.integers(2, 4),
        ops=ops_strategy,
    )
    @settings(max_examples=20, deadline=None)
    def test_counters_balance_under_concurrent_access(self, capacity,
                                                      n_threads, ops):
        import threading

        cache = LRUCache(capacity)
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker():
            barrier.wait()
            try:
                for op, key, value in ops:
                    if op == "get":
                        cache.get(key)
                    else:
                        cache.put(key, value)
                    assert len(cache) <= capacity
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        gets = n_threads * sum(1 for op, _, _ in ops if op == "get")
        assert cache.hits + cache.misses == gets
        snap = cache.snapshot()
        assert snap["hits"] + snap["misses"] == gets
        assert snap["entries"] <= capacity

    def test_snapshot_is_internally_consistent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        snap = cache.snapshot()
        assert snap["hit_rate"] == snap["hits"] / (snap["hits"]
                                                   + snap["misses"])
