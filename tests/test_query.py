"""Unit tests for the query formalism: hypergraphs, CQs, CQAPs, constraints."""

import math

import pytest

from repro.data import Database, Relation, path_database, singleton_request
from repro.query import Atom, CQAP, ConjunctiveQuery, ConstraintSet, DegreeConstraint
from repro.query.catalog import (
    by_name,
    hierarchical_binary_tree_cqap,
    k_path_cqap,
    k_set_disjointness_cqap,
    square_cqap,
    triangle_cqap,
)
from repro.query.hypergraph import Hypergraph, varset


class TestHypergraph:
    def test_edges_within_vertices(self):
        with pytest.raises(ValueError):
            Hypergraph({"a"}, [{"a", "b"}])

    def test_covers(self):
        h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"b", "c"}])
        assert h.covers({"a", "b"})
        assert not h.covers({"a", "c"})

    def test_neighbors(self):
        h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"b", "c"}])
        assert h.neighbors("b") == {"a", "c"}

    def test_connected_subset(self):
        h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"b", "c"}])
        assert h.is_connected_subset({"a", "b", "c"})
        assert not h.is_connected_subset({"a", "c"})
        assert h.is_connected_subset(set())

    def test_connected_subsets_path(self):
        h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"b", "c"}])
        subsets = set(h.connected_subsets())
        assert varset({"a", "c"}) not in subsets
        assert varset({"a", "b", "c"}) in subsets
        # a, b, c, ab, bc, abc
        assert len(subsets) == 6

    def test_with_edge(self):
        h = Hypergraph({"a", "b", "c"}, [{"a", "b"}, {"b", "c"}])
        h2 = h.with_edge({"a", "c"})
        assert h2.covers({"a", "c"})
        assert h2.is_connected_subset({"a", "c"})


class TestAtomsAndCQ:
    def test_atom_repeated_vars_raise(self):
        with pytest.raises(ValueError):
            Atom("R", ("x", "x"))

    def test_head_must_be_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(("z",), [Atom("R", ("x", "y"))])

    def test_hypergraph(self):
        q = k_path_cqap(2)
        h = q.hypergraph()
        assert h.vertices == {"x1", "x2", "x3"}
        assert varset({"x1", "x2"}) in h.edge_sets

    def test_access_hypergraph_adds_edge(self):
        q = k_path_cqap(2)
        assert q.access_hypergraph().covers({"x1", "x3"})

    def test_full_and_boolean_flags(self):
        full = ConjunctiveQuery(("x", "y"), [Atom("R", ("x", "y"))])
        boolean = ConjunctiveQuery((), [Atom("R", ("x", "y"))])
        assert full.is_full
        assert boolean.is_boolean


class TestEvaluation:
    def small_db(self):
        db = Database()
        db.add(Relation("R1", ("a", "b"), [(1, 2), (2, 3), (3, 4)]))
        db.add(Relation("R2", ("a", "b"), [(2, 5), (3, 6)]))
        return db

    def test_two_path(self):
        db = self.small_db()
        q = ConjunctiveQuery(
            ("x1", "x3"),
            [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))],
        )
        assert q.evaluate(db).tuples == {(1, 5), (2, 6)}

    def test_boolean_query(self):
        db = self.small_db()
        q = ConjunctiveQuery(
            (), [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))]
        )
        assert q.evaluate_boolean(db)

    def test_boolean_false(self):
        db = Database()
        db.add(Relation("R1", ("a", "b"), [(1, 2)]))
        db.add(Relation("R2", ("a", "b"), [(9, 9)]))
        q = ConjunctiveQuery(
            (), [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))]
        )
        assert not q.evaluate_boolean(db)

    def test_arity_mismatch(self):
        db = Database([Relation("R", ("a", "b", "c"), [])])
        q = ConjunctiveQuery(("x",), [Atom("R", ("x", "y"))])
        with pytest.raises(ValueError):
            q.evaluate(db)

    def test_self_join_shared_relation(self):
        # triangle over a single physical edge set used three times
        edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
        db = Database()
        for i in (1, 2, 3):
            db.add(Relation(f"R{i}", ("a", "b"), edges))
        q = triangle_cqap()
        out = ConjunctiveQuery(q.head, q.atoms).evaluate(db)
        assert (1, 3) in out.tuples


class TestCQAP:
    def test_access_must_be_subset_of_head(self):
        with pytest.raises(ValueError):
            CQAP(("x",), ("y",), [Atom("R", ("x", "y"))])

    def test_answer_from_scratch_singleton(self):
        db = path_database(2, 100, 30, seed=3)
        q = k_path_cqap(2)
        full = q.evaluate(db)
        hit = next(iter(full))
        ans = q.answer_from_scratch(db, singleton_request(("x1", "x3"), hit))
        assert ans.tuples == {hit}

    def test_answer_from_scratch_miss(self):
        db = path_database(2, 100, 30, seed=3)
        q = k_path_cqap(2)
        miss = (10**9, 10**9)
        ans = q.answer_from_scratch(db, singleton_request(("x1", "x3"), miss))
        assert ans.is_empty()

    def test_answer_batch_request(self):
        db = path_database(2, 100, 30, seed=3)
        q = k_path_cqap(2)
        full = q.evaluate(db)
        some = list(full.tuples)[:5]
        request = Relation("Q", ("x1", "x3"), some + [(10**9, 10**9)])
        ans = q.answer_from_scratch(db, request)
        assert ans.tuples == set(some)

    def test_full_materialization_answers_everything(self):
        db = path_database(2, 80, 25, seed=5)
        q = k_path_cqap(2)
        mat = q.full_materialization(db)
        assert mat == q.evaluate(db)  # head == head ∪ access here

    def test_default_constraints(self):
        db = path_database(2, 100, 30, seed=3)
        q = k_path_cqap(2)
        dc = q.default_constraints(db)
        assert dc.bound((), ("x1", "x2")) == len(db["R1"])

    def test_access_constraints(self):
        q = k_path_cqap(2)
        ac = q.access_constraints(request_size=7)
        assert ac.bound((), ("x1", "x3")) == 7


class TestCatalog:
    def test_named_queries_construct(self):
        for name in ("path2", "path3", "path4", "square", "triangle",
                     "setdisj2", "setdisj3", "setint2", "hier_tree"):
            q = by_name(name)
            assert q.atoms

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            by_name("nope")

    def test_k_set_disjointness_shape(self):
        q = k_set_disjointness_cqap(3)
        assert q.access == ("x1", "x2", "x3")
        assert all(a.variables[0] == "y" for a in q.atoms)

    def test_set_intersection_keeps_y(self):
        q = k_set_disjointness_cqap(2, boolean=False)
        assert "y" in q.head

    def test_square_shape(self):
        q = square_cqap()
        assert q.access == ("x1", "x3")
        assert len(q.atoms) == 4

    def test_hierarchical_tree_shape(self):
        q = hierarchical_binary_tree_cqap()
        assert set(q.access) == {"z1", "z2", "z3", "z4"}
        assert len(q.atoms) == 4


class TestConstraints:
    def test_best_constraint_kept(self):
        cs = ConstraintSet()
        cs.add_cardinality(("a", "b"), 100)
        cs.add_cardinality(("a", "b"), 50)
        cs.add_cardinality(("a", "b"), 80)
        assert cs.bound((), ("a", "b")) == 50
        assert len(cs) == 1

    def test_unconstrained_is_inf(self):
        cs = ConstraintSet()
        assert cs.bound((), ("a",)) == math.inf

    def test_degree_requires_x_subset(self):
        with pytest.raises(ValueError):
            DegreeConstraint(varset_({"a"}), varset_({"a"}), 5)

    def test_log_bound(self):
        c = DegreeConstraint.cardinality(("a",), 8)
        assert c.log_bound == 3

    def test_union_takes_minimum(self):
        a = ConstraintSet()
        a.add_cardinality(("x",), 100)
        b = ConstraintSet()
        b.add_cardinality(("x",), 10)
        assert a.union(b).bound((), ("x",)) == 10

    def test_satisfied_by(self):
        rel = Relation("R", ("a", "b"), [(1, 2), (1, 3), (2, 4)])
        assert DegreeConstraint.cardinality(("a", "b"), 3).satisfied_by(rel)
        assert not DegreeConstraint.cardinality(("a", "b"), 2).satisfied_by(rel)
        deg = DegreeConstraint(varset_({"a"}), varset_({"a", "b"}), 2)
        assert deg.satisfied_by(rel)
        tight = DegreeConstraint(varset_({"a"}), varset_({"a", "b"}), 1)
        assert not tight.satisfied_by(rel)

    def test_guarded_by(self):
        rel = Relation("R", ("a", "b"), [(1, 2)])
        cs = ConstraintSet([DegreeConstraint.cardinality(("a", "b"), 5)])
        assert cs.guarded_by([rel])

    def test_split_constraints_binary_edge(self):
        cs = ConstraintSet()
        cs.add_cardinality(("a", "b"), 100)
        sc = cs.split_constraints()
        pairs = {(tuple(sorted(s.x)), tuple(sorted(s.y))) for s in sc}
        # X ⊂ Y ⊆ {a,b}, X nonempty: ({a},{a,b}), ({b},{a,b})
        assert pairs == {(("a",), ("a", "b")), (("b",), ("a", "b"))}
        assert all(s.cardinality_bound == 100 for s in sc)

    def test_split_constraints_keep_min_bound(self):
        cs = ConstraintSet()
        cs.add_cardinality(("a", "b"), 100)
        cs.add_cardinality(("a", "b", "c"), 10)
        sc = {(s.x, s.y): s for s in cs.split_constraints()}
        key = (varset_({"a"}), varset_({"a", "b"}))
        assert sc[key].cardinality_bound == 10

    def test_ternary_split_count(self):
        cs = ConstraintSet()
        cs.add_cardinality(("a", "b", "c"), 10)
        # pairs (X,Y) with ∅≠X⊂Y⊆{a,b,c}: sum over |Y|=m of m choose ... = 12
        assert len(cs.split_constraints()) == 12


def varset_(items):
    return frozenset(items)
