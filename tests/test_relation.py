"""Unit tests for the Relation substrate."""

import pytest

from repro.data.relation import (
    Relation,
    SchemaError,
    StalePartitionError,
    singleton_request,
    stable_hash,
)
from repro.util.counters import Counters


def rel(name, schema, rows):
    return Relation(name, schema, rows)


class TestConstruction:
    def test_basic(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        assert len(r) == 2
        assert (1, 2) in r
        assert (2, 1) not in r

    def test_deduplicates(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 2)])
        assert len(r) == 1

    def test_arity_mismatch_raises(self):
        with pytest.raises(SchemaError):
            rel("R", ("a", "b"), [(1, 2, 3)])

    def test_duplicate_schema_vars_raise(self):
        with pytest.raises(SchemaError):
            rel("R", ("a", "a"), [])

    def test_variables(self):
        r = rel("R", ("a", "b"), [])
        assert r.variables == frozenset({"a", "b"})

    def test_repr(self):
        r = rel("R", ("a",), [(1,)])
        assert "R" in repr(r)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(rel("R", ("a",), []))


class TestEquality:
    def test_equal_up_to_column_order(self):
        r1 = rel("R", ("a", "b"), [(1, 2)])
        r2 = rel("S", ("b", "a"), [(2, 1)])
        assert r1 == r2

    def test_unequal_content(self):
        r1 = rel("R", ("a", "b"), [(1, 2)])
        r2 = rel("R", ("a", "b"), [(1, 3)])
        assert r1 != r2

    def test_unequal_schema(self):
        r1 = rel("R", ("a", "b"), [])
        r2 = rel("R", ("a", "c"), [])
        assert r1 != r2


class TestProjection:
    def test_project_reorders(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        p = r.project(("b", "a"))
        assert p.schema == ("b", "a")
        assert (2, 1) in p

    def test_project_deduplicates(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3)])
        assert len(r.project(("a",))) == 1

    def test_project_missing_var_raises(self):
        with pytest.raises(SchemaError):
            rel("R", ("a",), []).project(("z",))

    def test_project_counts_scans(self):
        ctr = Counters()
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        r.project(("a",), counters=ctr)
        assert ctr.scans == 2


class TestSelection:
    def test_select_equals_uses_index(self):
        ctr = Counters()
        r = rel("R", ("a", "b"), [(1, 2), (1, 3), (2, 4)])
        out = r.select_equals({"a": 1}, counters=ctr)
        assert len(out) == 2
        assert ctr.probes == 1
        # only matching rows are scanned, not the whole relation
        assert ctr.scans == 2

    def test_select_equals_multiple_vars(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3)])
        out = r.select_equals({"a": 1, "b": 3})
        assert out.tuples == {(1, 3)}

    def test_select_predicate(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        out = r.select(lambda t: t["a"] > 1)
        assert out.tuples == {(3, 4)}

    def test_select_equals_no_bindings_copies(self):
        r = rel("R", ("a",), [(1,)])
        assert r.select_equals({}).tuples == r.tuples


class TestIndexes:
    def test_index_on(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3), (2, 4)])
        idx = r.index_on(("a",))
        assert sorted(idx[(1,)]) == [(1, 2), (1, 3)]

    def test_degree(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3), (2, 4)])
        assert r.degree(("a",)) == 2
        assert r.degree_of(("a",), (2,)) == 1
        assert r.degree_of(("a",), (99,)) == 0

    def test_degree_empty(self):
        assert rel("R", ("a",), []).degree(("a",)) == 0

    def test_index_invalidated_by_add(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        assert r.degree(("a",)) == 1
        r.add((1, 3))
        assert r.degree(("a",)) == 2

    def test_key_values(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3)])
        assert r.key_values(("a",)) == {(1,)}


class TestJoinSemijoin:
    def test_natural_join(self):
        r = rel("R", ("a", "b"), [(1, 2), (2, 3)])
        s = rel("S", ("b", "c"), [(2, 10), (2, 20), (9, 9)])
        out = r.join(s)
        assert set(out.schema) == {"a", "b", "c"}
        assert out.project(("a", "b", "c")).tuples == {(1, 2, 10), (1, 2, 20)}

    def test_join_no_shared_is_cross_product(self):
        r = rel("R", ("a",), [(1,), (2,)])
        s = rel("S", ("b",), [(10,)])
        assert len(r.join(s)) == 2

    def test_semijoin(self):
        r = rel("R", ("a", "b"), [(1, 2), (2, 3)])
        s = rel("S", ("b", "c"), [(2, 10)])
        out = r.semijoin(s)
        assert out.tuples == {(1, 2)}
        assert out.schema == r.schema

    def test_semijoin_disjoint_nonempty_other(self):
        r = rel("R", ("a",), [(1,)])
        s = rel("S", ("b",), [(5,)])
        assert r.semijoin(s).tuples == {(1,)}

    def test_semijoin_disjoint_empty_other(self):
        r = rel("R", ("a",), [(1,)])
        s = rel("S", ("b",), [])
        assert r.semijoin(s).is_empty()

    def test_join_counts(self):
        ctr = Counters()
        r = rel("R", ("a", "b"), [(1, 2)])
        s = rel("S", ("b", "c"), [(2, 10), (2, 20)])
        r.join(s, counters=ctr)
        assert ctr.probes == 1
        assert ctr.joins_emitted == 2


class TestUnionRename:
    def test_union_reorders(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        s = rel("S", ("b", "a"), [(3, 4)])
        out = r.union(s)
        assert out.tuples == {(1, 2), (4, 3)}

    def test_union_schema_mismatch_raises(self):
        with pytest.raises(SchemaError):
            rel("R", ("a",), []).union(rel("S", ("b",), []))

    def test_rename(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        out = r.rename({"a": "x"})
        assert out.schema == ("x", "b")
        assert (1, 2) in out


class TestBindings:
    def test_roundtrip(self):
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        back = Relation.from_bindings("R2", ("a", "b"), r.to_bindings())
        assert back == r

    def test_singleton_request(self):
        q = singleton_request(("x", "y"), (1, 2))
        assert q.tuples == {(1, 2)}
        assert q.schema == ("x", "y")


class TestIndexInvalidation:
    """Lazy hash indexes must never serve entries for stale tuple sets.

    The supported mutation surface is ``add``/``discard`` (both clear the
    index cache); mutating ``.tuples`` directly bypasses invalidation and
    is documented as unsupported — see the ``Relation`` class docstring.
    """

    def test_add_invalidates_cached_index(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        index = r.index_on(("a",))
        assert index == {(1,): [(1, 2)]}
        r.add((1, 3))
        rebuilt = r.index_on(("a",))
        assert sorted(rebuilt[(1,)]) == [(1, 2), (1, 3)]

    def test_add_invalidates_every_cached_key(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        r.index_on(("a",))
        r.index_on(("b",))
        r.add((5, 6))
        assert (5,) in r.index_on(("a",))
        assert (6,) in r.index_on(("b",))

    def test_discard_invalidates_cached_index(self):
        r = rel("R", ("a", "b"), [(1, 2), (1, 3)])
        r.index_on(("a",))
        r.discard((1, 2))
        assert r.index_on(("a",)) == {(1,): [(1, 3)]}

    def test_duplicate_add_keeps_cache_and_counters(self):
        counters = Counters()
        r = rel("R", ("a", "b"), [(1, 2)])
        before = r.index_on(("a",))
        r.add((1, 2), counters=counters)  # no-op: tuple already present
        assert counters.stores == 0
        assert r.index_on(("a",)) is before  # cache survives a no-op add

    def test_selection_after_add_sees_new_tuples(self):
        # select_equals routes through the lazy index; a stale index here
        # would silently drop answers (the bug class this guards against)
        r = rel("R", ("a", "b"), [(1, 2)])
        assert len(r.select_equals({"a": 1})) == 1
        r.add((1, 7))
        assert r.select_equals({"a": 1}).tuples == {(1, 2), (1, 7)}

    def test_direct_tuples_mutation_is_documented_unsupported(self):
        # The regression this documents: raw .tuples mutation bypasses
        # invalidation, so the cached index keeps serving the old set.
        # If invalidation-on-direct-mutation is ever added, flip these
        # asserts — until then the class docstring forbids it.
        r = rel("R", ("a", "b"), [(1, 2)])
        stale = r.index_on(("a",))
        r.tuples.add((9, 9))
        assert r.index_on(("a",)) is stale
        assert (9,) not in r.index_on(("a",))


class TestPartitionViews:
    """Hash-partition views: the sharded serving layer's storage split."""

    def sample(self, n=40):
        rows = [(i % 7, i, i * 2) for i in range(n)]
        return rel("R", ("a", "b", "c"), rows)

    def test_partitions_reunion_to_identity(self):
        r = self.sample()
        parts = r.partition_by_hash(("a", "b"), 4)
        assert len(parts) == 4
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.union(part)
        assert merged == r

    def test_partitions_are_disjoint_and_routed_by_hash(self):
        r = self.sample()
        parts = r.partition_by_hash(("a",), 3)
        seen = set()
        for i, part in enumerate(parts):
            assert part.schema == r.schema
            assert not (part.tuples & seen)
            seen |= part.tuples
            for row in part.tuples:
                assert stable_hash((row[0],)) % 3 == i
        assert seen == r.tuples

    def test_tuple_payloads_are_shared_not_copied(self):
        r = self.sample(10)
        originals = {id(row): row for row in r.tuples}
        for part in r.partition_by_hash(("b",), 2):
            for row in part.tuples:
                assert id(row) in originals  # same objects, no payload copy

    def test_custom_hasher_is_used(self):
        r = self.sample(12)
        parts = r.partition_by_hash(("b",), 2, hasher=lambda key: key[0])
        for row in parts[0].tuples:
            assert row[1] % 2 == 0
        for row in parts[1].tuples:
            assert row[1] % 2 == 1

    def test_empty_relation_yields_empty_shards(self):
        r = rel("R", ("a", "b"), [])
        parts = r.partition_by_hash(("a",), 5)
        assert len(parts) == 5
        assert all(part.is_empty() for part in parts)
        # empty shards still behave like relations (joinable, indexable)
        assert parts[0].index_on(("a",)) == {}

    def test_single_shard_is_a_full_copy_of_the_tuple_set(self):
        r = self.sample()
        [only] = r.partition_by_hash(("a",), 1)
        assert only.tuples == r.tuples

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ValueError, match="positive"):
            self.sample().partition_by_hash(("a",), 0)

    def test_missing_key_variable_raises(self):
        with pytest.raises(SchemaError):
            self.sample().partition_by_hash(("z",), 2)

    def test_partition_index_invalidation_still_fires(self):
        r = self.sample()
        part = r.partition_by_hash(("a",), 2)[0]
        index = part.index_on(("a",))
        row = next(iter(part.tuples))
        # plain add on a view is guarded while the base lives — it would
        # silently desynchronize the partition cover; mutations reach
        # views through the coordinated delta path (repro.updates)
        with pytest.raises(StalePartitionError):
            part.add((99, 99, 99))
        part._delta_add((99, 99, 99))
        rebuilt = part.index_on(("a",))
        assert rebuilt is not index
        assert (99,) in rebuilt and (row[0],) in rebuilt
        # the parent relation and sibling partitions are untouched
        assert (99, 99, 99) not in r.tuples

    def test_partition_names_mark_the_shard(self):
        parts = self.sample().partition_by_hash(("a",), 2)
        assert [p.name for p in parts] == ["R@0", "R@1"]


class TestCounterHygiene:
    """Equality and union bookkeeping must not leak into global counters."""

    def test_eq_across_column_orders_charges_nothing_globally(self):
        from repro.util.counters import global_counters

        r1 = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        r2 = rel("S", ("b", "a"), [(2, 1), (4, 3)])
        before = global_counters.scans
        assert r1 == r2
        assert global_counters.scans == before

    def test_union_reorder_charges_nothing_globally(self):
        from repro.util.counters import global_counters

        r1 = rel("R", ("a", "b"), [(1, 2)])
        r2 = rel("S", ("b", "a"), [(5, 6)])
        before = global_counters.scans
        out = r1.union(r2)
        assert out.tuples == {(1, 2), (6, 5)}
        assert global_counters.scans == before


class TestSelectEqualsValidation:
    def test_unknown_binding_variable_raises(self):
        r = rel("R", ("a", "b"), [(1, 2)])
        with pytest.raises(SchemaError, match="z"):
            r.select_equals({"z": 1})

    def test_mixed_known_and_unknown_raises_not_filters(self):
        # a typo must never silently return unfiltered rows
        r = rel("R", ("a", "b"), [(1, 2), (3, 4)])
        with pytest.raises(SchemaError):
            r.select_equals({"a": 1, "typo": 2})
