"""Tests for the joint Shannon-flow LP: OBJ(S), size bounds, verification.

These tests pin the LP machinery to the paper's analytic results: the §5
running example, Table 1, §6.1/§6.2, Example 6.3, and the Figure 4a/4b
envelopes.
"""

import math
from fractions import Fraction as F

import pytest

from repro.decomposition import (
    TreeDecomposition,
    paper_pmtds_3reach,
    paper_pmtds_4reach,
    trivial_pmtds,
)
from repro.query.catalog import (
    k_path_cqap,
    k_set_disjointness_cqap,
    square_cqap,
)
from repro.query.hypergraph import varset
from repro.tradeoff import (
    PiecewiseCurve,
    TwoPhaseRule,
    catalog,
    envelope_max,
    paper_rules_3reach,
    path_tradeoff,
    rules_from_pmtds,
    symbolic_program,
    theorem_6_1,
)
from repro.tradeoff.edge_cover import fractional_edge_cover, slack, uniform_cover


def v(*nums):
    return varset(f"x{n}" for n in nums)


class TestTwoPhaseRules:
    def test_table1_rule_generation(self):
        rules = rules_from_pmtds(paper_pmtds_3reach())
        got = {(r.s_targets, r.t_targets) for r in rules}
        expected = {(r.s_targets, r.t_targets) for r in paper_rules_3reach()}
        assert got == expected

    def test_raw_rule_count_is_cartesian_product(self):
        raw = rules_from_pmtds(paper_pmtds_3reach(), reduce_rules=False)
        assert len(raw) == 16  # 2*2*2*2*1

    def test_within_rule_reduction_drops_superset_targets(self):
        rule = TwoPhaseRule.reduced(
            s_targets=[v(1, 4)],
            t_targets=[v(2, 3, 4), v(2, 3, 4, 5)],
        )
        assert rule.t_targets == frozenset({v(2, 3, 4)})

    def test_rule_needs_target(self):
        with pytest.raises(ValueError):
            TwoPhaseRule(frozenset(), frozenset())

    def test_no_easier_than(self):
        small = TwoPhaseRule(frozenset({v(1)}), frozenset({v(2)}))
        large = TwoPhaseRule(frozenset({v(1), v(3)}), frozenset({v(2)}))
        assert small.no_easier_than(small)
        assert not small.no_easier_than(large)
        assert large.no_easier_than(small)


class TestTwoReachability:
    """§5 running example / §E.6: S · T² ≍ D² · Q²."""

    def setup_method(self):
        self.cqap = k_path_cqap(2)
        self.rule = TwoPhaseRule(
            frozenset({v(1, 3)}), frozenset({v(1, 2, 3)})
        )

    def test_obj_linear_in_budget(self):
        prog = symbolic_program(self.cqap)
        for y in (0.0, 0.5, 1.0, 1.5, 2.0):
            result = prog.obj_for_budget(self.rule, y)
            assert result.log_time == pytest.approx((2 - y) / 2, abs=1e-6)

    def test_budget_above_materialization_bound(self):
        # h_S(13) <= 2 always, so demanding more is infeasible -> store it
        prog = symbolic_program(self.cqap)
        result = prog.obj_for_budget(self.rule, 2.5)
        assert result.fits_in_budget
        assert result.log_time == 0.0

    def test_access_request_exponent(self):
        # S·T² ≍ D²·Q²: doubling log Q raises logT by 2/2 * dq
        base = symbolic_program(self.cqap, q_log=0.0)
        bumped = symbolic_program(self.cqap, q_log=0.5)
        t0 = base.obj_for_budget(self.rule, 1.0).log_time
        t1 = bumped.obj_for_budget(self.rule, 1.0).log_time
        assert t1 - t0 == pytest.approx(0.5, abs=1e-6)

    def test_batched_discussion_degree_constraint(self):
        # §E.6 discussion: with (x1, {x1,x3}, N13|1) ∈ AC and no
        # materialization the online time is |Q|·N13|1... here check that
        # adding the AC degree constraint lowers OBJ at S=D.
        from repro.query.constraints import ConstraintSet

        dc = ConstraintSet()
        for atom in self.cqap.atoms:
            dc.add_cardinality(atom.variables, 2.0)
        ac = ConstraintSet()
        ac.add_cardinality(("x1", "x3"), 2.0)           # |Q| = D
        plain = symbolic_program(self.cqap)
        from repro.tradeoff.joint_flow import JointFlowProgram

        constrained_ac = ConstraintSet()
        constrained_ac.add_cardinality(("x1", "x3"), 2.0)
        constrained_ac.add_degree(("x1",), ("x1", "x3"), 2.0 ** 0.25)
        loose = JointFlowProgram(self.cqap.variables, dc, ac)
        tight = JointFlowProgram(self.cqap.variables, dc, constrained_ac)
        t_loose = loose.obj_for_budget(self.rule, 1.0).log_time
        t_tight = tight.obj_for_budget(self.rule, 1.0).log_time
        assert t_tight <= t_loose + 1e-9


class TestTable1:
    """Per-rule OBJ values at selected budgets (|Q| = 1, log_D units)."""

    def setup_method(self):
        self.prog = symbolic_program(k_path_cqap(3))
        self.rules = {r.label: r for r in paper_rules_3reach()}

    def expect(self, label, budget, value):
        rule = self.rules[label]
        result = self.prog.obj_for_budget(rule, budget)
        assert result.log_time == pytest.approx(value, abs=1e-6), (
            f"{label} at logS={budget}"
        )

    def test_rho1(self):
        # S·T² ≍ D²: logT = (2-y)/2
        for y in (1.0, 1.5, 2.0):
            self.expect("T124 ∨ T134 ∨ S14", y, (2 - y) / 2)

    def test_rho2(self):
        # best of S²T³ ≍ D⁴ and T ≍ D
        for y in (1.0, 4 / 3, 1.5):
            self.expect(
                "T123 ∨ T124 ∨ S13 ∨ S14", y, min((4 - 2 * y) / 3, 1.0)
            )

    def test_rho4_piecewise(self):
        label = "T123 ∨ T234 ∨ S13 ∨ S14 ∨ S24"
        # min(2-y, 6-4y, 1) on the tested range
        self.expect(label, 1.0, 1.0)
        self.expect(label, 4 / 3, 2 / 3)
        self.expect(label, 1.4, 0.4)
        self.expect(label, 1.5, 0.0)

    def test_rho1_matches_catalog_formula(self):
        formula = catalog.table1_3reach()["T124 ∨ T134 ∨ S14"][0]
        rule = self.rules["T124 ∨ T134 ∨ S14"]
        for y in (1.0, 1.25, 1.75):
            assert self.prog.obj_for_budget(rule, y).log_time == (
                pytest.approx(formula.log_time(y), abs=1e-6)
            )


class TestFigure4aEnvelope:
    def test_breakpoints_match_paper(self):
        prog = symbolic_program(k_path_cqap(3))
        rules = rules_from_pmtds(paper_pmtds_3reach())

        def env(y):
            return max(prog.obj_for_budget(r, y).log_time for r in rules)

        curve = PiecewiseCurve.sample(env, 1.0, 2.0, steps=60)
        assert curve.breakpoints() == catalog.figure4a_expected_breakpoints()

    def test_improvement_over_baseline_beyond_4_3(self):
        prog = symbolic_program(k_path_cqap(3))
        rules = rules_from_pmtds(paper_pmtds_3reach())
        baseline = catalog.goldstein_k_reach(3)
        y = 1.6
        ours = max(prog.obj_for_budget(r, y).log_time for r in rules)
        assert ours < baseline.log_time(y) - 0.05

    def test_matches_baseline_before_4_3(self):
        prog = symbolic_program(k_path_cqap(3))
        rules = rules_from_pmtds(paper_pmtds_3reach())
        baseline = catalog.goldstein_k_reach(3)
        y = 1.2
        ours = max(prog.obj_for_budget(r, y).log_time for r in rules)
        assert ours == pytest.approx(baseline.log_time(y), abs=1e-6)


@pytest.mark.slow
class TestFigure4bEnvelope:
    def test_breakpoints(self):
        prog = symbolic_program(k_path_cqap(4))
        rules = rules_from_pmtds(paper_pmtds_4reach())

        def env(y):
            return max(prog.obj_for_budget(r, y).log_time for r in rules)

        curve = PiecewiseCurve.sample(env, 1.0, 2.0, steps=60)
        got = curve.breakpoints()
        assert got == catalog.figure4b_lp_breakpoints()
        # never above the paper's hand-derived curve, strictly below mid-way
        paper_pts = dict(catalog.figure4b_expected_breakpoints())
        assert curve.value_at(7 / 6) == pytest.approx(1.0, abs=1e-6)
        assert curve.value_at(7 / 5) == pytest.approx(0.6, abs=1e-6)
        assert curve.value_at(float(F(29, 22))) <= float(F(9, 11)) + 1e-6

    def test_better_than_conjectured_everywhere(self):
        # the paper's headline: the conjectured-optimal S·T^{2/3} = D²
        # (uncapped) is beaten on the whole open range
        prog = symbolic_program(k_path_cqap(4))
        rules = rules_from_pmtds(paper_pmtds_4reach())
        baseline = catalog.goldstein_k_reach(4)
        for y in (1.0, 1.2, 1.5, 1.8):
            ours = max(prog.obj_for_budget(r, y).log_time for r in rules)
            assert ours < baseline.log_time(y) - 1e-6


class TestSizeBounds:
    def test_agm_bound_triangle(self):
        # AGM bound of the triangle with all edges = D is D^{3/2}
        from repro.query.catalog import triangle_cqap

        cqap = triangle_cqap()
        prog = symbolic_program(cqap)
        bound = prog.log_size_bound([varset({"x1", "x2", "x3"})], phase="S")
        assert bound == pytest.approx(1.5, abs=1e-6)

    def test_projection_bound_smaller(self):
        cqap = k_path_cqap(2)
        prog = symbolic_program(cqap)
        full = prog.log_size_bound([v(1, 2, 3)], phase="S")
        head = prog.log_size_bound([v(1, 3)], phase="S")
        assert full == pytest.approx(2.0, abs=1e-6)
        assert head == pytest.approx(2.0, abs=1e-6)  # 13 needs both edges

    def test_online_phase_uses_access_constraint(self):
        cqap = k_path_cqap(2)
        prog = symbolic_program(cqap)  # |Q| = 1
        online = prog.log_size_bound([v(1, 2, 3)], phase="T")
        assert online == pytest.approx(1.0, abs=1e-6)  # Q ⋈ R1 (or R2)

    def test_extra_constraints_tighten(self):
        from repro.query.constraints import ConstraintSet

        cqap = k_path_cqap(2)
        prog = symbolic_program(cqap)
        extra = ConstraintSet()
        extra.add_degree(("x1",), ("x1", "x2"), 2 ** 0.5)
        tightened = prog.log_size_bound([v(1, 2, 3)], phase="T", extra=extra)
        assert tightened == pytest.approx(0.5, abs=1e-6)


class TestVerifyJointInequality:
    def setup_method(self):
        self.prog = symbolic_program(k_path_cqap(2))

    def test_paper_sec5_inequality_verifies(self):
        # h_S(1)+h_T(2|1)+h_S(3)+h_T(2|3)+2h_T(13) >= h_S(13)+2h_T(123)
        ok = self.prog.verify_joint_inequality(
            lhs_s={(varset(()), v(1)): 1, (varset(()), v(3)): 1},
            lhs_t={(v(1), v(1, 2)): 1, (v(3), v(2, 3)): 1,
                   (varset(()), v(1, 3)): 2},
            rhs_s={v(1, 3): 1},
            rhs_t={v(1, 2, 3): 2},
        )
        assert ok

    def test_overclaimed_inequality_rejected(self):
        ok = self.prog.verify_joint_inequality(
            lhs_s={(varset(()), v(1)): 1, (varset(()), v(3)): 1},
            lhs_t={(v(1), v(1, 2)): 1, (v(3), v(2, 3)): 1,
                   (varset(()), v(1, 3)): 2},
            rhs_s={v(1, 3): 1},
            rhs_t={v(1, 2, 3): 3},  # one unit too greedy
        )
        assert not ok


class TestTheorem61:
    def test_k_set_disjointness(self):
        for k in (2, 3, 4):
            cqap = k_set_disjointness_cqap(k)
            formula = theorem_6_1(cqap)
            expected = catalog.set_disjointness_boolean(k)
            assert formula.normalized() == expected.normalized()

    def test_square_uniform_cover(self):
        cqap = square_cqap()
        cover = uniform_cover(cqap.hypergraph(), F(1, 2))
        formula = theorem_6_1(cqap, cover)
        # u = 1/2 everywhere: total weight 2, slack of x2/x4 = 1
        assert formula.normalized() == catalog.square_query().__class__(
            F(1), F(1), F(2), F(1)
        ).normalized()

    def test_slack_computation(self):
        cqap = k_set_disjointness_cqap(3)
        h = cqap.hypergraph()
        cover = uniform_cover(h, 1)
        # y is covered 3 times; slack w.r.t. {x1,x2,x3} = 3
        assert slack(h, cover, cqap.access_set) == 3

    def test_fractional_edge_cover_triangle(self):
        from repro.query.catalog import triangle_cqap

        h = triangle_cqap().hypergraph()
        cover = fractional_edge_cover(h, h.vertices)
        assert sum(cover.values()) == F(3, 2)


class TestPathTradeoffs:
    def test_example_6_3(self):
        cqap = k_path_cqap(4)
        td = TreeDecomposition(
            {0: {"x1", "x2", "x4", "x5"}, 1: {"x2", "x3", "x4"}}, [(0, 1)]
        )
        results = path_tradeoff(cqap, td, 0)
        assert len(results) == 1
        _, formula = results[0]
        assert formula.normalized() == catalog.example_6_3_path().normalized()

    def test_explicit_covers_match_auto(self):
        cqap = k_path_cqap(4)
        td = TreeDecomposition(
            {0: {"x1", "x2", "x4", "x5"}, 1: {"x2", "x3", "x4"}}, [(0, 1)]
        )
        covers = {
            0: {v(1, 2): 1, v(4, 5): 1},
            1: {v(2, 3): 1, v(3, 4): 1},
        }
        auto = path_tradeoff(cqap, td, 0)[0][1]
        manual = path_tradeoff(cqap, td, 0, covers=covers)[0][1]
        assert auto.normalized() == manual.normalized()

    def test_three_reach_single_bag_path(self):
        # single bag {x1..x4}, interface {x1,x4}: cover u12=u34=1 slack 1
        cqap = k_path_cqap(3)
        td = TreeDecomposition({0: {"x1", "x2", "x3", "x4"}}, [])
        _, formula = path_tradeoff(cqap, td, 0)[0]
        assert formula.normalized() == catalog.TradeoffFormula(
            F(1), F(1), F(2), F(1)
        ).normalized()


class TestTrivialPmtdRules:
    def test_theorem61_rule_shape(self):
        # the two trivial PMTDs yield T_[n] ∨ S_H (§6.2 proof)
        cqap = square_cqap()
        rules = rules_from_pmtds(trivial_pmtds(cqap))
        assert len(rules) == 1
        rule = rules[0]
        assert rule.s_targets == frozenset({cqap.head_set})
        assert rule.t_targets == frozenset({cqap.variables})

    def test_square_lp_matches_closed_form(self):
        # OBJ for the square's paper PMTDs: S·T² ≍ D² (Q=1)
        from repro.decomposition import paper_pmtds_square

        cqap = square_cqap()
        prog = symbolic_program(cqap)
        rules = rules_from_pmtds(paper_pmtds_square())
        for y in (1.0, 1.5):
            worst = max(prog.obj_for_budget(r, y).log_time for r in rules)
            assert worst == pytest.approx((2 - y) / 2, abs=1e-6)
