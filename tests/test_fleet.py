"""Process-fleet tests: payload shipping, failure modes, worker reaping.

The correctness of the fleet's *answers* is covered by
``tests/test_serving.py`` (drop-in interchangeability with the thread
backend) and fuzzed by the differential harness's ``serving_process``
path.  This file pins down the operational contract of
:class:`repro.serving.fleet.ProcessShardFleet`:

* shard payloads (Relations included) survive pickling byte-identically,
  and a Relation's lazy hash-index cache is *not* shipped;
* a worker crash mid-stream surfaces a clear :class:`FleetError` on the
  next result — never a hang, never a bare ``BrokenProcessPool``;
* ``close()`` (and the ``serve()`` context manager) reaps every worker
  process, so a test session leaks nothing.
"""

import os
import pickle
import random
import time

import pytest

from repro.core.index import CQAPIndex
from repro.data import path_database
from repro.data.relation import Relation
from repro.query.catalog import k_path_cqap
from repro.serving import (
    FleetError,
    ProcessShardFleet,
    serve,
    shard_payloads,
)

DOMAIN = 60


@pytest.fixture(scope="module")
def prepared():
    cqap = k_path_cqap(3)
    db = path_database(3, 400, DOMAIN, seed=11, skew_hubs=4)
    index = CQAPIndex(cqap, db, int(db.size ** 1.2))
    index.preprocess()
    return index


@pytest.fixture(scope="module")
def pairs():
    rng = random.Random(5)
    return [(rng.randrange(DOMAIN), rng.randrange(DOMAIN))
            for _ in range(30)]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class TestRelationPickling:
    def test_round_trip_is_payload_identical(self):
        rel = Relation("R", ("x", "y"), [(1, 2), (3, 4), (1, 4)])
        clone = pickle.loads(pickle.dumps(rel))
        assert clone.name == rel.name
        assert clone.schema == rel.schema
        assert clone.tuples == rel.tuples

    def test_index_cache_is_not_shipped(self):
        rel = Relation("R", ("x", "y"), [(1, 2), (3, 4)])
        rel.index_on(("x",))           # warm the lazy cache
        assert rel._indexes
        clone = pickle.loads(pickle.dumps(rel))
        assert clone._indexes == {}    # rebuilt on demand, never shipped
        # and the clone can still serve index lookups
        assert clone.index_on(("x",)) == rel.index_on(("x",))

    def test_shard_payloads_round_trip(self, prepared):
        for payload in shard_payloads(prepared, 3):
            clone = pickle.loads(pickle.dumps(payload))
            assert clone.shard_id == payload.shard_id
            assert clone.n_shards == 3
            for views, cloned in zip(payload.pmtd_views, clone.pmtd_views):
                for node, rel in views.items():
                    assert cloned[node].tuples == rel.tuples

    def test_payloads_partition_disjointly(self, prepared):
        payloads = shard_payloads(prepared, 4)
        total = sum(p.partitioned_tuples for p in payloads)
        fleetless = ProcessShardFleet(prepared, n_shards=4)
        try:
            assert total == fleetless.partitioned_tuples
            assert fleetless.partitioned_tuples \
                + fleetless.replicated_tuples == prepared.stored_tuples
        finally:
            fleetless.close()


class TestFleetLifecycle:
    def test_workers_are_real_distinct_processes(self, prepared):
        with ProcessShardFleet(prepared, n_shards=3) as fleet:
            pids = [s.pid for s in fleet.shards]
            assert len(set(pids)) == 3
            assert os.getpid() not in pids
            for pid in pids:
                assert _pid_alive(pid)

    def test_close_reaps_workers(self, prepared):
        fleet = ProcessShardFleet(prepared, n_shards=3)
        pids = [s.pid for s in fleet.shards]
        fleet.close()
        deadline = time.monotonic() + 10
        while any(_pid_alive(pid) for pid in pids):
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail(f"workers not reaped: "
                            f"{[p for p in pids if _pid_alive(p)]}")
            time.sleep(0.05)

    def test_close_is_idempotent_and_fails_closed(self, prepared):
        fleet = ProcessShardFleet(prepared, n_shards=2)
        fleet.close()
        fleet.close()
        with pytest.raises(FleetError, match="closed"):
            fleet.answer_group(0, [(1, 2)])

    def test_serve_context_reaps_workers(self, prepared, pairs):
        with serve(prepared, backend="process", shards=2) as server:
            server.serve_all(iter(pairs[:8]))
            pids = [s.pid for s in server.backend.shards]
        deadline = time.monotonic() + 10
        while any(_pid_alive(pid) for pid in pids):
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail("serve() close leaked worker processes")
            time.sleep(0.05)

    def test_requires_preprocessed_index(self, prepared):
        raw = CQAPIndex(prepared.cqap, prepared.db, 100)
        with pytest.raises(ValueError, match="preprocessed"):
            ProcessShardFleet(raw)

    def test_shard_count_validated(self, prepared):
        with pytest.raises(ValueError, match="positive"):
            ProcessShardFleet(prepared, n_shards=0)


class TestFleetFailureModes:
    def test_worker_crash_surfaces_clear_error_not_hang(self, prepared):
        with ProcessShardFleet(prepared, n_shards=2) as fleet:
            key = fleet.normalize((1, 2))
            shard = fleet.shard_of(key)
            fleet.answer_group(shard, [key])       # healthy first
            fleet.inject_worker_fault(shard)
            with pytest.raises(FleetError, match="worker process died"):
                fleet.answer_group(shard, [key])
            # the error names the shard and its pid for the postmortem
            try:
                fleet.answer_group(shard, [key])
            except FleetError as exc:
                assert str(fleet.shards[shard].pid) in str(exc)

    def test_crash_on_one_shard_does_not_poison_close(self, prepared):
        fleet = ProcessShardFleet(prepared, n_shards=2)
        fleet.inject_worker_fault(0)
        fleet.close()   # must not raise or hang

    def test_stats_report_worker_identity_and_cpu(self, prepared, pairs):
        with ProcessShardFleet(prepared, n_shards=2) as fleet:
            for pair in pairs[:10]:
                fleet.probe(pair)
            stats = fleet.stats()
        assert stats["backend"] == "process"
        assert sum(s["probes_served"] for s in stats["shards"]) == 10
        for entry in stats["shards"]:
            assert entry["pid"] is not None
            assert entry["cpu_seconds"] >= 0
            assert entry["preprocess_seconds"] >= 0
