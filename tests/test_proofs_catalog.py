"""Machine-verification of every catalogued paper inequality (Appendix E/F).

Each inequality must (a) hold over Γ_n × Γ_n — the Definition D.4 LP check —
and (b) reproduce the paper's claimed tradeoff when its LHS cost classes are
charged per Theorem 5.1.  A few adversarial variants confirm the verifier
actually rejects false inequalities and inflated claims.
"""

from fractions import Fraction as F

import pytest

from repro.tradeoff.curves import TradeoffFormula
from repro.tradeoff.proofs_catalog import (
    PaperInequality,
    Term,
    all_inequalities,
    e7_bfs,
    e7_rho1,
    e7_rho2,
    e7_rho4_first,
    e7_rho4_second,
    e8_rho1,
    e8_rho2,
    e8_rho4_first,
    e8_rho4_second,
    e5_square_first,
    f_first_derivation,
    f_improved,
    sec5_2reach,
    sec61_kset,
)

ALL = all_inequalities()


@pytest.mark.parametrize("ineq", ALL, ids=[i.name for i in ALL])
def test_lp_valid(ineq):
    assert ineq.verify_lp(), f"{ineq.name}: not a joint Shannon-flow ineq."


@pytest.mark.parametrize("ineq", ALL, ids=[i.name for i in ALL])
def test_claimed_tradeoff(ineq):
    assert ineq.matches_claim(), (
        f"{ineq.name}: coefficients read {ineq.tradeoff()}, "
        f"paper claims {ineq.claimed}"
    )


class TestSpecificValues:
    def test_sec5_cost(self):
        d, q = sec5_2reach().cost()
        assert (d, q) == (2, 2)

    def test_e7_rho4_second_cost(self):
        d, q = e7_rho4_second().cost()
        assert (d, q) == (6, 1)

    def test_e8_rho4_first_cost(self):
        d, q = e8_rho4_first().cost()
        assert (d, q) == (12, 5)

    def test_e8_rho4_second_cost(self):
        d, q = e8_rho4_second().cost()
        assert (d, q) == (13, 3)

    def test_bfs_has_no_storage(self):
        assert not e7_bfs().rhs_s

    def test_kset_generalizes(self):
        for k in (2, 3):
            ineq = sec61_kset(k)
            assert ineq.tradeoff().normalized() == TradeoffFormula(
                F(1), F(k - 1), F(k), F(k - 1)
            ).normalized()


class TestVerifierRejectsFalseClaims:
    def test_overclaimed_rhs_rejected(self):
        base = sec5_2reach()
        greedy = PaperInequality(
            name="greedy",
            cqap_factory=base.cqap_factory,
            lhs=base.lhs,
            rhs_s={(1, 3): F(2)},        # double the storage claim
            rhs_t=base.rhs_t,
            claimed=base.claimed,
        )
        assert not greedy.verify_lp()

    def test_missing_lhs_rejected(self):
        base = sec5_2reach()
        starved = PaperInequality(
            name="starved",
            cqap_factory=base.cqap_factory,
            lhs=base.lhs[:-1],           # drop the 2 h_T(13) access terms
            rhs_s=base.rhs_s,
            rhs_t=base.rhs_t,
            claimed=base.claimed,
        )
        assert not starved.verify_lp()

    def test_wrong_claim_detected(self):
        base = e7_rho1()
        wrong = PaperInequality(
            name="wrong",
            cqap_factory=base.cqap_factory,
            lhs=base.lhs,
            rhs_s=base.rhs_s,
            rhs_t=base.rhs_t,
            claimed=TradeoffFormula(F(1), F(1), F(2), F(1)),  # S·T not S·T²
        )
        assert not wrong.matches_claim()


class TestConsistencyWithObjLP:
    """Each inequality upper-bounds OBJ(S): the LP optimum is never above
    the line the inequality implies (Lemma D.2)."""

    @pytest.mark.parametrize(
        "ineq_fn, rule_targets",
        [
            (e7_rho1, ({(1, 4)}, {(1, 2, 4), (1, 3, 4)})),
            (e7_rho2, ({(1, 3), (1, 4)}, {(1, 2, 3), (1, 2, 4)})),
        ],
    )
    def test_obj_below_inequality_line(self, ineq_fn, rule_targets):
        from repro.query.hypergraph import varset
        from repro.tradeoff.rules import TwoPhaseRule

        ineq = ineq_fn()
        prog = ineq.program()
        s_targets, t_targets = rule_targets
        rule = TwoPhaseRule(
            frozenset(varset(f"x{i}" for i in t) for t in s_targets),
            frozenset(varset(f"x{i}" for i in t) for t in t_targets),
        )
        formula = ineq.tradeoff()
        for log_s in (1.0, 1.25, 1.5):
            obj = prog.obj_for_budget(rule, log_s).log_time
            implied = formula.log_time(log_s, log_d=1.0, log_q=0.0)
            assert obj <= implied + 1e-6
