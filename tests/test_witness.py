"""Tests for Theorem D.5 witness extraction from OBJ(S) duals."""

import pytest

from repro.query.catalog import k_path_cqap, square_cqap
from repro.query.hypergraph import varset
from repro.tradeoff import TwoPhaseRule, paper_rules_3reach, symbolic_program
from repro.tradeoff.witness import JointFlowWitness, extract_witness, obj_with_witness


def two_reach_rule():
    return TwoPhaseRule(
        frozenset({varset({"x1", "x3"})}),
        frozenset({varset({"x1", "x2", "x3"})}),
    )


class TestTwoReachWitness:
    def setup_method(self):
        self.prog = symbolic_program(k_path_cqap(2))
        self.rule = two_reach_rule()

    @pytest.mark.parametrize("log_space", [0.25, 0.75, 1.0, 1.5])
    def test_implied_bound_equals_obj(self, log_space):
        result, witness = obj_with_witness(self.prog, self.rule, log_space)
        assert result.status == "optimal"
        implied = witness.implied_bound(log_space)
        assert implied / max(witness.lambda_norm, 1e-9) == pytest.approx(
            result.log_time, abs=1e-5
        )

    @pytest.mark.parametrize("log_space", [0.5, 1.0, 1.5])
    def test_extracted_inequality_is_valid(self, log_space):
        _, witness = obj_with_witness(self.prog, self.rule, log_space)
        assert witness.verify(self.prog)

    def test_witness_uses_split_pairs(self):
        # the §5 strategy correlates the phases through the two splits
        _, witness = obj_with_witness(self.prog, self.rule, 1.0)
        coupled = len(witness.gamma_s_heavy) + len(witness.gamma_t_heavy)
        assert coupled >= 1

    def test_lambda_normalized(self):
        _, witness = obj_with_witness(self.prog, self.rule, 1.0)
        assert witness.lambda_norm == pytest.approx(1.0, abs=1e-6)

    def test_extract_requires_optimal(self):
        result = self.prog.obj_for_budget(self.rule, 5.0)  # materialize
        assert result.fits_in_budget
        with pytest.raises(ValueError):
            extract_witness(self.prog, self.rule, result)


class TestTable1Witnesses:
    @pytest.mark.parametrize("log_space", [1.1, 1.25, 1.45])
    def test_all_rules_roundtrip(self, log_space):
        prog = symbolic_program(k_path_cqap(3))
        for rule in paper_rules_3reach():
            result, witness = obj_with_witness(prog, rule, log_space)
            assert result.status == "optimal"
            assert witness.verify(prog), rule.label
            implied = witness.implied_bound(log_space)
            assert implied / max(witness.lambda_norm, 1e-9) == (
                pytest.approx(result.log_time, abs=1e-5)
            ), rule.label


class TestSquareWitness:
    def test_square_first_rule(self):
        from repro.decomposition import paper_pmtds_square
        from repro.tradeoff import rules_from_pmtds

        prog = symbolic_program(square_cqap())
        rule = rules_from_pmtds(paper_pmtds_square())[0]
        result, witness = obj_with_witness(prog, rule, 1.0)
        assert witness.verify(prog)
        assert result.log_time == pytest.approx(0.5, abs=1e-6)


class TestEmptyWitness:
    def test_trivial_verifies(self):
        prog = symbolic_program(k_path_cqap(2))
        assert JointFlowWitness().verify(prog)
