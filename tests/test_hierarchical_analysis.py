"""Tests for the general §F hierarchical analysis.

The generalized Figure-6b construction and the end-of-§F inequality must
reproduce the paper's three instances: the binary-tree query (w = 4), the
k-set disjointness star (w = k, matching Example 6.2), and the 2-path query
(w = 2, matching the §5 tradeoff).
"""

import pytest

from repro.decomposition import PMTD
from repro.problems import HierarchicalAnalysis, figure6_decomposition
from repro.query import Atom, CQAP
from repro.query.catalog import (
    hierarchical_binary_tree_cqap,
    k_path_cqap,
    k_set_disjointness_cqap,
)
from repro.tradeoff import catalog


class TestRequirements:
    def test_rejects_non_hierarchical(self):
        with pytest.raises(ValueError):
            HierarchicalAnalysis(k_path_cqap(3))

    def test_rejects_empty_access(self):
        from repro.query.catalog import triangle_cqap

        with pytest.raises(ValueError):
            HierarchicalAnalysis(triangle_cqap())

    def test_rejects_disconnected(self):
        # two independent atoms share no root variable
        cqap = CQAP(("a", "c"), ("a", "c"),
                    [Atom("R", ("a", "b")), Atom("S", ("c", "d"))])
        with pytest.raises(ValueError):
            HierarchicalAnalysis(cqap)

    def test_rejects_two_access_vars_in_one_atom(self):
        cqap = CQAP(("z1", "z2"), ("z1", "z2"),
                    [Atom("R", ("x", "z1", "z2"))])
        with pytest.raises(ValueError):
            HierarchicalAnalysis(cqap)


class TestFigure6a:
    def setup_method(self):
        self.analysis = HierarchicalAnalysis(hierarchical_binary_tree_cqap())

    def test_root_and_width(self):
        assert self.analysis.root_var == "x"
        assert self.analysis.width == 4

    def test_decomposition_matches_fig6b(self):
        td, root = self.analysis.decomposition()
        assert td.signature() == figure6_decomposition().signature()
        assert root == 0

    def test_decomposition_is_valid_pmtd_base(self):
        cqap = hierarchical_binary_tree_cqap()
        td, root = self.analysis.decomposition()
        td.validate(cqap.access_hypergraph())
        pmtd = PMTD(td, root, (), cqap.head, cqap.access)
        assert not pmtd.is_redundant()

    def test_improved_inequality(self):
        assert self.analysis.verify_improved()
        assert self.analysis.improved_tradeoff().normalized() == (
            catalog.hierarchical_fig6_improved().normalized()
        )

    def test_first_tradeoff_shape(self):
        assert self.analysis.first_tradeoff().normalized() == (
            catalog.hierarchical_fig6_derived().normalized()
        )


class TestCrossChecks:
    @pytest.mark.parametrize("k", [2, 3])
    def test_kset_recovers_example_6_2(self, k):
        analysis = HierarchicalAnalysis(k_set_disjointness_cqap(k))
        assert analysis.width == k
        assert analysis.verify_improved()
        assert analysis.improved_tradeoff().normalized() == (
            catalog.set_disjointness_boolean(k).normalized()
        )

    def test_two_path_recovers_sec5(self):
        analysis = HierarchicalAnalysis(k_path_cqap(2))
        assert analysis.width == 2
        assert analysis.root_var == "x2"
        assert analysis.verify_improved()
        assert analysis.improved_tradeoff().normalized() == (
            catalog.square_query().normalized()  # also S·T² ≍ D²·Q²
        )

    def test_deeper_hierarchy(self):
        # a 3-level chain: R(x,y,z1), S(x,y,z2), T(x,z3)
        cqap = CQAP(
            ("z1", "z2", "z3"), ("z1", "z2", "z3"),
            [
                Atom("R", ("x", "y", "z1")),
                Atom("S", ("x", "y", "z2")),
                Atom("T", ("x", "z3")),
            ],
        )
        analysis = HierarchicalAnalysis(cqap)
        assert analysis.width == 3
        td, root = analysis.decomposition()
        td.validate(cqap.access_hypergraph())
        assert analysis.verify_improved()
