"""Tests for the synthetic workload generators."""

import pytest

from repro.data import (
    Database,
    access_requests_from_output,
    hierarchical_binary_tree_database,
    layered_path_database,
    path_database,
    random_edge_relation,
    set_family,
    square_database,
    star_database,
    triangle_database,
)
from repro.query.catalog import k_path_cqap


class TestEdgeRelation:
    def test_size_and_domain(self):
        rel = random_edge_relation("E", ("a", "b"), 200, 50, seed=1)
        assert len(rel) == 200
        assert all(0 <= a < 50 and 0 <= b < 50 for a, b in rel.tuples)

    def test_deterministic(self):
        r1 = random_edge_relation("E", ("a", "b"), 100, 30, seed=9)
        r2 = random_edge_relation("E", ("a", "b"), 100, 30, seed=9)
        assert r1.tuples == r2.tuples

    def test_skew_creates_hubs(self):
        skewed = random_edge_relation("E", ("a", "b"), 600, 200, seed=2,
                                      skew_hubs=3)
        uniform = random_edge_relation("E", ("a", "b"), 600, 200, seed=2)
        assert skewed.degree(("a",)) > 2 * uniform.degree(("a",))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            random_edge_relation("E", ("a", "b", "c"), 10, 5)


class TestPathDatabases:
    def test_shapes(self):
        db = path_database(3, 150, 40, seed=1)
        assert db.names == ["R1", "R2", "R3"]
        assert db["R1"].schema == ("x1", "x2")
        assert db["R3"].schema == ("x3", "x4")

    def test_shared_relation(self):
        db = path_database(3, 150, 40, seed=1, shared_relation=True)
        assert db["R1"].tuples == db["R2"].tuples == db["R3"].tuples

    def test_layered_guarantees_paths(self):
        db = layered_path_database(3, layer_size=20, out_degree=3, seed=4)
        q = k_path_cqap(3)
        assert len(q.evaluate(db)) > 0

    def test_layered_layer_ranges(self):
        db = layered_path_database(2, layer_size=10, out_degree=2, seed=1)
        for a, b in db["R1"].tuples:
            assert 0 <= a < 10 and 10 <= b < 20


class TestFamiliesAndShapes:
    def test_set_family_heavy_sets(self):
        rel = set_family(20, 50, 400, seed=3, heavy_sets=2, heavy_size=40)
        by_set = {}
        for y, x in rel.tuples:
            by_set.setdefault(x, set()).add(y)
        sizes = sorted((len(v) for v in by_set.values()), reverse=True)
        assert sizes[1] >= 35  # two planted heavy sets

    def test_star_database_shares_membership(self):
        db = star_database(3, 200, 40, seed=5)
        assert db["R1"].tuples == db["R2"].tuples == db["R3"].tuples
        assert db["R1"].schema == ("y", "x1")
        assert db["R3"].schema == ("y", "x3")

    def test_square_database(self):
        db = square_database(100, 30, seed=6)
        assert db.names == ["R1", "R2", "R3", "R4"]
        assert db["R4"].schema == ("x4", "x1")

    def test_triangle_database(self):
        db = triangle_database(100, 30, seed=7)
        assert db["R3"].schema == ("x3", "x1")

    def test_hierarchical_database(self):
        db = hierarchical_binary_tree_database(120, 15, seed=8, heavy_x=2)
        assert set(db.names) == {"R", "S", "T", "U"}
        assert db["R"].schema == ("x", "y1", "z1")
        assert len(db["R"]) == 120


class TestAccessRequests:
    def test_hits_come_from_output(self):
        db = path_database(2, 150, 40, seed=9)
        q = k_path_cqap(2)
        full = q.evaluate(db)
        requests = access_requests_from_output(full, ("x1", "x3"), 30,
                                               seed=1, hit_fraction=1.0)
        assert all(r in full.tuples for r in requests)

    def test_misses_possible(self):
        db = path_database(2, 150, 40, seed=9)
        q = k_path_cqap(2)
        full = q.evaluate(db)
        requests = access_requests_from_output(full, ("x1", "x3"), 30,
                                               seed=1, hit_fraction=0.0)
        assert all(r not in full.tuples for r in requests)


class TestDatabase:
    def test_size_is_max_relation(self):
        db = Database()
        db.add(random_edge_relation("A", ("a", "b"), 50, 20, seed=1))
        db.add(random_edge_relation("B", ("c", "d"), 80, 20, seed=2))
        assert db.size == 80
        assert db.total_tuples == 130

    def test_duplicate_name_rejected(self):
        db = Database()
        db.add(random_edge_relation("A", ("a", "b"), 10, 5, seed=1))
        with pytest.raises(KeyError):
            db.add(random_edge_relation("A", ("a", "b"), 10, 5, seed=2))

    def test_copy_independent(self):
        db = Database([random_edge_relation("A", ("a", "b"), 10, 5, seed=1)])
        clone = db.copy()
        clone["A"].add((99, 99))
        assert (99, 99) not in db["A"]
