"""Tier-1 differential tests: every execution path vs the brute-force oracle.

Small, deterministic seeds only — the CI fuzz-smoke job runs the same
harness with a larger budget and a rotating seed.  Any failure here prints
a seed-complete minimal reproduction (see ``Disagreement.describe``).
"""

import pytest

from repro.engine import prepare
from repro.oracle import OracleMismatch, answer_rows, assert_equivalent, oracle_probe
from repro.workloads import make_workload
from repro.workloads.differential import (
    LEAN_BUDGET,
    PATHS,
    RICH_BUDGET,
    run_differential,
    run_scenario,
    scenario_budgets,
)

#: fixed tier-1 seed block; the fuzz-smoke job explores far beyond it
TIER1_SEED = 20260729
TIER1_SCENARIOS = 30


class TestDifferentialHarness:
    def test_tier1_seed_block_has_zero_disagreements(self):
        summary = run_differential(TIER1_SCENARIOS, TIER1_SEED)
        assert summary.scenarios == TIER1_SCENARIOS
        assert summary.comparisons > 0
        assert summary.ok, summary.describe()
        # coverage guard: every execution path ran in (nearly) every
        # scenario — a gate that silently degrades to from_scratch-only
        # must fail, not pass
        for path in PATHS:
            assert summary.path_runs.get(path, 0) >= TIER1_SCENARIOS - 1, \
                summary.describe()

    def test_uncovered_paths_fail_multi_scenario_runs(self):
        from repro.workloads.differential import DifferentialSummary
        degraded = DifferentialSummary(base_seed=0, scenarios=5,
                                       path_runs={"from_scratch": 5})
        assert degraded.uncovered_paths
        assert not degraded.ok
        assert "COVERAGE FAILURE" in degraded.describe()
        # a single-scenario replay with a legitimate skip stays ok
        replay = DifferentialSummary(base_seed=0, scenarios=1,
                                     path_runs={"from_scratch": 1})
        assert replay.ok

    @pytest.mark.parametrize("shape", ["path", "cycle", "star",
                                       "hierarchical", "random"])
    def test_each_shape_clean(self, shape):
        summary = run_differential(4, TIER1_SEED + 1000, shape=shape)
        assert summary.ok, summary.describe()

    @pytest.mark.parametrize("probe_kind", ["uniform", "hot", "cold"])
    def test_each_probe_kind_clean(self, probe_kind):
        summary = run_differential(4, TIER1_SEED + 2000,
                                   probe_kind=probe_kind)
        assert summary.ok, summary.describe()

    def test_scenario_reports_per_path_comparisons(self):
        from repro.workloads.differential import (
            UPDATE_PROBES_PER_STEP,
            UPDATE_STEPS,
            UPDATE_STEPS_PROCESS,
        )

        outcome = run_scenario(make_workload(TIER1_SEED))
        assert outcome.ok
        # every non-skipped probe path checked every unique binding, plus
        # one answer_batch union check per rich index (both backends),
        # plus the 3-budget route-stability sweep on every set-backend
        # index, plus one cross-backend bit-identity diff per path pair,
        # plus the update-replay paths (two per-step oracle diffs over
        # the sliding probe window, the replanned-flag and stats-envelope
        # checks, and the final replay==rebuild diff per unique probe)
        unique = len({tuple(b) for b in outcome.workload.probes})
        skipped = {path for path, _ in outcome.skips}
        update_steps = {"update_replay": UPDATE_STEPS,
                        "update_replay_columnar": UPDATE_STEPS,
                        "update_replay_process": UPDATE_STEPS_PROCESS}
        probe_cycle = list(dict.fromkeys(outcome.workload.probes))

        def update_checks(path, steps):
            if path in skipped:
                return 0
            total = 2  # replanned flag + stats-envelope presence
            for step in range(steps):
                lo = (step * UPDATE_PROBES_PER_STEP) % len(probe_cycle)
                window = {probe_cycle[(lo + j) % len(probe_cycle)]
                          for j in range(UPDATE_PROBES_PER_STEP)}
                total += 2 * len(window)  # engine diff + serving diff
            if f"{path}.rebuild" not in skipped:
                total += len(probe_cycle)
            return total

        ran = (len(PATHS) - len(skipped)
               - sum(1 for p in update_steps if p not in skipped))
        batch_checks = sum(
            1 for p in ("index_rich", "index_rich_columnar")
            if p not in skipped)
        index_paths = ("index_lean", "index_medium", "index_rich")
        stability_checks = 3 * sum(1 for p in index_paths
                                   if p not in skipped)
        identity_checks = sum(
            1 for p in PATHS
            if p.endswith("_columnar") and p not in update_steps
            and p not in skipped and p[:-len("_columnar")] not in skipped)
        # the traced serving path adds one traced-vs-untraced
        # bit-identity diff when both serving paths produced answers
        if ("serving_observability" not in skipped
                and "serving_sharded" not in skipped):
            identity_checks += 1
        replay_checks = sum(update_checks(p, s)
                            for p, s in update_steps.items())
        assert outcome.comparisons == (ran * unique + batch_checks
                                       + stability_checks
                                       + identity_checks
                                       + replay_checks)

    def test_harness_catches_injected_corruption(self):
        """The tester is itself tested: a corrupted path must be flagged."""
        workload = make_workload(TIER1_SEED + 3001, shape="path",
                                 probe_kind="uniform")
        cqap, db = workload.cqap, workload.db
        binding = workload.probes[0]
        expected = {tuple(binding): oracle_probe(cqap, db, binding)}
        # fabricate a wrong answer: drop everything, invent one tuple
        bogus = frozenset({tuple(-1 for _ in cqap.head)})
        with pytest.raises(OracleMismatch) as err:
            assert_equivalent(expected, {tuple(binding): bogus},
                              path="corrupted")
        report = err.value.report
        (diff,) = report.diffs
        assert diff.extra == bogus
        assert diff.missing == expected[tuple(binding)]


class TestBudgetSweep:
    """Satellite: the tight/medium/∞ space-budget sweep vs the oracle.

    Every scenario builds three indexes through the budget-aware rule
    selection pipeline — the sweep is what fuzzes ``space_budget``-driven
    selection (``repro.tradeoff.selection``) against ground truth.
    """

    def test_sweep_paths_are_part_of_the_gate(self):
        assert {"index_lean", "index_medium", "index_rich"} <= set(PATHS)

    def test_budgets_span_the_tradeoff(self):
        workload = make_workload(TIER1_SEED)
        budgets = scenario_budgets(workload.db)
        assert budgets["index_lean"] == LEAN_BUDGET
        assert budgets["index_rich"] == RICH_BUDGET
        assert (budgets["index_lean"] < budgets["index_medium"]
                < budgets["index_rich"])

    def test_fixed_seed_block_agrees_across_all_budgets(self):
        """Tier-1 merge gate for the sweep: three budgets, zero diffs."""
        summary = run_differential(12, TIER1_SEED + 6000)
        assert summary.ok, summary.describe()
        for path in ("index_lean", "index_medium", "index_rich"):
            assert summary.path_runs.get(path, 0) >= 11, summary.describe()

    def test_sweep_covers_a_21_pmtd_query_uncapped(self):
        """The ROADMAP hang query goes through the full harness cleanly."""
        import random

        from repro.decomposition.enumeration import enumerate_pmtds
        from repro.workloads.databases import random_database
        from repro.workloads.probes import probe_stream
        from repro.workloads.queries import random_cqap
        from repro.workloads.workload import Workload

        rng = random.Random(75)
        cqap = random_cqap(rng, shape="path", name="fuzz_path_75")
        assert len(enumerate_pmtds(cqap, max_bags=3)) == 21
        db = random_database(cqap, rng, profile="uniform", max_tuples=24)
        probes = probe_stream(cqap, db, rng, kind="uniform", count=4)
        workload = Workload(seed=75, shape="path", profile="uniform",
                            probe_kind="uniform", cache_size=16,
                            cqap=cqap, db=db, probes=probes)
        outcome = run_scenario(workload)
        assert outcome.ok, "\n".join(
            d.describe() for d in outcome.disagreements)


class TestProbeManyAgainstOracle:
    """Satellite: batch dedupe must not drop or cross-wire answers."""

    @pytest.fixture(scope="class")
    def served(self):
        workload = make_workload(TIER1_SEED + 4000, shape="path",
                                 probe_kind="uniform", probe_count=5)
        pq = prepare(workload.cqap, workload.db, space_budget=10 ** 6)
        return workload, pq

    def test_duplicates_and_misses_match_per_binding_probe(self, served):
        workload, pq = served
        cqap = workload.cqap
        miss = tuple(10 ** 6 + i for i, _ in enumerate(cqap.access))
        stream = (list(workload.probes) + [miss]
                  + list(workload.probes))  # duplicates + out-of-domain
        batched = pq.probe_many(stream)
        head = tuple(cqap.head)
        for binding in set(stream):
            expected = oracle_probe(cqap, workload.db, binding)
            assert answer_rows(batched[binding], head) == expected
            assert answer_rows(pq.probe(binding), head) == expected

    def test_out_of_domain_binding_is_empty_not_absent(self, served):
        workload, pq = served
        miss = tuple(10 ** 6 + i for i, _ in enumerate(workload.cqap.access))
        batched = pq.probe_many([miss])
        assert miss in batched
        assert len(batched[miss]) == 0

    def test_batch_replay_is_cache_stable(self, served):
        workload, pq = served
        head = tuple(workload.cqap.head)
        first = pq.probe_many(workload.probes)
        hits_before = pq.cache.hits
        again = pq.probe_many(workload.probes)
        assert pq.cache.hits > hits_before
        assert {b: answer_rows(r, head) for b, r in first.items()} == \
               {b: answer_rows(r, head) for b, r in again.items()}
        assert not pq.replanned


class TestEngineOracleSelfCheck:
    def test_verify_against_oracle(self):
        workload = make_workload(TIER1_SEED + 5003, shape="star",
                                 probe_kind="mixed")
        pq = prepare(workload.cqap, workload.db, space_budget=10 ** 6)
        report = pq.verify_against_oracle(workload.probes)
        assert report.ok, report.describe()
        assert report.bindings_checked == \
            len({tuple(b) for b in workload.probes})

    def test_verify_against_oracle_flags_corruption(self):
        workload = make_workload(TIER1_SEED + 5001, shape="path",
                                 probe_kind="uniform")
        pq = prepare(workload.cqap, workload.db, space_budget=10 ** 6)
        binding = tuple(workload.probes[0])
        # poison the answer cache with a fabricated tuple
        bogus = tuple(-1 for _ in workload.cqap.head)
        pq.cache.put(binding, (tuple(workload.cqap.head),
                               frozenset({bogus})))
        with pytest.raises(OracleMismatch):
            pq.verify_against_oracle([binding])


class TestAbortScenario:
    """Budget-abort forcing: the fallback path vs the oracle, both backends."""

    def test_abort_fires_and_agrees_on_both_serve_backends(self):
        from repro.workloads.differential import run_abort_scenario

        # seeds picked so the rich-budget plans designate S-targets and
        # the ~zero slack aborts them (see run_abort_scenario docstring)
        fired = 0
        for seed in (3000, 3004, 3006):
            outcome = run_abort_scenario(make_workload(seed))
            assert outcome.ok, "\n".join(
                d.describe() for d in outcome.disagreements)
            if not outcome.skips:
                fired += 1
                assert outcome.comparisons > 0
        assert fired > 0, "no seed exercised the abort path"

    def test_sweep_skips_are_not_failures(self):
        from repro.workloads.differential import run_abort_scenario

        # a scenario with nothing to abort reports a skip and stays ok
        for seed in range(3001, 3004):
            outcome = run_abort_scenario(make_workload(seed))
            assert outcome.ok


class TestColumnarPathsInGate:
    def test_columnar_paths_are_part_of_the_gate(self):
        assert "index_rich_columnar" in PATHS
        assert "engine_probe_columnar" in PATHS
        assert "serving_process_columnar" in PATHS

    def test_columnar_block_bit_identical(self):
        # a focused fixed-seed block: every columnar path must both agree
        # with the oracle and be bit-identical to its set sibling (the
        # cross-backend diff inside run_scenario raises otherwise)
        summary = run_differential(3, TIER1_SEED + 7000)
        assert summary.ok, summary.describe()
        for path in PATHS:
            if path.endswith("_columnar"):
                assert summary.path_runs.get(path, 0) >= 2, \
                    summary.describe()
