"""Unit tests for the subset lattice, polymatroid cone, LP layer, and the
Shannon-flow proof calculus."""

from fractions import Fraction

import pytest

from repro.polymatroid import (
    LinearProgram,
    ProofSequence,
    SubsetSpace,
    add_polymatroid_constraints,
    compose,
    decompose,
    make_vector,
    mono,
    submod,
    vector_ge,
)


class TestSubsetSpace:
    def setup_method(self):
        self.space = SubsetSpace(["x1", "x2", "x3"])

    def test_mask_roundtrip(self):
        mask = self.space.mask({"x1", "x3"})
        assert self.space.members(mask) == {"x1", "x3"}

    def test_unknown_variable(self):
        with pytest.raises(KeyError):
            self.space.mask({"zz"})

    def test_full_mask(self):
        assert self.space.full_mask == 0b111

    def test_nonempty_masks(self):
        assert list(self.space.nonempty_masks()) == list(range(1, 8))

    def test_strict_pairs_count(self):
        # pairs (X,Y), ∅ ⊆ X ⊂ Y: sum over Y of 2^|Y| - 1 ... = 19 for n=3
        pairs = list(self.space.strict_pairs())
        assert len(pairs) == 19
        assert all(x & ~y == 0 and x != y for x, y in pairs)

    def test_subsets_of(self):
        subs = set(self.space.subsets_of(0b101))
        assert subs == {0b000, 0b001, 0b100, 0b101}
        assert 0b101 not in set(self.space.subsets_of(0b101, proper=True))

    def test_label(self):
        assert self.space.label(0b101) == "{x1,x3}"


class TestLinearProgram:
    def test_simple_max(self):
        lp = LinearProgram()
        lp.variable("x", lower=0)
        lp.add_le({"x": 1.0}, 5.0)
        lp.set_objective({"x": 1.0}, maximize=True)
        sol = lp.solve()
        assert sol.is_optimal
        assert sol.objective == pytest.approx(5.0)

    def test_infeasible(self):
        lp = LinearProgram()
        lp.variable("x", lower=0)
        lp.add_le({"x": 1.0}, -1.0)
        lp.set_objective({"x": 1.0})
        assert lp.solve().status == "infeasible"

    def test_unbounded(self):
        lp = LinearProgram()
        lp.variable("x", lower=0)
        lp.set_objective({"x": 1.0}, maximize=True)
        assert lp.solve().status == "unbounded"

    def test_duals_sign(self):
        # max x s.t. x <= 3 — dual of the binding constraint is 1
        lp = LinearProgram()
        lp.variable("x", lower=0)
        lp.add_le({"x": 1.0}, 3.0, name="cap")
        lp.set_objective({"x": 1.0}, maximize=True)
        sol = lp.solve()
        assert sol.duals["cap"] == pytest.approx(1.0)

    def test_minimize(self):
        lp = LinearProgram()
        lp.variable("x", lower=1.0)
        lp.set_objective({"x": 1.0}, maximize=False)
        sol = lp.solve()
        assert sol.objective == pytest.approx(1.0)

    def test_equality_constraint(self):
        lp = LinearProgram()
        lp.variable("x", lower=0)
        lp.variable("y", lower=0)
        lp.add_eq({"x": 1.0, "y": 1.0}, 4.0)
        lp.set_objective({"x": 1.0}, maximize=True)
        sol = lp.solve()
        assert sol.objective == pytest.approx(4.0)


class TestConeCorrectness:
    """The elemental inequalities must carve out exactly Γ_n."""

    def _max_over_cone(self, n, objective):
        space = SubsetSpace([f"x{i}" for i in range(1, n + 1)])
        lp = LinearProgram()
        add_polymatroid_constraints(lp, space, lambda m: ("h", m))
        # normalize: h(full) <= 1 so the cone section is compact
        lp.add_le({("h", space.full_mask): 1.0}, 1.0)
        lp.set_objective(
            {("h", space.mask(s)): c for s, c in objective.items()},
            maximize=True,
        )
        sol = lp.solve()
        assert sol.is_optimal
        return sol.objective

    def test_general_monotonicity_implied(self):
        # h({x1}) - h({x1,x2,x3}) <= 0 must follow from the elementals
        value = self._max_over_cone(
            3, {frozenset({"x1"}): 1.0, frozenset({"x1", "x2", "x3"}): -1.0}
        )
        assert value <= 1e-9

    def test_general_submodularity_implied(self):
        # h(12) + h(23) - h(123) - h(2) >= 0 i.e. reverse maximization <= 0
        value = self._max_over_cone(
            3,
            {
                frozenset({"x1", "x2", "x3"}): 1.0,
                frozenset({"x2"}): 1.0,
                frozenset({"x1", "x2"}): -1.0,
                frozenset({"x2", "x3"}): -1.0,
            },
        )
        assert value <= 1e-9

    def test_subadditivity_implied(self):
        # h(123) <= h(1) + h(2) + h(3)
        value = self._max_over_cone(
            3,
            {
                frozenset({"x1", "x2", "x3"}): 1.0,
                frozenset({"x1"}): -1.0,
                frozenset({"x2"}): -1.0,
                frozenset({"x3"}): -1.0,
            },
        )
        assert value <= 1e-9

    def test_non_inequality_not_implied(self):
        # h(1) + h(2) <= h(12) is NOT valid for polymatroids
        value = self._max_over_cone(
            3,
            {
                frozenset({"x1"}): 1.0,
                frozenset({"x2"}): 1.0,
                frozenset({"x1", "x2"}): -1.0,
            },
        )
        assert value > 0.1


class TestProofSteps:
    def setup_method(self):
        # masks over x1, x2, x3: x1=1, x2=2, x3=4
        self.space = SubsetSpace(["x1", "x2", "x3"])

    def test_submod_requires_incomparable(self):
        with pytest.raises(ValueError):
            submod(0b001, 0b011)  # I ⊆ J

    def test_step_weight_positive(self):
        with pytest.raises(ValueError):
            mono(0b001, 0b011, weight=0)

    def test_submod_consume_produce(self):
        step = submod(0b011, 0b101)  # I = {1,2}, J = {1,3}
        assert step.consumed() == [((0b001, 0b011), Fraction(1))]
        assert step.produced() == [((0b101, 0b111), Fraction(1))]

    def test_apply_fails_without_budget(self):
        step = compose(0b001, 0b011)
        with pytest.raises(ValueError):
            step.apply(make_vector({(0b001, 0b011): 1}))  # missing h(X|∅)

    def test_decompose_then_compose_roundtrip(self):
        delta = make_vector({(0, 0b011): 1})
        seq = ProofSequence([decompose(0b001, 0b011),
                             compose(0b001, 0b011)])
        final = seq.run(delta)
        assert final == make_vector({(0, 0b011): 1})

    def test_monotonicity_projects(self):
        delta = make_vector({(0, 0b111): 1})
        final = ProofSequence([mono(0b101, 0b111)]).run(delta)
        assert final == make_vector({(0, 0b101): 1})


class TestPaperProofSequences:
    """Machine-check the §5 running-example proof sequences."""

    def setup_method(self):
        self.space = SubsetSpace(["x1", "x2", "x3"])
        self.m = self.space.mask

    def test_preprocessing_sequence_2reach(self):
        # h_S(1) + h_S(3) >= h_S(13): submodularity then composition
        x1 = self.m({"x1"})
        x3 = self.m({"x3"})
        x13 = self.m({"x1", "x3"})
        delta = make_vector({(0, x1): 1, (0, x3): 1})
        seq = ProofSequence([
            submod(x1, x3),          # h(1|∅) -> h(13|3)
            compose(x3, x13),        # h(13|3) + h(3|∅) -> h(13)
        ])
        assert seq.verifies(delta, make_vector({(0, x13): 1}))

    def test_online_sequence_2reach(self):
        # h_T(2|1) + h_T(2|3) + 2 h_T(13) >= 2 h_T(123)
        x1, x3 = self.m({"x1"}), self.m({"x3"})
        x12 = self.m({"x1", "x2"})
        x23 = self.m({"x2", "x3"})
        x13 = self.m({"x1", "x3"})
        full = self.space.full_mask
        delta = make_vector({(x1, x12): 1, (x3, x23): 1, (0, x13): 2})
        seq = ProofSequence([
            submod(x12, x13),        # h(12|1) -> h(123|13)
            submod(x23, x13),        # h(23|3) -> h(123|13)
            compose(x13, full, weight=2),
        ])
        assert seq.verifies(delta, make_vector({(0, full): 2}))

    def test_wrong_target_rejected(self):
        x1, x3 = self.m({"x1"}), self.m({"x3"})
        x13 = self.m({"x1", "x3"})
        delta = make_vector({(0, x1): 1, (0, x3): 1})
        seq = ProofSequence([submod(x1, x3), compose(x3, x13)])
        # claiming 2 units of h(13) must fail
        assert not seq.verifies(delta, make_vector({(0, x13): 2}))

    def test_overconsuming_sequence_rejected(self):
        x1, x3 = self.m({"x1"}), self.m({"x3"})
        delta = make_vector({(0, x1): 1})
        seq = ProofSequence([submod(x1, x3), submod(x1, x3)])
        assert not seq.verifies(delta, make_vector({}))

    def test_vector_ge(self):
        a = make_vector({(0, 1): 2})
        b = make_vector({(0, 1): 1})
        assert vector_ge(a, b)
        assert not vector_ge(b, a)
