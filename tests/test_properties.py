"""Property-based tests (hypothesis) for the framework's core invariants.

These fuzz the end-to-end pipeline on random inputs:

* index answers == from-scratch answers for random graphs/budgets/requests;
* OBJ(S) is non-increasing in S and bounded by the BFS fallback;
* split partitions are exact partitions with the promised degree bounds;
* proof-step algebra conserves the ⟨δ, h⟩ budget on random polymatroids
  (every step's consumed-minus-produced pairing is nonnegative on sampled
  polymatroids built from random distributions).
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import CQAPIndex, SplitStep
from repro.data import Database, Relation, singleton_request
from repro.query import Atom
from repro.query.catalog import k_path_cqap
from repro.tradeoff import TwoPhaseRule, symbolic_program
from repro.query.hypergraph import varset


edges_strategy = st.sets(
    st.tuples(st.integers(0, 12), st.integers(0, 12)),
    min_size=5, max_size=60,
)


@st.composite
def graph_and_budget(draw):
    edges = draw(edges_strategy)
    exponent = draw(st.floats(0.5, 2.0))
    budget = max(2, int(len(edges) ** exponent))
    return edges, budget


class TestIndexEquivalence:
    @given(data=graph_and_budget(),
           requests=st.lists(st.tuples(st.integers(0, 13),
                                       st.integers(0, 13)),
                             min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_two_reach_index_matches_scratch(self, data, requests):
        edges, budget = data
        cqap = k_path_cqap(2)
        db = Database([
            Relation("R1", ("x1", "x2"), edges),
            Relation("R2", ("x2", "x3"), edges),
        ])
        index = CQAPIndex(cqap, db, budget).preprocess()
        for request in requests:
            got = index.answer_boolean(request)
            expected = not cqap.answer_from_scratch(
                db, singleton_request(cqap.access, request)
            ).is_empty()
            assert got == expected

    @given(edges=edges_strategy)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_batch_equals_union_of_singles(self, edges):
        cqap = k_path_cqap(2)
        db = Database([
            Relation("R1", ("x1", "x2"), edges),
            Relation("R2", ("x2", "x3"), edges),
        ])
        index = CQAPIndex(cqap, db, len(edges)).preprocess()
        requests = [(i, j) for i in range(0, 13, 4)
                    for j in range(0, 13, 4)]
        batch = index.answer_batch(requests)
        singles = {
            r for r in requests if index.answer_boolean(r)
        }
        assert set(batch.tuples) == singles


class TestObjProperties:
    @given(budgets=st.lists(st.floats(0.0, 2.5), min_size=2, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_obj_non_increasing(self, budgets):
        cqap = k_path_cqap(2)
        prog = symbolic_program(cqap)
        rule = TwoPhaseRule(
            frozenset({varset({"x1", "x3"})}),
            frozenset({varset({"x1", "x2", "x3"})}),
        )
        budgets = sorted(budgets)
        values = [prog.obj_for_budget(rule, y).log_time for y in budgets]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-7

    @given(y=st.floats(0.0, 2.5))
    @settings(max_examples=20, deadline=None)
    def test_obj_bounded_by_bfs(self, y):
        # h_T(123) <= h_T(13) + h_T(2) <= logQ + logD always
        cqap = k_path_cqap(2)
        prog = symbolic_program(cqap)
        rule = TwoPhaseRule(
            frozenset({varset({"x1", "x3"})}),
            frozenset({varset({"x1", "x2", "x3"})}),
        )
        assert prog.obj_for_budget(rule, y).log_time <= 1.0 + 1e-7


class TestSplitProperties:
    @given(
        rows=st.sets(st.tuples(st.integers(0, 8), st.integers(0, 30)),
                     min_size=1, max_size=80),
        threshold=st.integers(1, 12),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_is_exact(self, rows, threshold):
        rel = Relation("R", ("x1", "x2"), rows)
        step = SplitStep(Atom("R", ("x1", "x2")), ("x1",), threshold)
        heavy, light = step.partition(rel)
        assert heavy.tuples | light.tuples == rel.tuples
        assert not heavy.tuples & light.tuples
        if len(light):
            assert light.degree(("x1",)) <= threshold
        if len(heavy):
            # every heavy key exceeds the threshold
            idx = heavy.index_on(("x1",))
            assert all(len(v) > threshold for v in idx.values())
            # heavy key count bound N/threshold
            assert len(idx) <= len(rel) / threshold


class TestPolymatroidSampling:
    """Entropy functions of random distributions must satisfy every
    elemental inequality the cone module emits (Γ*_n ⊆ Γ_n)."""

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_entropy_in_cone(self, seed):
        from repro.polymatroid import SubsetSpace, elemental_inequalities

        rng = random.Random(seed)
        # a joint distribution over 3 binary variables
        weights = [rng.random() + 1e-9 for _ in range(8)]
        total = sum(weights)
        probs = [w / total for w in weights]

        def entropy(mask: int) -> float:
            marginal = {}
            for outcome in range(8):
                key = outcome & mask
                marginal[key] = marginal.get(key, 0.0) + probs[outcome]
            return -sum(p * math.log2(p) for p in marginal.values()
                        if p > 0)

        space = SubsetSpace(["a", "b", "c"])
        for coeffs, _label in elemental_inequalities(space):
            value = sum(c * entropy(mask) for mask, c in coeffs.items())
            assert value >= -1e-9
