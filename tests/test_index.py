"""Integration tests for CQAPIndex: the preprocess-once/answer-many pipeline.

Every test compares index answers against from-scratch evaluation — across
query shapes (paths, square, set disjointness, hierarchical), budgets, skew,
and request types (hit/miss singletons, batches).
"""

import math
import random

import pytest

from repro.core import CQAPIndex, PlanningError
from repro.data import (
    Database,
    Relation,
    path_database,
    singleton_request,
    square_database,
    star_database,
)
from repro.decomposition import trivial_pmtds
from repro.query.catalog import (
    k_path_cqap,
    k_set_disjointness_cqap,
    square_cqap,
)
from repro.util.counters import Counters


def check_index_against_scratch(cqap, db, index, access_domain, trials=40,
                                seed=0, full=None):
    """Assert index answers == from-scratch answers on hits and misses."""
    rng = random.Random(seed)
    if full is None:
        full = cqap.evaluate(db)
    hits = list(full.project(cqap.access).tuples) if len(full) else []
    for _ in range(trials):
        if hits and rng.random() < 0.5:
            request = rng.choice(hits)
        else:
            request = tuple(rng.randrange(access_domain)
                            for _ in cqap.access)
        got = index.answer(request)
        expected = cqap.answer_from_scratch(
            db, singleton_request(cqap.access, request)
        )
        assert got.project(cqap.head).tuples == expected.tuples, (
            f"mismatch at {request}"
        )


class TestTwoReach:
    def setup_method(self):
        self.cqap = k_path_cqap(2)
        self.db = path_database(2, 400, 80, seed=2, skew_hubs=3)

    @pytest.mark.parametrize("budget_exp", [0.7, 1.0, 1.5, 2.0])
    def test_correct_across_budgets(self, budget_exp):
        budget = int(self.db.size ** budget_exp)
        index = CQAPIndex(self.cqap, self.db, budget).preprocess()
        check_index_against_scratch(self.cqap, self.db, index, 80,
                                    trials=30, seed=int(budget_exp * 10))

    def test_space_within_budget_slack(self):
        budget = self.db.size
        index = CQAPIndex(self.cqap, self.db, budget,
                          budget_slack=8.0).preprocess()
        assert index.stored_tuples <= 8 * budget + 1

    def test_batch_answers(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size).preprocess()
        full = self.cqap.evaluate(self.db)
        some = list(full.tuples)[:10]
        got = index.answer_batch(some + [(10**9, 10**9)])
        assert got.tuples == set(some)

    def test_answer_before_preprocess_raises(self):
        index = CQAPIndex(self.cqap, self.db, 100)
        with pytest.raises(RuntimeError):
            index.answer((1, 2))

    def test_predicted_time_decreases_with_budget(self):
        n = self.db.size
        small = CQAPIndex(self.cqap, self.db, int(n ** 0.8)).preprocess()
        large = CQAPIndex(self.cqap, self.db, int(n ** 1.6)).preprocess()
        assert large.predicted_log_time <= small.predicted_log_time + 1e-9

    def test_measured_degrees_tighten_plans(self):
        n = self.db.size
        plain = CQAPIndex(self.cqap, self.db, n).preprocess()
        measured = CQAPIndex(self.cqap, self.db, n,
                             measure_degrees=True).preprocess()
        assert measured.predicted_log_time <= plain.predicted_log_time + 1e-9
        check_index_against_scratch(self.cqap, self.db, measured, 80,
                                    trials=20, seed=77)


class TestThreeReach:
    def setup_method(self):
        self.cqap = k_path_cqap(3)
        self.db = path_database(3, 300, 60, seed=5, skew_hubs=3)

    @pytest.mark.parametrize("budget_exp", [1.0, 1.4, 1.9])
    def test_correct_across_budgets(self, budget_exp):
        budget = int(self.db.size ** budget_exp)
        index = CQAPIndex(self.cqap, self.db, budget).preprocess()
        check_index_against_scratch(self.cqap, self.db, index, 60,
                                    trials=25, seed=int(budget_exp * 7))

    def test_uses_figure3_pmtds(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size)
        labels = sorted(tuple(p.labels) for p in index.pmtds)
        assert ("S14",) in labels
        assert ("T134", "S13") in labels
        assert len(index.rules) == 4  # Table 1

    def test_shared_relation_graph(self):
        db = path_database(3, 250, 70, seed=9, shared_relation=True)
        index = CQAPIndex(self.cqap, db, db.size).preprocess()
        check_index_against_scratch(self.cqap, db, index, 70,
                                    trials=20, seed=4)


class TestSquare:
    def test_correct(self):
        cqap = square_cqap()
        db = square_database(300, 60, seed=1, skew_hubs=2)
        index = CQAPIndex(cqap, db, db.size).preprocess()
        check_index_against_scratch(cqap, db, index, 60, trials=25, seed=3)

    def test_high_budget_materializes(self):
        cqap = square_cqap()
        db = square_database(120, 40, seed=2)
        # budget over the worst-case S13 bound (D^2) -> materialize-all plans
        index = CQAPIndex(cqap, db, db.size ** 2 + 1).preprocess()
        assert any(plan.materialize_all for plan in index.plans)
        check_index_against_scratch(cqap, db, index, 40, trials=20, seed=8)


class TestSetDisjointness:
    @pytest.mark.parametrize("k", [2, 3])
    def test_correct(self, k):
        cqap = k_set_disjointness_cqap(k)
        db = star_database(k, 400, 60, seed=k, heavy_sets=2)
        index = CQAPIndex(cqap, db, db.size).preprocess()
        check_index_against_scratch(cqap, db, index, 60, trials=20, seed=k)

    def test_enumeration_variant(self):
        cqap = k_set_disjointness_cqap(2, boolean=False)
        db = star_database(2, 300, 50, seed=4, heavy_sets=2)
        index = CQAPIndex(cqap, db, db.size).preprocess()
        full = cqap.evaluate(db)
        hit = next(iter(full.project(("x1", "x2")).tuples))
        got = index.answer(hit)
        expected = cqap.answer_from_scratch(
            db, singleton_request(("x1", "x2"), hit)
        )
        assert got.project(cqap.head).tuples == expected.tuples
        # the answer enumerates the intersection elements
        assert all(len(row) == 3 for row in got.tuples)


class TestTrivialPmtds:
    def test_trivial_set_works(self):
        cqap = k_path_cqap(2)
        db = path_database(2, 200, 50, seed=6)
        index = CQAPIndex(cqap, db, db.size,
                          pmtds=trivial_pmtds(cqap)).preprocess()
        check_index_against_scratch(cqap, db, index, 50, trials=20, seed=1)

    def test_huge_budget_stores_answers(self):
        cqap = k_path_cqap(2)
        db = path_database(2, 150, 40, seed=6)
        index = CQAPIndex(cqap, db, db.size ** 2 + 1,
                          pmtds=trivial_pmtds(cqap)).preprocess()
        assert index.plans[0].materialize_all
        ctr = Counters()
        full = cqap.evaluate(db)
        hit = next(iter(full.tuples))
        assert index.answer_boolean(hit, counters=ctr)
        # answering probes the stored S-view; online work stays tiny
        assert ctr.online_work < 100


class TestStats:
    def test_stats_populated(self):
        cqap = k_path_cqap(2)
        db = path_database(2, 200, 50, seed=8, skew_hubs=2)
        index = CQAPIndex(cqap, db, db.size).preprocess()
        assert index.stats.preprocess_counters["stores"] >= 0
        assert index.stats.plans
        index.answer((1, 2))
        assert index.stats.last_answer_counters["online_work"] > 0

    def test_describe_mentions_rules(self):
        cqap = k_path_cqap(2)
        db = path_database(2, 100, 30, seed=8)
        index = CQAPIndex(cqap, db, db.size).preprocess()
        text = index.describe()
        assert "T123" in text and "S13" in text


class TestProjectionHead:
    """CQAPs with H ⊋ A: the answer enumerates witnesses, and free-connex
    filtering must reject decompositions whose non-head variables sit above
    head variables."""

    def setup_method(self):
        from repro.query import Atom, CQAP

        # 3-path returning the witness x2 along with the endpoints
        self.cqap = CQAP(
            ("x1", "x2", "x4"), ("x1", "x4"),
            [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3")),
             Atom("R3", ("x3", "x4"))],
            name="path3_witness",
        )
        self.db = path_database(3, 250, 50, seed=17, skew_hubs=2)

    def test_enumeration_respects_free_connex(self):
        from repro.decomposition import enumerate_pmtds

        pmtds = enumerate_pmtds(self.cqap)
        assert pmtds
        head = self.cqap.head_set
        for pmtd in pmtds:
            assert pmtd.td.is_free_connex_wrt(pmtd.root, head)
            # the {x1,x3,x4}->{x1,x2,x3} tree is NOT free-connex here
            bags = sorted(tuple(sorted(b)) for b in pmtd.td.bags.values())
            assert bags != [("x1", "x2", "x3"), ("x1", "x3", "x4")]

    def test_index_enumerates_witnesses(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size).preprocess()
        full = self.cqap.evaluate(self.db)
        rng = random.Random(1)
        hits = sorted(full.project(("x1", "x4")).tuples)
        for _ in range(15):
            if hits and rng.random() < 0.6:
                request = rng.choice(hits)
            else:
                request = (rng.randrange(50), rng.randrange(50))
            got = index.answer(request)
            expected = self.cqap.answer_from_scratch(
                self.db, singleton_request(("x1", "x4"), request)
            )
            assert got.project(self.cqap.head).tuples == expected.tuples

    def test_batch_with_witnesses(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size).preprocess()
        full = self.cqap.evaluate(self.db)
        pairs = sorted(full.project(("x1", "x4")).tuples)[:5]
        got = index.answer_batch(pairs + [(10**9, 10**9)])
        expected = self.cqap.answer_from_scratch(
            self.db, Relation("Q", ("x1", "x4"), pairs)
        )
        assert got.project(self.cqap.head).tuples == expected.tuples


class TestBatchPlanning:
    def test_request_size_changes_plan(self):
        # planning for |Q| = D (batch workloads) must predict more online
        # time than planning for |Q| = 1 at the same budget
        cqap = k_path_cqap(2)
        db = path_database(2, 300, 60, seed=19, skew_hubs=2)
        single = CQAPIndex(cqap, db, db.size, request_size=1).preprocess()
        batch = CQAPIndex(cqap, db, db.size,
                          request_size=db.size).preprocess()
        assert batch.predicted_log_time >= single.predicted_log_time - 1e-9
