"""Tests for heavy/light split steps and subproblem spawning."""

import pytest

from repro.core.split import HEAVY, LIGHT, SplitStep, apply_splits
from repro.data import Database, Relation
from repro.query import Atom, CQAP
from repro.query.catalog import k_path_cqap


def skewed_relation():
    # key 0 has degree 5, keys 1..4 have degree 1
    rows = [(0, i) for i in range(5)] + [(i, 100 + i) for i in range(1, 5)]
    return Relation("R1", ("x1", "x2"), rows)


class TestSplitStep:
    def test_partition_degrees(self):
        rel = skewed_relation()
        step = SplitStep(Atom("R1", ("x1", "x2")), ("x1",), threshold=2)
        heavy, light = step.partition(rel)
        assert len(heavy) == 5      # the degree-5 key
        assert len(light) == 4
        assert heavy.degree(("x1",)) == 5
        assert light.degree(("x1",)) <= 2

    def test_partition_covers_everything(self):
        rel = skewed_relation()
        step = SplitStep(Atom("R1", ("x1", "x2")), ("x1",), threshold=3)
        heavy, light = step.partition(rel)
        assert heavy.tuples | light.tuples == rel.tuples
        assert not heavy.tuples & light.tuples

    def test_heavy_key_count_bound(self):
        rel = skewed_relation()
        step = SplitStep(Atom("R1", ("x1", "x2")), ("x1",), threshold=2)
        heavy, _ = step.partition(rel)
        assert len(heavy.key_values(("x1",))) <= len(rel) / 2

    def test_invalid_key(self):
        with pytest.raises(ValueError):
            SplitStep(Atom("R", ("a", "b")), ("a", "b"), 2)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SplitStep(Atom("R", ("a", "b")), ("a",), 0.5)


class TestApplySplits:
    def setup_method(self):
        self.cqap = k_path_cqap(2)
        self.db = Database()
        rows1 = [(0, i) for i in range(6)] + [(1, 10), (2, 11)]
        rows2 = [(i, 0) for i in range(6)] + [(20, 1), (21, 2)]
        self.db.add(Relation("R1", ("a", "b"), rows1))
        self.db.add(Relation("R2", ("a", "b"), rows2))
        self.dc = self.cqap.default_constraints(self.db)

    def test_no_splits_single_subproblem(self):
        subs = apply_splits(self.cqap, self.db, [], self.dc)
        assert len(subs) == 1
        assert subs[0].signature == ()
        assert len(subs[0].relations["R1"]) == 8

    def test_two_splits_four_subproblems(self):
        splits = [
            SplitStep(Atom("R1", ("x1", "x2")), ("x1",), 3),
            SplitStep(Atom("R2", ("x2", "x3")), ("x3",), 3),
        ]
        subs = apply_splits(self.cqap, self.db, splits, self.dc)
        assert [s.signature for s in subs] == [
            (HEAVY, HEAVY), (HEAVY, LIGHT), (LIGHT, HEAVY), (LIGHT, LIGHT)
        ]
        # pieces partition both relations
        hh, hl, lh, ll = subs
        assert hh.relations["R1"].tuples == hl.relations["R1"].tuples
        assert (hh.relations["R1"].tuples | lh.relations["R1"].tuples
                == set(self.db["R1"].tuples))

    def test_refined_constraints(self):
        splits = [SplitStep(Atom("R1", ("x1", "x2")), ("x1",), 3)]
        heavy_sub, light_sub = apply_splits(
            self.cqap, self.db, splits, self.dc
        )
        # heavy piece: few distinct x1 keys (8 tuples / threshold 3)
        bound = heavy_sub.constraints.bound((), ("x1",))
        assert bound == pytest.approx(8 / 3)
        # light piece: degree constraint
        light_bound = light_sub.constraints.bound(("x1",), ("x1", "x2"))
        assert light_bound == 3

    def test_piece_cardinalities_recorded(self):
        splits = [SplitStep(Atom("R1", ("x1", "x2")), ("x1",), 3)]
        heavy_sub, light_sub = apply_splits(
            self.cqap, self.db, splits, self.dc
        )
        assert heavy_sub.constraints.bound((), ("x1", "x2")) == 6
        assert light_sub.constraints.bound((), ("x1", "x2")) == 2

    def test_sequential_splits_same_relation(self):
        splits = [
            SplitStep(Atom("R1", ("x1", "x2")), ("x1",), 3),
            SplitStep(Atom("R1", ("x1", "x2")), ("x2",), 1),
        ]
        subs = apply_splits(self.cqap, self.db, splits, self.dc)
        assert len(subs) == 4
        union = set()
        for sub in subs:
            if sub.signature[0] == HEAVY:
                union |= sub.relations["R1"].tuples
        assert union == {
            row for row in self.db["R1"].tuples
            if row[0] == 0
        }

    def test_atom_relation_rebinds_schema(self):
        subs = apply_splits(self.cqap, self.db, [], self.dc)
        rel = subs[0].atom_relation(Atom("R1", ("x1", "x2")))
        assert rel.schema == ("x1", "x2")
