"""Unit tests for the brute-force oracle and the diff reporter.

The oracle is the arbiter for every other execution path, so it gets its
own tests against hand-computed answers and against the (independent)
textbook evaluator in ``repro.query.cq``.
"""

import pytest

from repro.data import Database, Relation
from repro.oracle import (
    BindingDiff,
    OracleMismatch,
    answer_rows,
    assert_equivalent,
    compare_answers,
    oracle_evaluate,
    oracle_probe,
    oracle_probe_many,
)
from repro.query import Atom, CQAP, ConjunctiveQuery
from repro.query.catalog import k_path_cqap, k_set_disjointness_cqap


@pytest.fixture
def path2_db():
    return Database([
        Relation("R1", ("a", "b"), [(1, 2), (1, 3), (4, 5)]),
        Relation("R2", ("a", "b"), [(2, 9), (3, 9), (5, 9), (9, 1)]),
    ])


class TestOracleEvaluate:
    def test_hand_computed_join(self, path2_db):
        cq = ConjunctiveQuery(
            ("x1", "x3"),
            [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))],
        )
        assert oracle_evaluate(cq, path2_db) == frozenset(
            {(1, 9), (4, 9)}
        )

    def test_head_order_respected(self, path2_db):
        cq = ConjunctiveQuery(
            ("x3", "x1"),
            [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))],
        )
        assert oracle_evaluate(cq, path2_db) == frozenset(
            {(9, 1), (9, 4)}
        )

    def test_boolean_head(self, path2_db):
        sat = ConjunctiveQuery(
            (), [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))],
        )
        assert oracle_evaluate(sat, path2_db) == frozenset({()})
        empty_db = Database([
            Relation("R1", ("a", "b"), []),
            Relation("R2", ("a", "b"), [(1, 2)]),
        ])
        assert oracle_evaluate(sat, empty_db) == frozenset()

    def test_binding_restricts(self, path2_db):
        cq = ConjunctiveQuery(
            ("x1", "x3"),
            [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))],
        )
        assert oracle_evaluate(cq, path2_db, {"x1": 4}) == frozenset(
            {(4, 9)}
        )
        assert oracle_evaluate(cq, path2_db, {"x1": 2}) == frozenset()

    def test_unknown_binding_variable_rejected(self, path2_db):
        cq = ConjunctiveQuery(("x1",), [Atom("R1", ("x1", "x2"))])
        with pytest.raises(ValueError, match="do not occur"):
            oracle_evaluate(cq, path2_db, {"zz": 1})

    def test_matches_textbook_evaluator_on_catalog_queries(self):
        from repro.data.generators import path_database, star_database

        for cqap, db in [
            (k_path_cqap(3), path_database(k=3, n_edges=40, domain=8,
                                           seed=3)),
            (k_set_disjointness_cqap(2),
             star_database(k=2, n_edges=30, domain=10, seed=5)),
        ]:
            expected = frozenset(cqap.evaluate(db).tuples)
            assert oracle_evaluate(cqap, db) == expected

    def test_arity_mismatch_rejected(self):
        db = Database([Relation("R1", ("a", "b", "c"), [(1, 2, 3)])])
        cq = ConjunctiveQuery(("x1",), [Atom("R1", ("x1", "x2"))])
        with pytest.raises(ValueError, match="arity"):
            oracle_evaluate(cq, db)


class TestOracleProbe:
    def test_probe_binds_access_pattern(self, path2_db):
        cqap = CQAP(("x1", "x3"), ("x1",),
                    [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))])
        assert oracle_probe(cqap, path2_db, (1,)) == frozenset({(1, 9)})
        assert oracle_probe(cqap, path2_db, (7,)) == frozenset()

    def test_probe_scalar_and_arity_check(self, path2_db):
        cqap = CQAP(("x1", "x3"), ("x1",),
                    [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))])
        assert oracle_probe(cqap, path2_db, 4) == frozenset({(4, 9)})
        with pytest.raises(ValueError, match="arity"):
            oracle_probe(cqap, path2_db, (1, 2))

    def test_probe_many_collapses_duplicates(self, path2_db):
        cqap = CQAP(("x1", "x3"), ("x1",),
                    [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))])
        answers = oracle_probe_many(cqap, path2_db, [(1,), (4,), (1,)])
        assert set(answers) == {(1,), (4,)}
        assert answers[(1,)] == frozenset({(1, 9)})

    def test_empty_access_pattern(self, path2_db):
        cqap = CQAP(("x1",), (),
                    [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))])
        assert oracle_probe(cqap, path2_db, ()) == frozenset({(1,), (4,)})


class TestDiffReporter:
    def test_answer_rows_reorders_columns(self):
        rel = Relation("ans", ("b", "a"), [(1, 2), (3, 4)])
        assert answer_rows(rel, ("a", "b")) == frozenset({(2, 1), (4, 3)})
        with pytest.raises(ValueError, match="does not match head"):
            answer_rows(rel, ("a", "c"))

    def test_equivalent_answers_pass(self):
        expected = {(1,): frozenset({(1, 2)}), (3,): frozenset()}
        report = assert_equivalent(expected, dict(expected), path="p")
        assert report.ok and report.bindings_checked == 2
        assert "OK" in report.describe()

    def test_missing_and_extra_pinpointed(self):
        expected = {(1,): frozenset({(1, 2), (1, 3)})}
        actual = {(1,): frozenset({(1, 3), (1, 4)})}
        report = compare_answers(expected, actual, path="p",
                                 context={"seed": 7})
        assert not report.ok
        (diff,) = report.diffs
        assert diff.binding == (1,)
        assert diff.missing == frozenset({(1, 2)})
        assert diff.extra == frozenset({(1, 4)})
        text = report.describe()
        assert "seed=7" in text and "(1, 2)" in text and "(1, 4)" in text

    def test_unanswered_binding_is_all_missing(self):
        expected = {(1,): frozenset({(1, 2)})}
        report = compare_answers(expected, {}, path="p")
        (diff,) = report.diffs
        assert diff.missing == frozenset({(1, 2)})
        assert diff.extra == frozenset()

    def test_assert_equivalent_raises_with_report(self):
        expected = {(1,): frozenset({(1, 2)})}
        with pytest.raises(OracleMismatch) as err:
            assert_equivalent(expected, {(1,): frozenset()}, path="p")
        assert isinstance(err.value.report.diffs[0], BindingDiff)
