"""Tests for the randomized workload subsystem (queries/databases/probes).

The contract under test is *reproducibility* (one seed determines the whole
scenario) and *validity* (generated queries satisfy their advertised shape,
databases match the query's relation names and arities, probe streams match
the access pattern).
"""

import random

import pytest

from repro.problems import assert_hierarchical, is_hierarchical
from repro.workloads import (
    DB_PROFILES,
    QUERY_SHAPES,
    make_workload,
    probe_stream,
    random_cqap,
    random_database,
    workload_suite,
)
from repro.workloads.probes import _COLD_BASE

SEEDS = range(40)


class TestRandomCqap:
    @pytest.mark.parametrize("shape", QUERY_SHAPES)
    def test_shapes_generate_valid_cqaps(self, shape):
        for seed in SEEDS:
            cqap = random_cqap(random.Random(seed), shape=shape)
            assert cqap.atoms
            assert cqap.head  # Boolean heads are excluded by design
            assert set(cqap.access) <= set(cqap.head)
            assert set(cqap.head) <= set(cqap.variables)

    def test_hierarchical_shape_is_hierarchical(self):
        for seed in SEEDS:
            cqap = random_cqap(random.Random(seed), shape="hierarchical")
            assert is_hierarchical(cqap)
            assert_hierarchical(cqap)

    def test_variable_count_stays_lp_friendly(self):
        # joint Shannon-flow LPs are exponential in the variable count;
        # the generator promises to stay at <= 6 body variables
        for seed in range(200):
            cqap = random_cqap(random.Random(seed))
            assert len(cqap.variables) <= 6

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown query shape"):
            random_cqap(random.Random(0), shape="mystery")

    def test_deterministic_in_seed(self):
        a = random_cqap(random.Random(123))
        b = random_cqap(random.Random(123))
        assert repr(a) == repr(b)


class TestRandomDatabase:
    def test_relations_match_query_schema(self):
        for seed in SEEDS:
            rng = random.Random(seed)
            cqap = random_cqap(rng)
            db = random_database(cqap, rng)
            for atom in cqap.atoms:
                assert atom.relation in db
                assert len(db[atom.relation].schema) == len(atom.variables)

    @pytest.mark.parametrize("profile", DB_PROFILES)
    def test_profiles_produce_data(self, profile):
        rng = random.Random(7)
        cqap = random_cqap(rng, shape="path")
        db = random_database(cqap, rng, profile=profile)
        assert len(db) == len({a.relation for a in cqap.atoms})

    def test_heavy_profile_plants_a_hub(self):
        rng = random.Random(11)
        cqap = random_cqap(rng, shape="cycle")
        db = random_database(cqap, rng, profile="heavy", max_tuples=24)
        hub_rows = max(
            sum(1 for row in rel.tuples if row[0] == 0) for rel in db
        )
        assert hub_rows >= 2

    def test_unknown_profile_rejected(self):
        rng = random.Random(0)
        cqap = random_cqap(rng, shape="path")
        with pytest.raises(ValueError, match="unknown database profile"):
            random_database(cqap, rng, profile="normal")


class TestProbeStream:
    def test_arity_matches_access_pattern(self):
        for seed in SEEDS:
            rng = random.Random(seed)
            cqap = random_cqap(rng)
            db = random_database(cqap, rng)
            stream = probe_stream(cqap, db, rng, count=5)
            assert len(stream) == 5
            assert all(len(b) == len(cqap.access) for b in stream)

    def test_cold_streams_miss(self):
        rng = random.Random(3)
        cqap = random_cqap(rng, shape="star")
        db = random_database(cqap, rng, profile="uniform")
        if not cqap.access:
            pytest.skip("drew an empty access pattern")
        for binding in probe_stream(cqap, db, rng, kind="cold", count=6):
            assert all(v >= _COLD_BASE for v in binding)

    def test_unknown_kind_rejected(self):
        rng = random.Random(0)
        cqap = random_cqap(rng, shape="path")
        db = random_database(cqap, rng)
        with pytest.raises(ValueError, match="unknown probe kind"):
            probe_stream(cqap, db, rng, kind="tepid")


class TestWorkload:
    def test_same_seed_same_workload(self):
        a = make_workload(99)
        b = make_workload(99)
        assert a.describe() == b.describe()
        assert a.probes == b.probes
        assert {r.name: r.tuples for r in a.db} == \
               {r.name: r.tuples for r in b.db}

    def test_different_seeds_differ(self):
        descriptions = {make_workload(s).describe() for s in range(8)}
        assert len(descriptions) == 8

    def test_pinned_dimensions_are_respected(self):
        wl = make_workload(5, shape="path", profile="zipf",
                           probe_kind="hot", probe_count=4)
        assert wl.shape == "path" and wl.profile == "zipf"
        assert wl.probe_kind == "hot" and len(wl.probes) == 4

    def test_suite_uses_consecutive_seeds(self):
        suite = list(workload_suite(100, 5))
        assert [w.seed for w in suite] == [100, 101, 102, 103, 104]
