"""Negative paths: malformed CQAP inputs fail fast with documented errors.

Construction-time validation in ``query/`` and ``engine/`` must reject bad
inputs at the API boundary — not let them wander into planning and die in
an LP or a hash join with an inscrutable traceback.
"""

import pytest

from repro.core.index import CQAPIndex
from repro.data import Database, Relation
from repro.data.relation import SchemaError
from repro.engine import PreparedQuery, prepare
from repro.query import Atom, CQAP, ConjunctiveQuery


def tiny_db():
    return Database([
        Relation("R1", ("a", "b"), [(1, 2)]),
        Relation("R2", ("a", "b"), [(2, 3)]),
    ])


def tiny_cqap():
    return CQAP(("x1", "x3"), ("x1",),
                [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))])


class TestQueryConstruction:
    def test_access_variable_outside_head_rejected(self):
        with pytest.raises(ValueError, match="must be contained in head"):
            CQAP(("x1",), ("x9",), [Atom("R1", ("x1", "x2"))])

    def test_head_variable_outside_body_rejected(self):
        with pytest.raises(ValueError, match="not in any atom"):
            ConjunctiveQuery(("zz",), [Atom("R1", ("x1", "x2"))])

    def test_repeated_atom_variables_rejected(self):
        with pytest.raises(ValueError, match="repeated variables"):
            Atom("R1", ("x1", "x1"))

    def test_query_without_atoms_rejected(self):
        with pytest.raises(ValueError, match="at least one atom"):
            ConjunctiveQuery(("x1",), [])

    def test_duplicate_schema_vars_rejected(self):
        with pytest.raises(SchemaError, match="duplicate variables"):
            Relation("R", ("a", "a"), [])

    def test_atom_arity_mismatch_fails_at_evaluation_boundary(self):
        db = Database([Relation("R1", ("a", "b", "c"), [(1, 2, 3)])])
        cq = ConjunctiveQuery(("x1",), [Atom("R1", ("x1", "x2"))])
        with pytest.raises(ValueError, match="does not match stored"):
            cq.evaluate(db)


class TestPlanningBoundary:
    def test_missing_relation_fails_at_index_construction(self):
        db = Database([Relation("R1", ("a", "b"), [(1, 2)])])  # no R2
        with pytest.raises(KeyError, match="R2"):
            CQAPIndex(tiny_cqap(), db, space_budget=100)

    def test_empty_relation_is_valid_and_answers_empty(self):
        db = Database([
            Relation("R1", ("a", "b"), []),
            Relation("R2", ("a", "b"), [(2, 3)]),
        ])
        pq = prepare(tiny_cqap(), db, space_budget=100)
        assert len(pq.probe((1,))) == 0
        assert pq.probe_many_boolean([(1,), (2,)]) == \
            {(1,): False, (2,): False}

    def test_incompatible_request_schema_rejected(self):
        cqap = tiny_cqap()
        request = Relation("Q_A", ("u", "v"), [(1, 2)])
        with pytest.raises(ValueError, match="incompatible"):
            cqap.answer_from_scratch(tiny_db(), request)


class TestEngineBoundary:
    def test_unpreprocessed_index_rejected_by_prepared_query(self):
        index = CQAPIndex(tiny_cqap(), tiny_db(), space_budget=100)
        with pytest.raises(ValueError, match="preprocessed"):
            PreparedQuery(index)

    def test_answer_before_preprocess_rejected(self):
        index = CQAPIndex(tiny_cqap(), tiny_db(), space_budget=100)
        with pytest.raises(RuntimeError, match="preprocess"):
            index.answer((1,))

    def test_probe_arity_mismatch_rejected(self):
        pq = prepare(tiny_cqap(), tiny_db(), space_budget=100)
        with pytest.raises(ValueError, match="arity"):
            pq.probe((1, 2))
        with pytest.raises(ValueError, match="arity"):
            pq.probe_many([(1,), (1, 2)])

    def test_index_request_schema_mismatch_rejected(self):
        index = CQAPIndex(tiny_cqap(), tiny_db(), space_budget=100)
        index.preprocess()
        bad = Relation("Q_A", ("u", "v"), [(1, 2)])
        with pytest.raises(ValueError, match="incompatible"):
            index.answer(bad)

    def test_duplicate_relation_name_rejected(self):
        db = tiny_db()
        with pytest.raises(KeyError, match="duplicate"):
            db.add(Relation("R1", ("a", "b"), []))
