"""Tests for the static plan verifier (repro.analysis.verify_plan)."""

import dataclasses

import pytest

from repro import catalog, path_database
from repro.analysis.verify_plan import (
    PlanVerificationError,
    check_index,
    verify_compiled_plans,
    verify_index,
    verify_selection,
)
from repro.core.index import CQAPIndex
from repro.query.hypergraph import varset
from repro.tradeoff.cost import RuleEstimate
from repro.tradeoff.rules import TwoPhaseRule


@pytest.fixture(scope="module")
def built():
    cqap = catalog.k_path_cqap(2)
    db = path_database(k=2, n_edges=160, domain=40, seed=7)
    index = CQAPIndex(cqap, db, space_budget=10.0 ** 6).preprocess()
    return cqap, index


def _fresh_index(space_budget=10.0 ** 6, **kwargs):
    cqap = catalog.k_path_cqap(2)
    db = path_database(k=2, n_edges=160, domain=40, seed=7)
    return CQAPIndex(cqap, db, space_budget=space_budget, **kwargs)


@pytest.fixture(scope="module")
def lean_built():
    """A lean-budget build: rules route T, so compiled plans exist."""
    index = _fresh_index(space_budget=2.0).preprocess()
    assert any(step.plan is not None for step in index.compiled_online)
    return index


class TestGoodIndex:
    def test_built_index_verifies_clean(self, built):
        _cqap, index = built
        assert verify_index(index) == []

    def test_check_index_is_silent_on_clean(self, built):
        _cqap, index = built
        check_index(index)  # must not raise

    def test_preprocess_verify_plans_kwarg(self):
        index = _fresh_index().preprocess(verify_plans=True)
        assert index.ready

    def test_unpreprocessed_index_reports(self):
        issues = verify_index(_fresh_index())
        assert issues and "not preprocessed" in issues[0]

    def test_selection_verifies_standalone(self, built):
        cqap, index = built
        assert verify_selection(index.selection, cqap) == []

    def test_sharded_selection_verifies(self):
        index = _fresh_index(shards=4).preprocess(verify_plans=True)
        assert index.selection.shards == 4
        assert verify_index(index) == []


class TestCorruptedSelection:
    """Deliberately corrupted SelectionResults must be rejected."""

    def test_tampered_space_is_caught(self, built):
        cqap, index = built
        bad = dataclasses.replace(index.selection,
                                  estimated_space=index.selection.estimated_space + 123.0)
        issues = verify_selection(bad, cqap)
        assert any("estimated_space" in i for i in issues)

    def test_tampered_time_is_caught(self, built):
        cqap, index = built
        bad = dataclasses.replace(index.selection,
                                  estimated_time=index.selection.estimated_time * 2 + 17.0)
        issues = verify_selection(bad, cqap)
        assert any("estimated_time" in i for i in issues)

    def test_flipped_route_is_caught(self, built):
        cqap, index = built
        estimates = list(index.selection.estimates)
        target = next(i for i, e in enumerate(estimates)
                      if e.route in ("S", "T"))
        flipped = "T" if estimates[target].route == "S" else "S"
        estimates[target] = estimates[target].routed(flipped)
        bad = dataclasses.replace(index.selection, estimates=estimates)
        issues = verify_selection(bad, cqap)
        assert any("route" in i for i in issues)

    def test_flipped_over_budget_is_caught(self, built):
        cqap, index = built
        bad = dataclasses.replace(index.selection,
                                  over_budget=not index.selection.over_budget)
        issues = verify_selection(bad, cqap)
        assert any("over_budget" in i for i in issues)

    def test_dominated_rule_is_caught(self, built):
        cqap, index = built
        base = index.selection.rules[0]
        # a strict componentwise superset of an existing rule's targets
        extra = varset(cqap.access)
        assert extra not in base.t_targets
        dominated = TwoPhaseRule(base.s_targets,
                                 base.t_targets | frozenset({extra}))
        est = RuleEstimate(rule=dominated, s_target=None,
                           s_space=float("inf"), t_target=extra,
                           t_time=5.0).routed("T")
        bad = dataclasses.replace(
            index.selection,
            rules=list(index.selection.rules) + [dominated],
            estimates=list(index.selection.estimates) + [est],
        )
        issues = verify_selection(bad, cqap)
        assert any("subset-minimal" in i for i in issues)

    def test_foreign_target_is_caught(self, built):
        cqap, index = built
        alien = varset(("zz",))
        rule = TwoPhaseRule(frozenset(), frozenset({alien}))
        est = RuleEstimate(rule=rule, s_target=None, s_space=float("inf"),
                           t_target=alien, t_time=3.0).routed("T")
        bad = dataclasses.replace(
            index.selection,
            rules=list(index.selection.rules) + [rule],
            estimates=list(index.selection.estimates) + [est],
        )
        issues = verify_selection(bad, cqap)
        assert any("outside the query" in i for i in issues)
        assert any("not a T-view schema" in i for i in issues)

    def test_unparallel_estimates_are_caught(self, built):
        cqap, index = built
        bad = dataclasses.replace(index.selection,
                                  estimates=index.selection.estimates[:-1] or [])
        issues = verify_selection(bad, cqap)
        assert any("not parallel" in i for i in issues)


class TestCorruptedIndex:
    def test_stale_stats_snapshot_is_caught(self):
        index = _fresh_index().preprocess()
        index.stats.selection = {**index.stats.selection, "selected_rules": 99}
        issues = verify_index(index)
        assert any("stale" in i for i in issues)

    def test_wrong_stored_tuples_is_caught(self):
        index = _fresh_index().preprocess()
        index.stats.stored_tuples += 5
        issues = verify_index(index)
        assert any("stored_tuples" in i for i in issues)
        with pytest.raises(PlanVerificationError) as exc:
            check_index(index)
        assert "stored_tuples" in str(exc.value)

    def test_unpinned_participant_is_caught(self):
        index = _fresh_index(space_budget=2.0).preprocess()
        plan = next(step.plan for step in index.compiled_online
                    if step.plan is not None)
        part = next(p for level in plan.levels for p in level if p[5])
        part[6] = None
        issues = verify_compiled_plans(index.compiled_online)
        assert any("no hash index pinned" in i for i in issues)

    def test_pinned_request_slot_is_caught(self):
        index = _fresh_index(space_budget=2.0).preprocess()
        plan = next(step.plan for step in index.compiled_online
                    if step.plan is not None)
        culprit = None
        for level in plan.levels:
            for p in level:
                if not p[5]:
                    culprit = p
        if culprit is None:
            pytest.skip("no request-slot participant in this plan")
        culprit[6] = {}
        issues = verify_compiled_plans(index.compiled_online)
        assert any("must never pin" in i for i in issues)


class TestParticipantAccessor:
    def test_iter_participants_matches_raw_specs(self, lean_built):
        index = lean_built
        for step in index.compiled_online:
            if step.plan is None:
                continue
            specs = list(step.plan.iter_participants())
            raw = [p for level in step.plan.levels for p in level]
            assert len(specs) == len(raw)
            for spec, part in zip(specs, raw):
                assert spec.slot == part[0]
                assert spec.bound_key == part[1]
                assert spec.pinnable == part[5]
                assert spec.index is part[6]
                assert spec.membership_index is part[7]
