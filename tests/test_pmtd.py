"""Unit tests for PMTDs: nu-views, redundancy, domination, enumeration."""

import pytest

from repro.decomposition import (
    PMTD,
    TreeDecomposition,
    enumerate_pmtds,
    enumerate_tree_decompositions,
    induced_pmtds,
    minimal_under_domination,
    paper_pmtds_3reach,
    paper_pmtds_4reach,
    paper_pmtds_square,
    trivial_pmtds,
    view_label,
)
from repro.query.catalog import (
    hierarchical_binary_tree_cqap,
    k_path_cqap,
    k_set_disjointness_cqap,
    square_cqap,
)
from repro.query.hypergraph import varset


def two_bag_td():
    return TreeDecomposition(
        {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
    )


class TestViewLabels:
    def test_numeric_suffixes(self):
        assert view_label("T", {"x1", "x3", "x4"}) == "T134"

    def test_fallback(self):
        assert view_label("S", {"a", "b"}) == "S{a,b}"


class TestNuViews:
    def test_all_t_views(self):
        q = k_path_cqap(3)
        p = PMTD(two_bag_td(), 0, (), q.head, q.access)
        assert [v.label for v in p.views.values()] == ["T134", "T123"]

    def test_materialized_child_projects_onto_head_union_parent(self):
        # Figure 1 middle: S13 = chi(child) ∩ (H ∪ chi(parent))
        q = k_path_cqap(3)
        p = PMTD(two_bag_td(), 0, (1,), q.head, q.access)
        assert p.view(1).label == "S13"
        assert p.view(0).label == "T134"

    def test_materialized_root_projects_onto_head(self):
        # Figure 1 right: single bag materialized keeps only x1, x4
        q = k_path_cqap(3)
        td = TreeDecomposition({0: {"x1", "x2", "x3", "x4"}}, [])
        p = PMTD(td, 0, (0,), q.head, q.access)
        assert p.view(0).label == "S14"

    def test_child_of_materialized_parent_empty_view(self):
        # Example 3.6: both bags materialized -> child view becomes empty
        q = k_path_cqap(3)
        p = PMTD(two_bag_td(), 0, (0, 1), q.head, q.access)
        assert p.view(0).variables == {"x1", "x4"}
        assert p.view(1).variables == frozenset()
        assert p.is_redundant()

    def test_child_of_materialized_parent_with_new_head_var(self):
        # if the child carries a head variable the parent lacks, it keeps
        # chi(t) ∩ H
        q = k_set_disjointness_cqap(2)  # head/access {x1,x2}, y joins
        td = TreeDecomposition(
            {0: {"y", "x1", "x2"}, 1: {"y", "x1", "x2"}}, [(0, 1)]
        )
        # artificial but exercises case 2 of the nu definition
        head = ("x1", "x2")
        p = PMTD(td, 0, (0, 1), head, head)
        assert p.view(0).variables == {"x1", "x2"}
        assert p.view(1).variables == frozenset()


class TestValidation:
    def test_access_outside_root_raises(self):
        q = k_path_cqap(3)
        with pytest.raises(ValueError):
            PMTD(two_bag_td(), 1, (), q.head, q.access)

    def test_mat_set_must_be_descendant_closed(self):
        q = k_path_cqap(3)
        with pytest.raises(ValueError):
            PMTD(two_bag_td(), 0, (0,), q.head, q.access)

    def test_access_must_be_in_head(self):
        td = TreeDecomposition({0: {"x1", "x2"}}, [])
        with pytest.raises(ValueError):
            PMTD(td, 0, (), head={"x1"}, access={"x1", "x2"})


class TestRedundancyDomination:
    def test_figure1_pmtds_non_redundant(self):
        for p in paper_pmtds_3reach():
            assert not p.is_redundant()

    def test_figure1_pmtds_pairwise_non_dominating(self):
        paper = paper_pmtds_3reach()
        assert len(minimal_under_domination(paper)) == len(paper)

    def test_single_bag_t_dominates_two_bag(self):
        # Example 3.6: (T1234) dominates (T134, T123)
        q = k_path_cqap(3)
        one = PMTD(
            TreeDecomposition({0: {"x1", "x2", "x3", "x4"}}, []),
            0, (), q.head, q.access,
        )
        two = PMTD(two_bag_td(), 0, (), q.head, q.access)
        assert two.dominated_by(one)
        assert not one.dominated_by(two)
        kept = minimal_under_domination([one, two])
        assert len(kept) == 1
        assert kept[0] is two

    def test_s_and_t_views_not_interchangeable(self):
        q = k_path_cqap(3)
        paper = paper_pmtds_3reach()
        t_based = paper[0]   # (T134, T123)
        s_based = paper[1]   # (T134, S13)
        assert not t_based.dominated_by(s_based)
        assert not s_based.dominated_by(t_based)


class TestEnumeration:
    def test_three_reach_matches_figure3(self):
        enumerated = enumerate_pmtds(k_path_cqap(3))
        paper = paper_pmtds_3reach()
        assert {p.signature() for p in enumerated} == {
            p.signature() for p in paper
        }

    def test_square_matches_figure2(self):
        # The enumeration may root the two-bag decomposition at either bag
        # (the orientations mutually dominate); compare view multisets.
        enumerated = enumerate_pmtds(square_cqap())
        paper = paper_pmtds_square()

        def views(p):
            return tuple(sorted((v.kind, tuple(sorted(v.variables)))
                                for v in p.views.values()))

        assert {views(p) for p in enumerated} == {views(p) for p in paper}

    def test_two_reach_pmtds(self):
        # §E.6: only (T123) and (S13)
        enumerated = enumerate_pmtds(k_path_cqap(2))
        labels = sorted(tuple(p.labels) for p in enumerated)
        assert labels == [("S13",), ("T123",)]

    def test_set_disjointness_pmtds(self):
        # §6.1: single node decomposition, M empty or full
        enumerated = enumerate_pmtds(k_set_disjointness_cqap(2))
        kinds = sorted(tuple(p.labels) for p in enumerated)
        assert len(enumerated) == 2
        assert any(lbl[0].startswith("S") for lbl in kinds)
        assert any(lbl[0].startswith("T") for lbl in kinds)

    def test_four_reach_contains_paper_eleven(self):
        enumerated = enumerate_pmtds(k_path_cqap(4), max_bags=2,
                                     filter_dominating=False)
        enum_sigs = {p.signature() for p in enumerated}
        for p in paper_pmtds_4reach():
            assert p.signature() in enum_sigs, f"missing {p}"

    def test_decomposition_enumeration_nonredundant(self):
        q = k_path_cqap(3)
        tds = enumerate_tree_decompositions(q.access_hypergraph(), max_bags=3)
        assert all(td.is_non_redundant() for td in tds)
        assert all(td.covers(q.access_hypergraph()) for td in tds)


class TestTrivialAndInduced:
    def test_trivial_pmtds(self):
        q = square_cqap()
        trivials = trivial_pmtds(q)
        assert len(trivials) == 2
        kinds = sorted(p.labels[0][0] for p in trivials)
        assert kinds == ["S", "T"]
        # S-view projects onto the head
        s_pmtd = [p for p in trivials if p.labels[0].startswith("S")][0]
        assert s_pmtd.view(0).variables == q.head_set

    def test_induced_from_path_decomposition(self):
        # Example 6.3's decomposition for 4-reach
        q = k_path_cqap(4)
        td = TreeDecomposition(
            {0: {"x1", "x2", "x4", "x5"}, 1: {"x2", "x3", "x4"}}, [(0, 1)]
        )
        induced = induced_pmtds(q, td, 0)
        labels = sorted(tuple(p.labels) for p in induced)
        # M=∅ -> (T1245, T234); M={1} -> (T1245, S24); M={0,1} -> merged S15
        assert ("T1245", "T234") in labels
        assert ("T1245", "S24") in labels
        assert ("S15",) in labels

    def test_induced_respects_antichains(self):
        q = hierarchical_binary_tree_cqap()
        # Figure 6b decomposition
        td = TreeDecomposition(
            {
                0: {"x", "z1", "z2", "z3", "z4"},
                1: {"x", "y1", "z1", "z2"},
                2: {"x", "y2", "z3", "z4"},
            },
            [(0, 1), (0, 2)],
        )
        induced = induced_pmtds(q, td, 0)
        # antichains: {}, {1}, {2}, {1,2}, {0} -> five PMTDs
        assert len(induced) == 5
