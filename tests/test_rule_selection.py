"""Budgeted rule selection: streamed generation, cost model, beam search.

Three layers of protection for the §4.2 rule machinery:

* **property tests** (hypothesis): the streamed frontier sweep must equal
  the eager cartesian-product reference on every random PMTD subset small
  enough to enumerate eagerly, and its output must be subset-minimal in
  the Observation E.1 sense;
* **regression**: the ROADMAP hang — the fuzz path4 query whose 21 PMTDs
  give a ~1e10-combination product — must now plan uncapped in under two
  seconds and recover strictly more tradeoff points than the removed
  ``max_pmtds=10`` truncation used to;
* **integration**: budget-mode ``CQAPIndex`` answers must match
  from-scratch evaluation, and the engine must surface the selection in
  its lifecycle stats.
"""

import random
import time
import warnings
from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CQAPIndex
from repro.data import path_database, singleton_request, square_database
from repro.decomposition.enumeration import enumerate_pmtds
from repro.engine import prepare
from repro.query.catalog import by_name, k_path_cqap
from repro.tradeoff.cost import CatalogStatistics, CostModel, order_pmtds_by_cost
from repro.tradeoff.rules import (
    _rules_from_pmtds_eager,
    rules_from_pmtds,
    stream_rules_from_pmtds,
)
from repro.tradeoff.cost import RuleEstimate
from repro.tradeoff.rules import TwoPhaseRule
from repro.tradeoff.selection import (
    _Candidate,
    evaluate_rules,
    keep_all_rules,
    select_rules,
)
from repro.workloads.databases import random_database
from repro.workloads.queries import random_cqap

#: the ROADMAP hang: fuzz seed whose path4 query enumerates 21 PMTDs
HANG_SEED = 75


def fuzz_path4_cqap():
    return random_cqap(random.Random(HANG_SEED), shape="path",
                       name=f"fuzz_path_{HANG_SEED}")


@lru_cache(maxsize=None)
def pmtd_pool(query_name: str):
    if query_name == "fuzz_path4":
        return tuple(enumerate_pmtds(fuzz_path4_cqap(), max_bags=3))
    return tuple(enumerate_pmtds(by_name(query_name), max_bags=3))


POOL_NAMES = ("path2", "path3", "square", "setdisj2", "fuzz_path4")


@st.composite
def pmtd_subsets(draw):
    """A random PMTD subset with ≤ 8 nodes total (eager stays tractable)."""
    name = draw(st.sampled_from(POOL_NAMES))
    pool = pmtd_pool(name)
    indices = draw(st.sets(st.integers(0, len(pool) - 1),
                           min_size=1, max_size=4))
    subset = [pool[i] for i in sorted(indices)]
    while sum(len(p.views) for p in subset) > 8:
        subset.pop()
    return subset


def rule_keys(rules):
    return {(r.s_targets, r.t_targets) for r in rules}


class TestStreamedGeneratorProperties:
    @settings(max_examples=60, deadline=None)
    @given(pmtd_subsets())
    def test_stream_equals_eager_reference(self, pmtds):
        streamed = rule_keys(stream_rules_from_pmtds(pmtds))
        eager = rule_keys(_rules_from_pmtds_eager(pmtds))
        assert streamed == eager

    @settings(max_examples=60, deadline=None)
    @given(pmtd_subsets())
    def test_subset_minimality(self, pmtds):
        rules = list(stream_rules_from_pmtds(pmtds))
        for rule in rules:
            # within-rule: no target contains another same-kind target
            for targets in (rule.s_targets, rule.t_targets):
                assert not any(a < b for a in targets for b in targets)
            # across rules: no surviving rule is no easier than another
            assert not any(
                other is not rule and rule.no_easier_than(other)
                and (other.s_targets, other.t_targets)
                != (rule.s_targets, rule.t_targets)
                for other in rules
            )

    @settings(max_examples=30, deadline=None)
    @given(pmtd_subsets())
    def test_deterministic_and_order_canonical(self, pmtds):
        first = [r.label for r in stream_rules_from_pmtds(pmtds)]
        again = [r.label for r in stream_rules_from_pmtds(pmtds)]
        shuffled = list(pmtds)
        random.Random(0).shuffle(shuffled)
        reordered = [r.label for r in stream_rules_from_pmtds(shuffled)]
        assert first == again == reordered

    def test_reduce_rules_false_still_cartesian(self):
        pool = pmtd_pool("path3")
        raw = rules_from_pmtds(pool, reduce_rules=False)
        assert len(raw) == 16  # 2*2*2*2*1, deduplicated


class TestHangRegression:
    """The fuzz path4 query must plan uncapped, fast, and lose nothing."""

    def test_21_pmtds_plan_under_two_seconds_without_cap(self):
        pmtds = list(pmtd_pool("fuzz_path4"))
        assert len(pmtds) == 21
        start = time.perf_counter()
        full = rules_from_pmtds(pmtds)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"streamed generation took {elapsed:.2f}s"
        # the old cap threw tradeoff points away: the uncapped rule set
        # strictly extends what any 10-PMTD truncation could produce
        cqap = fuzz_path4_cqap()
        db = path_database(4, 80, 25, seed=HANG_SEED)
        model = CostModel(cqap, CatalogStatistics.from_database(cqap, db))
        truncated = rules_from_pmtds(
            order_pmtds_by_cost(pmtds, model)[:10])
        assert len(full) > len(truncated)

    def test_index_constructs_uncapped_within_budget_of_time(self):
        cqap = fuzz_path4_cqap()
        db = path_database(4, 80, 25, seed=HANG_SEED)
        start = time.perf_counter()
        index = CQAPIndex(cqap, db, db.size)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"uncapped planning took {elapsed:.2f}s"
        assert index.selection.mode == "budget"
        assert index.rules
        index.preprocess()
        # answers must still match from-scratch evaluation
        full = cqap.evaluate(db)
        got = index.answer(())
        assert got.project(cqap.head).tuples == \
            full.project(cqap.head).tuples


class TestCostModel:
    def setup_method(self):
        self.cqap = k_path_cqap(3)
        self.db = path_database(3, 200, 50, seed=3, skew_hubs=2)
        self.model = CostModel(
            self.cqap, CatalogStatistics.from_database(self.cqap, self.db))

    def test_log_size_capped_by_distinct_counts(self):
        from repro.query.hypergraph import varset

        target = varset(("x1", "x4"))
        cap = sum(
            __import__("math").log2(self.model.stats.distinct_count(v))
            for v in ("x1", "x4")
        )
        assert 0 <= self.model.log_size(target) <= cap + 1e-9

    def test_binding_access_variables_never_costs_more(self):
        from repro.query.hypergraph import varset

        target = varset(("x1", "x2", "x4"))
        assert self.model.log_size(target, bound=("x1", "x4")) <= \
            self.model.log_size(target) + 1e-9

    def test_rule_estimates_pick_cheapest_targets(self):
        rules = rules_from_pmtds(
            enumerate_pmtds(self.cqap, max_bags=3))
        for rule in rules:
            est = self.model.estimate_rule(rule)
            if rule.s_targets:
                assert est.s_target in rule.s_targets
                assert all(self.model.s_space(t) >= est.s_space - 1e-9
                           for t in rule.s_targets)
            if rule.t_targets:
                assert est.t_target in rule.t_targets

    def test_pmtd_cost_order_is_deterministic(self):
        pmtds = enumerate_pmtds(self.cqap, max_bags=3)
        order1 = [tuple(p.labels) for p in
                  order_pmtds_by_cost(pmtds, self.model)]
        order2 = [tuple(p.labels) for p in
                  order_pmtds_by_cost(list(reversed(pmtds)), self.model)]
        assert order1 == order2


class TestBudgetedSelection:
    def setup_method(self):
        self.cqap = k_path_cqap(3)
        self.db = path_database(3, 200, 50, seed=7, skew_hubs=2)
        self.pmtds = enumerate_pmtds(self.cqap, max_bags=3)
        self.model = CostModel(
            self.cqap, CatalogStatistics.from_database(self.cqap, self.db))

    def test_selection_is_deterministic(self):
        a = select_rules(self.pmtds, self.model, space_budget=self.db.size)
        b = select_rules(list(reversed(self.pmtds)), self.model,
                         space_budget=self.db.size)
        assert [r.label for r in a.rules] == [r.label for r in b.rules]
        assert a.estimated_space == b.estimated_space
        assert a.estimated_time == b.estimated_time

    def test_tight_budget_routes_online(self):
        result = select_rules(self.pmtds, self.model, space_budget=2)
        assert result.rules
        # nothing fits in 2 tuples: no rule may take the S-route
        assert all(est.route == "T" for est in result.estimates)
        assert result.estimated_space <= 2

    def test_rich_budget_materializes_something(self):
        result = select_rules(self.pmtds, self.model,
                              space_budget=10 ** 9)
        assert any(est.route == "S" for est in result.estimates)
        # and the rich point should probe faster than the tight point
        tight = select_rules(self.pmtds, self.model, space_budget=2)
        assert result.estimated_time <= tight.estimated_time + 1e-9

    def test_never_selects_nothing(self):
        result = select_rules(self.pmtds, self.model, space_budget=0)
        assert result.pmtds and result.rules

    def test_max_selected_caps_subset_size(self):
        result = select_rules(self.pmtds, self.model,
                              space_budget=10 ** 9, max_selected=2)
        assert 1 <= len(result.pmtds) <= 2

    def test_evaluate_rules_shares_s_targets(self):
        rules = rules_from_pmtds(self.pmtds)
        space, _, estimates, _ = evaluate_rules(rules, self.model, 10 ** 12)
        paid = {est.s_target: est.s_space
                for est in estimates if est.route == "S"}
        assert space == pytest.approx(sum(paid.values()))

    @pytest.mark.parametrize("budget_exp", [0.8, 1.0, 1.5])
    def test_budget_mode_index_matches_scratch(self, budget_exp):
        budget = int(self.db.size ** budget_exp)
        index = CQAPIndex(self.cqap, self.db, budget,
                          rule_selection="budget").preprocess()
        rng = random.Random(int(budget_exp * 10))
        full = self.cqap.evaluate(self.db)
        hits = sorted(full.project(self.cqap.access).tuples)
        for _ in range(20):
            if hits and rng.random() < 0.5:
                request = rng.choice(hits)
            else:
                request = (rng.randrange(50), rng.randrange(50))
            got = index.answer(request)
            expected = self.cqap.answer_from_scratch(
                self.db, singleton_request(self.cqap.access, request))
            assert got.project(self.cqap.head).tuples == expected.tuples

    def test_square_budget_mode_matches_scratch(self):
        from repro.query.catalog import square_cqap

        cqap = square_cqap()
        db = square_database(200, 40, seed=2, skew_hubs=2)
        index = CQAPIndex(cqap, db, db.size,
                          rule_selection="budget").preprocess()
        rng = random.Random(4)
        for _ in range(15):
            request = (rng.randrange(40), rng.randrange(40))
            got = index.answer(request)
            expected = cqap.answer_from_scratch(
                db, singleton_request(cqap.access, request))
            assert got.project(cqap.head).tuples == expected.tuples


def _candidate(over_budget, time, space, key=()):
    return _Candidate(indices=frozenset(), pmtds=[], rules=[],
                      estimates=[], space=space, time=time,
                      over_budget=over_budget, order_key=key)


class TestOverBudgetRanking:
    """The documented contract: over budget, cheapest-*space* wins."""

    def test_over_budget_candidates_rank_by_space_first(self):
        # time and space order disagree: A is faster but far bigger
        fast_but_big = _candidate(True, time=1.0, space=1000.0)
        slow_but_small = _candidate(True, time=50.0, space=10.0)
        ranked = sorted([fast_but_big, slow_but_small],
                        key=lambda c: c.rank)
        assert ranked[0] is slow_but_small

    def test_feasible_candidates_still_rank_by_time_first(self):
        fast_but_big = _candidate(False, time=1.0, space=1000.0)
        slow_but_small = _candidate(False, time=50.0, space=10.0)
        ranked = sorted([fast_but_big, slow_but_small],
                        key=lambda c: c.rank)
        assert ranked[0] is fast_but_big

    def test_any_feasible_candidate_beats_any_over_budget_one(self):
        over = _candidate(True, time=0.0, space=0.0)
        feasible = _candidate(False, time=10 ** 9, space=10 ** 9)
        assert feasible.rank < over.rank


class _StubModel:
    """A cost model standing for crafted estimates in ledger unit tests."""

    def __init__(self, estimates):
        self._estimates = {e.rule: e for e in estimates}

    def estimate_rule(self, rule):
        return self._estimates[rule]


def _forced_rule(tag, space, worst):
    rule = TwoPhaseRule(frozenset({frozenset({tag})}), frozenset())
    return rule, RuleEstimate(rule, frozenset({tag}), space, None,
                              __import__("math").inf,
                              s_space_worst=worst)


class TestForcedWorstCaseLedger:
    """N forced rules can each fit in the worst case yet sink the budget."""

    def test_collective_worst_case_overflow_is_flagged(self):
        (r1, e1) = _forced_rule("x1", space=10.0, worst=60.0)
        (r2, e2) = _forced_rule("x2", space=10.0, worst=60.0)
        model = _StubModel([e1, e2])
        # each worst (60) fits the budget (100); optimistic total (20)
        # fits too — only the cumulative worst-case ledger (120) overflows
        space, _, routed, over = evaluate_rules([r1, r2], model, 100.0)
        assert space == pytest.approx(20.0)
        assert all(est.route == "S" for est in routed)
        assert over

    def test_within_budget_worst_case_total_is_not_flagged(self):
        (r1, e1) = _forced_rule("x1", space=10.0, worst=40.0)
        (r2, e2) = _forced_rule("x2", space=10.0, worst=40.0)
        model = _StubModel([e1, e2])
        _, _, _, over = evaluate_rules([r1, r2], model, 100.0)
        assert not over

    def test_shared_forced_target_is_charged_once(self):
        (r1, e1) = _forced_rule("x1", space=10.0, worst=60.0)
        space, _, _, over = evaluate_rules([r1], _StubModel([e1]), 100.0)
        assert space == pytest.approx(10.0)
        assert not over


class _AccessStubModel(_StubModel):
    """Stub model with the cqap.access hook per-shard pricing reads."""

    def __init__(self, estimates, access):
        super().__init__(estimates)
        self.cqap = __import__("types").SimpleNamespace(access=access)


def _optional_rule(tag_vars, space, t_time):
    target = frozenset(tag_vars)
    rule = TwoPhaseRule(frozenset({target}), frozenset({target}))
    return rule, RuleEstimate(rule, target, space, target, t_time,
                              s_space_worst=space)


class TestPerShardPricing:
    """Sharded fleets price replicated vs partitioned state honestly."""

    def test_shard_fraction_partitions_only_full_access_targets(self):
        from repro.tradeoff.selection import shard_fraction
        access = ("x1", "x4")
        # access-complete target: split 4 ways
        assert shard_fraction(frozenset({"x1", "x2", "x4"}),
                              access, 4) == pytest.approx(0.25)
        # access-incomplete target: replicated whole to every shard
        assert shard_fraction(frozenset({"x1", "x2"}), access, 4) == 1.0
        # single shard / no access: no sharding, full price
        assert shard_fraction(frozenset({"x1", "x4"}), access, 1) == 1.0
        assert shard_fraction(frozenset({"x1"}), (), 4) == 1.0

    def test_replicated_target_pays_full_price_per_shard(self):
        # P partitions by the access var "a"; R does not and replicates.
        (p, ep) = _optional_rule(("a", "b"), space=40.0, t_time=200.0)
        (r, er) = _optional_rule(("c",), space=40.0, t_time=100.0)
        model = _AccessStubModel([ep, er], access=("a",))
        # Globally both fit a budget of 100 (40 + 40).
        _, _, routed, over = evaluate_rules([p, r], model, 100.0)
        assert [est.route for est in routed] == ["S", "S"]
        assert not over
        # Per shard (budget 100/4 = 25) P costs 40/4 = 10 and fits, but
        # replicated R still costs its full 40 on every worker: T-routed.
        _, _, routed, over = evaluate_rules([p, r], model, 100.0,
                                            shards=4)
        assert [est.route for est in routed] == ["S", "T"]
        assert not over

    def test_estimated_space_stays_global_under_sharding(self):
        # The ledger reports the *total* materialized footprint, not the
        # per-shard slice — stats stay comparable across shard counts.
        (p, ep) = _optional_rule(("a", "b"), space=40.0, t_time=200.0)
        model = _AccessStubModel([ep], access=("a",))
        space, _, routed, _ = evaluate_rules([p], model, 100.0, shards=4)
        assert routed[0].route == "S"
        assert space == pytest.approx(40.0)

    def test_index_threads_shards_into_selection(self):
        cqap = k_path_cqap(3)
        db = path_database(3, 200, 40, seed=7)
        index = CQAPIndex(cqap, db, int(db.size ** 1.2), shards=4)
        index.preprocess()
        assert index.selection.shards == 4
        assert index.selection.snapshot()["shards"] == 4


@lru_cache(maxsize=None)
def ledger_fixture(query_name: str):
    """(rules, model) for the faithful-ledger property tests."""
    if query_name == "fuzz_path4":
        cqap = fuzz_path4_cqap()
    else:
        cqap = by_name(query_name)
    db = random_database(cqap, random.Random(17), profile="uniform",
                         max_tuples=24)
    model = CostModel(cqap, CatalogStatistics.from_database(cqap, db))
    rules = rules_from_pmtds(pmtd_pool(query_name))
    return rules, model


class TestLedgerIsFaithful:
    """hypothesis: evaluate_rules is a faithful, budget-monotone ledger."""

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(POOL_NAMES),
           st.one_of(st.none(), st.integers(0, 10 ** 6)))
    def test_space_equals_sum_of_distinct_routed_targets(self, name,
                                                         budget):
        rules, model = ledger_fixture(name)
        space, time, routed, _ = evaluate_rules(rules, model, budget)
        paid = {}
        for est in routed:
            if est.route == "S":
                paid[est.s_target] = est.s_space
        assert space == pytest.approx(sum(paid.values()))
        assert time >= 0

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(POOL_NAMES),
           st.one_of(st.none(), st.integers(0, 10 ** 6)))
    def test_routed_list_parallels_the_input(self, name, budget):
        rules, model = ledger_fixture(name)
        _, _, routed, _ = evaluate_rules(rules, model, budget)
        assert [est.rule for est in routed] == list(rules)
        assert all(est.route in ("S", "T") for est in routed)

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(POOL_NAMES),
           st.integers(0, 10 ** 5), st.integers(0, 10 ** 5))
    def test_route_stability_as_the_budget_grows(self, name, b1, b2):
        rules, model = ledger_fixture(name)
        low, high = min(b1, b2), max(b1, b2)
        budgets = [low, high, None]  # None = unbounded
        s_sets = []
        for budget in budgets:
            _, _, routed, _ = evaluate_rules(rules, model, budget)
            s_sets.append({est.rule.label for est in routed
                           if est.route == "S"})
        assert s_sets[0] <= s_sets[1] <= s_sets[2]


class TestLPBoundBlend:
    def setup_method(self):
        self.cqap = k_path_cqap(3)
        self.db = path_database(3, 200, 50, seed=7, skew_hubs=2)
        self.pmtds = enumerate_pmtds(self.cqap, max_bags=3)
        self.model = CostModel(
            self.cqap, CatalogStatistics.from_database(self.cqap, self.db))

    def _oracle(self):
        from repro.tradeoff.joint_flow import SizeBoundOracle, for_cqap

        return SizeBoundOracle(for_cqap(self.cqap, self.db))

    def test_blend_is_reported_and_solves_are_capped(self):
        oracle = self._oracle()
        result = select_rules(self.pmtds, self.model,
                              space_budget=self.db.size,
                              lp_oracle=oracle)
        blend = result.lp_blend
        assert blend is not None
        assert blend["finalists"] >= 1
        assert 0 < blend["lp_solves"] <= blend["max_solves"]
        assert result.snapshot()["lp_blend"] == blend

    def test_without_oracle_no_blend(self):
        result = select_rules(self.pmtds, self.model,
                              space_budget=self.db.size)
        assert result.lp_blend is None
        assert keep_all_rules(self.pmtds, rules_from_pmtds(self.pmtds),
                              self.model).lp_blend is None

    def test_blended_selection_still_answers_correctly(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size,
                          rule_selection="budget").preprocess()
        assert index.selection.lp_blend is not None
        full = self.cqap.evaluate(self.db)
        hits = sorted(full.project(self.cqap.access).tuples)[:10]
        for request in hits:
            assert index.answer_boolean(request)

    def test_clamped_worst_case_aligns_with_planner_bound(self):
        from repro.tradeoff.joint_flow import for_cqap

        oracle = self._oracle()
        clamped = self.model.with_bound_oracle(oracle)
        program = for_cqap(self.cqap, self.db)
        from repro.query.hypergraph import varset

        target = varset(("x1", "x4"))
        lp_bound = program.log_size_bound([target], phase="S")
        assert clamped.log_size_worst(target) <= lp_bound + 1e-9

    def test_oracle_skips_past_the_solve_cap(self):
        from repro.tradeoff.joint_flow import SizeBoundOracle, for_cqap
        from repro.query.hypergraph import varset

        oracle = SizeBoundOracle(for_cqap(self.cqap, self.db),
                                 max_solves=1)
        assert oracle.log_s_bound(varset(("x1", "x4"))) < float("inf")
        assert oracle.log_s_bound(varset(("x1", "x3"))) == float("inf")
        assert oracle.snapshot()["lp_solves_skipped"] == 1
        # a new selection pass gets a fresh allowance (cache retained)
        oracle.reset_budget()
        assert oracle.log_s_bound(varset(("x1", "x3"))) < float("inf")
        assert oracle.log_s_bound(varset(("x1", "x4"))) < float("inf")
        assert oracle.snapshot()["lp_solves"] == 2


class TestIndexSelectionModes:
    def setup_method(self):
        self.cqap = k_path_cqap(3)
        self.db = path_database(3, 150, 40, seed=11)

    def test_auto_keeps_all_rules_on_small_sets(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size)
        assert index.selection.mode == "all"
        assert len(index.rules) == 4  # Table 1

    def test_auto_switches_to_budget_past_threshold(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size,
                          auto_select_threshold=2)
        assert index.selection.mode == "budget"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CQAPIndex(self.cqap, self.db, self.db.size,
                      rule_selection="everything")

    def test_max_pmtds_is_gone(self):
        # the PR 7 deprecation arc ended: the kwarg is rejected like any
        # other typo instead of silently accepted
        with pytest.raises(TypeError):
            CQAPIndex(self.cqap, self.db, self.db.size, max_pmtds=2)

    def test_max_selected_pmtds_caps_the_budget_selection(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size,
                          rule_selection="budget", max_selected_pmtds=2)
        assert index.selection.mode == "budget"
        assert 1 <= len(index.pmtds) <= 2
        index.preprocess()
        assert index.answer_boolean((10 ** 9, 10 ** 9)) is False

    def test_stats_and_engine_expose_selection(self):
        index = CQAPIndex(self.cqap, self.db, self.db.size).preprocess()
        snap = index.stats.selection
        assert snap["mode"] == "all"
        assert snap["selected_rules"] == len(index.rules)
        assert snap["estimated_space"] >= 0
        pq = prepare(self.cqap, self.db, space_budget=self.db.size)
        stats = pq.stats()
        assert stats["engine"]["selection"]["selected_rules"] == \
            len(pq.selection.rules)
        assert stats["engine"]["selection"]["routes"]
        assert "selection[" in pq.describe()

    def test_construction_is_deprecation_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            CQAPIndex(self.cqap, self.db, self.db.size)
