"""Tests for ``repro.updates``: single-tuple delta maintenance.

Covers the delta driver itself (exact affected keys, S-target deltas,
no-op detection, drift-triggered re-selection), the mutation-path
guards it leans on (``SchemaError`` arity checks, the partition-view
epoch guard), per-backend bit-identity of the maintained answers, the
surgical answer-cache eviction in ``PreparedQuery``, the listener
registry, and the hypothesis property that replaying any script leaves
the index answer-equivalent to one rebuilt from scratch on the final
database.  The seeded multi-layer replay (serving stacks, process
fleet) lives in ``repro.workloads.differential``'s ``update_replay*``
paths; these tests pin the unit-level contracts.
"""

import random
import weakref

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import CQAPIndex
from repro.data.database import Database
from repro.data.relation import Relation, SchemaError, StalePartitionError
from repro.engine.prepared import PreparedQuery
from repro.oracle import answer_rows, oracle_probe
from repro.query.catalog import k_path_cqap
from repro.util.counters import Counters

RICH = 10 ** 7


def chain_db():
    """Two disjoint 3-paths: 0→10→20→30 and 1→11→21→31."""
    return Database([
        Relation("R1", ("x1", "x2"), {(0, 10), (1, 11)}),
        Relation("R2", ("x2", "x3"), {(10, 20), (11, 21)}),
        Relation("R3", ("x3", "x4"), {(20, 30), (21, 31)}),
    ])


def build_index(db=None, backend="set", **kwargs):
    cqap = k_path_cqap(3)
    db = db or chain_db()
    index = CQAPIndex(cqap, db, RICH, relation_backend=backend,
                      **kwargs).preprocess()
    return cqap, db, index


class RecordingListener:
    """Captures every UpdateEvent it is notified with."""

    def __init__(self):
        self.events = []

    def on_index_delta(self, event):
        self.events.append(event)


class TestApplyDelta:
    @pytest.mark.parametrize("backend", ["set", "columnar"])
    def test_insert_opens_a_path(self, backend):
        cqap, db, index = build_index(backend=backend)
        assert not index.answer_boolean((0, 31))
        index.apply_delta("insert", "R3", (20, 31))
        assert index.answer_boolean((0, 31))
        assert answer_rows(index.answer((0, 31)), tuple(cqap.head)) == \
            oracle_probe(cqap, db, (0, 31))

    @pytest.mark.parametrize("backend", ["set", "columnar"])
    def test_delete_closes_a_path(self, backend):
        cqap, db, index = build_index(backend=backend)
        assert index.answer_boolean((0, 30))
        index.apply_delta("delete", "R2", (10, 20))
        assert not index.answer_boolean((0, 30))
        # the disjoint chain is untouched
        assert index.answer_boolean((1, 31))

    def test_noop_deltas_change_nothing(self):
        cqap, db, index = build_index()
        listener = RecordingListener()
        index.register_delta_listener(listener)
        before = {name: frozenset(db[name].tuples) for name in db.names}
        index.apply_delta("insert", "R1", (0, 10))     # already present
        index.apply_delta("delete", "R1", (99, 99))    # never present
        # no-op deltas never disturb listeners or the stored state
        assert listener.events == []
        assert index.update_counts["deltas_applied"] == 0
        assert {name: frozenset(db[name].tuples)
                for name in db.names} == before

    def test_update_counts_track_applied_deltas(self):
        cqap, db, index = build_index()
        index.apply_delta("insert", "R1", (2, 12))
        index.apply_delta("insert", "R2", (12, 22))
        index.apply_delta("delete", "R1", (2, 12))
        counts = index.update_counts
        assert counts["inserts"] == 2
        assert counts["deletes"] == 1
        assert counts["deltas_applied"] == 3
        assert index.updates_section() == counts

    def test_unknown_relation_raises(self):
        cqap, db, index = build_index()
        with pytest.raises(KeyError):
            index.apply_delta("insert", "NoSuchRelation", (1, 2))

    def test_affected_keys_are_exact(self):
        """The event names exactly the access bindings whose answer moved."""
        cqap, db, index = build_index()
        listener = RecordingListener()
        index.register_delta_listener(listener)
        # deleting the first chain's last edge stales only (0, 30)
        index.apply_delta("delete", "R3", (20, 30))
        (event,) = listener.events
        assert event.changed
        assert event.affected_keys == frozenset({(0, 30)})
        # inserting a cross edge 20→31 stales only (0, 31)
        index.apply_delta("insert", "R3", (20, 31))
        event = listener.events[-1]
        assert event.affected_keys == frozenset({(0, 31)})

    def test_delta_bit_identity_across_backends(self):
        """The same script leaves set and columnar indexes identical."""
        script = [("insert", "R1", (2, 10)), ("insert", "R3", (20, 31)),
                  ("delete", "R2", (11, 21)), ("insert", "R2", (10, 21)),
                  ("delete", "R3", (21, 31)), ("insert", "R3", (21, 30))]
        cqap, _, set_index = build_index(backend="set")
        _, _, col_index = build_index(backend="columnar")
        for op, name, row in script:
            set_index.apply_delta(op, name, row)
            col_index.apply_delta(op, name, row)
        head = tuple(cqap.head)
        for x1 in (0, 1, 2, 99):
            for x4 in (30, 31, 99):
                assert (answer_rows(set_index.answer((x1, x4)), head)
                        == answer_rows(col_index.answer((x1, x4)), head))


class TestDriftReselection:
    def test_drift_past_threshold_triggers_reselect(self):
        cqap, db, index = build_index(staleness_threshold=0.01)
        listener = RecordingListener()
        index.register_delta_listener(listener)
        for i in range(10):
            index.apply_delta("insert", "R1", (100 + i, 10))
        assert index.update_counts["reselections"] >= 1
        assert any(e.reselected for e in listener.events)
        # answers stay correct through the re-selection
        assert answer_rows(index.answer((0, 30)), tuple(cqap.head)) == \
            oracle_probe(cqap, db, (0, 30))

    def test_default_threshold_tolerates_small_scripts(self):
        cqap, db, index = build_index()   # staleness_threshold=0.5
        index.apply_delta("insert", "R1", (2, 10))
        assert index.update_counts["reselections"] == 0

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError):
            CQAPIndex(k_path_cqap(3), chain_db(), RICH,
                      staleness_threshold=0.0)


class TestSurgicalCacheEviction:
    def test_only_affected_keys_are_evicted(self):
        cqap, db, index = build_index()
        pq = PreparedQuery(index, cache_size=16)
        key_a = pq._normalize_binding((0, 30))
        key_b = pq._normalize_binding((1, 31))
        assert len(pq.probe(key_a)) == 1
        assert len(pq.probe(key_b)) == 1
        assert pq.cache.peek(key_a) is not None
        assert pq.cache.peek(key_b) is not None
        # delete the first chain's last edge: only (0, 30) goes stale
        index.apply_delta("delete", "R3", (20, 30))
        assert pq.cache.peek(key_a) is None, "stale entry survived"
        assert pq.cache.peek(key_b) is not None, "unaffected entry evicted"
        assert pq.keys_invalidated == 1
        assert pq.updates_seen == 1
        # the evicted key re-probes to the fresh (now empty) answer
        assert len(pq.probe(key_a)) == 0
        assert len(pq.probe(key_b)) == 1
        assert not pq.replanned

    def test_flush_everything_contract(self):
        """affected_keys=None means flush the whole cache (degraded path)."""
        from repro.updates import UpdateEvent

        cqap, db, index = build_index()
        pq = PreparedQuery(index, cache_size=16)
        pq.probe((0, 30))
        pq.probe((1, 31))
        assert len(pq.cache) == 2
        pq.on_index_delta(UpdateEvent(
            op="insert", relation="R1", row=(5, 5), changed=True,
            in_query=True, affected_keys=None))
        assert len(pq.cache) == 0

    def test_updates_section_reaches_the_stats_envelope(self):
        from repro.serving.stats import validate_stats

        cqap, db, index = build_index()
        pq = PreparedQuery(index, cache_size=16)
        index.apply_delta("insert", "R1", (2, 10))
        stats = pq.stats()
        validate_stats(stats)
        assert stats["updates"]["inserts"] == 1
        assert stats["updates"]["events_seen"] == 1


class TestServingListeners:
    def test_sharded_backend_stays_coherent(self):
        from repro.serving import serve

        cqap, db, index = build_index()
        with serve(index, backend="thread", shards=3,
                   inline_threshold=0) as server:
            index.apply_delta("insert", "R3", (20, 31))
            index.apply_delta("delete", "R3", (21, 31))
            answers = {k: answer_rows(rel, tuple(cqap.head))
                       for k, rel in server.serve([(0, 31), (1, 31)])}
            assert answers[(0, 31)] == oracle_probe(cqap, db, (0, 31))
            assert answers[(1, 31)] == frozenset()
            stats = server.stats()
            assert stats["updates"] is not None
            assert stats["updates"]["deltas_applied"] == 2

    def test_listener_registry_is_weak_and_unregisterable(self):
        cqap, db, index = build_index()
        listener = RecordingListener()
        index.register_delta_listener(listener)
        index.apply_delta("insert", "R1", (2, 10))
        assert len(listener.events) == 1
        index.unregister_delta_listener(listener)
        index.apply_delta("insert", "R1", (3, 10))
        assert len(listener.events) == 1
        # dead listeners drop out without an explicit unregister
        transient = RecordingListener()
        ref = weakref.ref(transient)
        index.register_delta_listener(transient)
        del transient
        assert ref() is None   # registry holds no strong reference
        index.apply_delta("insert", "R1", (4, 10))   # must not blow up


class TestMutationPathGuards:
    def test_add_and_discard_enforce_arity(self):
        rel = Relation("R", ("a", "b"), {(1, 2)})
        with pytest.raises(SchemaError):
            rel.add((1, 2, 3))
        with pytest.raises(SchemaError):
            rel.discard((1,))

    def test_discard_counts_symmetrically_with_add(self):
        rel = Relation("R", ("a", "b"), set())
        counters = Counters()
        assert rel.add((1, 2), counters=counters)
        assert not rel.add((1, 2), counters=counters)      # no-op: free
        assert rel.discard((1, 2), counters=counters)
        assert not rel.discard((1, 2), counters=counters)  # no-op: free
        assert counters.stores == 2

    def test_plain_mutation_with_live_views_raises(self):
        rel = Relation("R", ("a", "b"), {(1, 2), (3, 4)})
        parts = rel.partition_by_hash(("a",), 2)
        with pytest.raises(StalePartitionError):
            rel.add((5, 6))
        with pytest.raises(StalePartitionError):
            rel.discard((1, 2))
        with pytest.raises(StalePartitionError):
            parts[0].add((5, 6))
        # dropping every view handle lifts the guard
        del parts
        assert rel.add((5, 6))

    def test_stale_view_probe_raises_until_synced(self):
        rel = Relation("R", ("a", "b"), {(1, 2), (3, 4)})
        parts = rel.partition_by_hash(("a",), 2)
        rel._delta_add((5, 6))   # coordinated path skips the guard
        with pytest.raises(StalePartitionError):
            parts[0].index_on(("a",))
        for part in parts:
            part._sync_with_base()
        assert sum(len(part) for part in parts) >= 2  # readable again


# -- the replay == rebuild property -----------------------------------

PATH2 = k_path_cqap(2)
DOMAIN = 4

step_strategy = st.tuples(
    st.sampled_from(["insert", "delete"]),
    st.sampled_from(["R1", "R2"]),
    st.tuples(st.integers(0, DOMAIN - 1), st.integers(0, DOMAIN - 1)),
)


class TestReplayEqualsRebuild:
    @settings(max_examples=30, deadline=None)
    @given(
        rows1=st.sets(st.tuples(st.integers(0, DOMAIN - 1),
                                st.integers(0, DOMAIN - 1)), max_size=6),
        rows2=st.sets(st.tuples(st.integers(0, DOMAIN - 1),
                                st.integers(0, DOMAIN - 1)), max_size=6),
        script=st.lists(step_strategy, max_size=12),
    )
    def test_replay_equals_rebuild(self, rows1, rows2, script):
        """Any delta script == rebuilding from scratch on the final db."""
        db = Database([Relation("R1", ("x1", "x2"), set(rows1)),
                       Relation("R2", ("x2", "x3"), set(rows2))])
        mirror = db.copy()
        index = CQAPIndex(PATH2, db, RICH).preprocess()
        for op, name, row in script:
            index.apply_delta(op, name, row)
            getattr(mirror, op)(name, row)
        rebuilt = CQAPIndex(PATH2, mirror, RICH).preprocess()
        head = tuple(PATH2.head)
        for x1 in range(DOMAIN):
            for x3 in range(DOMAIN):
                binding = (x1, x3)
                replayed = answer_rows(index.answer(binding), head)
                assert replayed == answer_rows(rebuilt.answer(binding),
                                               head)
                assert replayed == oracle_probe(PATH2, mirror, binding)
