"""Tests for the 2PP planner and executor (split selection, phase decisions,
budget fallback)."""

import math

import pytest

from repro.core.two_phase import (
    PlanningError,
    TwoPhaseExecutor,
    TwoPhasePlanner,
    S_PHASE,
    T_PHASE,
)
from repro.data import Database, Relation, path_database
from repro.query.catalog import k_path_cqap
from repro.query.hypergraph import varset
from repro.tradeoff.rules import TwoPhaseRule
from repro.util.counters import Counters


def v(*nums):
    return varset(f"x{n}" for n in nums)


def two_reach_setup(n_edges=400, domain=80, seed=2, skew=3):
    cqap = k_path_cqap(2)
    db = path_database(2, n_edges, domain, seed=seed, skew_hubs=skew)
    return cqap, db


class TestPlanner:
    def test_plan_produces_decisions_for_all_subproblems(self):
        cqap, db = two_reach_setup()
        planner = TwoPhasePlanner(cqap, db, space_budget=db.size)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        assert len(plan.decisions) == 2 ** len(plan.splits)
        assert plan.predicted_log_time > 0

    def test_split_thresholds_track_d_over_sqrt_s(self):
        cqap, db = two_reach_setup()
        n = db.size
        planner = TwoPhasePlanner(cqap, db, space_budget=n)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        assert plan.splits, "expected heavy/light splits at budget D"
        for split in plan.splits:
            assert split.threshold == pytest.approx(n / math.sqrt(n),
                                                    rel=0.25)

    def test_huge_budget_materializes_all(self):
        cqap, db = two_reach_setup(n_edges=150, domain=40)
        planner = TwoPhasePlanner(cqap, db,
                                  space_budget=db.size ** 2 + 1)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        assert plan.materialize_all
        assert plan.predicted_log_time == 0.0
        assert [d.phase for d in plan.decisions] == [S_PHASE]

    def test_s_only_rule_over_budget_raises(self):
        cqap, db = two_reach_setup(n_edges=150, domain=40)
        planner = TwoPhasePlanner(cqap, db, space_budget=2)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset())
        with pytest.raises(PlanningError):
            planner.plan_rule(rule)

    def test_threshold_scale_applies(self):
        cqap, db = two_reach_setup()
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        base = TwoPhasePlanner(cqap, db, db.size).plan_rule(rule)
        scaled = TwoPhasePlanner(cqap, db, db.size,
                                 threshold_scale=2.0).plan_rule(rule)
        assert scaled.splits
        for s_base, s_scaled in zip(base.splits, scaled.splits):
            assert s_scaled.threshold == pytest.approx(
                2 * s_base.threshold
            )

    def test_describe_readable(self):
        cqap, db = two_reach_setup()
        planner = TwoPhasePlanner(cqap, db, db.size)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        text = planner.plan_rule(rule).describe()
        assert "OBJ" in text
        assert "->" in text

    def test_measured_dc_changes_plan(self):
        cqap, db = two_reach_setup()
        from repro.query.constraints import measured_constraints

        dc = measured_constraints(
            db, [(a.relation, a.variables) for a in cqap.atoms]
        )
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        loose = TwoPhasePlanner(cqap, db, db.size).plan_rule(rule)
        tight = TwoPhasePlanner(cqap, db, db.size, dc=dc).plan_rule(rule)
        assert tight.predicted_log_time <= loose.predicted_log_time + 1e-9


class TestExecutor:
    def test_preprocess_respects_phase(self):
        cqap, db = two_reach_setup()
        planner = TwoPhasePlanner(cqap, db, db.size)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        executor = TwoPhaseExecutor(cqap)
        targets = executor.preprocess([plan], db.size)
        for schema, relation in targets.items():
            assert set(relation.schema) == set(schema)

    def test_budget_abort_falls_back_online(self):
        cqap, db = two_reach_setup(n_edges=300, domain=20, skew=0)
        planner = TwoPhasePlanner(cqap, db, space_budget=db.size ** 2)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        assert plan.preprocess_decisions
        # force an absurdly tight executor budget: any S-piece with more
        # than one tuple aborts and flips to the online phase
        executor = TwoPhaseExecutor(cqap, budget_slack=1e-9)
        targets = executor.preprocess([plan], space_budget=1)
        assert any(d.phase == T_PHASE for d in plan.decisions)
        assert sum(len(r) for r in targets.values()) <= 1

    def test_online_targets_cover_answers(self):
        cqap, db = two_reach_setup(n_edges=250, domain=50)
        planner = TwoPhasePlanner(cqap, db, db.size)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        executor = TwoPhaseExecutor(cqap)
        s_targets = executor.preprocess([plan], db.size)
        full = cqap.evaluate(db)
        hit = next(iter(full.tuples))
        request = Relation("Q", ("x1", "x3"), [hit])
        t_targets = executor.online([plan], request)
        # the hit must appear in the union of S- and T-target projections
        found = False
        for schema, relation in {**s_targets, **t_targets}.items():
            proj = {"x1", "x3"} & set(relation.schema)
            if proj == {"x1", "x3"}:
                if hit in relation.project(("x1", "x3")).tuples:
                    found = True
        assert found

    def test_counters_track_stores(self):
        cqap, db = two_reach_setup(n_edges=200, domain=30)
        planner = TwoPhasePlanner(cqap, db, db.size ** 2 + 1)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        executor = TwoPhaseExecutor(cqap)
        ctr = Counters()
        targets = executor.preprocess([plan], db.size ** 2 + 1,
                                      counters=ctr)
        stored = sum(len(r) for r in targets.values())
        assert ctr.stores >= stored


class TestBudgetAbortRepricing:
    """The abort fallback must re-price, not punt to inf (satellite fix)."""

    def _aborting_plan(self):
        cqap, db = two_reach_setup(n_edges=300, domain=20, skew=0)
        planner = TwoPhasePlanner(cqap, db, space_budget=db.size ** 2)
        rule = TwoPhaseRule(frozenset({v(1, 3)}), frozenset({v(1, 2, 3)}))
        plan = planner.plan_rule(rule)
        assert plan.preprocess_decisions
        before = {id(d) for d in plan.preprocess_decisions}
        return planner, rule, plan, before

    def test_with_planner_aborts_get_finite_repriced_bounds(self):
        planner, rule, plan, before = self._aborting_plan()
        executor = TwoPhaseExecutor(planner.cqap, budget_slack=1e-9)
        executor.preprocess([plan], space_budget=1, planner=planner)
        assert executor.budget_aborts > 0
        aborted = [d for d in plan.decisions
                   if id(d) in before and d.phase == T_PHASE]
        assert aborted
        for decision in aborted:
            assert math.isfinite(decision.predicted_log_size)
            assert decision.target in rule.t_targets

    def test_without_planner_falls_back_lexicographically(self):
        planner, rule, plan, before = self._aborting_plan()
        executor = TwoPhaseExecutor(planner.cqap, budget_slack=1e-9)
        executor.preprocess([plan], space_budget=1)
        assert executor.budget_aborts > 0
        lexi_first = min(rule.t_targets, key=lambda t: tuple(sorted(t)))
        aborted = [d for d in plan.decisions
                   if id(d) in before and d.phase == T_PHASE]
        assert aborted
        for decision in aborted:
            assert decision.target == lexi_first
            assert decision.predicted_log_size == math.inf

    def test_best_online_target_prefers_cheapest_bound(self):
        planner, rule, plan, _ = self._aborting_plan()
        target, bound = planner.best_online_target(rule.t_targets)
        assert target in rule.t_targets
        assert math.isfinite(bound)
        # the public wrapper agrees with what planning itself would pick
        singles = [planner.best_online_target(frozenset({t}))[1]
                   for t in rule.t_targets]
        assert bound == min(singles)
