"""Observability-layer tests: histograms, registry, traces, propagation.

The merge property the process fleet relies on (worker histograms fold
into the parent *exactly*, in any order) is pinned with a hypothesis
property test; the rest of the file checks the recording contract of each
instrumented layer — exactly one observation per incoming probe, spans
that survive the pickle boundary with worker pids attached, envelopes
that stay schema-v3 valid and JSON-serialisable — and that the whole
stack costs nothing and records nothing while the flag is off.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.obs as obs
from repro.core.index import CQAPIndex
from repro.data import path_database
from repro.engine import PreparedQuery
from repro.obs import LATENCY_BUCKETS, WORK_BUCKETS, Histogram
from repro.obs.hist import merge_all
from repro.obs.promparse import (
    ExpositionError,
    parse_exposition,
    validate_exposition,
)
from repro.obs.registry import MetricsRegistry
from repro.query.catalog import k_path_cqap
from repro.serving import ProcessShardFleet, serve
from repro.serving.stats import validate_stats
from repro.util.counters import Counters
from repro.workloads.probes import batched_stream

DOMAIN = 60


@pytest.fixture(autouse=True)
def _obs_teardown():
    """Every test leaves the process-wide flag off and the stores empty."""
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def prepared():
    cqap = k_path_cqap(3)
    db = path_database(3, 300, DOMAIN, seed=7)
    index = CQAPIndex(cqap, db, int(db.size ** 1.2))
    index.preprocess()
    return cqap, db, index


def _stream(cqap, db, batches=3, batch_size=8):
    return batched_stream(cqap, db, random.Random(5), batches=batches,
                          batch_size=batch_size, dedupe_ratio=0.5)


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------
def test_histogram_record_and_cumulative():
    h = Histogram(WORK_BUCKETS)
    for v in (0, 1, 3, 5, 4 ** 15, 4 ** 15 + 1):
        h.record(v)
    assert h.count == 6
    assert h.min == 0 and h.max == 4 ** 15 + 1
    cumulative = h.cumulative()
    assert cumulative[-1] == (float("inf"), 6)
    counts = [c for _, c in cumulative]
    assert counts == sorted(counts)  # non-decreasing
    # value == bound lands in that bucket (Prometheus le semantics)
    le_one = next(c for le, c in cumulative if le == 1.0)
    assert le_one == 2  # 0 and 1

    assert h.quantile(0.5) in WORK_BUCKETS
    assert Histogram(WORK_BUCKETS).quantile(0.5) is None
    with pytest.raises(ValueError):
        h.quantile(1.5)

    snap = h.snapshot()
    assert snap["count"] == 6 and snap["overflow"] == 1
    json.dumps(snap)


def test_histogram_merge_rejects_mismatched_bounds():
    with pytest.raises(ValueError):
        Histogram(WORK_BUCKETS).merge(Histogram(LATENCY_BUCKETS))
    with pytest.raises(ValueError):
        Histogram((3.0, 2.0, 1.0))
    with pytest.raises(TypeError):
        hash(Histogram(WORK_BUCKETS))


_VALUES = st.lists(st.integers(min_value=0, max_value=4 ** 16),
                   max_size=50)


@given(a=_VALUES, b=_VALUES, c=_VALUES)
@settings(max_examples=60, deadline=None)
def test_histogram_merge_associative_commutative(a, b, c):
    """Merging is exact: any association/order equals the bulk histogram."""

    def h(values):
        hist = Histogram(WORK_BUCKETS)
        for v in values:
            hist.record(float(v))
        return hist

    left = (h(a) + h(b)) + h(c)
    right = h(a) + (h(b) + h(c))
    swapped = (h(b) + h(a)) + h(c)
    bulk = h(a + b + c)
    folded = merge_all([h(a), h(b), h(c)], bounds=WORK_BUCKETS)
    assert left == right == swapped == bulk == folded
    assert left.count == len(a) + len(b) + len(c)


# ---------------------------------------------------------------------------
# registry + exposition
# ---------------------------------------------------------------------------
def test_registry_prometheus_roundtrip():
    reg = MetricsRegistry()
    reg.counter("demo_total", "a labeled counter",
                ("route",)).labels(route="cache").inc(3)
    reg.counter("demo_total", "a labeled counter",
                ("route",)).labels(route="online").inc(2)
    reg.gauge("demo_up", "a gauge").set(1)
    hist = reg.histogram("demo_work", "a histogram", bounds=WORK_BUCKETS)
    for v in (0.5, 2.0, 300.0):
        hist.observe(v)

    text = reg.render_prometheus()
    validate_exposition(text)
    families = parse_exposition(text)
    assert families["demo_total"]["type"] == "counter"
    by_route = {labels["route"]: value
                for _name, labels, value
                in families["demo_total"]["samples"]}
    assert by_route == {"cache": 3.0, "online": 2.0}
    count = next(value for name, _labels, value
                 in families["demo_work"]["samples"]
                 if name == "demo_work_count")
    assert count == 3.0
    json.loads(reg.render_json())


def test_registry_rejects_kind_and_bounds_mismatch():
    reg = MetricsRegistry()
    reg.counter("thing_total", "a counter")
    with pytest.raises(ValueError):
        reg.gauge("thing_total", "now a gauge?")
    reg.histogram("thing_work", "a histogram", bounds=WORK_BUCKETS)
    with pytest.raises(ValueError):
        reg.histogram("thing_work", "a histogram", bounds=LATENCY_BUCKETS)
    with pytest.raises(ValueError):
        reg.counter("neg_total", "no negatives").inc(-1)


def test_promparse_rejects_broken_expositions():
    with pytest.raises(ExpositionError):
        validate_exposition("untyped_metric 1\n")
    broken_hist = (
        "# HELP h x\n# TYPE h histogram\n"
        'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
        "h_sum 1\nh_count 3\n")
    with pytest.raises(ExpositionError):
        validate_exposition(broken_hist)


# ---------------------------------------------------------------------------
# zero-cost when off
# ---------------------------------------------------------------------------
def test_disabled_stack_records_nothing(prepared):
    cqap, db, index = prepared
    assert not obs.is_enabled()
    with serve(index, backend="thread", shards=2, batch_size=8,
               cache_size=64) as server:
        list(server.serve(_stream(cqap, db)))
        stats = server.stats()
    assert stats["metrics"] is None
    assert obs.metrics_section() is None
    assert obs.probe_work_histogram() is None
    assert obs.TRACER.spans() == []
    assert obs.REGISTRY.families() == []
    validate_stats(stats)


def test_tracing_context_restores_outer_window():
    obs.enable()
    try:
        with obs.tracing(reset=False):
            assert obs.is_enabled()
        assert obs.is_enabled()  # outer window survives the inner exit
    finally:
        obs.disable()
    with obs.tracing():
        assert obs.is_enabled()
    assert not obs.is_enabled()


# ---------------------------------------------------------------------------
# per-layer recording contract
# ---------------------------------------------------------------------------
def test_engine_probe_many_counts_every_incoming_key(prepared):
    cqap, db, index = prepared
    stream = _stream(cqap, db)
    n_keys = sum(len(batch) for batch in stream)
    with obs.tracing():
        pq = PreparedQuery(index, cache_size=64)
        for batch in stream:
            pq.probe_many(batch)
        stats = pq.stats()
        work = obs.probe_work_histogram()
        latency = obs.probe_latency_histogram()
        routes = {key[0]: child.value for key, child in
                  obs.REGISTRY.get("repro_probes_total").children()}
    assert work is not None and work.count == n_keys
    assert latency is not None and latency.count == n_keys
    assert sum(routes.values()) == n_keys
    assert set(routes) <= set(obs.ROUTES)
    assert stats["metrics"] is not None
    validate_stats(stats)
    json.dumps(stats)


def test_scheduler_counts_match_probes_served(prepared):
    cqap, db, index = prepared
    with obs.tracing():
        with serve(index, backend="thread", shards=2, batch_size=8,
                   cache_size=64) as server:
            list(server.serve(_stream(cqap, db)))
            stats = server.stats()
        work = obs.probe_work_histogram()
        latency = obs.probe_latency_histogram()
        exemplars = obs.TRACER.exemplars()
    served = stats["server"]["probes_served"]
    assert work.count == served
    assert latency.count == served
    assert exemplars and all(e["route"] in obs.ROUTES for e in exemplars)
    assert stats["metrics"] is not None
    assert stats["metrics"]["tracing_enabled"]
    validate_stats(stats)
    json.dumps(stats)
    validate_exposition(obs.render_prometheus())


def test_fleet_trace_propagation_and_exact_merge(prepared):
    """Worker spans cross the pickle boundary onto the parent's traces."""
    cqap, db, index = prepared
    fleet = ProcessShardFleet(index, n_shards=2)
    try:
        with obs.tracing():
            with serve(index, backend=fleet, batch_size=8,
                       cache_size=64) as server:
                list(server.serve(_stream(cqap, db)))
                stats = server.stats()
            spans = obs.TRACER.spans()
            routes = {key[0]: child.value for key, child in
                      obs.REGISTRY.get("repro_probes_total").children()}
            worker_family = obs.REGISTRY.get("repro_worker_probe_work")
            worker_hist = worker_family.merged()
            exemplars = obs.TRACER.exemplars()
    finally:
        fleet.close()

    roots = [s for s in spans if s.name == "scheduler.batch"]
    workers = [s for s in spans if s.name == "worker.serve_group"]
    assert roots and workers
    # span ids survived pickling: every worker span hangs off a batch
    # span minted in the parent process
    root_traces = {s.trace_id for s in roots}
    root_spans = {s.span_id for s in roots}
    assert all(s.trace_id in root_traces for s in workers)
    assert all(s.parent_id in root_spans for s in workers)
    # ...and carries the worker's own pid, which is a live fleet worker
    worker_pids = {state.pid for state in fleet.shards}
    assert all(s.attrs["pid"] in worker_pids for s in workers)
    # worker histograms merged worker->parent exactly: one observation
    # per shard-routed probe
    assert worker_hist.count == routes.get("shard", 0) > 0
    assert stats["server"]["probes_served"] == sum(routes.values())
    # at least one exemplar names the worker that served it
    assert any(e["pid"] in worker_pids for e in exemplars)
    validate_stats(stats)
    json.dumps(stats)


def test_exemplar_reservoir_keeps_top_k_by_work():
    obs.enable(exemplar_k=3)
    for work in (5, 1, 9, 7, 3, 8):
        obs.record_probe(("b", work), "online", work, 0.001)
    exemplars = obs.TRACER.exemplars()
    assert [e["work"] for e in exemplars] == [9, 8, 7]
    assert exemplars[0]["binding"] == ["b", 9]


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------
def test_counters_delta_since():
    ctr = Counters()
    ctr.probes, ctr.scans, ctr.joins_emitted = 5, 7, 2
    snapshot = ctr.copy()
    ctr.probes += 3
    ctr.scans += 10
    delta = ctr.delta_since(snapshot)
    assert (delta.probes, delta.scans, delta.joins_emitted) == (3, 10, 0)
    # a fresh snapshot yields the zero delta
    zero = ctr.delta_since(ctr.copy())
    assert zero.online_work == 0
