"""The upgraded cost model: multi-variable degrees, join samples, KeyError.

Pins the estimation-stack upgrade down at the statistics layer:

* unknown variables now *raise* from ``distinct_count`` / ``degree_of``
  instead of silently answering 1 / the full cardinality (which used to
  under-cap ``log_size`` for malformed targets);
* multi-variable degree keys tighten ``log_size`` when a probe pins
  several of an atom's variables at once;
* reservoir-sampled join sizes cap skewed projections below what the
  max-degree greedy cover can see;
* the measured catalog converts losslessly into planner degree
  constraints (``constraints_from_statistics``).
"""

import math

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.catalog import k_path_cqap
from repro.query.constraints import constraints_from_statistics
from repro.query.cq import Atom, CQAP
from repro.query.hypergraph import varset
from repro.tradeoff.cost import AtomStatistics, CatalogStatistics, CostModel


def two_atom_cqap():
    """R(a, b, c) ⋈ S(c, d) with access pattern (a, b)."""
    atoms = [Atom("R", ("a", "b", "c")), Atom("S", ("c", "d"))]
    return CQAP(("a", "b", "c", "d"), ("a", "b"), atoms, name="two_atom")


def multivar_database():
    """R where deg(a)=deg(b)=4 but deg({a,b})=1 (a,b jointly determine c)."""
    r_rows = [(i, j, 10 * i + j) for i in range(4) for j in range(4)]
    s_rows = [(10 * i + j, 0) for i in range(4) for j in range(4)]
    return Database([
        Relation("R", ("a", "b", "c"), r_rows),
        Relation("S", ("c", "d"), s_rows),
    ])


class TestUnknownVariablePaths:
    def setup_method(self):
        self.cqap = two_atom_cqap()
        self.stats = CatalogStatistics.from_database(
            self.cqap, multivar_database())

    def test_distinct_count_known_variable(self):
        assert self.stats.distinct_count("a") == 4

    def test_distinct_count_unknown_variable_raises(self):
        with pytest.raises(KeyError, match="no atom mentions"):
            self.stats.distinct_count("zz")

    def test_degree_of_known_variable(self):
        atom = self.stats.atoms[0]
        assert atom.degree_of("a") == 4

    def test_degree_of_unknown_variable_raises(self):
        atom = self.stats.atoms[0]
        with pytest.raises(KeyError, match="no measured degree"):
            atom.degree_of("d")  # S's variable, not R's

    def test_log_size_with_malformed_target_raises(self):
        model = CostModel(self.cqap, self.stats)
        with pytest.raises(KeyError):
            model.log_size(varset(("a", "zz")))


class TestMultiVariableDegrees:
    def setup_method(self):
        self.cqap = two_atom_cqap()
        self.db = multivar_database()
        self.stats = CatalogStatistics.from_database(self.cqap, self.db)

    def test_set_degree_measured_for_access_prefix(self):
        atom = self.stats.atoms[0]
        keys = {key for key, _ in atom.set_degrees}
        # all 2-subsets of (a, b, c); the access prefix {a, b} is one
        assert frozenset(("a", "b")) in keys

    def test_degree_for_uses_the_tightest_matching_key(self):
        atom = self.stats.atoms[0]
        assert atom.degree_for(("a",)) == 4
        # pinning a and b together determines c: joint degree 1 beats
        # either single-variable degree
        assert atom.degree_for(("a", "b")) == 1
        assert atom.degree_for(("a", "b"), multivariable=False) == 4

    def test_bound_probe_estimate_tightens(self):
        upgraded = CostModel(self.cqap, self.stats)
        baseline = CostModel(self.cqap, self.stats,
                             use_multivar_degrees=False,
                             use_join_samples=False)
        target = varset(("a", "b", "c"))
        bound = ("a", "b")
        assert upgraded.log_size(target, bound=bound) < \
            baseline.log_size(target, bound=bound) - 1.0

    def test_flags_default_on(self):
        model = CostModel(self.cqap, self.stats)
        assert model.use_multivar_degrees and model.use_join_samples


class TestJoinSamples:
    def make_skewed(self):
        """R(a,b) ⋈ S(b,c): a 50-wide hub in R, but S is one-to-one.

        The greedy cover must price R at its *max* b-degree (50) once b is
        pinned, yet every R-row matches exactly one S-row, so the true
        join is |R| — a 25x gap only the sampled estimate can see.
        """
        r_rows = [(i, 0) for i in range(50)] + \
                 [(50 + b, b) for b in range(1, 51)]
        s_rows = [(b, b) for b in range(51)]
        atoms = [Atom("R", ("a", "b")), Atom("S", ("b", "c"))]
        cqap = CQAP(("a", "b", "c"), (), atoms, name="skewed")
        db = Database([
            Relation("R", ("a", "b"), r_rows),
            Relation("S", ("b", "c"), s_rows),
        ])
        return cqap, db

    def test_samples_are_measured_and_deterministic(self):
        cqap, db = self.make_skewed()
        first = CatalogStatistics.from_database(cqap, db, seed=7)
        again = CatalogStatistics.from_database(cqap, db, seed=7)
        assert first.join_samples and \
            first.join_samples[0].estimated_size == \
            again.join_samples[0].estimated_size
        sample = first.join_samples[0]
        assert sample.shared == ("b",)
        assert sample.variables == varset(("a", "b", "c"))

    def test_join_sample_caps_skewed_projection(self):
        cqap, db = self.make_skewed()
        stats = CatalogStatistics.from_database(cqap, db)
        upgraded = CostModel(cqap, stats)
        baseline = CostModel(cqap, stats, use_multivar_degrees=False,
                             use_join_samples=False)
        target = varset(("a", "b", "c"))
        # greedy cover prices S at its max degree (the 50-wide hub); the
        # sampled join averages over the data and lands far lower
        assert upgraded.log_size(target) < baseline.log_size(target) - 0.5
        # and the sampled cap still upper-bounds the true join size
        true_join = sum(
            1 for a, b in db["R"].tuples for b2, c in db["S"].tuples
            if b == b2
        )
        assert 2 ** upgraded.log_size(target) >= true_join * 0.2

    def test_sample_size_zero_disables_sampling(self):
        cqap, db = self.make_skewed()
        stats = CatalogStatistics.from_database(cqap, db, sample_size=0)
        assert stats.join_samples == []


class TestStatisticsSnapshot:
    def test_snapshot_keys_and_counts(self):
        cqap = k_path_cqap(3)
        from repro.data import path_database

        db = path_database(3, 100, 30, seed=1)
        stats = CatalogStatistics.from_database(cqap, db)
        snap = stats.snapshot()
        assert snap["atoms"] == 3
        assert snap["single_degree_keys"] == 6
        # binary atoms have no proper 2-subsets: no multi-variable keys
        assert snap["multi_degree_keys"] == 0
        assert snap["join_samples"] == 2  # (R1,R2) and (R2,R3) share vars
        assert snap["join_sample_size"] > 0

    def test_ternary_atoms_grow_multi_keys(self):
        cqap = two_atom_cqap()
        stats = CatalogStatistics.from_database(cqap, multivar_database())
        assert stats.snapshot()["multi_degree_keys"] == 3  # ab, ac, bc


class TestConstraintsFromStatistics:
    def test_catalog_converts_to_degree_constraints(self):
        cqap = two_atom_cqap()
        stats = CatalogStatistics.from_database(cqap, multivar_database())
        dc = constraints_from_statistics(stats)
        # cardinality constraint per atom
        assert dc.bound((), ("a", "b", "c")) == 16
        # single-variable measured degree
        assert dc.bound(("a",), ("a", "b", "c")) == 4
        # multi-variable key: (a, b) determines the R-tuple
        assert dc.bound(("a", "b"), ("a", "b", "c")) == 1

    def test_constraints_are_guarded_by_the_instance(self):
        cqap = two_atom_cqap()
        db = multivar_database()
        stats = CatalogStatistics.from_database(cqap, db)
        dc = constraints_from_statistics(stats)
        assert dc.guarded_by([db["R"], db["S"]])


class TestWorstCaseStaysCardinalityOnly:
    def test_worst_case_ignores_degree_and_sample_refinements(self):
        cqap = two_atom_cqap()
        stats = CatalogStatistics.from_database(cqap, multivar_database())
        model = CostModel(cqap, stats)
        target = varset(("a", "b", "c", "d"))
        # worst case: |R| * |S| on the cover, no caps
        assert model.log_size_worst(target) == \
            pytest.approx(math.log2(16) + math.log2(16))
        assert model.log_size(target) <= model.log_size_worst(target)
