"""Shared pytest configuration: the `slow` marker for long LP sweeps."""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running LP sweeps (run by default; deselect "
        "with -m 'not slow')"
    )
