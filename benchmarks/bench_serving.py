"""Sharded, batched serving — throughput vs shard count × batch size.

The serving claim being measured (the paper's §6.4 batching observation,
scaled up): on a realistic hot, dedupe-heavy probe stream, the batched
sharded serving stack beats the *serial* ``probe_many`` baseline — one
``probe_many([b])`` call per incoming binding, the per-request serving
pattern a naive deployment uses — by well over 2×, because batch dedupe
collapses repeated hot bindings, the answer cache serves shared immutable
relations (no per-hit reconstruction), and each shard group pays one
online phase per batch instead of one per probe.  On the degenerate
configuration (one shard, batches of one — batching can't help) the
serving machinery costs at most a small constant overhead vs the same
baseline.  The engine's own batch loop (``probe_many`` per 32-wide batch)
is also reported as context: it is the throughput floor the scheduler
must match before sharding and window batching can add anything.

The **process backend** is measured on its own grid with a CPU-time
methodology.  This box (and most CI runners) pins the whole fleet to a
handful of cores, so wall-clock cannot show the parallelism a fleet buys
on real hardware; what sharding actually changes is the *critical path*:
each worker only executes its shard's slice of the online work.  The
grid therefore reports ``critical_path_seconds = parent CPU + max(worker
CPU)`` — the elapsed time of the slowest chain when every worker has its
own core — as the primary ``probes_per_sec`` denominator, with measured
wall-clock seconds and the box's core count recorded alongside so the
number can never be mistaken for a same-box wall-clock win.  Worker CPU
is ``time.process_time()`` measured *inside* each worker process; the
process stream is all-distinct (no dedupe, no cache hits), so the
measurement is online-phase-bound, which is the regime sharding targets.

All sides serve the *same* prepared index, stream, and cache capacity, so
differences are purely scheduling.  Every answer is additionally
cross-checked against ``probe_many`` (and the grid across shard counts
against itself), so a throughput number can never come from a wrong
answer.
"""

import os
import sys
import time
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import random

from harness import print_table

from repro.core.index import CQAPIndex
from repro.data import path_database
from repro.engine import PreparedQuery
from repro.query.catalog import k_path_cqap
from repro.query.cq import CQAP, Atom
from repro.serving import BatchScheduler, ShardedIndex, serve
from repro.workloads.probes import batched_stream

N_EDGES = 800
DOMAIN = 60
BATCHES = 100
STREAM_BATCH = 32
DEDUPE_RATIO = 0.98
HOT_FRACTION = 0.9
CACHE_SIZE = 512

SHARD_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (8, 32)

#: the process fleet's grid: shard counts on an all-distinct stream.
#: Wide batches keep the parent's per-submission dispatch cost (one
#: executor round-trip per shard per batch) off the critical path.
PROCESS_SHARD_COUNTS = (1, 2, 4)
PROCESS_BATCHES = 10
PROCESS_BATCH_SIZE = 256

#: the degenerate config measured for overhead: 1 shard, batches of 1
OVERHEAD_PROBES = 400


#: wall-clock repeats per measured configuration; the minimum is kept
#: (standard best-of-N to shed scheduler noise on shared runners)
REPEATS = 3


def _rechunk(stream, batch_size):
    flat = [b for batch in stream for b in batch]
    return [flat[i:i + batch_size]
            for i in range(0, len(flat), batch_size)]


def _best_seconds(run_once, repeats: int = REPEATS) -> float:
    """Minimum wall-clock over ``repeats`` runs of ``run_once()``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once()
        best = min(best, time.perf_counter() - t0)
    return best


def path3_enum_cqap() -> CQAP:
    """The 3-path *enumeration* CQAP: full head, endpoints as access.

    The Boolean ``k_path_cqap(3)`` answers with 0/1 rows; serving benches
    need the enumeration variant (every witness path in the head) so that
    answer payloads have realistic weight — it is the hot *answers*, not
    the hot bindings, that make caching and batch dedupe matter.
    """
    atoms = [Atom(f"R{i}", (f"x{i}", f"x{i + 1}")) for i in range(1, 4)]
    return CQAP(("x1", "x2", "x3", "x4"), ("x1", "x4"), atoms,
                name="path3_enum")


@lru_cache(maxsize=1)
def experiment():
    cqap = path3_enum_cqap()
    db = path_database(3, N_EDGES, DOMAIN, seed=11, skew_hubs=5)
    budget = 10 ** 6
    index = CQAPIndex(cqap, db, budget)
    index.preprocess()
    rng = random.Random(37)
    stream = batched_stream(cqap, db, rng, batches=BATCHES,
                            batch_size=STREAM_BATCH,
                            dedupe_ratio=DEDUPE_RATIO,
                            hot_fraction=HOT_FRACTION)
    n_probes = sum(len(batch) for batch in stream)

    flat = [b for batch in stream for b in batch]

    # -- baseline: serial probe_many, one call per incoming binding -----
    reference = {}

    def serial_loop():
        pq = PreparedQuery(index, cache_size=CACHE_SIZE)
        for binding in flat:
            reference.update(pq.probe_many([binding]))

    baseline_seconds = _best_seconds(serial_loop)
    baseline_pps = n_probes / max(baseline_seconds, 1e-9)

    # -- context: the engine's own batch loop over the stream's batches -
    def batch_loop():
        pq = PreparedQuery(index, cache_size=CACHE_SIZE)
        for batch in stream:
            pq.probe_many(batch)

    batch_loop_pps = n_probes / max(_best_seconds(batch_loop), 1e-9)

    # -- grid: shard count × execution batch size (thread backend) ------
    # the backend (shard partitioning) is built once per shard count,
    # outside the timed region: the grid measures serving, not setup.
    # Each timed pass fronts it with a fresh Server via serve(), so every
    # repeat starts with a cold answer cache.
    grid = []
    for n_shards in SHARD_COUNTS:
        sharded = ShardedIndex(index, n_shards=n_shards)
        for batch_size in BATCH_SIZES:
            chunks = _rechunk(stream, batch_size)
            served = []
            stats = {}

            def serving_pass():
                with serve(index, backend=sharded, batch_size=batch_size,
                           cache_size=CACHE_SIZE) as server:
                    served[:] = list(server.serve(chunks))
                    stats.update(server.stats())

            seconds = _best_seconds(serving_pass)
            for key, rel in served:       # correctness gates throughput
                assert frozenset(rel.tuples) == \
                    frozenset(reference[key].tuples), (n_shards, key)
            grid.append({
                "backend": "thread",
                "shards": n_shards,
                "batch_size": batch_size,
                "probes": len(served),
                "seconds": seconds,
                "probes_per_sec": len(served) / max(seconds, 1e-9),
                "speedup_vs_baseline":
                    (len(served) / max(seconds, 1e-9)) / baseline_pps,
                "dedupe_ratio": stats["scheduler"]["dedupe_ratio"],
                "cache_hit_rate": stats["scheduler"]["cache"]["hit_rate"],
                "partitioned_tuples":
                    stats["engine"]["budget_split"]["partitioned_tuples"],
            })

    # -- process fleet: critical-path CPU scaling vs shard count --------
    proc_stream = batched_stream(cqap, db, random.Random(91),
                                 batches=PROCESS_BATCHES,
                                 batch_size=PROCESS_BATCH_SIZE,
                                 dedupe_ratio=0.0, hot_fraction=0.0)
    proc_reference = {}
    ref_pq = PreparedQuery(index, cache_size=0)
    for batch in proc_stream:
        proc_reference.update(ref_pq.probe_many(batch))
    n_proc_probes = sum(len(batch) for batch in proc_stream)

    # the fleet (fork + in-worker preprocessing) is built once per shard
    # count; each timed pass fronts it with a fresh Server (cold cache)
    # and charges only that pass's worker CPU via before/after deltas
    from repro.serving import ProcessShardFleet

    process_grid = []
    for n_shards in PROCESS_SHARD_COUNTS:
        fleet = ProcessShardFleet(index, n_shards=n_shards)
        try:
            best = None
            for _ in range(REPEATS):
                before = [s.cpu_seconds for s in fleet.shards]
                with serve(index, backend=fleet,
                           batch_size=PROCESS_BATCH_SIZE,
                           cache_size=CACHE_SIZE) as server:
                    wall0 = time.perf_counter()
                    cpu0 = time.process_time()
                    served = list(server.serve(proc_stream))
                    parent_cpu = time.process_time() - cpu0
                    wall = time.perf_counter() - wall0
                for key, rel in served:   # correctness gates throughput
                    assert frozenset(rel.tuples) == \
                        frozenset(proc_reference[key].tuples), \
                        (n_shards, key)
                worker_cpus = [s.cpu_seconds - b
                               for s, b in zip(fleet.shards, before)]
                critical = parent_cpu + max(worker_cpus)
                row = {
                    "backend": "process",
                    "shards": n_shards,
                    "batch_size": PROCESS_BATCH_SIZE,
                    "probes": len(served),
                    "wall_seconds": wall,
                    "parent_cpu_seconds": parent_cpu,
                    "worker_cpu_seconds": worker_cpus,
                    "critical_path_seconds": critical,
                    "probes_per_sec": len(served) / max(critical, 1e-9),
                    "preprocess_seconds":
                        max(s.preprocess_seconds for s in fleet.shards),
                    "partitioned_tuples": fleet.partitioned_tuples,
                }
                if best is None or critical < best["critical_path_seconds"]:
                    best = row
            process_grid.append(best)
        finally:
            fleet.close()

    proc_pps = [row["probes_per_sec"] for row in process_grid]
    process_scaling = {
        "metric": "critical_path_cpu",
        "note": "probes / (parent CPU + max worker CPU); wall-clock "
                "cannot show fleet parallelism on this box",
        "cpu_count": os.cpu_count(),
        "shard_counts": list(PROCESS_SHARD_COUNTS),
        "probes_per_sec": proc_pps,
        "speedup_4_vs_1": proc_pps[-1] / max(proc_pps[0], 1e-9),
        "monotone_increasing": all(a < b for a, b
                                   in zip(proc_pps, proc_pps[1:])),
        "stream_probes": n_proc_probes,
    }

    # -- observability axis: tracing off/on on the 4-shard/32 config ----
    # the off measurement and its baseline run the *same* code path (the
    # disabled hot path is one module-attribute read per probe), so their
    # ratio bounds the off-path overhead plus harness noise; the on
    # measurement prices full tracing.  A separate instrumented pass
    # checks the observation contract: histogram counts == probes served,
    # exemplars captured.
    import repro.obs as obs

    obs_shards, obs_batch = 4, 32
    obs_chunks = _rechunk(stream, obs_batch)
    obs_backend = ShardedIndex(index, n_shards=obs_shards)

    def obs_serving_pass():
        with serve(index, backend=obs_backend, batch_size=obs_batch,
                   cache_size=CACHE_SIZE) as server:
            for _ in server.serve(obs_chunks):
                pass

    def traced_pass():
        with obs.tracing():
            obs_serving_pass()

    # Per-pass wall times on a shared runner drift by tens of percent over
    # fractions of a second, so min-of-N ratios between *separately timed
    # blocks* are unusable for a 5% bound.  Each round instead times the
    # two (identical-code-path) off conditions in a symmetric B-O-O-B
    # sandwich — linear drift within the round cancels exactly in the
    # (O+O)/(B+B) ratio — and the overhead statistic is the MEDIAN of the
    # per-round ratios, which discards the rounds a GC or scheduler spike
    # landed in.
    timings = {"baseline": [], "off": [], "on": []}
    ratios = {"off": [], "on": []}

    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    for _ in range(9):
        b1 = timed(obs_serving_pass)
        o1 = timed(obs_serving_pass)
        o2 = timed(obs_serving_pass)
        b2 = timed(obs_serving_pass)
        on = timed(traced_pass)
        timings["baseline"] += [b1, b2]
        timings["off"] += [o1, o2]
        timings["on"].append(on)
        ratios["off"].append((o1 + o2) / (b1 + b2))
        ratios["on"].append(2 * on / (o1 + o2))

    def median(values):
        return sorted(values)[len(values) // 2]

    obs_baseline_seconds = min(timings["baseline"])
    obs_off_seconds = min(timings["off"])
    obs_on_seconds = min(timings["on"])

    with obs.tracing():
        with serve(index, backend=obs_backend, batch_size=obs_batch,
                   cache_size=CACHE_SIZE) as server:
            for _ in server.serve(obs_chunks):
                pass
            obs_probes_served = server.probes_served
        work_hist = obs.probe_work_histogram()
        latency_hist = obs.probe_latency_histogram()
        obs_exemplars = obs.TRACER.exemplars()

    observability = {
        "shards": obs_shards,
        "batch_size": obs_batch,
        "baseline_seconds": obs_baseline_seconds,
        "off_seconds": obs_off_seconds,
        "on_seconds": obs_on_seconds,
        "off_probes_per_sec": n_probes / max(obs_off_seconds, 1e-9),
        "on_probes_per_sec": n_probes / max(obs_on_seconds, 1e-9),
        "off_path_overhead": median(ratios["off"]) - 1.0,
        "tracing_overhead": median(ratios["on"]) - 1.0,
        "probes_served": obs_probes_served,
        "work_observations": work_hist.count if work_hist else 0,
        "latency_observations": latency_hist.count if latency_hist else 0,
        "exemplars": len(obs_exemplars),
        "exemplar_routes": sorted({e["route"] for e in obs_exemplars}),
    }

    # -- overhead: 1 shard, batches of 1, vs probe_many([b]) ------------
    head = flat[:OVERHEAD_PROBES]

    def solo_engine():
        pq = PreparedQuery(index, cache_size=CACHE_SIZE)
        for binding in head:
            pq.probe_many([binding])

    solo_seconds = _best_seconds(solo_engine)
    single = ShardedIndex(index, n_shards=1)

    def solo_serving():
        with BatchScheduler(single, cache_size=CACHE_SIZE) as sched:
            for binding in head:
                sched.run([binding])

    sharded_solo_seconds = _best_seconds(solo_serving)
    overhead = sharded_solo_seconds / max(solo_seconds, 1e-9) - 1.0

    best = max(grid, key=lambda row: row["probes_per_sec"])
    return {
        "stream_probes": n_probes,
        "distinct_probes": len(set(flat)),
        "baseline_seconds": baseline_seconds,
        "baseline_probes_per_sec": baseline_pps,
        "probe_many_batch_probes_per_sec": batch_loop_pps,
        "throughput_grid": grid,
        "process_grid": process_grid,
        "process_scaling": process_scaling,
        "best_speedup": best["speedup_vs_baseline"],
        "best_config": {"shards": best["shards"],
                        "batch_size": best["batch_size"]},
        "single_shard_overhead": overhead,
        "observability": observability,
        "stored_tuples": index.stored_tuples,
        "budget": budget,
    }


def report():
    r = experiment()
    print_table(
        "sharded serving — throughput vs shard count × batch size "
        f"(3-path enum, {r['stream_probes']} probes, "
        f"{r['distinct_probes']} distinct, serial probe_many baseline "
        f"{r['baseline_probes_per_sec']:.0f} probes/s, engine batch loop "
        f"{r['probe_many_batch_probes_per_sec']:.0f} probes/s)",
        ["shards", "batch", "probes/s", "speedup", "hit rate",
         "partitioned"],
        [
            [row["shards"], row["batch_size"],
             f"{row['probes_per_sec']:.0f}",
             f"{row['speedup_vs_baseline']:.2f}x",
             f"{row['cache_hit_rate']:.0%}",
             row["partitioned_tuples"]]
            for row in r["throughput_grid"]
        ],
    )
    print(f"single-shard batch-of-1 overhead vs probe_many: "
          f"{r['single_shard_overhead']:+.1%}", flush=True)
    scaling = r["process_scaling"]
    print_table(
        "process fleet — critical-path CPU throughput vs shard count "
        f"({scaling['stream_probes']} distinct probes, "
        f"{scaling['cpu_count']} cores on this box; probes / "
        "(parent CPU + max worker CPU))",
        ["shards", "probes/s", "wall s", "parent cpu", "max worker cpu",
         "preprocess s"],
        [
            [row["shards"], f"{row['probes_per_sec']:.0f}",
             f"{row['wall_seconds']:.2f}",
             f"{row['parent_cpu_seconds']:.2f}",
             f"{max(row['worker_cpu_seconds']):.2f}",
             f"{row['preprocess_seconds']:.2f}"]
            for row in r["process_grid"]
        ],
    )
    print(f"process fleet critical-path speedup 4 shards vs 1: "
          f"{scaling['speedup_4_vs_1']:.2f}x "
          f"(monotone: {scaling['monotone_increasing']})", flush=True)
    o = r["observability"]
    print(f"observability [{o['shards']} shards/batch {o['batch_size']}]: "
          f"off {o['off_probes_per_sec']:.0f} probes/s "
          f"(off-path overhead {o['off_path_overhead']:+.1%}), "
          f"on {o['on_probes_per_sec']:.0f} probes/s "
          f"(tracing overhead {o['tracing_overhead']:+.1%}); "
          f"{o['work_observations']} observations for "
          f"{o['probes_served']} probes, {o['exemplars']} exemplars",
          flush=True)
    return r


def test_serving_benchmark(benchmark):
    r = report()
    # the serving stack must beat the serial probe_many loop on the
    # hot/dedupe-heavy stream (acceptance: >= 2x; asserted with slack so a
    # loaded CI runner doesn't flake a real 2-3x win)
    assert r["best_speedup"] >= 1.5, r["best_speedup"]
    # ...and not only at one shard: every shard count must beat the serial
    # baseline at the full batch width (measured 2.2-2.6x; 1.2 is the
    # regression floor, not the claim)
    for row in r["throughput_grid"]:
        if row["batch_size"] == max(BATCH_SIZES):
            assert row["speedup_vs_baseline"] >= 1.2, row
    # batching at 32 never loses to batching at 8 by more than noise on
    # any shard count — dedupe amortization grows with the batch
    by_config = {(row["shards"], row["batch_size"]): row
                 for row in r["throughput_grid"]}
    for shards in SHARD_COUNTS:
        big = by_config[(shards, 32)]["probes_per_sec"]
        small = by_config[(shards, 8)]["probes_per_sec"]
        assert big >= 0.5 * small, (shards, big, small)
    # the degenerate config is within the documented overhead envelope
    assert r["single_shard_overhead"] <= 0.20, r["single_shard_overhead"]
    # sharding actually partitions stored state beyond one shard
    assert any(row["partitioned_tuples"] > 0
               for row in r["throughput_grid"] if row["shards"] > 1)
    # the process fleet's critical-path throughput grows with the fleet:
    # monotone from 1 -> 4 shards, and at least 1.5x at 4 shards
    scaling = r["process_scaling"]
    assert scaling["monotone_increasing"], scaling["probes_per_sec"]
    assert scaling["speedup_4_vs_1"] >= 1.5, scaling["speedup_4_vs_1"]
    # observability: the disabled hot path costs < 5% (it is one
    # module-attribute read per probe; the ratio is same-code-path, so
    # the bound also absorbs harness noise) ...
    o = r["observability"]
    assert o["off_path_overhead"] < 0.05, o
    # ...and the enabled path keeps its observation contract: exactly one
    # latency and one work observation per served probe, plus exemplars
    assert o["work_observations"] == o["probes_served"], o
    assert o["latency_observations"] == o["probes_served"], o
    assert o["exemplars"] >= 1, o
    benchmark(lambda: None)


def smoke(n_shards: int = 2, batches: int = 2,
          backend: str = "thread", relation_backend: str = "set") -> int:
    """The CI smoke: a tiny sharded run cross-checked against probe_many.

    Returns 0 on agreement, 1 otherwise — cheap enough to run on every
    push (2 shards × 2 batches by default).  ``backend`` selects the
    thread or process fleet through the same ``serve()`` facade users go
    through, so CI covers both serving paths on every push.
    ``relation_backend`` selects the relation execution backend of the
    *served* index; the probe_many reference always runs on the set
    backend, so a columnar smoke is a genuine cross-backend diff (and,
    with ``backend="process"``, additionally round-trips columnar shard
    payloads through worker pickling).
    """
    cqap = k_path_cqap(3)
    db = path_database(3, 300, 60, seed=7)
    index = CQAPIndex(cqap, db, int(db.size ** 1.2),
                      relation_backend=relation_backend)
    index.preprocess()
    rng = random.Random(5)
    stream = batched_stream(cqap, db, rng, batches=batches, batch_size=8,
                            dedupe_ratio=0.5)
    reference = CQAPIndex(cqap, db, int(db.size ** 1.2))
    reference.preprocess()
    pq = PreparedQuery(reference, cache_size=64)
    failures = 0
    with serve(index, backend=backend, shards=n_shards, batch_size=8,
               cache_size=64) as server:
        for key, rel in server.serve(stream):
            expected = pq.probe_many([key])[key]
            if frozenset(rel.tuples) != frozenset(expected.tuples):
                print(f"SMOKE MISMATCH at {key}")
                failures += 1
        probes = server.probes_served
    print(f"serving smoke [{backend}/{relation_backend}]: {n_shards} "
          f"shards x {batches} batches, {probes} probes, "
          f"{failures} mismatches", flush=True)
    return 1 if failures else 0


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        chosen = "thread"
        if "--backend" in sys.argv:
            chosen = sys.argv[sys.argv.index("--backend") + 1]
        relations = "set"
        if "--relation-backend" in sys.argv:
            relations = sys.argv[sys.argv.index("--relation-backend") + 1]
        sys.exit(smoke(backend=chosen, relation_backend=relations))
    report()
