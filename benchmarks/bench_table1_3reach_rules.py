"""Table 1 — the 2-phase disjunctive rules for 3-reachability.

Regenerates the four reduced rules from the Figure 3 PMTD set and, for each,
recovers the intrinsic tradeoff segments from the OBJ(S) LP sweep (including
the |Q_A| exponents, probed by finite differences in log Q).  Compares
against Table 1's published formulas.
"""

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.decomposition import paper_pmtds_3reach
from repro.query.catalog import k_path_cqap
from repro.tradeoff import (
    PiecewiseCurve,
    catalog,
    fit_segment_formulas,
    rules_from_pmtds,
    symbolic_program,
)


@lru_cache(maxsize=1)
def computed_rules():
    cqap = k_path_cqap(3)
    prog = symbolic_program(cqap)
    prog_q = symbolic_program(cqap, q_log=0.125)
    rules = rules_from_pmtds(paper_pmtds_3reach())
    out = {}
    for rule in rules:
        def obj(y, r=rule, p=prog):
            return p.obj_for_budget(r, y).log_time

        curve = PiecewiseCurve.sample(obj, 1.0, 2.0, steps=40)

        def q_probe(x_mid, dq, r=rule):
            base = prog.obj_for_budget(r, x_mid).log_time
            bumped = prog_q.obj_for_budget(r, x_mid).log_time
            return (bumped - base) * (dq / 0.125)

        out[rule.label] = fit_segment_formulas(curve, q_slope_probe=q_probe)
    return out


def expected_normalized():
    return {
        label: {f.normalized() for f in formulas}
        for label, formulas in catalog.table1_3reach().items()
    }


def report():
    rows = []
    computed = computed_rules()
    expected = catalog.table1_3reach()
    for label in sorted(computed):
        got = "; ".join(str(f) for f in computed[label])
        exp = "; ".join(str(f) for f in expected.get(label, []))
        rows.append([label, got, exp])
    print_table(
        "Table 1 — 3-reachability rules and intrinsic tradeoffs "
        "(LP-derived vs paper)",
        ["rule head", "LP segments on logS in [1,2]", "paper (Table 1)"],
        rows,
    )
    return computed


def test_table1_rules(benchmark):
    computed = report()
    expected = expected_normalized()
    assert set(computed) == set(expected)
    for label, formulas in computed.items():
        got = {
            f.normalized() for f in formulas
            # drop the saturated T ≍ 1 piece (OBJ hits 0 inside the range)
            if not (f.s_exp == 0 and f.d_exp == 0 and f.q_exp == 0)
        }
        # every LP segment must be one of the paper's published tradeoffs
        # (the paper lists the binding pieces on logS in [1,2])
        assert got <= expected[label], (
            f"{label}: got {got}, paper lists {expected[label]}"
        )
        assert got, f"{label}: no non-trivial segments recovered"
    prog = symbolic_program(k_path_cqap(3))
    rule = rules_from_pmtds(paper_pmtds_3reach())[0]
    benchmark(lambda: prog.obj_for_budget(rule, 1.5).log_time)


if __name__ == "__main__":
    report()
