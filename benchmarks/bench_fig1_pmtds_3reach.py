"""Figure 1 — three PMTDs for the 3-reachability CQAP.

Regenerates the figure's three decompositions with their view labels
((T134, T123), (T134, S13), (S14)) and machine-checks the ν(·) schemas of
Definition 3.2 plus Example 3.6's redundancy/domination statements.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.decomposition import PMTD, TreeDecomposition
from repro.query.catalog import k_path_cqap


def figure1_pmtds():
    cqap = k_path_cqap(3)
    two_bag = TreeDecomposition(
        {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
    )
    one_bag = TreeDecomposition({0: {"x1", "x2", "x3", "x4"}}, [])
    left = PMTD(two_bag, 0, (), cqap.head, cqap.access)
    middle = PMTD(two_bag, 0, (1,), cqap.head, cqap.access)
    right = PMTD(one_bag, 0, (0,), cqap.head, cqap.access)
    return cqap, left, middle, right


def report():
    cqap, left, middle, right = figure1_pmtds()
    rows = [
        ["left", ", ".join(left.labels), "T134, T123"],
        ["middle", ", ".join(middle.labels), "T134, S13"],
        ["right", ", ".join(right.labels), "S14"],
    ]
    print_table("Figure 1 — PMTDs for the 3-reachability CQAP",
                ["PMTD", "regenerated views", "paper views"], rows)
    return left, middle, right


def test_figure1(benchmark):
    left, middle, right = report()
    assert left.labels == ["T134", "T123"]
    assert middle.labels == ["T134", "S13"]
    assert right.labels == ["S14"]
    # Example 3.6: materializing both bags of the left tree is redundant
    cqap = k_path_cqap(3)
    both = PMTD(left.td, 0, (0, 1), cqap.head, cqap.access)
    assert both.is_redundant()
    # ... and the all-T single bag dominates the left PMTD
    one_bag_t = PMTD(right.td, 0, (), cqap.head, cqap.access)
    assert left.dominated_by(one_bag_t)
    # the three figure PMTDs are pairwise non-dominating
    for a in (left, middle, right):
        for b in (left, middle, right):
            if a is not b:
                assert not a.dominated_by(b)
    benchmark(lambda: PMTD(left.td, 0, (1,), cqap.head, cqap.access).labels)


if __name__ == "__main__":
    report()
