"""Ablation — single-target vs disjunctive polymatroid bound gap.

DESIGN.md documents the PANDA substitution: each subproblem computes *one
designated target exactly*, bounded by its single-target polymatroid bound
(Theorem C.1), whereas full PANDA can interleave targets and is bounded by
the (smaller) disjunctive bound.  This ablation quantifies the gap per
subproblem of every 3-reachability rule plan: for the paper's strategies the
two coincide on almost every subproblem, which is exactly why the
substitution preserves the tradeoff shape.
"""

import math
import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.core import CQAPIndex
from repro.data import path_database
from repro.query.catalog import k_path_cqap


@lru_cache(maxsize=1)
def experiment():
    cqap = k_path_cqap(3)
    db = path_database(3, 500, 80, seed=61, skew_hubs=4)
    index = CQAPIndex(cqap, db, db.size ** 1.2)
    index.plans = [index.planner.plan_rule(rule) for rule in index.rules]
    program = index.planner.program
    rows = []
    gaps = []
    for plan in index.plans:
        targets = (plan.rule.s_targets if True else None)
        for decision in plan.decisions:
            phase = decision.phase
            pool = (plan.rule.s_targets if phase == "S"
                    else plan.rule.t_targets)
            if not pool:
                continue
            extra = decision.subproblem.constraints
            single = min(
                program.log_size_bound([t], phase=phase, extra=extra)
                for t in pool
            )
            disjunctive = program.log_size_bound(pool, phase=phase,
                                                 extra=extra)
            gap = single - disjunctive
            gaps.append(gap)
            rows.append([
                plan.rule.label[:34],
                decision.subproblem.label(),
                phase,
                f"{single:.3f}",
                f"{disjunctive:.3f}",
                f"{gap:.3f}",
            ])
    return rows, gaps


def report():
    rows, gaps = experiment()
    print_table(
        "Ablation — single-target vs disjunctive bound per subproblem "
        "(3-reach, log2 units)",
        ["rule", "subproblem", "phase", "single-target", "disjunctive",
         "gap"],
        rows,
    )
    zero = sum(1 for g in gaps if g <= 1e-6)
    print(f"subproblems with zero gap: {zero}/{len(gaps)}; "
          f"max gap {max(gaps):.3f} (log2)")
    return gaps


def test_bound_gap(benchmark):
    gaps = report()
    assert gaps, "no subproblems planned"
    # the substitution is exact on the (vast) majority of subproblems
    zero = sum(1 for g in gaps if g <= 1e-6)
    assert zero / len(gaps) >= 0.5
    # and never pays more than a constant-exponent overhead here
    assert max(gaps) <= 2.0
    cqap = k_path_cqap(3)
    db = path_database(3, 200, 40, seed=3)
    index = CQAPIndex(cqap, db, db.size)
    rule = index.rules[0]
    benchmark(lambda: index.planner.program.log_size_bound(
        list(rule.t_targets), phase="T"
    ))


if __name__ == "__main__":
    report()
