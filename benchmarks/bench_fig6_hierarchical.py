"""Figure 6 / §F — Boolean hierarchical CQAPs.

Analytic: the §F joint Shannon-flow derivations for the Figure 6a query —
``S·T³ ≍ D⁴·Q³`` from the first proof sequence, improved to ``S·T⁴ ≍ D⁴·Q⁴``
by bucketizing on the bound variables — are re-verified by the inequality
LP.  Empirical: the adapted Kara et al. baseline (Theorem F.4, w = 4) sweeps
ε, measuring space O(N^{1+3ε}) against answering probes O(N^{1-ε}), and the
framework route must answer identically.
"""

import math
import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from harness import print_table

from repro.data import hierarchical_binary_tree_database
from repro.problems import (
    AdaptedKaraBaseline,
    HierarchicalIndex,
    static_width,
)
from repro.query.catalog import hierarchical_binary_tree_cqap
from repro.query.hypergraph import varset
from repro.tradeoff import catalog, symbolic_program
from repro.util.counters import Counters


@lru_cache(maxsize=1)
def analytic():
    cqap = hierarchical_binary_tree_cqap()
    prog = symbolic_program(cqap)
    z = varset({"z1", "z2", "z3", "z4"})
    zx = z | {"x"}
    x = varset({"x"})
    e = varset(())
    atoms = {
        "R": varset({"x", "y1", "z1"}), "S": varset({"x", "y1", "z2"}),
        "T": varset({"x", "y2", "z3"}), "U": varset({"x", "y2", "z4"}),
    }
    # §F first derivation (S·T³ ≍ D⁴·Q³):
    #   3h_T(x) + h_S(R|x) + h_S(S|x) + h_S(T|x) + h_S(U) + 3h_T(Z)
    #     >= h_S(Z) + 3h_T(xZ)
    # LHS cost: three (x, atom) split pairs + |R_U| + 3|Q| = 4logD + 3logQ.
    first = prog.verify_joint_inequality(
        lhs_s={(x, atoms["R"]): 1, (x, atoms["S"]): 1, (x, atoms["T"]): 1,
               (e, atoms["U"]): 1},
        lhs_t={(e, x): 3, (e, z): 3},
        rhs_s={z: 1},
        rhs_t={zx: 3},
    )
    # eq. (36), bucketize on the bound variables (S·T⁴ ≍ D⁴·Q⁴):
    #   Σ_i [h_S(z_i) + h_T(atom_i | z_i)] + 4h_T(Z) >= h_S(Z) + 4h_T(xZ)
    improved = prog.verify_joint_inequality(
        lhs_s={(e, varset({"z1"})): 1, (e, varset({"z2"})): 1,
               (e, varset({"z3"})): 1, (e, varset({"z4"})): 1},
        lhs_t={(varset({"z1"}), atoms["R"]): 1,
               (varset({"z2"}), atoms["S"]): 1,
               (varset({"z3"}), atoms["T"]): 1,
               (varset({"z4"}), atoms["U"]): 1,
               (e, z): 4},
        rhs_s={z: 1},
        rhs_t={zx: 4},
    )
    return first, improved


@lru_cache(maxsize=1)
def kara_sweep():
    db = hierarchical_binary_tree_database(600, 24, seed=31, heavy_x=4)
    cqap = hierarchical_binary_tree_cqap()
    full = cqap.evaluate(db)
    hits = sorted(full.tuples)
    n = db.size
    rows = []
    for eps in (0.0, 0.25, 0.5, 0.75, 1.0):
        baseline = AdaptedKaraBaseline(db, eps)
        ctr = Counters()
        for i in range(30):
            z = hits[(i * 13) % len(hits)] if i % 2 == 0 else (
                10**6 + i, i, i, i
            )
            baseline.query(z, counters=ctr)
        rows.append({
            "eps": eps,
            "heavy": len(baseline.heavy_x),
            "stored": baseline.stored_tuples,
            "avg_ops": ctr.online_work / 30,
            "t_bound": n ** (1 - eps),
        })
    return db, n, rows


def report():
    first, improved = analytic()
    w = static_width(hierarchical_binary_tree_cqap())
    print_table(
        "§F analytic — Figure 6a query (static width w = "
        f"{w:g})",
        ["joint Shannon-flow inequality", "tradeoff", "LP-verified"],
        [
            ["first derivation", str(catalog.hierarchical_fig6_derived()),
             first],
            ["bucketize on bound vars (eq. 36)",
             str(catalog.hierarchical_fig6_improved()), improved],
        ],
    )
    db, n, rows = kara_sweep()
    print_table(
        f"Theorem F.4 — adapted Kara et al. baseline sweep (N = {n}, "
        "w = 4: S = O(N^{1+3ε}), T = O(N^{1-ε}))",
        ["ε", "#heavy x", "stored tuples", "avg online ops",
         "N^{1-ε} bound"],
        [[f"{r['eps']:.2f}", r["heavy"], r["stored"],
          f"{r['avg_ops']:.1f}", f"{r['t_bound']:.0f}"] for r in rows],
    )
    return first, improved, rows


def test_fig6(benchmark):
    first, improved, rows = report()
    assert improved, "eq. 36 inequality failed LP verification"
    assert static_width(hierarchical_binary_tree_cqap()) == 4.0
    # heavy count shrinks and materialization grows with epsilon
    heavies = [r["heavy"] for r in rows]
    assert heavies == sorted(heavies, reverse=True)
    # online work shrinks as epsilon rises (T = O(N^{1-ε}))
    assert rows[-1]["avg_ops"] <= rows[0]["avg_ops"]
    db, n, _ = kara_sweep()
    baseline = AdaptedKaraBaseline(db, 0.5)
    benchmark(lambda: baseline.query((1, 2, 3, 4)))


if __name__ == "__main__":
    report()
