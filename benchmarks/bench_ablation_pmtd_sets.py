"""Ablation — how the PMTD set shapes the tradeoff envelope.

§4 promises that adding PMTDs can only improve the tradeoff.  The bench
computes the 3-reachability envelope under three PMTD sets — the two trivial
PMTDs (Theorem 6.1's materialize-or-scan), the §6.3 induced set of the chain
decomposition, and the full Figure-3 enumeration — and checks the pointwise
ordering trivial >= induced >= full at every budget.
"""

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.decomposition import enumerate_pmtds, induced_pmtds, trivial_pmtds
from repro.problems import chain_decomposition
from repro.query.catalog import k_path_cqap
from repro.tradeoff import rules_from_pmtds, symbolic_program


@lru_cache(maxsize=1)
def experiment():
    cqap = k_path_cqap(3)
    prog = symbolic_program(cqap)
    sets = {
        "trivial (2 PMTDs)": trivial_pmtds(cqap),
        "induced chain (§6.3)": induced_pmtds(
            cqap, chain_decomposition(3), 0
        ),
        "full enumeration (Fig. 3)": enumerate_pmtds(cqap),
    }
    budgets = (1.0, 1.2, 4 / 3, 1.5, 1.75, 2.0)
    table = {}
    for name, pmtds in sets.items():
        rules = rules_from_pmtds(pmtds)
        table[name] = (
            len(pmtds), len(rules),
            [max(prog.obj_for_budget(r, y).log_time for r in rules)
             for y in budgets],
        )
    return budgets, table


def report():
    budgets, table = experiment()
    rows = []
    for name, (n_pmtds, n_rules, values) in table.items():
        rows.append([name, n_pmtds, n_rules]
                    + [f"{v:.3f}" for v in values])
    print_table(
        "Ablation — envelope log_D T by PMTD set (3-reachability)",
        ["PMTD set", "#PMTDs", "#rules"]
        + [f"logS={b:.2f}" for b in budgets],
        rows,
    )
    return budgets, table


def test_pmtd_set_ablation(benchmark):
    budgets, table = report()
    trivial = table["trivial (2 PMTDs)"][2]
    induced = table["induced chain (§6.3)"][2]
    full = table["full enumeration (Fig. 3)"][2]
    for t, i, f in zip(trivial, induced, full):
        assert f <= i + 1e-6 <= t + 2e-6, (
            "adding PMTDs must not worsen the envelope"
        )
    # the full set is strictly better than trivial somewhere
    assert any(f < t - 0.05 for t, f in zip(trivial, full))
    cqap = k_path_cqap(3)
    prog = symbolic_program(cqap)
    rule = rules_from_pmtds(trivial_pmtds(cqap))[0]
    benchmark(lambda: prog.obj_for_budget(rule, 1.5).log_time)


if __name__ == "__main__":
    report()
