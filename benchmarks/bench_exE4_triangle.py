"""Example E.4 — the triangle CQAP with empty access pattern.

The paper's one-line proof sequence ``log|D| ≥ h_S(13)`` says the answer
pairs fit in *linear* space.  The bench materializes them across graph
sizes, verifies linearity (stored ≤ |E|), and measures edge-triangle
detection (S = O(|E|), T = O(1) probes).
"""

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.data import random_edge_relation
from repro.problems import EdgeTriangleIndex, TrianglePairIndex
from repro.query.catalog import triangle_cqap
from repro.tradeoff import symbolic_program
from repro.util.counters import Counters


@lru_cache(maxsize=1)
def sweep():
    rows = []
    for n_edges, domain in ((200, 30), (800, 60), (3200, 120)):
        edges = random_edge_relation("E", ("a", "b"), n_edges, domain,
                                     seed=n_edges).tuples
        pair_index = TrianglePairIndex(edges)
        edge_index = EdgeTriangleIndex(edges)
        ctr = Counters()
        for edge in list(edges)[:50]:
            edge_index.query(edge, counters=ctr)
        rows.append((len(edges), pair_index.stored_tuples,
                     pair_index.is_linear, edge_index.stored_tuples,
                     ctr.probes / 50))
    return rows


def report():
    # analytic: the S-only bound h_S(13) <= log D (via the R3 edge)
    prog = symbolic_program(triangle_cqap())
    bound = prog.log_size_bound(
        [frozenset({"x1", "x3"})], phase="S"
    )
    rows = sweep()
    print_table(
        f"Example E.4 — triangle pairs in linear space "
        f"(LP bound for S13: D^{bound:.3f})",
        ["|E|", "stored pairs", "linear?", "edge-triangle stored",
         "probes per detection"],
        [[e, s, lin, es, f"{p:.1f}"] for e, s, lin, es, p in rows],
    )
    return bound, rows


def test_example_e4(benchmark):
    bound, rows = report()
    assert bound <= 1.0 + 1e-6  # h_S(13) <= log D
    for n_edges, stored, linear, edge_stored, probes in sweep():
        assert linear
        assert stored <= n_edges
        assert edge_stored <= n_edges
        assert probes == 1.0
    edges = random_edge_relation("E", ("a", "b"), 500, 50, seed=1).tuples
    index = EdgeTriangleIndex(edges)
    edge = next(iter(edges))
    benchmark(lambda: index.query(edge))


if __name__ == "__main__":
    report()
