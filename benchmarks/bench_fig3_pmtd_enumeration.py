"""Figure 3 — all five non-redundant, non-dominant PMTDs for 3-reachability.

Runs the exhaustive enumerator (connected bags, join-tree test, redundancy
and domination filters) and checks it lands on exactly the paper's five.
"""

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.decomposition import enumerate_pmtds, paper_pmtds_3reach
from repro.query.catalog import k_path_cqap


@lru_cache(maxsize=1)
def enumerated():
    return enumerate_pmtds(k_path_cqap(3))


def report():
    found = enumerated()
    paper = paper_pmtds_3reach()
    rows = []
    paper_sigs = {p.signature(): p for p in paper}
    for pmtd in found:
        status = "matches Fig. 3" if pmtd.signature() in paper_sigs else "EXTRA"
        rows.append([", ".join(pmtd.labels), status])
    print_table(
        f"Figure 3 — enumerated PMTDs for 3-reachability "
        f"({len(found)} found, paper shows {len(paper)})",
        ["views", "status"], rows,
    )
    return found, paper


def test_figure3_enumeration(benchmark):
    found, paper = report()
    assert {p.signature() for p in found} == {p.signature() for p in paper}
    assert len(found) == 5
    benchmark(lambda: enumerate_pmtds(k_path_cqap(3)))


if __name__ == "__main__":
    report()
