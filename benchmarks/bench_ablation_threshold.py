"""Ablation — sensitivity of the 2PP split threshold.

The §5 walkthrough sets Δ = D/√S; the planner derives it from the LP primal.
This ablation scales the 2-reachability split threshold around the LP value
and measures stored tuples vs online probes: moving Δ up shrinks the heavy
(materialized) side but grows online scan depth; moving it down does the
opposite.  The LP value should sit near the balance point.
"""

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.core import CQAPIndex
from repro.data import path_database
from repro.query.catalog import k_path_cqap
from repro.util.counters import Counters


@lru_cache(maxsize=1)
def experiment():
    from repro.data import Database, Relation, random_edge_relation

    cqap = k_path_cqap(2)
    # hubs on R1's x1 *and* on R2's x3, so both splits have heavy pieces
    r1 = random_edge_relation("R1", ("x1", "x2"), 1200, 120, seed=51,
                              skew_hubs=6)
    r2_raw = random_edge_relation("r2", ("a", "b"), 1200, 120, seed=52,
                                  skew_hubs=6)
    r2 = Relation("R2", ("x2", "x3"), {(b, a) for a, b in r2_raw.tuples})
    db = Database([r1, r2])
    budget = db.size
    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        index = CQAPIndex(cqap, db, budget, threshold_scale=factor,
                          budget_slack=1e9).preprocess()
        ctr = Counters()
        for i in range(40):
            index.answer_boolean((i % 120, (i * 11) % 120), counters=ctr)
        rows.append({
            "factor": factor,
            "stored": index.stored_tuples,
            "avg_ops": ctr.online_work / 40,
        })
    return budget, rows


def report():
    budget, rows = experiment()
    print_table(
        f"Ablation — split threshold scaling (2-reach, budget = {budget})",
        ["Δ factor vs LP", "stored tuples", "avg online ops"],
        [[f"{r['factor']:.2f}", r["stored"], f"{r['avg_ops']:.1f}"]
         for r in rows],
    )
    return rows


def test_threshold_ablation(benchmark):
    rows = report()
    by_factor = {r["factor"]: r for r in rows}
    # shrinking Δ below the LP value inflates the heavy side past the
    # budget: the planner is forced online and pays more per query
    assert by_factor[0.25]["stored"] <= by_factor[1.0]["stored"]
    assert by_factor[0.25]["avg_ops"] >= by_factor[1.0]["avg_ops"] - 1e-9
    # the LP threshold materializes within budget (balance point)
    assert by_factor[1.0]["stored"] > 0 or by_factor[1.0]["avg_ops"] <= (
        min(r["avg_ops"] for r in rows) + 1e-9
    )
    cqap = k_path_cqap(2)
    db = path_database(2, 300, 60, seed=5)
    benchmark(
        lambda: CQAPIndex(cqap, db, db.size,
                          threshold_scale=1.0).preprocess()
    )


if __name__ == "__main__":
    report()
