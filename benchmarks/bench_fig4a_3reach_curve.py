"""Figure 4a — the 3-reachability space-time tradeoff envelope.

Sweeps OBJ(S) over log_D S in [1, 2] for the four Table-1 rules, takes the
per-budget maximum (§4.3), reconstructs the exact rational breakpoints, and
compares against the paper's dotted curve:

    (1, 1) -> (4/3, 2/3) -> (7/5, 2/5) -> (2, 0)

with the prior state of the art (brown baseline) S·T = D² — matched on
[1, 4/3], strictly improved on (4/3, 2).
"""

import sys
from fractions import Fraction as F
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt_points, print_table

from repro.decomposition import paper_pmtds_3reach
from repro.query.catalog import k_path_cqap
from repro.tradeoff import (
    PiecewiseCurve,
    catalog,
    rules_from_pmtds,
    symbolic_program,
)


@lru_cache(maxsize=1)
def envelope():
    prog = symbolic_program(k_path_cqap(3))
    rules = rules_from_pmtds(paper_pmtds_3reach())

    def env(y):
        return max(prog.obj_for_budget(r, y).log_time for r in rules)

    return PiecewiseCurve.sample(env, 1.0, 2.0, steps=60)


def report():
    curve = envelope()
    got = curve.breakpoints()
    expected = catalog.figure4a_expected_breakpoints()
    baseline = catalog.goldstein_k_reach(3)
    rows = [
        ["this reproduction", fmt_points(got)],
        ["paper Fig. 4a", fmt_points(expected)],
        ["baseline (S·T^{2/(k-1)} = D²)",
         "logT = 2 - logS (uncapped)"],
    ]
    print_table("Figure 4a — 3-reachability envelope (log_D S vs log_D T, "
                "|Q|=1)", ["curve", "breakpoints"], rows)
    sample_rows = []
    for y in (1.0, 1.2, 4 / 3, 1.4, 1.6, 1.8, 2.0):
        ours = curve.value_at(y)
        base = baseline.log_time(y)
        sample_rows.append([f"{y:.3f}", f"{ours:.4f}", f"{base:.4f}",
                            "better" if ours < base - 1e-6 else "equal"])
    print_table("Figure 4a — pointwise vs baseline",
                ["log_D S", "ours log_D T", "baseline", "verdict"],
                sample_rows)
    return got, expected


def test_figure4a(benchmark):
    got, expected = report()
    assert got == expected
    curve = envelope()
    baseline = catalog.goldstein_k_reach(3)
    # equal on [1, 4/3], strictly better beyond
    for y in (1.0, 1.2, float(F(4, 3))):
        assert curve.value_at(y) == (
            __import__("pytest").approx(baseline.log_time(y), abs=1e-6)
        )
    # the improvement margin is (2 - y)/3 on (4/3, 2)
    for y in (1.5, 1.7, 1.9):
        margin = (2 - y) / 3
        assert curve.value_at(y) < baseline.log_time(y) - margin / 2
    prog = symbolic_program(k_path_cqap(3))
    rule = rules_from_pmtds(paper_pmtds_3reach())[0]
    benchmark(lambda: prog.obj_for_budget(rule, 1.4).log_time)


if __name__ == "__main__":
    report()
