"""§6.4 discussion — batching access requests for 3-reachability.

The paper observes that answering |D| single-tuple requests one by one costs
Õ(|D| · T), while batching them into one access relation lets the online
phase share work (in the limit, a 4-cycle query answerable from scratch in
Õ(|D|^{3/2})).  The bench measures online operations for one-by-one vs
batched answering at increasing batch sizes; batching must win and its
advantage must grow with the batch.
"""

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.data import path_database
from repro.problems import KReachOracle
from repro.util.counters import Counters


@lru_cache(maxsize=1)
def experiment():
    import random

    db = path_database(3, 700, 90, seed=41, skew_hubs=4)
    edges = set(db["R1"].tuples)
    oracle = KReachOracle(edges, 3, space_budget=db.size)
    rng = random.Random(8)
    rows = []
    for batch in (4, 16, 64):
        pairs = [(rng.randrange(90), rng.randrange(90))
                 for _ in range(batch)]
        one_by_one = Counters()
        singles = set()
        for pair in pairs:
            if oracle.query(*pair, counters=one_by_one):
                singles.add(pair)
        batched = Counters()
        batched_answers = oracle.answer_batch(pairs, counters=batched)
        rows.append({
            "batch": batch,
            "one_by_one": one_by_one.online_work,
            "batched": batched.online_work,
            "per_request": batched.online_work / batch,
            "agree": singles == batched_answers,
            "speedup": one_by_one.online_work / max(1, batched.online_work),
        })
    return rows


def report():
    rows = experiment()
    print_table(
        "§6.4 — one-by-one vs batched answering (3-reachability, S = D)",
        ["batch size", "one-by-one ops", "batched ops",
         "batched ops/request", "answers agree", "ops ratio"],
        [[r["batch"], r["one_by_one"], r["batched"],
          f"{r['per_request']:.0f}", r["agree"], f"{r['speedup']:.2f}x"]
         for r in rows],
    )
    return rows


def test_sec64_batching(benchmark):
    rows = report()
    for r in rows:
        assert r["agree"]
    # batching never loses, at any batch size, and shares the fixed
    # per-online-phase work (split scans, view assembly)
    assert all(r["speedup"] >= 1.0 for r in rows)
    db = path_database(3, 300, 50, seed=2)
    oracle = KReachOracle(set(db["R1"].tuples), 3, space_budget=db.size)
    pairs = [(i, i + 1) for i in range(16)]
    benchmark(lambda: oracle.answer_batch(pairs))


if __name__ == "__main__":
    report()
