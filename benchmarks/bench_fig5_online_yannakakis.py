"""Figure 5 / Example A.1 — Online Yannakakis on the 8-variable PMTD.

Builds the exact decomposition of Figure 5 (bags {x1,x2} - {x1,x3} -
{x3,x4,x5}/{x3,x7} - {x4,x5,x6}/{x7,x8,x9}, M = the three S-bags), checks
the view labels (T12, T13, T345, S45, S37, S78), and demonstrates Theorem
3.7's hallmark: online cost does not depend on the S-view sizes — the
S-views are inflated 50× and the probe counts stay flat.
"""

import random
import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.core import OnlineYannakakis
from repro.data import Relation
from repro.decomposition import PMTD, TreeDecomposition
from repro.util.counters import Counters


def build(seed=0, domain=8, rows=60, junk=0):
    rng = random.Random(seed)

    def rand_rel(name, schema):
        data = {tuple(rng.randrange(domain) for _ in schema)
                for _ in range(rows)}
        return Relation(name, schema, data)

    relations = {
        "T12": rand_rel("T12", ("x1", "x2")),
        "T13": rand_rel("T13", ("x1", "x3")),
        "T345": rand_rel("T345", ("x3", "x4", "x5")),
        "S45": rand_rel("S45", ("x4", "x5", "x6")),
        "S37": rand_rel("S37", ("x3", "x7")),
        "S78": rand_rel("S78", ("x7", "x8", "x9")),
    }
    td = TreeDecomposition(
        {
            0: {"x1", "x2"}, 1: {"x1", "x3"}, 2: {"x3", "x4", "x5"},
            3: {"x3", "x7"}, 4: {"x4", "x5", "x6"}, 5: {"x7", "x8", "x9"},
        },
        [(0, 1), (1, 2), (1, 3), (2, 4), (3, 5)],
    )
    head = ("x1", "x2", "x3", "x4", "x7", "x8")
    pmtd = PMTD(td, 0, (3, 4, 5), head, ("x1", "x2"))
    s_views = {}
    for node, view in pmtd.s_views.items():
        base = {4: "S45", 3: "S37", 5: "S78"}[node]
        projected = relations[base].project(
            tuple(sorted(view.variables)), name=view.label
        )
        if junk:
            inflated = set(projected.tuples) | {
                tuple(10_000 + junk * i + j
                      for j in range(len(projected.schema)))
                for i in range(junk)
            }
            projected = Relation(view.label, projected.schema, inflated)
        s_views[node] = projected
    t_views = {
        node: relations[{0: "T12", 1: "T13", 2: "T345"}[node]].copy(
            name=view.label
        )
        for node, view in pmtd.t_views.items()
    }
    return pmtd, s_views, t_views


@lru_cache(maxsize=1)
def probe_experiment():
    rows = []
    for junk in (0, 500, 2500):
        pmtd, s_views, t_views = build(seed=4, junk=junk)
        oy = OnlineYannakakis(pmtd, s_views)
        ctr = Counters()
        rng = random.Random(1)
        for _ in range(30):
            req = Relation("Q12", ("x1", "x2"),
                           [(rng.randrange(8), rng.randrange(8))])
            oy.answer(req, dict(t_views), counters=ctr)
        rows.append((junk, oy.stored_tuples, ctr.scans, ctr.probes))
    return rows


def report():
    pmtd, _, _ = build()
    print_table(
        "Figure 5 — the Example A.1 PMTD",
        ["regenerated views (BFS order)", "paper"],
        [[", ".join(pmtd.labels), "T12, T13, T345, S37, S45, S78"]],
    )
    rows = probe_experiment()
    print_table(
        "Theorem 3.7 — online cost vs S-view size (30 requests)",
        ["junk tuples per S-view", "stored S tuples", "online scans",
         "online probes"],
        [[j, s, sc, pr] for j, s, sc, pr in rows],
    )
    return pmtd, rows


def test_figure5(benchmark):
    pmtd, rows = report()
    assert sorted(pmtd.labels) == sorted(
        ["T12", "T13", "T345", "S45", "S37", "S78"]
    )
    # online scans/probes flat while S-views grow 50x+
    base = rows[0]
    for junk, stored, scans, probes in rows[1:]:
        assert stored > base[1]
        assert scans == base[2]
        assert probes == base[3]
    pmtd, s_views, t_views = build(seed=4)
    oy = OnlineYannakakis(pmtd, s_views)
    req = Relation("Q12", ("x1", "x2"), [(1, 2)])
    benchmark(lambda: oy.answer(req, dict(t_views)))


if __name__ == "__main__":
    report()
