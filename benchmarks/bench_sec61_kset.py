"""§6.1 / Example 6.2 — k-set disjointness and intersection tradeoffs.

Analytic: Theorem 6.1 with the uniform cover recovers S · T^k ≍ D^k · Q^k
for every k (slack = k), and the §6.1 joint flow gives S · T^{k-1} for the
enumeration variant.  Empirical: the heavy/light structures sweep budgets on
a planted-heavy-set family; measured probe counts must scale like the
predicted Δ and stored tuples stay within the budget regime.
"""

import math
import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from harness import geometric_budgets, log_slope, print_table

from repro.data import set_family
from repro.problems import KSetDisjointnessIndex, KSetIntersectionIndex, SetFamily
from repro.query.catalog import k_set_disjointness_cqap
from repro.tradeoff import catalog, theorem_6_1
from repro.util.counters import Counters


@lru_cache(maxsize=1)
def analytic_rows():
    rows = []
    for k in (2, 3, 4):
        formula = theorem_6_1(k_set_disjointness_cqap(k))
        expected = catalog.set_disjointness_boolean(k)
        rows.append((k, str(formula), str(expected),
                     formula.normalized() == expected.normalized()))
    return rows


@lru_cache(maxsize=1)
def empirical_sweep():
    k = 2
    membership = set_family(60, 200, 3000, seed=17, heavy_sets=6,
                            heavy_size=150)
    family = SetFamily(membership)
    n = family.total_elements
    out = []
    for budget in geometric_budgets(n, [0.4, 0.7, 1.0, 1.3]):
        index = KSetDisjointnessIndex(family, k, budget)
        ctr = Counters()
        ids = sorted(family.sets, key=str)
        queries = 0
        for i, a in enumerate(ids):
            for b in ids[i + 1:i + 4]:
                index.query((a, b), counters=ctr)
                queries += 1
        out.append({
            "budget": budget,
            "threshold": index.threshold,
            "heavy": len(index.heavy),
            "stored": index.stored_tuples,
            "avg_ops": ctr.online_work / max(1, queries),
        })
    return n, out


def report():
    print_table(
        "§6.2 — Theorem 6.1 on k-set disjointness (uniform cover, slack k)",
        ["k", "derived", "paper", "match"],
        [[k, f, e, m] for k, f, e, m in analytic_rows()],
    )
    n, sweep = empirical_sweep()
    print_table(
        f"§6.1 empirical — 2-set disjointness structure (N = {n})",
        ["budget S", "Δ = N/√S", "#heavy sets", "stored combos",
         "avg probes/query"],
        [[r["budget"], f"{r['threshold']:.1f}", r["heavy"], r["stored"],
          f"{r['avg_ops']:.1f}"] for r in sweep],
    )
    return sweep


def test_sec61(benchmark):
    sweep = report()
    for k, _, _, match in analytic_rows():
        assert match, f"Theorem 6.1 mismatch at k={k}"
    # probe counts shrink as the budget grows (T ∝ Δ = N/√S)
    ops = [r["avg_ops"] for r in sweep]
    assert ops[-1] <= ops[0]
    # the Δ sweep follows N/√S exactly by construction; heavy counts grow
    heavies = [r["heavy"] for r in sweep]
    assert heavies == sorted(heavies)
    # stored combos bounded by the budget regime (heavy^k <= S by design)
    for r in sweep:
        assert r["stored"] <= max(1, r["heavy"]) ** 2 + 1
    membership = set_family(40, 80, 800, seed=3, heavy_sets=3)
    family = SetFamily(membership)
    index = KSetDisjointnessIndex(family, 2, 200)
    ids = sorted(family.sets, key=str)[:2]
    benchmark(lambda: index.query(tuple(ids)))


def test_intersection_variant(benchmark):
    membership = set_family(30, 100, 1200, seed=9, heavy_sets=4,
                            heavy_size=80)
    family = SetFamily(membership)
    index = KSetIntersectionIndex(family, 2, space_budget=5000)
    ids = sorted(family.sets, key=str)
    # correctness across a few pairs plus output sizes
    for a in ids[:6]:
        for b in ids[:6]:
            assert index.intersect((a, b)) == (
                family.members(a) & family.members(b)
            )
    benchmark(lambda: index.intersect((ids[0], ids[1])))


if __name__ == "__main__":
    report()
