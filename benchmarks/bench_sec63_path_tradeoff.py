"""Example 6.3 / §6.3 — tradeoffs via tree decompositions (bag paths).

Regenerates the example's 4-reachability decomposition
{x1,x2,x4,x5} -> {x2,x3,x4} with covers u1 = u4 = 1 (slack 1) and
u2 = u3 = 1 (slack 2), producing S^{3/2} · T ≍ Q · D³; also checks the §6.3
claim that the full framework (Figure 4b envelope) only improves on the
induced-set tradeoff.
"""

import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from harness import print_table

from repro.decomposition import TreeDecomposition, induced_pmtds
from repro.query.catalog import k_path_cqap
from repro.tradeoff import (
    catalog,
    path_tradeoff,
    rules_from_pmtds,
    symbolic_program,
)


def decomposition():
    return TreeDecomposition(
        {0: {"x1", "x2", "x4", "x5"}, 1: {"x2", "x3", "x4"}}, [(0, 1)]
    )


@lru_cache(maxsize=1)
def results():
    cqap = k_path_cqap(4)
    td = decomposition()
    entries = path_tradeoff(cqap, td, 0)
    # the induced PMTD set realizes the bound inside the framework
    pmtds = induced_pmtds(cqap, td, 0)
    prog = symbolic_program(cqap)
    rules = rules_from_pmtds(pmtds)
    formula = entries[0][1]
    samples = []
    for y in (1.0, 4 / 3, 1.6, 2.0):
        lp = max(prog.obj_for_budget(r, y).log_time for r in rules)
        closed = max(0.0, formula.log_time(y))
        samples.append((y, lp, closed))
    return entries, pmtds, samples


def report():
    entries, pmtds, samples = results()
    print_table(
        "Example 6.3 — per-path tradeoffs of the 4-reach decomposition",
        ["root-to-leaf path", "derived", "paper"],
        [[" -> ".join(map(str, path)), str(f),
          str(catalog.example_6_3_path())] for path, f in entries],
    )
    print_table(
        f"§6.3 — induced PMTD set ({len(pmtds)} PMTDs) LP envelope vs the "
        "closed form",
        ["log_D S", "LP envelope log_D T", "S^{3/2}T = D³ closed form"],
        [[f"{y:.3f}", f"{lp:.4f}", f"{c:.4f}"] for y, lp, c in samples],
    )
    return entries, samples


def test_example_6_3(benchmark):
    entries, samples = report()
    assert len(entries) == 1
    _, formula = entries[0]
    assert formula.normalized() == catalog.example_6_3_path().normalized()
    # the LP over the induced PMTDs is never worse than the closed form
    for y, lp, closed in samples:
        assert lp <= closed + 1e-6
    cqap = k_path_cqap(4)
    td = decomposition()
    benchmark(lambda: path_tradeoff(cqap, td, 0))


if __name__ == "__main__":
    report()
