"""Serving engine — cold prepare vs warm probe throughput.

The plan-once/probe-many contract: ``prepare()`` pays planning, S-target
materialization and T-phase compilation once; every subsequent probe runs
only the compiled online plan (or hits the LRU answer cache).  The bench
measures the cold prepare cost, the warm per-probe cost (counters and
wall-clock), the cached-probe cost on a skewed hot-pair stream, and the
batched ``probe_many`` amortization — and asserts that the warm path never
re-plans or re-materializes.
"""

import random
import sys
import time
from functools import lru_cache
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.data import path_database
from repro.engine import prepare
from repro.query.catalog import k_path_cqap
from repro.util.counters import Counters

N_EDGES = 1200
DOMAIN = 150
N_PAIRS = 48
HOT_PAIRS = 8
STREAM = 300


@lru_cache(maxsize=1)
def experiment():
    cqap = k_path_cqap(3)
    db = path_database(3, N_EDGES, DOMAIN, seed=11, skew_hubs=5)
    budget = int(db.size ** 1.3)
    rng = random.Random(23)
    pairs = [(rng.randrange(DOMAIN), rng.randrange(DOMAIN))
             for _ in range(N_PAIRS)]

    # cold: the one-time prepare phase
    pq = prepare(cqap, db, space_budget=budget, cache_size=512)
    plan_calls_cold = pq.stats()["engine"]["plan_calls"]

    # warm: distinct probes through the compiled online plan (no cache hits)
    warm_ctr = Counters()
    t0 = time.perf_counter()
    for pair in pairs:
        pq.probe_boolean(pair, counters=warm_ctr)
    warm_seconds = time.perf_counter() - t0
    warm_ops = warm_ctr.online_work / len(pairs)

    # cached: a skewed stream concentrated on a few hot pairs
    hot = pairs[:HOT_PAIRS]
    stream = [hot[rng.randrange(HOT_PAIRS)] for _ in range(STREAM)]
    phases_after_warm = pq.online_phases
    cached_ctr = Counters()
    t0 = time.perf_counter()
    for pair in stream:
        pq.probe_boolean(pair, counters=cached_ctr)
    cached_seconds = time.perf_counter() - t0
    cached_phases = pq.online_phases - phases_after_warm

    # batched: one online phase for a fresh batch (cache disabled to
    # isolate the §6.4 amortization from cache effects)
    fresh = prepare(cqap, db, space_budget=budget, cache_size=0)
    batch = [(rng.randrange(DOMAIN), rng.randrange(DOMAIN))
             for _ in range(N_PAIRS)]
    single_ctr = Counters()
    for pair in batch:
        fresh.probe_boolean(pair, counters=single_ctr)
    batched_ctr = Counters()
    batched = prepare(cqap, db, space_budget=budget, cache_size=0)
    batched.probe_many(batch, counters=batched_ctr)

    # relation-backend axis: warm uncached throughput per backend, on
    # cache-disabled instances so every probe runs the compiled online
    # plan.  One untimed pass settles any lazily-built state; the timed
    # rounds are the steady-state plan-once/probe-many regime.  The two
    # backends must agree bit-for-bit and charge identical counter totals
    # (bulk kernel charges are defined to match the per-row loops).
    backend_rounds = 3
    relation_backends = {}
    backend_answers = {}
    for backend_name in ("set", "columnar"):
        pq_b = prepare(cqap, db, space_budget=budget, cache_size=0,
                       backend=backend_name)
        for pair in pairs:
            pq_b.probe_boolean(pair)
        backend_ctr = Counters()
        t0 = time.perf_counter()
        for _ in range(backend_rounds):
            for pair in pairs:
                pq_b.probe_boolean(pair, counters=backend_ctr)
        backend_seconds = time.perf_counter() - t0
        n_probes = backend_rounds * len(pairs)
        relation_backends[backend_name] = {
            "warm_probes_per_sec": n_probes / max(backend_seconds, 1e-9),
            "warm_ops_per_probe": backend_ctr.online_work / n_probes,
        }
        backend_answers[backend_name] = {
            pair: frozenset(pq_b.probe(pair).tuples) for pair in pairs
        }
    assert backend_answers["set"] == backend_answers["columnar"], \
        "relation backends disagree on warm-probe answers"

    # updates axis: single-tuple delta maintenance vs paying the full
    # prepare again.  Insert/delete pairs of fresh rows keep the database
    # stable across the timed loop; each delta runs the exact
    # affected-key maintenance pass (repro.updates) where the
    # pre-incremental alternative was a from-scratch re-prepare.
    upd_pq = prepare(cqap, db.copy(), space_budget=budget, cache_size=0)
    upd_index = upd_pq.index
    seen = set(db["R2"].tuples)
    fresh_rows = []
    while len(fresh_rows) < 20:
        row = (rng.randrange(DOMAIN), rng.randrange(DOMAIN))
        if row not in seen:
            fresh_rows.append(row)
            seen.add(row)
    t0 = time.perf_counter()
    for row in fresh_rows:
        upd_index.apply_delta("insert", "R2", row)
        upd_index.apply_delta("delete", "R2", row)
    delta_seconds = (time.perf_counter() - t0) / (2 * len(fresh_rows))
    t0 = time.perf_counter()
    prepare(cqap, db.copy(), space_budget=budget, cache_size=0)
    reprepare_seconds = time.perf_counter() - t0
    updates = {
        "delta_seconds_avg": delta_seconds,
        "deltas_per_sec": 1.0 / max(delta_seconds, 1e-9),
        "reprepare_seconds": reprepare_seconds,
        "delta_speedup_vs_reprepare":
            reprepare_seconds / max(delta_seconds, 1e-9),
        "deltas_applied": upd_index.update_counts["deltas_applied"],
    }

    stats = pq.stats()["engine"]
    return {
        "db_size": db.size,
        "budget": budget,
        "prepare_seconds": pq.prepare_seconds,
        "prepare_ops": pq.prepare_counters.online_work,
        "stored_tuples": pq.stored_tuples,
        "warm_ops_per_probe": warm_ops,
        "warm_probes_per_sec": len(pairs) / max(warm_seconds, 1e-9),
        "cached_probes_per_sec": len(stream) / max(cached_seconds, 1e-9),
        "cached_online_phases": cached_phases,
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "one_by_one_ops": single_ctr.online_work,
        "batched_ops": batched_ctr.online_work,
        "relation_backends": relation_backends,
        "updates": updates,
        "plan_calls_cold": plan_calls_cold,
        "plan_calls_final": stats["plan_calls"],
        "preprocess_runs": stats["preprocess_runs"],
        "replanned": stats["replanned"],
        "prepared": pq,
        "prepared_nocache": batched,
    }


def report():
    r = experiment()
    print_table(
        "serving engine — cold prepare vs warm/cached/batched probes "
        f"(3-reach, |D|={r['db_size']}, S=|D|^1.3)",
        ["path", "cost", "throughput"],
        [
            ["cold prepare", f"{r['prepare_ops']} ops",
             f"{r['prepare_seconds'] * 1e3:.0f} ms once"],
            ["warm probe", f"{r['warm_ops_per_probe']:.0f} ops/probe",
             f"{r['warm_probes_per_sec']:.0f} probes/s"],
            ["cached probe", f"{r['cache_hit_rate']:.0%} hit rate",
             f"{r['cached_probes_per_sec']:.0f} probes/s"],
            ["batched x{}".format(N_PAIRS),
             f"{r['batched_ops']} ops total",
             f"vs {r['one_by_one_ops']} one-by-one"],
        ] + [
            [f"warm probe [{name}]",
             f"{b['warm_ops_per_probe']:.0f} ops/probe",
             f"{b['warm_probes_per_sec']:.0f} probes/s"]
            for name, b in r["relation_backends"].items()
        ] + [
            ["single-tuple delta",
             f"{r['updates']['delta_seconds_avg'] * 1e6:.0f} us/delta",
             f"{r['updates']['delta_speedup_vs_reprepare']:.0f}x cheaper "
             "than re-prepare"],
        ],
    )
    return r


def test_engine_serving(benchmark):
    r = report()
    # plan-once: probes trigger no planning and no S re-materialization
    assert not r["replanned"]
    assert r["plan_calls_final"] == r["plan_calls_cold"]
    assert r["preprocess_runs"] == 1
    # warm probes are far cheaper than the cold prepare phase
    assert r["warm_ops_per_probe"] < r["prepare_ops"] / 10
    # the skewed stream is dominated by cache hits: only the distinct hot
    # pairs (already probed in the warm loop) ever reach the online plan
    assert r["cached_online_phases"] == 0
    assert r["cache_hit_rate"] > 0.5
    # batching never loses against one-at-a-time probing
    assert r["batched_ops"] <= r["one_by_one_ops"]
    # the relation-backend axis: both backends measured, identical
    # intrinsic work per probe (the bulk kernels charge exactly what the
    # per-row loops would), answers already asserted bit-identical inside
    # experiment()
    # the updates axis: a single-tuple delta must be at least an order of
    # magnitude cheaper than paying the prepare phase again — that gap is
    # the whole point of incremental maintenance
    assert r["updates"]["delta_speedup_vs_reprepare"] >= 10
    assert r["updates"]["deltas_applied"] == 40
    backends = r["relation_backends"]
    assert set(backends) == {"set", "columnar"}
    assert backends["set"]["warm_ops_per_probe"] == pytest.approx(
        backends["columnar"]["warm_ops_per_probe"])
    for b in backends.values():
        assert b["warm_probes_per_sec"] > 0
    # time the real online path: a cache-disabled instance, so rounds
    # exercise the compiled T-phase rather than LRU dict lookups
    pq = r["prepared_nocache"]
    pairs = [(i, i + 1) for i in range(16)]
    benchmark(lambda: pq.probe_many(pairs))


if __name__ == "__main__":
    report()
