"""Emit machine-readable serving-engine benchmark results.

Runs the ``bench_engine_serving`` experiment and writes ``BENCH_engine.json``
(probes/sec, cache hit rate, prepare time, counter totals), plus the
``bench_rule_selection`` experiment into ``BENCH_selection.json`` (planning
time vs PMTD count, probe latency vs space budget), so successive PRs have a
perf trajectory to compare against instead of scraping stdout.

Run:  python benchmarks/run_bench.py [--out PATH] [--selection-out PATH]
                                     [--quiet]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

SCHEMA_VERSION = 1


def collect(quiet: bool = False) -> dict:
    """Run the serving experiment and shape its results for JSON."""
    import bench_engine_serving as bench

    results = bench.report() if not quiet else bench.experiment()
    metrics = {k: v for k, v in results.items()
               if not k.startswith("prepared")}
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "engine_serving",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "workload": {
            "query": "path3",
            "n_edges": bench.N_EDGES,
            "domain": bench.DOMAIN,
            "distinct_probes": bench.N_PAIRS,
            "hot_pairs": bench.HOT_PAIRS,
            "stream_length": bench.STREAM,
        },
        "metrics": metrics,
    }


def collect_selection(quiet: bool = False) -> dict:
    """Run the rule-selection experiments and shape them for JSON."""
    import bench_rule_selection as bench

    results = bench.experiment() if quiet else bench.report()
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "rule_selection",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "workload": {
            "planning_query": f"fuzz_path_{bench.HANG_SEED} (21 PMTDs)",
            "budget_query": "path3",
            "n_edges": bench.N_EDGES,
            "domain": bench.DOMAIN,
            "probes": bench.N_PROBES,
        },
        "metrics": results,
    }


def main(argv=None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=root / "BENCH_engine.json",
                        help="engine output path (default: repo-root "
                             "BENCH_engine.json)")
    parser.add_argument("--selection-out", type=Path,
                        default=root / "BENCH_selection.json",
                        help="rule-selection output path (default: "
                             "repo-root BENCH_selection.json)")
    parser.add_argument("--quiet", action="store_true",
                        help="skip the human-readable table")
    args = parser.parse_args(argv)

    payload = collect(quiet=args.quiet)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    m = payload["metrics"]
    print(f"wrote {args.out}: prepare {m['prepare_seconds'] * 1e3:.0f} ms, "
          f"{m['warm_probes_per_sec']:.0f} warm probes/s, "
          f"{m['cached_probes_per_sec']:.0f} cached probes/s, "
          f"cache hit rate {m['cache_hit_rate']:.0%}", flush=True)

    selection = collect_selection(quiet=args.quiet)
    args.selection_out.write_text(
        json.dumps(selection, indent=2, sort_keys=True) + "\n")
    planning = selection["metrics"]["planning"][-1]
    sweep = selection["metrics"]["budget_sweep"]
    print(f"wrote {args.selection_out}: "
          f"{planning['pmtds']}-PMTD planning "
          f"{planning['streamed_seconds'] * 1e3:.0f} ms, "
          f"budget sweep {sweep[0]['probes_per_sec']:.0f} -> "
          f"{sweep[-1]['probes_per_sec']:.0f} probes/s", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
