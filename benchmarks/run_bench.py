"""Emit machine-readable serving-engine benchmark results.

Runs the ``bench_engine_serving`` experiment and writes ``BENCH_engine.json``
(probes/sec, cache hit rate, prepare time, counter totals) so successive PRs
have a perf trajectory to compare against instead of scraping stdout.

Run:  python benchmarks/run_bench.py [--out PATH] [--quiet]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

SCHEMA_VERSION = 1


def collect(quiet: bool = False) -> dict:
    """Run the serving experiment and shape its results for JSON."""
    import bench_engine_serving as bench

    results = bench.report() if not quiet else bench.experiment()
    metrics = {k: v for k, v in results.items()
               if not k.startswith("prepared")}
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "engine_serving",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "workload": {
            "query": "path3",
            "n_edges": bench.N_EDGES,
            "domain": bench.DOMAIN,
            "distinct_probes": bench.N_PAIRS,
            "hot_pairs": bench.HOT_PAIRS,
            "stream_length": bench.STREAM,
        },
        "metrics": metrics,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_engine.json",
                        help="output path (default: repo-root "
                             "BENCH_engine.json)")
    parser.add_argument("--quiet", action="store_true",
                        help="skip the human-readable table")
    args = parser.parse_args(argv)

    payload = collect(quiet=args.quiet)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    m = payload["metrics"]
    print(f"wrote {args.out}: prepare {m['prepare_seconds'] * 1e3:.0f} ms, "
          f"{m['warm_probes_per_sec']:.0f} warm probes/s, "
          f"{m['cached_probes_per_sec']:.0f} cached probes/s, "
          f"cache hit rate {m['cache_hit_rate']:.0%}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
