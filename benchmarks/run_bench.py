"""Emit machine-readable serving-engine benchmark results.

Runs the ``bench_engine_serving`` experiment and writes ``BENCH_engine.json``
(probes/sec, cache hit rate, prepare time, counter totals), the
``bench_rule_selection`` experiment into ``BENCH_selection.json`` (planning
time vs PMTD count, probe latency vs space budget, estimator accuracy),
and the ``bench_serving`` experiment into ``BENCH_serving.json``
(throughput vs shard count × batch size, speedup vs the serial
``probe_many`` baseline, single-shard batch-of-1 overhead), so successive
PRs have a perf trajectory to compare against instead of scraping stdout.

Every emitted JSON is stamped with provenance (``commit``, ``date``,
``schema_version``) and validated against the expected schema *before*
anything is written: a crashing benchmark leaves the previous files
untouched and exits nonzero, so CI fails instead of uploading a stale
file.  ``--validate FILE...`` re-checks already-emitted files (the CI
benchmark-smoke job runs it before uploading artifacts).

Run:  python benchmarks/run_bench.py [--out PATH] [--selection-out PATH]
                                     [--quiet]
      python benchmarks/run_bench.py --validate BENCH_engine.json ...
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: bumped with every incompatible payload change; v2 added the provenance
#: stamp and the rule-selection estimator-accuracy section; v3 added the
#: ``backend`` axis to the serving grid plus the process-fleet
#: ``process_grid``/``process_scaling`` critical-path CPU sections; v4
#: added the ``relation_backends`` axis to the engine payload (warm
#: uncached throughput per relation backend: set vs columnar); v5 added
#: the ``updates`` axis (single-tuple delta maintenance cost vs a full
#: re-prepare); v6 added the ``observability`` axis to the serving payload
#: (off-path overhead of the disabled tracing hooks, tracing overhead, and
#: the observation contract: histogram counts vs probes served, exemplars)
SCHEMA_VERSION = 6

#: top-level keys every emitted payload must carry
REQUIRED_KEYS = ("schema_version", "commit", "date", "benchmark",
                 "python", "workload", "metrics")

#: required metrics sub-keys per benchmark name
REQUIRED_METRICS = {
    "engine_serving": ("prepare_seconds", "warm_probes_per_sec",
                       "cached_probes_per_sec", "cache_hit_rate",
                       "relation_backends", "updates"),
    "rule_selection": ("planning", "budget_sweep", "estimator_accuracy"),
    "serving": ("baseline_probes_per_sec", "throughput_grid",
                "best_speedup", "single_shard_overhead",
                "process_grid", "process_scaling", "observability"),
}


def provenance() -> dict:
    """The {commit, date, schema_version} stamp shared by every payload.

    A dirty working tree gets a ``-dirty`` suffix: results regenerated
    before committing would otherwise attribute their metrics to the
    parent commit, which is exactly the mis-attribution the stamp exists
    to prevent.
    """
    root = Path(__file__).resolve().parent.parent
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root, capture_output=True, text=True, timeout=10,
            check=True,
        ).stdout.strip()
        if status:
            commit += "-dirty"
    except Exception:
        commit = "unknown"
    return {
        "schema_version": SCHEMA_VERSION,
        "commit": commit,
        "date": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }


def validate_payload(payload: dict) -> list:
    """Schema problems of one payload (empty list = valid)."""
    problems = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing key {key!r}")
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version {payload.get('schema_version')!r} != "
            f"{SCHEMA_VERSION}"
        )
    benchmark = payload.get("benchmark")
    if benchmark not in REQUIRED_METRICS:
        problems.append(f"unknown benchmark {benchmark!r}")
        return problems
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics is not an object")
        return problems
    for key in REQUIRED_METRICS[benchmark]:
        if key not in metrics:
            problems.append(f"metrics missing {key!r} for {benchmark}")
    if benchmark == "engine_serving":
        backends = metrics.get("relation_backends")
        if not isinstance(backends, dict):
            problems.append("relation_backends is not an object")
        else:
            for name in ("set", "columnar"):
                if "warm_probes_per_sec" not in backends.get(name, {}):
                    problems.append(
                        f"relation_backends[{name!r}] missing "
                        "'warm_probes_per_sec'"
                    )
        updates = metrics.get("updates")
        if not isinstance(updates, dict):
            problems.append("updates is not an object")
        else:
            for key in ("delta_seconds_avg", "reprepare_seconds",
                        "delta_speedup_vs_reprepare"):
                if key not in updates:
                    problems.append(f"updates missing {key!r}")
    if benchmark == "serving":
        observability = metrics.get("observability")
        if not isinstance(observability, dict):
            problems.append("observability is not an object")
        else:
            for key in ("off_path_overhead", "tracing_overhead",
                        "off_probes_per_sec", "on_probes_per_sec",
                        "probes_served", "work_observations",
                        "latency_observations", "exemplars"):
                if key not in observability:
                    problems.append(f"observability missing {key!r}")
    return problems


def collect(quiet: bool = False) -> dict:
    """Run the serving experiment and shape its results for JSON."""
    import bench_engine_serving as bench

    results = bench.report() if not quiet else bench.experiment()
    metrics = {k: v for k, v in results.items()
               if not k.startswith("prepared")}
    return {
        **provenance(),
        "benchmark": "engine_serving",
        "python": platform.python_version(),
        "workload": {
            "query": "path3",
            "n_edges": bench.N_EDGES,
            "domain": bench.DOMAIN,
            "distinct_probes": bench.N_PAIRS,
            "hot_pairs": bench.HOT_PAIRS,
            "stream_length": bench.STREAM,
        },
        "metrics": metrics,
    }


def collect_selection(quiet: bool = False) -> dict:
    """Run the rule-selection experiments and shape them for JSON."""
    import bench_rule_selection as bench

    results = bench.experiment() if quiet else bench.report()
    return {
        **provenance(),
        "benchmark": "rule_selection",
        "python": platform.python_version(),
        "workload": {
            "planning_query": f"fuzz_path_{bench.HANG_SEED} (21 PMTDs)",
            "budget_query": "path3",
            "accuracy_queries": [name for name, _, _
                                 in bench._accuracy_workloads()],
            "n_edges": bench.N_EDGES,
            "domain": bench.DOMAIN,
            "probes": bench.N_PROBES,
        },
        "metrics": results,
    }


def collect_serving(quiet: bool = False) -> dict:
    """Run the sharded-serving experiment and shape it for JSON."""
    import bench_serving as bench

    results = bench.experiment() if quiet else bench.report()
    return {
        **provenance(),
        "benchmark": "serving",
        "python": platform.python_version(),
        "workload": {
            "query": "path3_enum",
            "n_edges": bench.N_EDGES,
            "domain": bench.DOMAIN,
            "stream_batches": bench.BATCHES,
            "stream_batch_size": bench.STREAM_BATCH,
            "dedupe_ratio": bench.DEDUPE_RATIO,
            "hot_fraction": bench.HOT_FRACTION,
            "shard_counts": list(bench.SHARD_COUNTS),
            "batch_sizes": list(bench.BATCH_SIZES),
            "process_shard_counts": list(bench.PROCESS_SHARD_COUNTS),
            "cache_size": bench.CACHE_SIZE,
        },
        "metrics": results,
    }


def _write_all_validated(outputs) -> None:
    """Validate every (payload, path) pair, then write them all.

    Validation of *all* payloads strictly precedes the first write, so a
    schema failure in any benchmark leaves every trajectory file exactly
    as it was — no torn engine-updated/selection-stale state.
    """
    outputs = list(outputs)
    for payload, path in outputs:
        problems = validate_payload(payload)
        if problems:
            raise SystemExit(
                f"refusing to write {path}: schema validation failed: "
                + "; ".join(problems)
            )
    for payload, path in outputs:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")


def validate_files(paths) -> int:
    """Exit code of the --validate mode: 0 iff every file checks out."""
    failures = 0
    for path in paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"INVALID {path}: {exc}")
            failures += 1
            continue
        problems = validate_payload(payload)
        if problems:
            print(f"INVALID {path}: " + "; ".join(problems))
            failures += 1
        else:
            print(f"ok {path}: {payload['benchmark']} schema v"
                  f"{payload['schema_version']}, commit "
                  f"{payload['commit'][:12]}, {payload['date']}")
    return 1 if failures else 0


def main(argv=None) -> int:
    root = Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path,
                        default=root / "BENCH_engine.json",
                        help="engine output path (default: repo-root "
                             "BENCH_engine.json)")
    parser.add_argument("--selection-out", type=Path,
                        default=root / "BENCH_selection.json",
                        help="rule-selection output path (default: "
                             "repo-root BENCH_selection.json)")
    parser.add_argument("--serving-out", type=Path,
                        default=root / "BENCH_serving.json",
                        help="sharded-serving output path (default: "
                             "repo-root BENCH_serving.json)")
    parser.add_argument("--quiet", action="store_true",
                        help="skip the human-readable table")
    parser.add_argument("--validate", nargs="+", metavar="FILE",
                        help="validate already-emitted JSON files instead "
                             "of running benchmarks; exits 1 on schema "
                             "violations")
    args = parser.parse_args(argv)

    if args.validate:
        return validate_files(args.validate)

    # collect and validate *every* payload before writing any: neither a
    # crash in a later benchmark nor a schema failure in one payload may
    # leave a half-updated trajectory on disk
    payload = collect(quiet=args.quiet)
    selection = collect_selection(quiet=args.quiet)
    serving = collect_serving(quiet=args.quiet)
    _write_all_validated([(payload, args.out),
                          (selection, args.selection_out),
                          (serving, args.serving_out)])

    m = payload["metrics"]
    backends = m["relation_backends"]
    print(f"wrote {args.out}: prepare {m['prepare_seconds'] * 1e3:.0f} ms, "
          f"{m['warm_probes_per_sec']:.0f} warm probes/s "
          f"(set {backends['set']['warm_probes_per_sec']:.0f}/s, "
          f"columnar {backends['columnar']['warm_probes_per_sec']:.0f}/s), "
          f"{m['cached_probes_per_sec']:.0f} cached probes/s, "
          f"cache hit rate {m['cache_hit_rate']:.0%}, single-tuple delta "
          f"{m['updates']['delta_speedup_vs_reprepare']:.0f}x cheaper "
          f"than re-prepare", flush=True)

    planning = selection["metrics"]["planning"][-1]
    sweep = selection["metrics"]["budget_sweep"]
    accuracy = selection["metrics"]["estimator_accuracy"]
    print(f"wrote {args.selection_out}: "
          f"{planning['pmtds']}-PMTD planning "
          f"{planning['streamed_seconds'] * 1e3:.0f} ms, "
          f"budget sweep {sweep[0]['probes_per_sec']:.0f} -> "
          f"{sweep[-1]['probes_per_sec']:.0f} probes/s, "
          f"estimator median rel err "
          f"{accuracy['median_rel_error_baseline']:.2f} -> "
          f"{accuracy['median_rel_error_upgraded']:.2f}", flush=True)

    sm = serving["metrics"]
    print(f"wrote {args.serving_out}: serial baseline "
          f"{sm['baseline_probes_per_sec']:.0f} probes/s, best "
          f"{sm['best_config']['shards']} shards x batch "
          f"{sm['best_config']['batch_size']} = "
          f"{sm['best_speedup']:.2f}x, single-shard overhead "
          f"{sm['single_shard_overhead']:+.1%}, process fleet "
          f"{sm['process_scaling']['speedup_4_vs_1']:.2f}x critical-path "
          f"speedup at {sm['process_scaling']['shard_counts'][-1]} shards, "
          f"tracing off-path {sm['observability']['off_path_overhead']:+.1%}"
          f" / on {sm['observability']['tracing_overhead']:+.1%}",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
