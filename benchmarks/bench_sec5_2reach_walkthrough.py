"""§5 running example — the 2PP walkthrough on 2-reachability.

Reproduces the section's strategy end to end: the planner must split R1 on
x1 and R2 on x3 at Δ ≈ D/√S, store the heavy×heavy S13 pairs within budget,
and answer the light subproblems online.  The sweep then measures stored
tuples and online probes across budgets; the measured online work must
*decrease* as the budget grows while staying within the budget envelope —
the S · T² ≍ D² shape.
"""

import math
import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from harness import geometric_budgets, print_table

from repro.core import CQAPIndex
from repro.data import path_database
from repro.query.catalog import k_path_cqap
from repro.util.counters import Counters


@lru_cache(maxsize=1)
def sweep():
    cqap = k_path_cqap(2)
    db = path_database(2, 1500, 140, seed=21, skew_hubs=6)
    n = db.size
    full = cqap.evaluate(db)
    hits = sorted(full.tuples)
    rows = []
    for budget in geometric_budgets(n, [0.6, 0.9, 1.2, 1.5, 1.8]):
        # worst-case planning (cardinalities only) — the paper's setting,
        # which makes the Δ = D/√S split strategy explicit
        index = CQAPIndex(cqap, db, budget).preprocess()
        thresholds = [
            split.threshold
            for plan in index.plans for split in plan.splits
        ]
        ctr = Counters()
        n_queries = 40
        for i in range(n_queries):
            request = hits[(i * 37) % len(hits)] if i % 2 == 0 else (
                10**6 + i, 10**6 - i
            )
            index.answer_boolean(request, counters=ctr)
        rows.append({
            "budget": budget,
            "stored": index.stored_tuples,
            "threshold": min(thresholds) if thresholds else float("nan"),
            "dsqrt": n / math.sqrt(budget),
            "avg_work": ctr.online_work / n_queries,
            "predicted": 2 ** index.predicted_log_time,
        })
    return n, rows


def report():
    n, rows = sweep()
    print_table(
        f"§5 walkthrough — 2-reachability 2PP sweep (D = {n}, 40 requests "
        "per budget)",
        ["budget S", "stored", "planner Δ", "D/√S", "avg online ops",
         "predicted T"],
        [[r["budget"], r["stored"], f"{r['threshold']:.1f}",
          f"{r['dsqrt']:.1f}", f"{r['avg_work']:.1f}",
          f"{r['predicted']:.1f}"] for r in rows],
    )
    return n, rows


def test_sec5_walkthrough(benchmark):
    n, rows = report()
    # stored tuples respect the budget (with the engine's slack factor)
    for r in rows:
        assert r["stored"] <= 8 * r["budget"] + 1
    # the planner's split threshold tracks the §5 value D/√S
    for r in rows:
        if not math.isnan(r["threshold"]):
            assert r["threshold"] <= 4 * r["dsqrt"] + 1
            assert r["threshold"] >= r["dsqrt"] / 4 - 1
    # online work decreases (weakly) as the budget grows
    works = [r["avg_work"] for r in rows]
    assert works[-1] <= works[0]
    # predicted T follows D/√S within a constant factor in log space
    for r in rows:
        if 1 < r["predicted"] < n:
            ratio = math.log2(max(2.0, r["predicted"])) / math.log2(
                max(2.0, r["dsqrt"])
            )
            assert 0.4 <= ratio <= 2.5
    cqap = k_path_cqap(2)
    db = path_database(2, 600, 90, seed=4, skew_hubs=3)
    index = CQAPIndex(cqap, db, db.size).preprocess()
    benchmark(lambda: index.answer_boolean((3, 5)))


if __name__ == "__main__":
    report()
