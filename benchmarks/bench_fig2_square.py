"""Figure 2 / Example 5.2 / Example E.5 — the square CQAP.

Regenerates the two PMTDs, verifies the joint Shannon-flow inequality of the
E.5 proof sequence by LP, sweeps the analytic tradeoff (S·T² ≍ D²·Q²), and
measures the executable oracle: stored tuples vs budget and online probes
per query, whose log-log slope must track T ∝ S^{-1/2}.
"""

import math
import sys
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import pytest

from harness import geometric_budgets, log_slope, print_table

from repro.data import random_edge_relation
from repro.decomposition import paper_pmtds_square
from repro.problems import SquareOracle
from repro.query.catalog import square_cqap
from repro.query.hypergraph import varset
from repro.tradeoff import catalog, rules_from_pmtds, symbolic_program
from repro.util.counters import Counters


def v(*nums):
    return varset(f"x{n}" for n in nums)


@lru_cache(maxsize=1)
def analytic():
    cqap = square_cqap()
    prog = symbolic_program(cqap)
    rules = rules_from_pmtds(paper_pmtds_square())
    sweep = {}
    for y in (1.0, 1.25, 1.5, 1.75, 2.0):
        sweep[y] = max(prog.obj_for_budget(r, y).log_time for r in rules)
    # the E.5 joint Shannon-flow inequality for the first rule
    inequality_ok = prog.verify_joint_inequality(
        lhs_s={(varset(()), v(1)): 1, (varset(()), v(3)): 1},
        lhs_t={(v(1), v(1, 4)): 1, (v(3), v(3, 4)): 1,
               (varset(()), v(1, 3)): 2},
        rhs_s={v(1, 3): 1},
        rhs_t={v(1, 3, 4): 2},
    )
    return sweep, inequality_ok


@lru_cache(maxsize=1)
def measured():
    edges = random_edge_relation("E", ("a", "b"), 900, 120, seed=13,
                                 skew_hubs=4).tuples
    n = 900
    budgets = geometric_budgets(n, [0.8, 1.0, 1.2, 1.4])
    rows = []
    for budget in budgets:
        oracle = SquareOracle(edges, budget)
        ctr = Counters()
        for probe in range(25):
            oracle.query(probe % 120, (probe * 7) % 120, counters=ctr)
        rows.append((budget, oracle.stored_tuples,
                     ctr.online_work / 25))
    return rows


def report():
    sweep, inequality_ok = analytic()
    formula = catalog.square_query()
    rows = [[f"{y:.2f}", f"{t:.4f}", f"{formula.log_time(y):.4f}"]
            for y, t in sweep.items()]
    print_table(
        "Figure 2 / Ex. 5.2 — square CQAP analytic tradeoff "
        f"(E.5 inequality LP-verified: {inequality_ok})",
        ["log_D S", "OBJ(S) = log_D T", "paper S·T² = D²"], rows,
    )
    meas = measured()
    print_table(
        "Square oracle — measured space and online work",
        ["budget", "stored tuples", "avg online ops / query"],
        [[b, s, f"{w:.1f}"] for b, s, w in meas],
    )
    return sweep, inequality_ok, meas


def test_figure2_square(benchmark):
    sweep, inequality_ok, meas = report()
    assert inequality_ok
    formula = catalog.square_query()
    for y, t in sweep.items():
        assert t == pytest.approx(formula.log_time(y), abs=1e-6)
    # measured online work must not grow with budget
    works = [w for _, _, w in meas]
    assert works[-1] <= works[0] + 1e-9
    edges = random_edge_relation("E", ("a", "b"), 400, 80, seed=3).tuples
    oracle = SquareOracle(edges, 400)
    benchmark(lambda: oracle.query(5, 17))


if __name__ == "__main__":
    report()
