"""Figure 4b — the 4-reachability space-time tradeoff envelope.

Uses the paper's eleven §E.8 PMTDs, generates the reduced rule set (32
rules), and sweeps the per-rule OBJ(S) LPs.  Two comparisons:

* against the paper's hand-derived dotted curve
  (1,1) -> (7/6,1) -> (29/22,9/11) -> (7/5,3/5) -> (2,0): our envelope
  coincides at the named corners and is *at or below* it everywhere — the LP
  finds a sharper middle piece (S⁵·T³ ≍ D⁹) than the two hand-constructed ρ4
  proof sequences;
* against the conjectured-optimal baseline S·T^{2/3} = D², which the paper
  falsifies: our curve is strictly below it on the whole open range.
"""

import sys
from fractions import Fraction as F
from functools import lru_cache
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from harness import fmt_points, print_table

from repro.decomposition import paper_pmtds_4reach
from repro.query.catalog import k_path_cqap
from repro.tradeoff import (
    PiecewiseCurve,
    catalog,
    rules_from_pmtds,
    symbolic_program,
)


@lru_cache(maxsize=1)
def envelope():
    prog = symbolic_program(k_path_cqap(4))
    rules = rules_from_pmtds(paper_pmtds_4reach())

    def env(y):
        return max(prog.obj_for_budget(r, y).log_time for r in rules)

    return PiecewiseCurve.sample(env, 1.0, 2.0, steps=60), len(rules)


def paper_curve_value(y: float) -> float:
    """The paper's hand-derived Fig. 4b envelope, piecewise."""
    pts = [(float(a), float(b))
           for a, b in catalog.figure4b_expected_breakpoints()]
    for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
        if x0 <= y <= x1:
            t = 0.0 if x1 == x0 else (y - x0) / (x1 - x0)
            return y0 * (1 - t) + y1 * t
    return pts[-1][1]


def report():
    curve, n_rules = envelope()
    got = curve.breakpoints()
    rows = [
        ["this reproduction (LP-optimal)", fmt_points(got)],
        ["expected LP curve", fmt_points(catalog.figure4b_lp_breakpoints())],
        ["paper Fig. 4b (hand-derived)",
         fmt_points(catalog.figure4b_expected_breakpoints())],
    ]
    print_table(
        f"Figure 4b — 4-reachability envelope from the 11 §E.8 PMTDs "
        f"({n_rules} reduced rules)",
        ["curve", "breakpoints (log_D S, log_D T)"], rows,
    )
    baseline = catalog.goldstein_k_reach(4)
    sample_rows = []
    for y in (1.0, 7 / 6, 1.25, 29 / 22, 7 / 5, 1.6, 1.9):
        ours = curve.value_at(y)
        hand = paper_curve_value(y)
        base = baseline.log_time(y)
        sample_rows.append([
            f"{y:.4f}", f"{ours:.4f}", f"{hand:.4f}", f"{base:.4f}",
            "<= paper" if ours <= hand + 1e-6 else "ABOVE PAPER",
        ])
    print_table(
        "Figure 4b — pointwise: ours vs paper's curve vs conjectured "
        "baseline S·T^{2/3} = D²",
        ["log_D S", "ours", "paper", "conjectured", "check"], sample_rows,
    )
    return curve


def test_figure4b(benchmark):
    curve = report()
    assert curve.breakpoints() == catalog.figure4b_lp_breakpoints()
    # coincides with the paper's curve at its named corners
    assert curve.value_at(7 / 6) == pytest.approx(1.0, abs=1e-6)
    assert curve.value_at(7 / 5) == pytest.approx(0.6, abs=1e-6)
    # never above the hand-derived curve; strictly below in the middle
    for y in (1.05, 1.2, 1.3, 1.35, 1.5, 1.8):
        assert curve.value_at(y) <= paper_curve_value(y) + 1e-6
    assert curve.value_at(1.32) < paper_curve_value(1.32) - 1e-3
    # the paper's headline: better than the conjectured optimum everywhere
    baseline = catalog.goldstein_k_reach(4)
    for y in (1.0, 1.25, 1.5, 1.75, 1.95):
        assert curve.value_at(y) < baseline.log_time(y) - 1e-6
    prog = symbolic_program(k_path_cqap(4))
    rule = rules_from_pmtds(paper_pmtds_4reach())[0]
    benchmark(lambda: prog.obj_for_budget(rule, 1.3).log_time)


if __name__ == "__main__":
    report()
