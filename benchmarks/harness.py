"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures, prints the
paper-vs-measured comparison (visible with ``pytest benchmarks/ -s`` or by
running the module directly), and asserts the *shape*: slopes, crossover
locations, who-wins orderings — never absolute constants.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> List[List[str]]:
    """A fixed-width table with a title banner.

    Flushes after printing (so output interleaves correctly under pytest
    capture and CI log streaming) and returns the stringified rows, letting
    programmatic consumers (e.g. ``run_bench.py``) reuse the table data
    instead of scraping stdout.
    """
    rows = [[str(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print()
    print("=" * len(line))
    print(title)
    print("=" * len(line))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    print(flush=True)
    return rows


def fmt_frac(value) -> str:
    if isinstance(value, Fraction):
        return str(value)
    return f"{value:.4g}"


def fmt_points(points) -> str:
    return " -> ".join(f"({fmt_frac(x)}, {fmt_frac(y)})" for x, y in points)


def log_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope in log-log space (ignores zero entries)."""
    pts = [(math.log2(x), math.log2(y)) for x, y in zip(xs, ys)
           if x > 0 and y > 0]
    if len(pts) < 2:
        raise ValueError("need at least two positive points")
    n = len(pts)
    mx = sum(p[0] for p in pts) / n
    my = sum(p[1] for p in pts) / n
    num = sum((x - mx) * (y - my) for x, y in pts)
    den = sum((x - mx) ** 2 for x, _ in pts)
    return num / den


def geometric_budgets(n: int, exponents: Sequence[float]) -> List[int]:
    """Budgets n^e for each exponent, at least 1."""
    return [max(1, int(round(n ** e))) for e in exponents]
