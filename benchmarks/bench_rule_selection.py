"""Budgeted rule selection: planning scalability + the budget knob's effect.

Three experiments around ``repro.tradeoff.selection``:

* **planning scalability** — rule-generation time vs PMTD count on growing
  prefixes of the 21-PMTD fuzz path4 query (the ROADMAP hang).  The old
  eager cartesian product is timed wherever its product size is tractable
  and skipped (``None``) beyond that; the streamed frontier sweep runs the
  whole range and must stay under the 2-second regression bound uncapped;
* **probe latency vs budget** — the full engine (``prepare`` + probes) on
  3-reachability at tight/linear/rich space budgets with
  ``rule_selection="budget"``: more budget must never store fewer tuples,
  and the rich point must not probe slower than the tight point;
* **estimator accuracy** — estimated vs actually-stored S-target sizes
  across several queries at a rich budget, priced twice: by the old
  single-variable-degree baseline and by the upgraded model
  (multi-variable degree keys + sampled join sizes).  The upgraded median
  relative error must be no worse than the baseline's.

``run_bench.py`` reuses :func:`experiment` to emit
``BENCH_selection.json`` so successive PRs can track planning time, the
latency/space curve, and estimator accuracy.
"""

import math
import random
import sys
import time
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.core import CQAPIndex
from repro.data import path_database, square_database, triangle_database
from repro.decomposition.enumeration import enumerate_pmtds
from repro.engine import prepare
from repro.query.catalog import k_path_cqap, square_cqap, triangle_cqap
from repro.query.hypergraph import varset
from repro.tradeoff.cost import CatalogStatistics, CostModel
from repro.tradeoff.rules import _rules_from_pmtds_eager, rules_from_pmtds
from repro.workloads.queries import random_cqap

#: the fuzz seed whose path4 query enumerates 21 PMTDs (ROADMAP hang)
HANG_SEED = 75
#: eager generation is skipped once the raw product exceeds this
EAGER_PRODUCT_CAP = 300_000
PMTD_COUNTS = (2, 4, 6, 8, 10, 14, 21)

BUDGET_POINTS = ("tight", "linear", "rich")
N_EDGES = 1500
DOMAIN = 150
N_PROBES = 300


@lru_cache(maxsize=1)
def hang_pmtds():
    cqap = random_cqap(random.Random(HANG_SEED), shape="path",
                      name=f"fuzz_path_{HANG_SEED}")
    return cqap, enumerate_pmtds(cqap, max_bags=3)


@lru_cache(maxsize=1)
def planning_experiment():
    """Streamed vs eager rule-generation time on PMTD prefixes."""
    _, pmtds = hang_pmtds()
    rows = []
    for count in PMTD_COUNTS:
        subset = pmtds[:count]
        product = math.prod(len(p.views) for p in subset)
        start = time.perf_counter()
        streamed = rules_from_pmtds(subset)
        streamed_seconds = time.perf_counter() - start
        eager_seconds = None
        eager_rules = None
        if product <= EAGER_PRODUCT_CAP:
            start = time.perf_counter()
            eager_rules = _rules_from_pmtds_eager(subset)
            eager_seconds = time.perf_counter() - start
        rows.append({
            "pmtds": count,
            "raw_product": product,
            "rules": len(streamed),
            "streamed_seconds": streamed_seconds,
            "eager_seconds": eager_seconds,
            "eager_matches": (
                None if eager_rules is None else
                {(r.s_targets, r.t_targets) for r in streamed}
                == {(r.s_targets, r.t_targets) for r in eager_rules}
            ),
        })
    return rows


@lru_cache(maxsize=1)
def budget_experiment():
    """Probe latency and stored space across the budget sweep."""
    cqap = k_path_cqap(3)
    db = path_database(3, N_EDGES, DOMAIN, seed=13, skew_hubs=3)
    budgets = {
        "tight": 2,
        "linear": db.size,
        # above the worst-case S14 bound (D^2), so the planner actually
        # cashes in the S-routes the selection picked
        "rich": db.size ** 2 + 1,
    }
    rng = random.Random(99)
    probes = [(rng.randrange(DOMAIN), rng.randrange(DOMAIN))
              for _ in range(N_PROBES)]
    rows = []
    for point in BUDGET_POINTS:
        budget = budgets[point]
        pq = prepare(cqap, db, space_budget=budget, cache_size=0,
                     rule_selection="budget")
        start = time.perf_counter()
        for probe in probes:
            pq.probe_boolean(probe)
        seconds = time.perf_counter() - start
        snap = pq.stats()["engine"]["selection"]
        rows.append({
            "budget_point": point,
            "space_budget": budget,
            "stored_tuples": pq.stored_tuples,
            "prepare_seconds": pq.prepare_seconds,
            "probes_per_sec": N_PROBES / max(seconds, 1e-9),
            "selected_pmtds": snap["selected_pmtds"],
            "selected_rules": snap["selected_rules"],
            "estimated_space": snap["estimated_space"],
            "estimated_time": snap["estimated_time"],
        })
    return rows


def _accuracy_workloads():
    """(name, cqap, db, rich budget) rows the accuracy experiment prices."""
    return [
        ("path3", k_path_cqap(3),
         path_database(3, N_EDGES, DOMAIN, seed=13, skew_hubs=3)),
        ("square", square_cqap(),
         square_database(800, 90, seed=5, skew_hubs=3)),
        ("triangle", triangle_cqap(),
         triangle_database(800, 90, seed=7)),
    ]


@lru_cache(maxsize=1)
def estimator_experiment():
    """Estimated vs actual stored tuples, single-variable baseline vs new.

    Every materialized S-target at a rich budget is priced twice from the
    *same* measured catalog: once with the multi-variable degree keys and
    sampled join sizes disabled (the pre-upgrade estimator) and once with
    the full model.  The actuals come from what preprocessing stored.
    """
    rows = []
    for name, cqap, db in _accuracy_workloads():
        stats = CatalogStatistics.from_database(cqap, db)
        baseline = CostModel(cqap, stats, use_multivar_degrees=False,
                             use_join_samples=False)
        upgraded = CostModel(cqap, stats)
        index = CQAPIndex(cqap, db, db.size ** 2 + 1,
                          rule_selection="budget",
                          statistics=stats).preprocess()
        for key, actual in sorted(index.stats.s_view_tuples.items()):
            target = varset(key.split("|"))
            est_baseline = baseline.s_space(target)
            est_upgraded = upgraded.s_space(target)
            rows.append({
                "query": name,
                "target": key,
                "actual": actual,
                "estimated_baseline": est_baseline,
                "estimated_upgraded": est_upgraded,
                "rel_error_baseline":
                    abs(est_baseline - actual) / max(1, actual),
                "rel_error_upgraded":
                    abs(est_upgraded - actual) / max(1, actual),
            })

    def median(values):
        values = sorted(values)
        return values[len(values) // 2] if values else None

    return {
        "targets": rows,
        "median_rel_error_baseline":
            median([r["rel_error_baseline"] for r in rows]),
        "median_rel_error_upgraded":
            median([r["rel_error_upgraded"] for r in rows]),
    }


def experiment():
    """Everything ``run_bench.py`` serializes into BENCH_selection.json."""
    return {
        "planning": planning_experiment(),
        "budget_sweep": budget_experiment(),
        "estimator_accuracy": estimator_experiment(),
    }


def report():
    results = experiment()
    print_table(
        "rule generation: streamed frontier sweep vs eager product "
        f"(fuzz path4 seed {HANG_SEED})",
        ["pmtds", "raw product", "rules", "streamed s", "eager s"],
        [[r["pmtds"], r["raw_product"], r["rules"],
          f"{r['streamed_seconds']:.4f}",
          "skipped" if r["eager_seconds"] is None
          else f"{r['eager_seconds']:.4f}"]
         for r in results["planning"]],
    )
    print_table(
        "engine probe latency vs space budget (path3, budget selection)",
        ["budget", "tuples", "stored", "rules", "probes/s", "prepare s"],
        [[r["budget_point"], r["space_budget"], r["stored_tuples"],
          r["selected_rules"], f"{r['probes_per_sec']:.0f}",
          f"{r['prepare_seconds']:.3f}"]
         for r in results["budget_sweep"]],
    )
    accuracy = results["estimator_accuracy"]
    print_table(
        "estimator accuracy: estimated vs stored S-target tuples "
        "(baseline = single-variable degrees only)",
        ["query", "target", "actual", "est base", "est new",
         "err base", "err new"],
        [[r["query"], r["target"], r["actual"],
          f"{r['estimated_baseline']:.0f}", f"{r['estimated_upgraded']:.0f}",
          f"{r['rel_error_baseline']:.2f}", f"{r['rel_error_upgraded']:.2f}"]
         for r in accuracy["targets"]]
        + [["median", "", "", "", "",
            f"{accuracy['median_rel_error_baseline']:.2f}",
            f"{accuracy['median_rel_error_upgraded']:.2f}"]],
    )
    return results


# ----------------------------------------------------------------------
# shape assertions (collected by the benchmark smoke job)
# ----------------------------------------------------------------------
def test_streamed_planning_stays_interactive_uncapped():
    rows = planning_experiment()
    full = rows[-1]
    assert full["pmtds"] == 21
    assert full["streamed_seconds"] < 2.0, full
    # the hang: eager is not even attempted at this size
    assert full["eager_seconds"] is None


def test_streamed_matches_eager_wherever_eager_is_feasible():
    for row in planning_experiment():
        if row["eager_matches"] is not None:
            assert row["eager_matches"], row


def test_uncapped_rules_recover_truncated_tradeoffs():
    rows = planning_experiment()
    by_count = {r["pmtds"]: r["rules"] for r in rows}
    assert by_count[21] > by_count[10]


def test_estimator_accuracy_no_worse_than_baseline():
    accuracy = estimator_experiment()
    assert accuracy["targets"], "no S-targets materialized to score"
    # the acceptance bar: multi-variable degrees + sampled join sizes must
    # not regress the median relative error of the single-variable model
    assert accuracy["median_rel_error_upgraded"] <= \
        accuracy["median_rel_error_baseline"] + 1e-9, accuracy


def test_budget_grows_space_not_latency():
    rows = {r["budget_point"]: r for r in budget_experiment()}
    # the tradeoff: the rich point buys S-view space...
    assert rows["rich"]["stored_tuples"] > rows["tight"]["stored_tuples"]
    # ...and spends it on probe speed, in the estimate and on the clock
    # (the measured margin is ~9x; asserting the ordering keeps CI stable)
    assert rows["rich"]["estimated_time"] <= \
        rows["tight"]["estimated_time"] + 1e-9
    assert rows["rich"]["probes_per_sec"] > rows["tight"]["probes_per_sec"]


if __name__ == "__main__":
    report()
