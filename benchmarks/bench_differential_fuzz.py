"""Differential harness throughput — the cost of the correctness gate.

The differential oracle is only useful if it stays cheap enough to run on
every change, so this bench measures scenarios/second per workload shape
over a fixed seed block and asserts the two shapes that matter:

* zero disagreements (the harness is a correctness gate, not a sampler);
* the brute-force oracle dominates no shape by more than the planning
  stack — i.e. the harness stays interactive (< 2 s/scenario on average),
  which is what lets CI run hundreds of scenarios per push.
"""

import sys
import time
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from harness import print_table

from repro.workloads import QUERY_SHAPES
from repro.workloads.differential import run_differential

BASE_SEED = 9000
SCENARIOS_PER_SHAPE = 8


@lru_cache(maxsize=1)
def experiment():
    rows = []
    for shape in QUERY_SHAPES:
        t0 = time.perf_counter()
        summary = run_differential(SCENARIOS_PER_SHAPE, BASE_SEED,
                                   shape=shape)
        seconds = time.perf_counter() - t0
        rows.append({
            "shape": shape,
            "scenarios": summary.scenarios,
            "comparisons": summary.comparisons,
            "disagreements": len(summary.disagreements),
            "skips": len(summary.skips),
            "sec_per_scenario": seconds / max(1, summary.scenarios),
        })
    return rows


def test_zero_disagreements_every_shape():
    for row in experiment():
        assert row["disagreements"] == 0, row


def test_every_shape_produces_comparisons():
    for row in experiment():
        assert row["comparisons"] > 0, row


def test_no_shape_dominates_the_budget():
    # shape, not absolute wall-clock (repo benchmark convention): machine
    # load cancels in the ratio, so this only reds when one shape's
    # planning cost genuinely explodes relative to the others — the
    # failure mode that would blow the CI fuzz-smoke budget
    rates = [row["sec_per_scenario"] for row in experiment()]
    assert max(rates) < 100 * max(min(rates), 1e-9), experiment()


def test_report_table():
    print_table(
        "Differential fuzz throughput (per query shape)",
        ["shape", "scenarios", "comparisons", "disagree", "skips",
         "s/scenario"],
        [[r["shape"], r["scenarios"], r["comparisons"],
          r["disagreements"], r["skips"],
          f"{r['sec_per_scenario']:.3f}"] for r in experiment()],
    )


if __name__ == "__main__":
    test_report_table()
    test_zero_disagreements_every_shape()
    test_no_shape_dominates_the_budget()
    print("ok")
