"""The versioned stats envelope every serving-stack layer speaks.

Before PR 6 each layer shipped its own ad-hoc ``stats()`` dict shape, so a
dashboard (or a test) had to know which layer it was looking at.  Every
``stats()`` in the serving stack — :class:`~repro.engine.prepared.
PreparedQuery`, :class:`~repro.serving.sharding.ShardedIndex`,
:class:`~repro.serving.batching.BatchScheduler`, :class:`~repro.serving.
server.Server` and :class:`~repro.serving.fleet.ProcessShardFleet` — now
returns one envelope::

    {
        "schema_version": 3,
        "query": <cqap name or None>,
        "backend": <"thread" | "process" | None>,
        "engine": <prepare/selection/planner section or None>,
        "scheduler": <dedupe/cache/dispatch section or None>,
        "server": <stream/backpressure section or None>,
        "updates": <delta/reselection/eviction section or None>,
        "metrics": <observability snapshot or None>,
        "shards": [<per-shard lifecycle snapshot>, ...],
    }

Schema version 2 (PR 8) added the ``updates`` section: every layer that
fronts a :class:`~repro.core.index.CQAPIndex` reports the index's delta
accounting (inserts/deletes/deltas_applied/reselections) merged with its
own coherence counters (cache keys invalidated, shard rebuilds, rows
routed to shard partitions).

Schema version 3 (PR 10) added the ``metrics`` section: the
observability layer's snapshot (:func:`repro.obs.metrics_section` —
per-probe latency/work histograms, route counters, slow-probe
exemplars).  It is ``None`` whenever observability never recorded during
the envelope's window, so the disabled hot path stays free.

A layer fills the sections it owns and leaves the rest ``None`` (or ``[]``
for ``shards``); the top-of-stack :meth:`Server.stats` fills all of them.
:func:`validate_stats` is the schema-shape check the test suite (and
``run_bench.py --validate``) runs against every layer's payload.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

#: bump when the envelope's required keys or their meaning change
STATS_SCHEMA_VERSION = 3

#: keys every envelope carries, whatever layer produced it
REQUIRED_KEYS = (
    "schema_version",
    "query",
    "backend",
    "engine",
    "scheduler",
    "server",
    "updates",
    "metrics",
    "shards",
)


def stats_envelope(
    query: Optional[str] = None,
    backend: Optional[str] = None,
    engine: Optional[Dict] = None,
    scheduler: Optional[Dict] = None,
    server: Optional[Dict] = None,
    updates: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    shards: Iterable[Dict] = (),
) -> Dict:
    """Assemble one schema-versioned stats payload."""
    return {
        "schema_version": STATS_SCHEMA_VERSION,
        "query": query,
        "backend": backend,
        "engine": engine,
        "scheduler": scheduler,
        "server": server,
        "updates": updates,
        "metrics": metrics,
        "shards": list(shards),
    }


def validate_stats(payload: Dict) -> Dict:
    """Assert ``payload`` is a well-formed envelope; returns it unchanged.

    Raises ``ValueError`` naming the first violated constraint, so a schema
    drift fails loudly in tests instead of silently feeding a dashboard
    the wrong shape.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"stats payload must be a dict, got "
                         f"{type(payload).__name__}")
    missing = [key for key in REQUIRED_KEYS if key not in payload]
    if missing:
        raise ValueError(f"stats payload missing keys: {missing}")
    if payload["schema_version"] != STATS_SCHEMA_VERSION:
        raise ValueError(
            f"stats schema_version {payload['schema_version']!r} != "
            f"{STATS_SCHEMA_VERSION} (regenerate the producer)")
    for section in ("engine", "scheduler", "server", "updates", "metrics"):
        value = payload[section]
        if value is not None and not isinstance(value, dict):
            raise ValueError(f"stats section {section!r} must be a dict "
                             f"or None, got {type(value).__name__}")
    if not isinstance(payload["shards"], list):
        raise ValueError("stats section 'shards' must be a list")
    for entry in payload["shards"]:
        if not isinstance(entry, dict) or "shard" not in entry:
            raise ValueError("every 'shards' entry must be a dict with a "
                             "'shard' id")
    if payload["backend"] not in (None, "thread", "process"):
        raise ValueError(f"unknown backend {payload['backend']!r}")
    return payload
