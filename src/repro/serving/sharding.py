"""Access-hash sharding of a prepared CQAP index.

Every materialized S-view of the paper's framework is *keyed*: a probe for
access binding ``b`` only ever consults view rows that agree with ``b`` on
the access variables.  The stored side of a prepared index therefore
partitions exactly by a hash of the access-variable binding — a sharding
scheme that commutes with probe semantics by construction, unlike generic
join sharding.  :class:`ShardedIndex` realizes this: S-views whose schema
contains the full access prefix are hash-partitioned across ``n_shards``
(each probe routed to exactly one shard), while everything else — S-views
missing part of the prefix, the compiled T-phase steps and the base
relation pieces they scan — is shared read-only across shards ("replicated"
in the distributed reading, T-route state included).

Proof of invariance (why answers are independent of the shard count):

1. *Answers extend the request.*  Every T-view row joins ``Q_A`` by
   construction (the executor prepends the request to each compiled step),
   and the Online-Yannakakis top-down pass starts from the ``Q_A``-reduced
   root — so every emitted answer row agrees with a requested binding on
   all access variables.
2. *Partitioned views keep every relevant row.*  A view is partitioned only
   when its schema contains every access variable.  Any view row used by a
   derivation of an answer row agrees with that answer row on all of its
   columns — in particular on the access columns, so it carries the probed
   binding ``b`` and lives on ``shard(b)``.  Rows of replicated views are
   on every shard.  Hence the complete derivation of every answer for ``b``
   is shard-local, and the semijoin reductions (the shard-build SS pass and
   the per-probe bottom-up pass) only test joinability against rows the
   derivation itself provides — none of its rows can be reduced away.
3. *Monotonicity.*  The whole online pipeline — semijoins, hash joins,
   projections, unions — is monotone in the view contents: removing rows
   never adds answers.  A shard's views are pointwise subsets of the
   unsharded views, so a shard can never answer *more* than the unsharded
   index; by (2) it answers no less for the bindings routed to it; by (1)
   the unsharded answer contains nothing else.  Equality follows, for every
   shard count — the differential harness asserts it bit-identically over
   shard counts {1, 4, 7}.

Routing uses :func:`repro.data.relation.stable_hash` so shard assignment is
reproducible across processes (Python's builtin string hash is salted).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.index import CQAPIndex
from repro.core.online_yannakakis import OnlineYannakakis
from repro.core.two_phase import TwoPhaseExecutor
from repro.data.relation import Relation, stable_hash
from repro.obs import metrics_section
from repro.obs.registry import REGISTRY
from repro.obs.trace import STATE as _OBS, TRACER
from repro.query.cq import normalize_access_binding
from repro.query.hypergraph import VarSet
from repro.serving.stats import stats_envelope
from repro.util.counters import Counters

Binding = Tuple[object, ...]


def access_hash(key: Binding) -> int:
    """The deterministic shard-routing hash of one access binding."""
    return stable_hash(tuple(key))


def split_by_binding(batched: Relation, access: Tuple[str, ...],
                     group: Sequence[Binding]) -> Dict[Binding, Relation]:
    """Split one group's batched answer back into per-binding relations.

    Both backends use this — the thread backend in the parent, the process
    backend inside the worker — so a binding's answer relation is
    constructed identically wherever the online phase ran.
    """
    if not access:
        # the only possible binding is (): the whole answer is its rows
        return {key: batched for key in group}
    access_pos = tuple(batched.schema.index(v) for v in access)
    by_key: Dict[Binding, set] = {}
    for row in batched.tuples:
        by_key.setdefault(tuple(row[p] for p in access_pos), set()).add(row)
    return {
        key: Relation(batched.name, batched.schema, by_key.get(key, ()))
        for key in group
    }


def partition_prefixes(index: CQAPIndex, n_shards: int,
                       ) -> Dict[VarSet, Tuple[str, ...]]:
    """The access prefix each partitionable S-target is hash-routed on.

    The routing half of :func:`partition_s_targets`, without the data
    movement — what a parent process needs to send probe bindings *and
    delta rows* to the shard whose slice holds (or must gain) them.
    Empty when ``n_shards <= 1`` (nothing is partitioned).
    """
    if n_shards <= 1:
        return {}
    access = tuple(index.cqap.access)
    declared = {
        frozenset(entry["s_target"]): tuple(entry["access_prefix"])
        for entry in index.selection.s_view_keys(access)
        if entry["partitionable"]
    }
    prefixes: Dict[VarSet, Tuple[str, ...]] = {}
    for target in index.s_targets:
        prefix = declared.get(target)
        if prefix is None and access and set(access) <= set(target):
            # materialized by a planner decision the selection ledger
            # didn't route (e.g. a post-abort re-target): the schema
            # test is the same invariant the declaration encodes
            prefix = access
        if prefix:
            prefixes[target] = prefix
    return prefixes


def partition_s_targets(index: CQAPIndex, n_shards: int,
                        ) -> Tuple[Dict[VarSet, List[Relation]],
                                   Dict[VarSet, Tuple[str, ...]], int, int]:
    """Hash-partition the partitionable S-targets of a prepared index.

    Returns ``(target_parts, partition_prefix, partitioned_tuples,
    replicated_tuples)``: per-target shard slices for every S-target whose
    schema contains the whole access prefix, the prefix each partitioned
    target is hashed on, and the tuple totals on each side of the split.
    Both serving backends — :class:`ShardedIndex` (threads) and the
    process fleet's :func:`shard_payloads` — partition through here, so
    shard contents can never depend on the backend.
    """
    partition_prefix = partition_prefixes(index, n_shards)
    target_parts: Dict[VarSet, List[Relation]] = {}
    partitioned = replicated = 0
    for target, relation in index.s_targets.items():
        prefix = partition_prefix.get(target)
        if prefix:
            target_parts[target] = relation.partition_by_hash(
                prefix, n_shards, hasher=access_hash,
            )
            partitioned += len(relation)
        else:
            replicated += len(relation)
    return target_parts, partition_prefix, partitioned, replicated


@dataclass
class ShardPayload:
    """Everything one fleet worker needs to serve its shard, picklable.

    ``pmtd_views`` holds the *raw* per-shard view relations (partition
    slices for partitionable targets, the full relation for replicated
    ones).  The worker builds its own :class:`~repro.core.
    online_yannakakis.OnlineYannakakis` per PMTD from them, so the
    per-shard preprocessing — semijoin reduction against the shard's own
    slice, hash-index warm-up — happens *in the worker process*, sized by
    the shard's partition rather than derived from a parent-side global
    build.
    """

    shard_id: int
    n_shards: int
    cqap: object
    steps: List
    budget_slack: float
    #: parallel to ``pmtds``: per-PMTD ``{node: Relation}`` S-view dicts
    pmtds: List
    pmtd_views: List[Dict]
    partitioned_tuples: int
    #: relation backend the worker's executor must rebuild with, so a
    #: columnar-prepared index serves columnar in every worker process
    relation_backend: str = "set"


def shard_payloads(index: CQAPIndex, n_shards: int) -> List[ShardPayload]:
    """Build one picklable serving payload per shard for the process fleet.

    Partitioning goes through :func:`partition_s_targets`, and view
    assembly through the engine's own matcher, exactly like
    :class:`ShardedIndex` — the two backends ship byte-identical shard
    contents and differ only in where the per-shard preprocessing runs.
    """
    if not index.ready:
        raise ValueError("shard payloads need a preprocessed CQAPIndex; "
                         "call preprocess() (or repro.prepare) first")
    target_parts, _, partitioned, replicated = partition_s_targets(
        index, n_shards)
    replicated_targets = {
        target: relation for target, relation in index.s_targets.items()
        if target not in target_parts
    }
    payloads: List[ShardPayload] = []
    for shard_id in range(n_shards):
        shard_targets = dict(replicated_targets)
        part_tuples = 0
        for target, parts in target_parts.items():
            shard_targets[target] = parts[shard_id]
            part_tuples += len(parts[shard_id])
        pmtd_views = [
            CQAPIndex._assemble_views(pmtd.s_views, shard_targets)
            for pmtd in index.pmtds
        ]
        payloads.append(ShardPayload(
            shard_id=shard_id,
            n_shards=n_shards,
            cqap=index.cqap,
            steps=index.compiled_online,
            budget_slack=index.executor.budget_slack,
            pmtds=list(index.pmtds),
            pmtd_views=pmtd_views,
            partitioned_tuples=part_tuples,
            relation_backend=index.relation_backend,
        ))
    return payloads


def merge_counters(into: Counters, part: Counters) -> None:
    """Accumulate ``part``'s operation counts into ``into``."""
    into.probes += part.probes
    into.scans += part.scans
    into.stores += part.stores
    into.joins_emitted += part.joins_emitted


@dataclass
class ShardState:
    """One shard's serving state: views, executor, lifecycle counters.

    The executor is per-shard so ``online_runs`` counts this shard's work
    and concurrent shards never race on a shared counter; the compiled
    T-phase *steps* it executes are shared read-only across shards.
    """

    shard_id: int
    executor: TwoPhaseExecutor
    yannakakis: List[OnlineYannakakis]
    partitioned_tuples: int = 0
    probes_served: int = 0
    online_phases: int = 0
    counters: Counters = field(default_factory=Counters)

    def snapshot(self) -> Dict:
        """JSON-friendly per-shard lifecycle counters."""
        return {
            "shard": self.shard_id,
            "partitioned_tuples": self.partitioned_tuples,
            "probes_served": self.probes_served,
            "online_phases": self.online_phases,
            "online_runs": self.executor.online_runs,
            "counters": self.counters.snapshot(),
        }


class ShardedIndex:
    """A preprocessed :class:`CQAPIndex` partitioned for sharded serving.

    Construction is the only phase that touches shared mutable state
    (partitioning, per-shard semijoin reduction, index warm-up); afterwards
    each shard serves probes against its own views plus the shared
    read-only plan state.  :meth:`shard_of` routes a normalized binding to
    its unique home shard; :meth:`answer_on_shard` answers a group of
    bindings that all live on one shard.  Concurrency contract: distinct
    shards may answer concurrently (the :class:`~repro.serving.batching.
    BatchScheduler` runs one in-flight task per shard); a single shard is
    single-threaded.
    """

    #: backend-contract tag: in-process shards, dispatched on threads
    backend = "thread"
    #: the scheduler may pass ``trace_ctx=`` to :meth:`answer_group`
    supports_trace_ctx = True

    def __init__(self, index: CQAPIndex, n_shards: int = 4) -> None:
        if not index.ready:
            raise ValueError("ShardedIndex needs a preprocessed CQAPIndex; "
                             "call preprocess() (or repro.engine.prepare) "
                             "first")
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.index = index
        self.cqap = index.cqap
        self.access: Tuple[str, ...] = tuple(index.cqap.access)
        self.n_shards = int(n_shards)
        self.shards: List[ShardState] = []
        #: update-path accounting (stats envelope ``updates`` section)
        self.rebuilds = 0
        self.routed_rows = 0
        self._build()
        index.register_delta_listener(self)

    def _build(self) -> None:
        """(Re)derive every shard's serving state from the index.

        Runs at construction, and wholesale again when a delta event
        reports state this class shares by reference was replaced — a
        drift re-selection (new plans, new S-targets) or a delta to a
        *replicated* target (one relation object visible to every shard,
        so there is no cheaper per-shard patch).  Partitioned-target
        deltas never come through here; :meth:`on_index_delta` routes
        those rows surgically.  Existing :class:`ShardState` objects are
        kept across a rebuild so lifecycle counters survive.
        """
        index = self.index
        # shared read-only plan state (T-route state, in the distributed
        # reading: replicated to every shard)
        self._steps = index.compiled_online
        # the selection declares each rule's S-view key schema; a target is
        # partitionable iff its key contains the whole access prefix
        (self._target_parts, self._partition_prefix,
         self.partitioned_tuples, self.replicated_tuples) = \
            partition_s_targets(index, self.n_shards)
        # replicated views are built once and shared by reference across
        # every shard's Yannakakis state (zero-copy replication); the
        # per-shard reductions only ever derive new relations from them.
        # Assembly goes through the engine's own matcher so the sharded
        # views can never diverge from what CQAPIndex.answer would serve.
        replicated_targets = {
            target: relation for target, relation in index.s_targets.items()
            if target not in self._target_parts
        }
        shared_views: Dict[Tuple[int, object], Relation] = {}
        for p, pmtd in enumerate(index.pmtds):
            assembled = CQAPIndex._assemble_views(pmtd.s_views,
                                                  replicated_targets)
            for node, view in pmtd.s_views.items():
                if view.variables not in self._target_parts:
                    shared_views[(p, node)] = assembled[node]
        self._shared_views = shared_views
        # a PMTD none of whose views are partitioned serves identical state
        # on every shard: build its (read-only at probe time) Yannakakis
        # pass once and share it, instead of redoing the same SS-reductions
        # and index warm-up per shard
        shared_oy: Dict[int, OnlineYannakakis] = {}
        for p, pmtd in enumerate(index.pmtds):
            if not any(view.variables in self._target_parts
                       for view in pmtd.s_views.values()):
                shared_oy[p] = OnlineYannakakis(
                    pmtd, {node: shared_views[(p, node)]
                           for node in pmtd.s_views})
        self._shared_oy = shared_oy
        previous = {state.shard_id: state for state in self.shards}
        self.shards = []
        for shard_id in range(self.n_shards):
            yannakakis = self._shard_yannakakis(shard_id)
            part_tuples = sum(len(parts[shard_id])
                              for parts in self._target_parts.values())
            state = previous.get(shard_id)
            if state is None:
                state = ShardState(
                    shard_id=shard_id,
                    executor=TwoPhaseExecutor(
                        index.cqap,
                        budget_slack=index.executor.budget_slack,
                        relation_backend=index.relation_backend,
                    ),
                    yannakakis=yannakakis,
                    partitioned_tuples=part_tuples,
                )
            else:
                state.yannakakis = yannakakis
                state.partitioned_tuples = part_tuples
            self.shards.append(state)

    def _shard_yannakakis(self, shard_id: int) -> List[OnlineYannakakis]:
        """One shard's per-PMTD Yannakakis passes over its current views.

        Shared (fully-replicated) passes come from :attr:`_shared_oy` by
        reference; the rest are built fresh against the shard's partition
        slices — which is also how a delta refreshes a touched shard:
        the Online-Yannakakis constructor snapshots semijoin-reduced
        views, so after a slice changes the pass is *rebuilt*, never
        patched.
        """
        out: List[OnlineYannakakis] = []
        for p, pmtd in enumerate(self.index.pmtds):
            if p in self._shared_oy:
                out.append(self._shared_oy[p])
                continue
            s_views: Dict = {}
            for node, view in pmtd.s_views.items():
                parts = self._target_parts.get(view.variables)
                if parts is None:
                    s_views[node] = self._shared_views[(p, node)]
                else:
                    s_views[node] = parts[shard_id]
            out.append(OnlineYannakakis(pmtd, s_views))
        return out

    # ------------------------------------------------------------------
    # incremental updates (repro.updates delta events)
    # ------------------------------------------------------------------
    def on_index_delta(self, event) -> None:
        """Route one index delta into the shard partitions.

        Partitioned targets take the surgical path: each delta row is
        hashed on the target's access prefix to its home shard's slice
        (the same :func:`access_hash` routing probes use, so a row lands
        exactly where the probes that can see it are answered), every
        slice of the target re-synced against its mutated base relation,
        and only the touched shards' Yannakakis passes rebuilt.  Deltas
        to replicated targets — shared by reference across all shards —
        and drift re-selections fall back to a full :meth:`_build`.
        """
        if not event.changed:
            return
        if event.reselected:
            self._build()
            self.rebuilds += 1
            return
        if not event.targets_changed:
            return
        if any((added or removed) and target not in self._target_parts
               for target, (added, removed) in event.target_deltas.items()):
            self._build()
            self.rebuilds += 1
            return
        touched: set = set()
        for target, (added, removed) in event.target_deltas.items():
            if not (added or removed):
                continue
            parts = self._target_parts[target]
            schema = parts[0].schema
            pos = tuple(schema.index(v)
                        for v in self._partition_prefix[target])
            deltas = [(row, True) for row in added]
            deltas += [(row, False) for row in removed]
            for row, insert in deltas:
                shard_id = (access_hash(tuple(row[p] for p in pos))
                            % self.n_shards)
                part = parts[shard_id]
                if insert:
                    changed = part._delta_add(row)
                else:
                    changed = part._delta_discard(row)
                if changed:
                    self.routed_rows += 1
                touched.add(shard_id)
            # the base target's epoch moved when the index applied its
            # delta; every slice (touched or not) must re-agree with it
            for part in parts:
                part._sync_with_base()
        for shard_id in touched:
            shard = self.shards[shard_id]
            shard.yannakakis = self._shard_yannakakis(shard_id)
            shard.partitioned_tuples = sum(
                len(parts[shard_id])
                for parts in self._target_parts.values())
        self.partitioned_tuples = sum(
            len(part)
            for parts in self._target_parts.values() for part in parts)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def normalize(self, binding) -> Binding:
        """One probe binding as a tuple matching the access arity."""
        return normalize_access_binding(self.access, binding)

    def shard_of(self, key: Binding) -> int:
        """The unique home shard of a normalized access binding."""
        if self.n_shards == 1 or not self.access:
            return 0
        return access_hash(key) % self.n_shards

    # ------------------------------------------------------------------
    # per-shard answering
    # ------------------------------------------------------------------
    def answer_on_shard(self, shard_id: int, keys: Sequence[Binding],
                        counters: Optional[Counters] = None) -> Relation:
        """Answer a group of bindings that all route to ``shard_id``.

        Mirrors :meth:`CQAPIndex.answer` against the shard's views: one
        compiled T-phase pass for the whole group, then the per-PMTD
        Online-Yannakakis passes, unioned over PMTDs.
        """
        shard = self.shards[shard_id]
        ctr = Counters()
        q_a = Relation("Q_A", self.access, keys)
        t_targets = shard.executor.online_compiled(self._steps, q_a,
                                                   counters=ctr)
        head = tuple(self.cqap.head)
        out_rows: set = set()
        for oy in shard.yannakakis:
            t_views = CQAPIndex._assemble_views(oy.pmtd.t_views, t_targets)
            psi = oy.answer(q_a, t_views, counters=ctr)
            if set(psi.schema) == set(head):
                out_rows |= psi.project(head, counters=ctr).tuples
            elif psi.schema == ():
                out_rows |= psi.tuples
        shard.probes_served += len(keys)
        shard.online_phases += 1
        merge_counters(shard.counters, ctr)
        if counters is not None:
            merge_counters(counters, ctr)
        return Relation(f"{self.cqap.name}_answer", head, out_rows)

    def answer_group(self, shard_id: int, group: Sequence[Binding],
                     trace_ctx: Optional[Tuple[str, str]] = None,
                     ) -> Tuple[Dict[Binding, Relation], Counters]:
        """One shard's online phase for a group, split back per binding.

        This is the synchronous half of the backend contract the
        :class:`~repro.serving.batching.BatchScheduler` dispatches
        against; the process fleet implements the same method (plus an
        asynchronous ``submit_group``) against its workers.  When the
        scheduler hands down a ``trace_ctx`` (trace id, parent span id),
        the shard's serve stamps a child span and the per-shard group
        counter into the observability layer.
        """
        ctr = Counters()
        if trace_ctx is not None and _OBS.enabled:
            trace_id, parent_id = trace_ctx
            span = TRACER.start_span("shard.serve_group",
                                     trace_id=trace_id,
                                     parent_id=parent_id,
                                     shard=shard_id, pid=os.getpid(),
                                     n_keys=len(group))
            batched = self.answer_on_shard(shard_id, group, counters=ctr)
            TRACER.finish_span(span, work=ctr.online_work)
            REGISTRY.counter(
                "repro_shard_groups_total",
                "shard groups served, by backend and shard",
                ("backend", "shard"),
            ).labels(backend="thread", shard=shard_id).inc()
        else:
            batched = self.answer_on_shard(shard_id, group, counters=ctr)
        return split_by_binding(batched, self.access, group), ctr

    def probe(self, binding,
              counters: Optional[Counters] = None) -> Relation:
        """Route one binding to its shard and answer it there."""
        key = self.normalize(binding)
        return self.answer_on_shard(self.shard_of(key), [key],
                                    counters=counters)

    def close(self) -> None:
        """Detach from the index's delta feed (no other teardown needed)."""
        self.index.unregister_delta_listener(self)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stored_tuples(self) -> int:
        """Global S-tuples (partitioned once + replicated once)."""
        return self.partitioned_tuples + self.replicated_tuples

    def budget_split(self) -> Dict:
        """How the global space budget divides across shards.

        Partitionable state splits by access hash, so each shard is billed
        ``global_budget / n_shards`` of it; replicated state is resident on
        every shard and must fit each per-shard budget whole.
        """
        per_shard = [s.partitioned_tuples for s in self.shards]
        return {
            "shards": self.n_shards,
            "global_budget": self.index.space_budget,
            "per_shard_budget": self.index.space_budget / self.n_shards,
            "partitioned_tuples": self.partitioned_tuples,
            "replicated_tuples": self.replicated_tuples,
            "per_shard_partitioned": per_shard,
            "max_shard_tuples": (max(per_shard) if per_shard else 0)
            + self.replicated_tuples,
        }

    def engine_section(self) -> Dict:
        """The envelope's ``engine`` section for this partitioned index."""
        split = self.budget_split()
        return {
            "n_shards": self.n_shards,
            "budget_split": split,
            "partitioned_targets": sorted(
                "|".join(sorted(t)) for t in self._target_parts),
            "selection": self.index.selection.snapshot(budget_split=split),
            "probes_served": sum(s.probes_served for s in self.shards),
            "online_phases": sum(s.online_phases for s in self.shards),
        }

    def shard_sections(self) -> List[Dict]:
        """The envelope's per-shard ``shards`` entries."""
        return [s.snapshot() for s in self.shards]

    def updates_section(self) -> Dict:
        """The envelope's ``updates`` section for this layer."""
        return {
            **self.index.updates_section(),
            "rebuilds": self.rebuilds,
            "routed_rows": self.routed_rows,
        }

    def stats(self) -> Dict:
        """Versioned stats envelope (engine + per-shard sections)."""
        return stats_envelope(
            query=self.cqap.name,
            backend=self.backend,
            engine=self.engine_section(),
            updates=self.updates_section(),
            metrics=metrics_section(),
            shards=self.shard_sections(),
        )
