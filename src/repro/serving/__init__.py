"""Sharded, batched serving on top of the prepared engine.

The serving stack, bottom to top::

    repro.prepare(cqap, db, budget, shards=N)   # plan once, priced per shard
      └─ shard backend                          # hash-partition S-views
           ├─ ShardedIndex     backend="thread" (in-process, GIL-bound)
           └─ ProcessShardFleet backend="process" (one worker per shard)
         └─ BatchScheduler     # dedupe + shard-group + backend dispatch
              └─ Server        # stream facade: backpressure + stats

Because every S-view that serves probes is keyed by the access-variable
binding, partitioning the stored side by a hash of that binding commutes
with probe semantics by construction — answers are bit-identical for every
shard count and for both backends (the proof-of-invariance note lives in
:mod:`repro.serving.sharding`; the differential harness asserts it across
shard counts on both the thread and the process path).

Quickstart::

    from repro import prepare
    from repro.serving import serve

    prepared = prepare(cqap, db, space_budget=20_000, shards=4)
    with serve(prepared, backend="process", shards=4,
               batch_size=32) as server:
        for binding, answer in server.serve(stream_of_bindings):
            ...
    server.stats()   # versioned envelope: engine/scheduler/server/shards

Every layer of the stack is also a delta listener: routing a mutation
through :func:`repro.updates.apply_delta` (or ``index.apply_delta``)
keeps shard partitions, worker processes and answer caches coherent —
see :mod:`repro.updates`.
"""

from repro.serving.api import serve
from repro.serving.batching import BatchScheduler
from repro.serving.fleet import FleetError, ProcessShardFleet
from repro.serving.server import Server
from repro.serving.sharding import (
    ShardedIndex,
    ShardState,
    access_hash,
    partition_prefixes,
    shard_payloads,
)
from repro.serving.stats import (
    STATS_SCHEMA_VERSION,
    stats_envelope,
    validate_stats,
)

__all__ = [
    "BatchScheduler",
    "FleetError",
    "ProcessShardFleet",
    "STATS_SCHEMA_VERSION",
    "Server",
    "ShardState",
    "ShardedIndex",
    "access_hash",
    "partition_prefixes",
    "serve",
    "shard_payloads",
    "stats_envelope",
    "validate_stats",
]
