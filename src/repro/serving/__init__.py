"""Sharded, batched serving on top of the prepared engine.

The serving stack, bottom to top::

    CQAPIndex.preprocess()          # plan once (repro.core / repro.engine)
      └─ ShardedIndex(index, N)     # hash-partition S-views by access tuple
           └─ BatchScheduler        # dedupe + shard-group + concurrent fan-out
                └─ ProbeServer      # stream facade with backpressure + stats

Because every S-view that serves probes is keyed by the access-variable
binding, partitioning the stored side by a hash of that binding commutes
with probe semantics by construction — answers are bit-identical for every
shard count (the proof-of-invariance note lives in
:mod:`repro.serving.sharding`, and the differential harness asserts it
across shard counts {1, 4, 7}).

Quickstart::

    from repro.serving import ProbeServer, prepare_sharded

    sharded = prepare_sharded(cqap, db, space_budget=20_000, n_shards=4)
    with ProbeServer(sharded, batch_size=32) as server:
        for binding, answer in server.serve(stream_of_bindings):
            ...
    server.stats()   # per-shard lifecycle counters, dedupe ratio, cache
"""

from repro.serving.batching import BatchScheduler
from repro.serving.server import ProbeServer
from repro.serving.sharding import (
    ShardedIndex,
    ShardState,
    access_hash,
    prepare_sharded,
)

__all__ = [
    "BatchScheduler",
    "ProbeServer",
    "ShardState",
    "ShardedIndex",
    "access_hash",
    "prepare_sharded",
]
