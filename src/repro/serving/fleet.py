"""The process-parallel shard fleet: one worker process per shard.

:class:`ShardedIndex` proved the access-hash partitioning semantics but
serves every shard inside one interpreter, so under the GIL shards compete
for the same core and throughput *falls* with the shard count.  The fleet
gives each shard its own process:

* :func:`~repro.serving.sharding.shard_payloads` builds one picklable
  payload per shard — CQAP, compiled T-phase steps, and the shard's raw
  S-view slices (:class:`~repro.data.relation.Relation` pickles its
  payload, never its index caches);
* each shard gets its own **single-worker**
  :class:`~concurrent.futures.ProcessPoolExecutor`, so a shard's state
  lives in exactly one process for the fleet's lifetime (shard→process
  affinity — resubmissions hit warm per-shard hash indexes);
* the worker's initializer runs the *shard-aware preprocessing*: it
  rebuilds the per-PMTD Online-Yannakakis state — semijoin reduction and
  hash-index warm-up — from its own partition slice, inside its own
  process and sized by its own ``budget_split`` share, instead of
  inheriting a parent-side global build;
* probe groups are submitted per shard and answered entirely in-worker
  (one compiled T-phase pass + the per-PMTD OY passes, split back per
  binding); only the answer rows cross the process boundary.

Shard routing stays parent-side and uses the same
:func:`~repro.serving.sharding.access_hash` as the thread backend —
``stable_hash`` is process-stable, so both backends and every shard count
route identically (the ``serving_process`` differential path asserts the
answers bit-identical).

Failure contract: a dead worker (crash, OOM-kill) surfaces as
:class:`FleetError` on the *next* result, never as a hang; ``close()``
(or the context manager) shuts every pool down and reaps the worker
processes.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.index import CQAPIndex
from repro.core.online_yannakakis import OnlineYannakakis
from repro.core.two_phase import TwoPhaseExecutor
from repro.data.relation import Relation
from repro.obs import metrics_section
from repro.obs.hist import WORK_BUCKETS, Histogram
from repro.obs.registry import REGISTRY
from repro.obs.trace import TRACER, new_id
from repro.query.cq import normalize_access_binding
from repro.serving.sharding import (
    Binding,
    ShardPayload,
    access_hash,
    merge_counters,
    partition_prefixes,
    shard_payloads,
    split_by_binding,
)
from repro.serving.stats import stats_envelope
from repro.util.counters import Counters


class FleetError(RuntimeError):
    """A fleet worker died or could not be reached (not a query error)."""


# ----------------------------------------------------------------------
# worker-side code: runs inside each shard's dedicated process
# ----------------------------------------------------------------------

#: per-process serving state, set once by :func:`_init_worker`
_WORKER: Optional["_WorkerState"] = None


@dataclass
class _WorkerState:
    shard_id: int
    cqap: object
    access: Tuple[str, ...]
    head: Tuple[str, ...]
    answer_name: str
    steps: List
    executor: TwoPhaseExecutor
    yannakakis: List[OnlineYannakakis]
    #: the payload's *raw* per-PMTD view dicts, retained past the initial
    #: Yannakakis builds: a delta mutates these in place and rebuilds the
    #: affected passes from them (the passes themselves snapshot
    #: semijoin-reduced views, so they cannot be patched)
    pmtds: List
    pmtd_views: List[Dict]
    preprocess_seconds: float
    probes_served: int = 0
    online_phases: int = 0
    counters: Counters = field(default_factory=Counters)


def _init_worker(payload_bytes: bytes) -> None:
    """Unpickle the shard payload and run the shard's own preprocessing.

    Building :class:`OnlineYannakakis` here — not in the parent — is what
    makes the preprocessing shard-aware: the semijoin reductions and
    hash-index warm-ups run against this shard's partition slices, in this
    process, so the warm serving state never crosses a process boundary.
    """
    global _WORKER
    t0 = time.process_time()
    payload: ShardPayload = pickle.loads(payload_bytes)
    cqap = payload.cqap
    yannakakis = [
        OnlineYannakakis(pmtd, views)
        for pmtd, views in zip(payload.pmtds, payload.pmtd_views)
    ]
    _WORKER = _WorkerState(
        shard_id=payload.shard_id,
        cqap=cqap,
        access=tuple(cqap.access),
        head=tuple(cqap.head),
        answer_name=f"{cqap.name}_answer",
        steps=payload.steps,
        executor=TwoPhaseExecutor(
            cqap, budget_slack=payload.budget_slack,
            relation_backend=payload.relation_backend,
        ),
        yannakakis=yannakakis,
        pmtds=list(payload.pmtds),
        pmtd_views=list(payload.pmtd_views),
        preprocess_seconds=time.process_time() - t0,
    )


def _worker_state() -> "_WorkerState":
    """The process-local serving state, or a typed error before init."""
    if _WORKER is None:
        raise FleetError("worker initializer did not run")
    return _WORKER


def _worker_ping() -> Dict:
    """Warm-up probe: forces worker start-up, reports identity and cost."""
    state = _worker_state()
    return {
        "shard": state.shard_id,
        "pid": os.getpid(),
        "preprocess_seconds": state.preprocess_seconds,
    }


def _serve_group(keys: Sequence[Binding],
                 trace_ctx: Optional[Tuple[str, str]] = None,
                 ) -> Tuple[Tuple[str, ...], Dict[Binding, frozenset],
                            Counters, float, Optional[Dict]]:
    """Answer one probe group in-worker; ships rows, counters, CPU time.

    Mirrors :meth:`ShardedIndex.answer_on_shard` + the per-binding split,
    but returns plain ``frozenset`` row sets instead of Relations — the
    parent rebuilds Relations once, so no index caches ever cross back.

    ``trace_ctx`` is the scheduler's (trace id, parent span id) pair,
    riding the pickled submission; when present the worker additionally
    ships an observability payload — its own child span (stamped with
    this process's pid and CPU ``process_time``) and a group-local
    intrinsic-work histogram the parent merges exactly into
    ``repro_worker_probe_work``.
    """
    state = _worker_state()
    t0 = time.process_time()
    ctr = Counters()
    q_a = Relation("Q_A", state.access, keys)
    t_targets = state.executor.online_compiled(state.steps, q_a,
                                               counters=ctr)
    out_rows: set = set()
    for oy in state.yannakakis:
        t_views = CQAPIndex._assemble_views(oy.pmtd.t_views, t_targets)
        psi = oy.answer(q_a, t_views, counters=ctr)
        if set(psi.schema) == set(state.head):
            out_rows |= psi.project(state.head, counters=ctr).tuples
        elif psi.schema == ():
            out_rows |= psi.tuples
    batched = Relation(state.answer_name, state.head, out_rows)
    per_key = {
        key: frozenset(rel.tuples)
        for key, rel in split_by_binding(batched, state.access,
                                         keys).items()
    }
    state.probes_served += len(keys)
    state.online_phases += 1
    cpu = time.process_time() - t0
    obs_payload: Optional[Dict] = None
    if trace_ctx is not None:
        trace_id, parent_id = trace_ctx
        work_hist = Histogram(WORK_BUCKETS)
        amortized = ctr.online_work / len(keys) if keys else 0.0
        work_hist.record(amortized, n=len(keys))
        obs_payload = {
            "span": {
                "name": "worker.serve_group",
                "trace_id": trace_id,
                "parent_id": parent_id,
                "span_id": new_id("w"),
                "duration": cpu,
                "attrs": {"shard": state.shard_id, "pid": os.getpid(),
                          "process_time": cpu, "n_keys": len(keys),
                          "work": ctr.online_work},
            },
            "work_hist": work_hist,
        }
    return batched.schema, per_key, ctr, cpu, obs_payload


@dataclass
class _WorkerDelta:
    """One routed delta message, parent → worker (picklable).

    ``view_rows`` is already routed: for a partitioned target it carries
    only the rows whose access-prefix hash lands on this shard; for a
    replicated target every worker receives all rows.  ``step_slots``
    indexes the worker's copy of the compiled T-phase steps (same list,
    same order as the parent's — both came from one payload).
    """

    op: str
    relation: str
    row: tuple
    step_slots: Tuple[int, ...]
    #: (target variable set, added rows, removed rows) per touched S-view
    view_rows: List[Tuple[frozenset, frozenset, frozenset]]


def _apply_worker_delta(delta_bytes: bytes) -> Dict:
    """Apply one routed delta to this worker's serving state.

    Mirrors the parent-side maintenance on the worker's own copies: the
    touched steps' piece relations take the row delta (once per distinct
    tuple set — backend re-wraps share sets — with derived caches reset
    on every member) and their probe plans recompile; the raw S-view
    slices take their routed row deltas and the affected Online-
    Yannakakis passes are rebuilt from them.
    """
    state = _worker_state()
    delta: _WorkerDelta = pickle.loads(delta_bytes)
    insert = delta.op == "insert"
    rows_applied = 0
    if delta.step_slots:
        members = []
        for slot in delta.step_slots:
            step = state.steps[slot]
            for atom, rel in zip(state.cqap.atoms, step.relations):
                if atom.relation == delta.relation:
                    members.append(rel)
        seen: set = set()
        for rel in members:
            set_id = id(rel.tuples)
            if set_id in seen:
                rel.version += 1
                rel._reset_derived()
                continue
            seen.add(set_id)
            if insert:
                rel._delta_add(delta.row)
            else:
                rel._delta_discard(delta.row)
        for slot in delta.step_slots:
            plan = state.steps[slot].plan
            if plan is not None:
                plan._compile()
    changed_targets = {target for target, added, removed in delta.view_rows
                       if added or removed}
    if changed_targets:
        seen = set()
        for target, added, removed in delta.view_rows:
            if not (added or removed):
                continue
            for views in state.pmtd_views:
                for rel in views.values():
                    if rel.variables != target:
                        continue
                    set_id = id(rel.tuples)
                    if set_id in seen:
                        rel.version += 1
                        rel._reset_derived()
                        continue
                    seen.add(set_id)
                    for r in added:
                        if rel._delta_add(r):
                            rows_applied += 1
                    for r in removed:
                        if rel._delta_discard(r):
                            rows_applied += 1
        for p, views in enumerate(state.pmtd_views):
            if any(rel.variables in changed_targets
                   for rel in views.values()):
                state.yannakakis[p] = OnlineYannakakis(state.pmtds[p],
                                                       views)
    return {"shard": state.shard_id, "rows_applied": rows_applied}


def _crash() -> None:
    """Test hook: kill this worker the way a segfault/OOM-kill would."""
    os._exit(13)


# ----------------------------------------------------------------------
# parent-side fleet
# ----------------------------------------------------------------------

@dataclass
class FleetShardState:
    """Parent-side ledger for one shard's worker process."""

    shard_id: int
    pid: Optional[int] = None
    partitioned_tuples: int = 0
    preprocess_seconds: float = 0.0
    probes_served: int = 0
    online_phases: int = 0
    cpu_seconds: float = 0.0
    counters: Counters = field(default_factory=Counters)

    def snapshot(self) -> Dict:
        return {
            "shard": self.shard_id,
            "pid": self.pid,
            "partitioned_tuples": self.partitioned_tuples,
            "preprocess_seconds": self.preprocess_seconds,
            "probes_served": self.probes_served,
            "online_phases": self.online_phases,
            "cpu_seconds": self.cpu_seconds,
            "counters": self.counters.snapshot(),
        }


class _FleetFuture:
    """A pending shard answer; ``result()`` translates worker failures."""

    def __init__(self, fleet: "ProcessShardFleet", shard_id: int,
                 keys: List[Binding], future) -> None:
        self._fleet = fleet
        self._shard_id = shard_id
        self._keys = keys
        self._future = future

    def result(self) -> Tuple[Dict[Binding, Relation], Counters]:
        return self._fleet._collect(self._shard_id, self._keys,
                                    self._future)


def _pick_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform has it (cheap worker start, payload bytes
    inherited copy-on-write), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class ProcessShardFleet:
    """Access-hash sharded serving with one worker process per shard.

    Implements the same backend contract as :class:`~repro.serving.
    sharding.ShardedIndex` — ``normalize`` / ``shard_of`` / ``n_shards`` /
    ``answer_group`` / ``close`` / the stats sections — plus the native
    asynchronous ``submit_group`` the scheduler prefers, so the two
    backends are drop-in interchangeable behind ``serve(backend=...)``.
    """

    backend = "process"
    #: the scheduler may pass ``trace_ctx=`` to ``submit_group`` /
    #: ``answer_group``; it rides the pickled submission to the worker
    supports_trace_ctx = True

    def __init__(self, index: CQAPIndex, n_shards: int = 4,
                 mp_context: Optional[str] = None) -> None:
        if not index.ready:
            raise ValueError("ProcessShardFleet needs a preprocessed "
                             "CQAPIndex; call preprocess() (or "
                             "repro.prepare) first")
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.index = index
        self.cqap = index.cqap
        self.access: Tuple[str, ...] = tuple(index.cqap.access)
        self.n_shards = int(n_shards)
        self._ctx = (multiprocessing.get_context(mp_context) if mp_context
                     else _pick_context())
        self.shards: List[FleetShardState] = []
        self._pools: List[ProcessPoolExecutor] = []
        self._closed = False
        #: update-path accounting (stats envelope ``updates`` section)
        self.rebuilds = 0
        self.routed_rows = 0
        try:
            self._spawn_workers()
        except BaseException:
            self.close()
            raise
        index.register_delta_listener(self)

    def _spawn_workers(self) -> None:
        """Build payloads and start one warm single-worker pool per shard.

        Runs at construction and again wholesale after a drift
        re-selection replaced the index's frozen plan state (there is no
        delta message that can describe "everything you hold is gone").
        Parent-side :class:`FleetShardState` ledgers are kept across a
        respawn so lifecycle counters survive.
        """
        index = self.index
        payloads = shard_payloads(index, self.n_shards)
        # shard slices are disjoint and cover each partitioned target, so
        # their sizes sum to the global partitioned total
        self.partitioned_tuples = sum(p.partitioned_tuples for p in payloads)
        self.replicated_tuples = index.stored_tuples - self.partitioned_tuples
        self._partition_prefix = partition_prefixes(index, self.n_shards)
        previous = {state.shard_id: state for state in self.shards}
        self.shards = []
        self._pools = []
        for payload in payloads:
            state = previous.get(payload.shard_id)
            if state is None:
                state = FleetShardState(shard_id=payload.shard_id)
            state.partitioned_tuples = payload.partitioned_tuples
            self.shards.append(state)
            self._pools.append(ProcessPoolExecutor(
                max_workers=1,
                mp_context=self._ctx,
                initializer=_init_worker,
                initargs=(pickle.dumps(payload),),
            ))
        # warm-up ping: forces every worker to start (and run its
        # shard preprocessing) now, so initializer failures surface
        # here rather than on the first probe, and records the pids
        # close() must reap
        for shard_id, pool in enumerate(self._pools):
            info = self._guard(shard_id,
                               pool.submit(_worker_ping).result)
            self.shards[shard_id].pid = info["pid"]
            self.shards[shard_id].preprocess_seconds = \
                info["preprocess_seconds"]

    # ------------------------------------------------------------------
    # routing (parent-side, identical to the thread backend)
    # ------------------------------------------------------------------
    def normalize(self, binding) -> Binding:
        """One probe binding as a tuple matching the access arity."""
        return normalize_access_binding(self.access, binding)

    def shard_of(self, key: Binding) -> int:
        """The unique home shard of a normalized access binding."""
        if self.n_shards == 1 or not self.access:
            return 0
        return access_hash(key) % self.n_shards

    # ------------------------------------------------------------------
    # group answering
    # ------------------------------------------------------------------
    def _guard(self, shard_id: int, thunk):
        """Run ``thunk``, translating a dead worker into FleetError."""
        if self._closed:
            raise FleetError("fleet is closed")
        try:
            return thunk()
        except BrokenProcessPool as exc:
            raise FleetError(
                f"shard {shard_id} worker process died (pid "
                f"{self.shards[shard_id].pid}): the shard's serving state "
                f"is lost — rebuild the fleet to recover"
            ) from exc

    def submit_group(self, shard_id: int, group: Sequence[Binding],
                     trace_ctx: Optional[Tuple[str, str]] = None,
                     ) -> _FleetFuture:
        """Dispatch one shard group to its worker; returns a future.

        The scheduler detects this method and keeps every shard's group
        in flight concurrently — on a multi-core host the workers then
        genuinely run in parallel (no GIL in common).
        """
        keys = list(group)
        pool = self._pools[shard_id]
        future = self._guard(
            shard_id, lambda: pool.submit(_serve_group, keys, trace_ctx))
        return _FleetFuture(self, shard_id, keys, future)

    def answer_group(self, shard_id: int, group: Sequence[Binding],
                     trace_ctx: Optional[Tuple[str, str]] = None,
                     ) -> Tuple[Dict[Binding, Relation], Counters]:
        """Synchronous backend contract: submit and wait."""
        return self.submit_group(shard_id, group,
                                 trace_ctx=trace_ctx).result()

    def _collect(self, shard_id: int, keys: List[Binding], future,
                 ) -> Tuple[Dict[Binding, Relation], Counters]:
        schema, per_key, ctr, cpu, obs_payload = self._guard(
            shard_id, future.result)
        state = self.shards[shard_id]
        state.probes_served += len(keys)
        state.online_phases += 1
        state.cpu_seconds += cpu
        merge_counters(state.counters, ctr)
        if obs_payload is not None:
            span = obs_payload["span"]
            TRACER.add_span(span["name"], trace_id=span["trace_id"],
                            parent_id=span["parent_id"],
                            span_id=span["span_id"],
                            duration=span["duration"],
                            attrs=span["attrs"])
            REGISTRY.histogram(
                "repro_worker_probe_work",
                "per-probe intrinsic work recorded inside the worker "
                "processes, merged worker-to-parent",
                ("shard",), bounds=WORK_BUCKETS,
            ).labels(shard=shard_id).merge(obs_payload["work_hist"])
            REGISTRY.counter(
                "repro_shard_groups_total",
                "shard groups served, by backend and shard",
                ("backend", "shard"),
            ).labels(backend="process", shard=shard_id).inc()
        name = f"{self.cqap.name}_answer"
        return {
            key: Relation(name, schema, per_key[key]) for key in keys
        }, ctr

    def probe(self, binding,
              counters: Optional[Counters] = None) -> Relation:
        """Route one binding to its shard's worker and answer it there."""
        key = self.normalize(binding)
        answered, ctr = self.answer_group(self.shard_of(key), [key])
        if counters is not None:
            merge_counters(counters, ctr)
        return answered[key]

    # ------------------------------------------------------------------
    # incremental updates (repro.updates delta events)
    # ------------------------------------------------------------------
    def on_index_delta(self, event) -> None:
        """Ship one index delta to the worker processes that need it.

        The parent routes each S-target delta row exactly like a probe —
        by :func:`access_hash` of the row's access prefix — so a
        partitioned target's row crosses one process boundary, not
        ``n_shards``; replicated-target rows and T-phase step patches go
        to every worker.  Per-shard pools are single-worker and FIFO, so
        a delta submitted here is ordered after every in-flight probe
        group and before every later one — no worker can ever serve a
        half-applied update.  A drift re-selection replaced the frozen
        plan state wholesale, so the workers are respawned from fresh
        payloads instead.
        """
        if self._closed or not event.changed:
            return
        if event.reselected:
            for pool in self._pools:
                pool.shutdown(wait=True)
            self._spawn_workers()
            self.rebuilds += 1
            return
        if not (event.step_slots or event.targets_changed):
            return
        view_rows: List[List] = [[] for _ in range(self.n_shards)]
        for target, (added, removed) in event.target_deltas.items():
            if not (added or removed):
                continue
            prefix = self._partition_prefix.get(target)
            if prefix is None:
                self.replicated_tuples += len(added) - len(removed)
                for shard_id in range(self.n_shards):
                    view_rows[shard_id].append((target, added, removed))
                continue
            self.partitioned_tuples += len(added) - len(removed)
            schema = tuple(sorted(target))
            pos = tuple(schema.index(v) for v in prefix)
            added_by: List[set] = [set() for _ in range(self.n_shards)]
            removed_by: List[set] = [set() for _ in range(self.n_shards)]
            for row in added:
                shard_id = (access_hash(tuple(row[p] for p in pos))
                            % self.n_shards)
                added_by[shard_id].add(row)
            for row in removed:
                shard_id = (access_hash(tuple(row[p] for p in pos))
                            % self.n_shards)
                removed_by[shard_id].add(row)
            for shard_id in range(self.n_shards):
                gained, lost = added_by[shard_id], removed_by[shard_id]
                if gained or lost:
                    view_rows[shard_id].append(
                        (target, frozenset(gained), frozenset(lost)))
                    self.shards[shard_id].partitioned_tuples += \
                        len(gained) - len(lost)
        pending = []
        for shard_id, pool in enumerate(self._pools):
            if not (event.step_slots or view_rows[shard_id]):
                continue
            payload = pickle.dumps(_WorkerDelta(
                op=event.op,
                relation=event.relation,
                row=event.row,
                step_slots=event.step_slots,
                view_rows=view_rows[shard_id],
            ))
            pending.append((shard_id, self._guard(
                shard_id,
                lambda p=pool, b=payload: p.submit(_apply_worker_delta, b))))
        for shard_id, future in pending:
            ack = self._guard(shard_id, future.result)
            self.routed_rows += ack["rows_applied"]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker pool down and reap the processes (idempotent)."""
        self._closed = True
        self.index.unregister_delta_listener(self)
        for pool in self._pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessShardFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def inject_worker_fault(self, shard_id: int) -> None:
        """Test hook: hard-kill one shard's worker (as a crash would).

        The next submission against the shard raises :class:`FleetError`.
        """
        pool = self._pools[shard_id]
        try:
            pool.submit(_crash).result()
        except BrokenProcessPool:
            pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stored_tuples(self) -> int:
        """Global S-tuples (partitioned once + replicated once)."""
        return self.index.stored_tuples

    def budget_split(self) -> Dict:
        """How the global space budget divides across worker processes."""
        per_shard = [s.partitioned_tuples for s in self.shards]
        return {
            "shards": self.n_shards,
            "global_budget": self.index.space_budget,
            "per_shard_budget": self.index.space_budget / self.n_shards,
            "partitioned_tuples": self.partitioned_tuples,
            "replicated_tuples": self.replicated_tuples,
            "per_shard_partitioned": per_shard,
            "max_shard_tuples": (max(per_shard) if per_shard else 0)
            + self.replicated_tuples,
        }

    def engine_section(self) -> Dict:
        """The envelope's ``engine`` section for this fleet."""
        split = self.budget_split()
        return {
            "n_shards": self.n_shards,
            "budget_split": split,
            "selection": self.index.selection.snapshot(budget_split=split),
            "probes_served": sum(s.probes_served for s in self.shards),
            "online_phases": sum(s.online_phases for s in self.shards),
            "worker_cpu_seconds": sum(s.cpu_seconds for s in self.shards),
        }

    def shard_sections(self) -> List[Dict]:
        """The envelope's per-shard ``shards`` entries (pid, CPU, counters)."""
        return [s.snapshot() for s in self.shards]

    def updates_section(self) -> Dict:
        """The envelope's ``updates`` section for this layer."""
        return {
            **self.index.updates_section(),
            "rebuilds": self.rebuilds,
            "routed_rows": self.routed_rows,
        }

    def stats(self) -> Dict:
        """Versioned stats envelope (engine + per-worker sections)."""
        return stats_envelope(
            query=self.cqap.name,
            backend=self.backend,
            engine=self.engine_section(),
            updates=self.updates_section(),
            metrics=metrics_section(),
            shards=self.shard_sections(),
        )
