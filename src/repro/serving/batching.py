"""Batch scheduling over a sharded index: dedupe, group, fan out, reorder.

A probe batch in a real serving system is heavily redundant — hot access
bindings repeat within a batch and across consecutive batches.  The
scheduler exploits both:

* **dedupe first** — duplicate bindings inside a batch are answered once
  and fanned back out by reference, so a batch with a 4:1 dedupe ratio
  pays a quarter of the per-binding work;
* **answer-cache second** — answers are cached as immutable, shared
  :class:`~repro.data.relation.Relation` objects, so a cache hit is a
  dictionary move-to-front (no per-hit relation reconstruction — the main
  reason batched serving beats per-binding ``probe_many`` loops on hot
  streams).  Callers must treat served relations as read-only, matching
  the engine-wide mutation contract;
* **shard grouping last** — the remaining misses are grouped by home
  shard and each group is answered in *one* online phase on its shard.
  Dispatch is backend-agnostic: a backend exposing ``submit_group``
  (the process fleet) gets every group submitted up front so the worker
  processes run them genuinely in parallel; otherwise (the in-process
  thread backend) groups fan out on the scheduler's own thread pool, at
  most one in-flight task per shard so shard state stays single-writer.
  Results are reassembled in input order either way.

The scheduler owns its thread pool lazily; ``close()`` (or use as a
context manager) releases the threads.  It never owns the backend —
:class:`~repro.serving.server.Server` (via :func:`~repro.serving.serve`)
manages backend lifecycle.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.data.relation import Relation
from repro.engine.cache import LRUCache
from repro.obs import metrics_section, record_probe
from repro.obs.registry import REGISTRY
from repro.obs.trace import STATE as _OBS, TRACER
from repro.serving.sharding import Binding, merge_counters
from repro.serving.stats import stats_envelope
from repro.util.counters import Counters


class BatchScheduler:
    """Dedupes, shard-groups and concurrently executes probe batches.

    ``backend`` is any object honoring the shard-backend contract
    (:class:`~repro.serving.sharding.ShardedIndex` or
    :class:`~repro.serving.fleet.ProcessShardFleet`): ``normalize``,
    ``shard_of``, ``n_shards``, ``answer_group(shard_id, group)`` and
    optionally an asynchronous ``submit_group``.

    ``inline_threshold`` is the thread-backend dispatch policy: when a
    batch's total miss count is below it, the shard groups run inline
    (sequentially) instead of on the pool — on hot streams the
    steady-state miss trickle is one or two bindings per batch, where
    thread dispatch would cost more than the online phases themselves.
    Large miss sets (cold caches, uniform streams) still fan out
    concurrently.  A ``submit_group`` backend pays IPC per group whether
    or not the parent waits, so its groups are always submitted up front.
    """

    def __init__(self, backend, cache_size: int = 256,
                 max_workers: Optional[int] = None,
                 inline_threshold: int = 16) -> None:
        self.backend_obj = backend
        #: legacy alias from when the only backend was ShardedIndex
        self.sharded = backend
        self.cache = LRUCache(cache_size)
        self.inline_threshold = inline_threshold
        self.max_workers = max_workers or max(
            1, min(backend.n_shards, (os.cpu_count() or 4)))
        self._submit_group = getattr(backend, "submit_group", None)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        # stats counters are mutated from the serving loop *and* from the
        # index's delta feed (on_index_delta fires on whatever thread the
        # mutator runs on), so bumps must hold the stats lock — an
        # unguarded += is a lost-update race (REP001)
        self._stats_lock = threading.Lock()
        self.batch_calls = 0
        self.probes_in = 0
        self.unique_probes = 0
        self.cache_served = 0
        self.shard_phases = 0
        self.updates_seen = 0
        self.keys_invalidated = 0
        # subscribe the answer cache to the backing index's delta feed so
        # a mutation surgically evicts exactly the stale keys (both shard
        # backends expose the index they front)
        index = getattr(backend, "index", None)
        if index is not None and hasattr(index, "register_delta_listener"):
            index.register_delta_listener(self)

    # ------------------------------------------------------------------
    # incremental updates (repro.updates delta events)
    # ------------------------------------------------------------------
    def on_index_delta(self, event) -> None:
        """Evict exactly the cached answers an index delta made stale.

        Cache keys are normalized access bindings — the same tuples the
        event's ``affected_keys`` carries — so eviction is per-key;
        ``affected_keys is None`` is the conservative flush-everything
        signal.
        """
        if not event.changed:
            return
        with self._stats_lock:
            self.updates_seen += 1
        if event.affected_keys is None:
            self.cache.clear()
            return
        invalidated = 0
        for key in event.affected_keys:
            if self.cache.invalidate(key):
                invalidated += 1
        if invalidated:
            with self._stats_lock:
                self.keys_invalidated += invalidated

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _pool_handle(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "BatchScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def run(self, bindings: Iterable,
            counters: Optional[Counters] = None) -> List[Relation]:
        """Answer a batch; returns one relation per binding, input order.

        Duplicate bindings share one (identical) relation object; results
        are equal to per-binding :meth:`ShardedIndex.probe` calls — and to
        the unsharded engine — for every shard count.
        """
        return self.run_keyed(bindings, counters=counters)[1]

    def run_keyed(self, bindings: Iterable,
                  counters: Optional[Counters] = None,
                  ) -> Tuple[List[Binding], List[Relation]]:
        """Like :meth:`run`, also returning the normalized keys.

        The probe server yields ``(key, answer)`` pairs, so handing the
        keys back saves it a second normalization pass over every binding
        — on hot streams the normalization is a measurable slice of the
        per-probe cost.
        """
        backend = self.backend_obj
        observe = _OBS.enabled
        start = time.perf_counter() if observe else 0.0
        span = TRACER.start_span("scheduler.batch") if observe else None
        keys = [backend.normalize(b) for b in bindings]
        unique = list(dict.fromkeys(keys))
        results: Dict[Binding, Relation] = {}
        groups: Dict[int, List[Binding]] = {}
        hits = 0
        hit_keys: set = set()
        for key in unique:
            cached = self.cache.get(key)
            if cached is not None:
                results[key] = cached
                hits += 1
                if observe:
                    hit_keys.add(key)
            else:
                groups.setdefault(backend.shard_of(key),
                                  []).append(key)
        with self._stats_lock:
            self.batch_calls += 1
            self.probes_in += len(keys)
            self.unique_probes += len(unique)
            self.cache_served += hits
        missing = sum(len(group) for group in groups.values())
        # propagate the trace context to backends that understand it (the
        # process fleet rides it over the pickle boundary; the thread
        # backend stamps in-process child spans)
        ctx = (span.trace_id, span.span_id) if observe and getattr(
            backend, "supports_trace_ctx", False) else None
        ordered = sorted(groups.items())
        dispatch_start = time.perf_counter() if observe else 0.0
        if self._submit_group is not None and groups:
            # process backend: submit every group before collecting any
            # result, so the worker processes overlap
            if ctx is not None:
                futures = [self._submit_group(shard_id, group,
                                              trace_ctx=ctx)
                           for shard_id, group in ordered]
            else:
                futures = [self._submit_group(shard_id, group)
                           for shard_id, group in ordered]
            parts = [future.result() for future in futures]
        elif len(groups) <= 1 or missing < self.inline_threshold:
            # one home shard, or too few misses to be worth dispatching
            if ctx is not None:
                parts = [backend.answer_group(shard_id, group,
                                              trace_ctx=ctx)
                         for shard_id, group in ordered]
            else:
                parts = [backend.answer_group(shard_id, group)
                         for shard_id, group in ordered]
        else:
            pool = self._pool_handle()
            if ctx is not None:
                parts = list(pool.map(
                    lambda item: backend.answer_group(item[0], item[1],
                                                      trace_ctx=ctx),
                    ordered,
                ))
            else:
                parts = list(pool.map(
                    lambda item: backend.answer_group(item[0], item[1]),
                    ordered,
                ))
        with self._stats_lock:
            self.shard_phases += len(groups)
        for answered, ctr in parts:
            if counters is not None:
                merge_counters(counters, ctr)
            for key, relation in answered.items():
                results[key] = relation
                self.cache.put(key, relation)
        if observe:
            self._record_batch(span, keys, hit_keys, ordered, parts,
                               time.perf_counter() - dispatch_start,
                               time.perf_counter() - start)
        return keys, [results[key] for key in keys]

    def _record_batch(self, span, keys, hit_keys, ordered, parts,
                      dispatch_seconds: float, elapsed: float) -> None:
        """Publish one batch's spans, per-probe observations, counters."""
        backend = self.backend_obj
        shard_states = getattr(backend, "shards", None)
        route_of: Dict[Binding, Tuple[float, int]] = {}
        total_work = 0
        for (shard_id, group), (_answered, ctr) in zip(ordered, parts):
            work = ctr.online_work
            total_work += work
            TRACER.add_span(
                "scheduler.dispatch", trace_id=span.trace_id,
                parent_id=span.span_id, duration=dispatch_seconds,
                attrs={"shard": shard_id, "n_keys": len(group),
                       "work": work})
            amortized = work / len(group) if group else 0.0
            for key in group:
                route_of[key] = (amortized, shard_id)
        seen: set = set()
        for key in keys:
            shard = pid = None
            if key in seen:
                route, work = "dedupe", 0.0
            elif key in hit_keys:
                route, work = "cache", 0.0
            else:
                amortized, shard = route_of[key]
                route, work = "shard", amortized
                if shard_states is not None:
                    pid = getattr(shard_states[shard], "pid", None)
            seen.add(key)
            record_probe(key, route, work, elapsed, shard=shard,
                         pid=pid, trace_id=span.trace_id)
        TRACER.finish_span(span, n_keys=len(keys), n_groups=len(ordered),
                           work=total_work)
        REGISTRY.counter("repro_batches_total",
                         "probe batches the scheduler executed").inc()

    def run_boolean(self, bindings: Iterable) -> List[bool]:
        """Batched Boolean variant, input order preserved."""
        return [len(rel) > 0 for rel in self.run(bindings)]

    # ------------------------------------------------------------------
    @property
    def dedupe_ratio(self) -> float:
        """Incoming probes per unique probe (1.0 = no redundancy).

        An idle scheduler has seen no redundancy yet, so it reports the
        neutral 1.0 — never 0.0, which dashboards would read as an
        impossible "fewer incoming than unique" state.
        """
        return self.probes_in / self.unique_probes if self.unique_probes \
            else 1.0

    def scheduler_section(self) -> Dict:
        """The envelope's ``scheduler`` section (counters + cache)."""
        return {
            "batch_calls": self.batch_calls,
            "probes_in": self.probes_in,
            "unique_probes": self.unique_probes,
            "cache_served": self.cache_served,
            "shard_phases": self.shard_phases,
            "dedupe_ratio": self.dedupe_ratio,
            "max_workers": self.max_workers,
            "native_dispatch": self._submit_group is not None,
            "cache": self.cache.snapshot(),
            "updates_seen": self.updates_seen,
            "keys_invalidated": self.keys_invalidated,
        }

    def stats(self) -> Dict:
        """Versioned stats envelope (scheduler + backend shard sections)."""
        backend = self.backend_obj
        shard_sections = getattr(backend, "shard_sections", None)
        updates_section = getattr(backend, "updates_section", None)
        return stats_envelope(
            query=backend.cqap.name,
            backend=getattr(backend, "backend", None),
            scheduler=self.scheduler_section(),
            updates=updates_section() if updates_section else None,
            metrics=metrics_section(),
            shards=shard_sections() if shard_sections else (),
        )
