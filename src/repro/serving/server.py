"""The serving facade: a probe server with backpressure over a stream.

:class:`ProbeServer` is the top of the serving stack::

    sharded = prepare_sharded(cqap, db, space_budget=..., n_shards=4)
    with ProbeServer(sharded, batch_size=32) as server:
        for binding, answer in server.serve(workload_stream):
            ...

``serve`` is a generator, which makes the backpressure real rather than
advisory: the server pulls from the workload stream *lazily*, buffering at
most ``batch_size * max_pending_batches`` bindings ahead of what the
consumer has taken, and it does not read further until the consumer drains
the batch it was handed.  A slow consumer therefore throttles the producer
instead of growing an unbounded queue.

Results are yielded in stream order, one ``(binding, relation)`` pair per
incoming binding (duplicates included — they share the same answer
relation).  Aggregate statistics are surfaced
:meth:`~repro.engine.prepared.PreparedQuery.stats`-style through
:meth:`ProbeServer.stats`, which nests the scheduler's dedupe/cache
counters and the sharded index's per-shard lifecycle counters.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.data.relation import Relation
from repro.serving.batching import BatchScheduler
from repro.serving.sharding import ShardedIndex


class ProbeServer:
    """Batched, sharded serving of a probe stream with bounded buffering."""

    def __init__(self, sharded: ShardedIndex, batch_size: int = 32,
                 max_pending_batches: int = 4, cache_size: int = 256,
                 max_workers: Optional[int] = None) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_pending_batches <= 0:
            raise ValueError("max_pending_batches must be positive, got "
                             f"{max_pending_batches}")
        self.sharded = sharded
        self.scheduler = BatchScheduler(sharded, cache_size=cache_size,
                                        max_workers=max_workers)
        self.batch_size = batch_size
        self.max_pending_batches = max_pending_batches
        self.batches_served = 0
        self.probes_served = 0
        self.peak_pending = 0

    def __enter__(self) -> "ProbeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the scheduler's worker pool."""
        self.scheduler.close()

    # ------------------------------------------------------------------
    def serve(self, workload_stream: Iterable,
              ) -> Iterator[Tuple[tuple, Relation]]:
        """Yield ``(normalized binding, answer)`` pairs in stream order.

        The stream may yield single bindings or lists of bindings
        (pre-formed batches get flattened into the buffer); execution
        batches are always ``batch_size`` wide regardless of how the
        stream chunks its input.
        """
        def flatten(stream):
            # pre-formed batches are unpacked lazily, one binding per
            # pull, so a single huge list can't blow past the window
            for item in stream:
                if isinstance(item, list):
                    yield from item
                else:
                    yield item

        window = self.batch_size * self.max_pending_batches
        buffer: deque = deque()
        source = flatten(workload_stream)
        exhausted = False
        while True:
            while not exhausted and len(buffer) < window:
                try:
                    buffer.append(next(source))
                except StopIteration:
                    exhausted = True
                    break
            self.peak_pending = max(self.peak_pending, len(buffer))
            if not buffer:
                return
            batch = [buffer.popleft()
                     for _ in range(min(self.batch_size, len(buffer)))]
            keys, answers = self.scheduler.run_keyed(batch)
            self.batches_served += 1
            self.probes_served += len(batch)
            yield from zip(keys, answers)

    def serve_all(self, workload_stream: Iterable,
                  ) -> Dict[tuple, Relation]:
        """Drain the stream; returns the last answer per unique binding."""
        return dict(self.serve(workload_stream))

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Aggregate serving snapshot (server + scheduler + shards)."""
        return {
            "query": self.sharded.cqap.name,
            "batch_size": self.batch_size,
            "max_pending_batches": self.max_pending_batches,
            "batches_served": self.batches_served,
            "probes_served": self.probes_served,
            "peak_pending": self.peak_pending,
            "scheduler": self.scheduler.stats(),
            "sharded": self.sharded.stats(),
        }
