"""The serving facade: a probe server with backpressure over a stream.

:class:`Server` is the top of the serving stack.  Construct it through
:func:`repro.serving.serve`, which builds the right shard backend for
you::

    prepared = repro.prepare(cqap, db, space_budget=..., shards=4)
    with repro.serving.serve(prepared, backend="process", shards=4,
                             batch_size=32) as server:
        for binding, answer in server.serve(workload_stream):
            ...

``serve`` is a generator, which makes the backpressure real rather than
advisory: the server pulls from the workload stream *lazily*, buffering at
most ``batch_size * max_pending_batches`` bindings ahead of what the
consumer has taken, and it does not read further until the consumer drains
the batch it was handed.  A slow consumer therefore throttles the producer
instead of growing an unbounded queue.

Results are yielded in stream order, one ``(binding, relation)`` pair per
incoming binding (duplicates included — they share the same answer
relation).  :meth:`Server.stats` returns the serving stack's versioned
envelope (:mod:`repro.serving.stats`) with every section filled: engine
(the backend's partitioning/selection state), scheduler (dedupe/cache),
server (stream/backpressure), and the per-shard lifecycle snapshots.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.data.relation import Relation
from repro.obs import metrics_section
from repro.obs.registry import REGISTRY
from repro.obs.trace import STATE as _OBS
from repro.serving.batching import BatchScheduler
from repro.serving.stats import stats_envelope


class Server:
    """Batched, sharded serving of a probe stream with bounded buffering.

    Backend-agnostic: ``backend`` is a :class:`~repro.serving.sharding.
    ShardedIndex` (threads) or :class:`~repro.serving.fleet.
    ProcessShardFleet` (processes); nothing above the scheduler's dispatch
    distinguishes them.  When ``owns_backend`` is true (the
    :func:`~repro.serving.serve` path) closing the server also closes the
    backend — for the process fleet that is what reaps the worker
    processes.
    """

    def __init__(self, backend, batch_size: int = 32,
                 max_pending_batches: int = 4, cache_size: int = 256,
                 max_workers: Optional[int] = None,
                 inline_threshold: int = 16,
                 owns_backend: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_pending_batches <= 0:
            raise ValueError("max_pending_batches must be positive, got "
                             f"{max_pending_batches}")
        self.backend = backend
        #: legacy alias from when the only backend was ShardedIndex
        self.sharded = backend
        self.owns_backend = owns_backend
        self.scheduler = BatchScheduler(backend, cache_size=cache_size,
                                        max_workers=max_workers,
                                        inline_threshold=inline_threshold)
        self.batch_size = batch_size
        self.max_pending_batches = max_pending_batches
        self.batches_served = 0
        self.probes_served = 0
        self.peak_pending = 0

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Release the scheduler's pool (and the backend, when owned)."""
        self.scheduler.close()
        if self.owns_backend:
            close = getattr(self.backend, "close", None)
            if close is not None:
                close()

    # ------------------------------------------------------------------
    def serve(self, workload_stream: Iterable,
              ) -> Iterator[Tuple[tuple, Relation]]:
        """Yield ``(normalized binding, answer)`` pairs in stream order.

        The stream may yield single bindings or lists of bindings
        (pre-formed batches get flattened into the buffer); execution
        batches are always ``batch_size`` wide regardless of how the
        stream chunks its input.
        """
        def flatten(stream):
            # pre-formed batches are unpacked lazily, one binding per
            # pull, so a single huge list can't blow past the window
            for item in stream:
                if isinstance(item, list):
                    yield from item
                else:
                    yield item

        window = self.batch_size * self.max_pending_batches
        buffer: deque = deque()
        source = flatten(workload_stream)
        exhausted = False
        while True:
            while not exhausted and len(buffer) < window:
                try:
                    buffer.append(next(source))
                except StopIteration:
                    exhausted = True
                    break
            self.peak_pending = max(self.peak_pending, len(buffer))
            if not buffer:
                return
            batch = [buffer.popleft()
                     for _ in range(min(self.batch_size, len(buffer)))]
            keys, answers = self.scheduler.run_keyed(batch)
            self.batches_served += 1
            self.probes_served += len(batch)
            if _OBS.enabled:
                REGISTRY.counter("repro_server_batches_total",
                                 "stream batches the server executed").inc()
                REGISTRY.counter("repro_server_probes_total",
                                 "probe bindings the server served",
                                 ).inc(len(batch))
            yield from zip(keys, answers)

    def serve_all(self, workload_stream: Iterable,
                  ) -> Dict[tuple, Relation]:
        """Drain the stream; returns the last answer per unique binding."""
        return dict(self.serve(workload_stream))

    # ------------------------------------------------------------------
    def server_section(self) -> Dict:
        """The envelope's ``server`` section (stream/backpressure)."""
        return {
            "batch_size": self.batch_size,
            "max_pending_batches": self.max_pending_batches,
            "batches_served": self.batches_served,
            "probes_served": self.probes_served,
            "peak_pending": self.peak_pending,
            "owns_backend": self.owns_backend,
        }

    def stats(self) -> Dict:
        """The full serving envelope: every section filled."""
        backend = self.backend
        engine_section = getattr(backend, "engine_section", None)
        shard_sections = getattr(backend, "shard_sections", None)
        updates_section = getattr(backend, "updates_section", None)
        return stats_envelope(
            query=backend.cqap.name,
            backend=getattr(backend, "backend", None),
            engine=engine_section() if engine_section else None,
            scheduler=self.scheduler.scheduler_section(),
            server=self.server_section(),
            updates=updates_section() if updates_section else None,
            metrics=metrics_section(),
            shards=shard_sections() if shard_sections else (),
        )
