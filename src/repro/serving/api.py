"""``serve()`` — the one serving entry point for both shard backends.

The redesigned API splits serving into exactly two calls::

    prepared = repro.prepare(cqap, db, space_budget=20_000, shards=4)
    with repro.serving.serve(prepared, backend="process", shards=4,
                             batch_size=32) as server:
        for binding, answer in server.serve(stream):
            ...

``backend="thread"`` shards inside the calling process (the PR 5
prototype: cheap, GIL-bound); ``backend="process"`` runs the
:class:`~repro.serving.fleet.ProcessShardFleet`, one worker process per
shard.  The two are drop-in interchangeable — same answers for every
shard count (the differential harness checks both paths bit-identically
against the oracle), same :class:`~repro.serving.server.Server` protocol,
same stats envelope — so migrating a thread deployment to processes is
exactly the ``backend=`` argument.

Passing ``shards=N`` to :func:`repro.prepare` as well makes the space
budget honest per worker: rule selection then prices each shard's
resident set (replicated S-targets whole, partitionable ones at ``1/N``)
against ``space_budget / N``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.index import CQAPIndex
from repro.serving.fleet import ProcessShardFleet
from repro.serving.server import Server
from repro.serving.sharding import ShardedIndex

#: the valid ``backend=`` arguments, in preference order for docs
BACKENDS = ("thread", "process")


def _coerce_index(prepared) -> CQAPIndex:
    """Accept a PreparedQuery or a (preprocessed) CQAPIndex."""
    index = getattr(prepared, "index", None)
    if isinstance(index, CQAPIndex):
        return index
    if isinstance(prepared, CQAPIndex):
        return prepared
    raise TypeError(
        f"serve() needs a repro.prepare() result or a preprocessed "
        f"CQAPIndex, got {type(prepared).__name__}")


def serve(prepared, *, backend: str = "thread", shards: int = 4,
          batch_size: int = 32, max_pending_batches: int = 4,
          cache_size: int = 256, max_workers: Optional[int] = None,
          inline_threshold: int = 16,
          mp_context: Optional[str] = None) -> Server:
    """Front a prepared query with a shard backend; returns a Server.

    Keyword-only configuration; the backend choice is the *only* thing
    that changes between a thread and a process deployment:

    * ``backend`` — ``"thread"`` (in-process shards) or ``"process"``
      (one worker process per shard, the fleet); an already-built
      backend *instance* (anything with ``answer_group``) is also
      accepted and merely fronted — the server then does **not** own it
      and ``shards``/``mp_context`` are ignored;
    * ``shards`` — shard count; answers are identical for every value;
    * ``batch_size`` / ``max_pending_batches`` — stream batching and the
      backpressure window, see :meth:`Server.serve`;
    * ``cache_size`` — the scheduler's LRU answer cache;
    * ``max_workers`` / ``inline_threshold`` — thread-backend dispatch
      tuning (ignored by the process backend, which always keeps its
      groups in flight);
    * ``mp_context`` — multiprocessing start method override for the
      process backend (default: fork where available).

    The returned server *owns* its backend: closing it (or leaving the
    ``with`` block) tears the backend down too — for the process backend
    that reaps the worker processes.
    """
    if not isinstance(backend, str) and hasattr(backend, "answer_group"):
        shard_backend, owns = backend, False
    else:
        index = _coerce_index(prepared)
        if backend == "thread":
            shard_backend, owns = ShardedIndex(index, n_shards=shards), True
        elif backend == "process":
            shard_backend = ProcessShardFleet(index, n_shards=shards,
                                              mp_context=mp_context)
            owns = True
        else:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}")
    return Server(shard_backend, batch_size=batch_size,
                  max_pending_batches=max_pending_batches,
                  cache_size=cache_size, max_workers=max_workers,
                  inline_threshold=inline_threshold,
                  owns_backend=owns)
