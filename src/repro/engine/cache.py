"""LRU answer cache for the serving engine.

Probe workloads are heavily skewed in practice (hot users, hot pairs), so a
small exact-answer cache in front of the online phase converts the common
case into a dictionary move-to-front.  Values are stored as immutable
``(schema, frozenset-of-tuples)`` payloads so cached answers can never alias
a relation a caller later mutates.

The cache is thread-safe: the sharded serving layer
(:mod:`repro.serving`) probes it from a worker pool, so every operation
that touches the entry map or the hit/miss/eviction counters runs under a
single internal lock.  In particular ``hits + misses`` always equals the
number of ``get`` calls issued, no matter how the callers interleave —
the concurrent-access property test pins this down.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple


class LRUCache:
    """A bounded map with least-recently-used eviction and hit accounting.

    ``capacity <= 0`` disables caching entirely (every ``get`` is a miss and
    ``put`` is a no-op) while keeping the counters meaningful.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Hashable):
        """The cached value (refreshing recency) or ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.misses += 1
            return None

    def peek(self, key: Hashable):
        """Like :meth:`get` but touches neither recency nor counters."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, key: Hashable) -> bool:
        """Surgically drop one entry (a delta made it stale).

        Returns ``True`` iff the key was cached.  Counted separately from
        capacity ``evictions`` so stats can distinguish pressure from
        staleness.
        """
        with self._lock:
            if key not in self._entries:
                return False
            del self._entries[key]
            self.invalidations += 1
            return True

    def clear(self) -> None:
        """Drop every entry; counters are preserved."""
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, float]:
        """JSON-friendly counter dump (one consistent point in time)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / total if total else 0.0,
            }
