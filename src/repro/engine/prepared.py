"""Plan-once / probe-many serving (§2.1 access requests, §6.4 batching).

``prepare(cqap, db, budget)`` pays the expensive phase exactly once: PMTD
enumeration, 2PP planning per disjunctive rule, S-target materialization
under the space budget, hash-index warm-up, and T-phase compilation.  The
returned :class:`PreparedQuery` then serves access-pattern probes against
that frozen state:

* :meth:`PreparedQuery.probe` — one binding through the compiled online
  plan (or straight out of the LRU answer cache);
* :meth:`PreparedQuery.probe_many` — a batch of bindings, deduplicated and
  grouped into a *single* access relation so one online phase serves the
  whole batch (the paper's §6.4 observation, turned into an API).

The warm path never re-plans and never re-materializes S-targets; the
planner/executor lifecycle counters (``plan_calls``, ``preprocess_runs``,
``compile_runs``) make that verifiable from tests and benchmarks.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.index import CQAPIndex
from repro.data.database import Database
from repro.data.relation import Relation
from repro.engine.cache import LRUCache
from repro.obs import metrics_section, record_probe
from repro.obs.trace import STATE as _OBS, TRACER
from repro.query.cq import CQAP, normalize_access_binding
from repro.util.counters import Counters

Binding = Tuple[object, ...]


def prepare(cqap: CQAP, db: Database, space_budget: float,
            cache_size: int = 256,
            counters: Optional[Counters] = None,
            backend: str = "set",
            **index_kwargs) -> "PreparedQuery":
    """Run the one-time preprocessing phase and return a serving handle.

    ``space_budget`` drives both phases of planning: the 2PP planner's
    S-vs-T decisions *and* (for large PMTD sets, or explicitly with
    ``rule_selection="budget"``) the budgeted rule selection that decides
    which rules are worth planning at all.  The chosen rules and their
    estimated space/time land in :meth:`PreparedQuery.stats` under
    ``"selection"``.

    ``backend`` picks the relation execution backend for the prepared
    state: ``"set"`` (the row-at-a-time baseline) or ``"columnar"``
    (batch kernels over dict-of-columns caches — same answers, several
    times faster on the warm uncached probe path).  Both serve through
    either ``serve()`` backend; columnar payloads pickle to the process
    fleet like any relation (caches are rebuilt worker-side).

    ``index_kwargs`` are forwarded to :class:`~repro.core.index.CQAPIndex`
    (``pmtds``, ``dc``, ``ac``, ``max_bags``, ``max_splits``,
    ``budget_slack``, ``measure_degrees``, ``threshold_scale``,
    ``rule_selection``, ``beam_width``, ``auto_select_threshold``, ...).
    """
    ctr = counters or Counters()
    start = time.perf_counter()
    index = CQAPIndex(cqap, db, space_budget,
                      relation_backend=backend, **index_kwargs)
    index.preprocess(counters=ctr)
    elapsed = time.perf_counter() - start
    return PreparedQuery(index, cache_size=cache_size,
                         prepare_seconds=elapsed,
                         prepare_counters=ctr)


class PreparedQuery:
    """A preprocessed CQAP instance that answers probes without re-planning.

    Construct via :func:`prepare`.  All mutable planning state is settled by
    the time this object exists; probes only execute the compiled T-phase
    and the per-PMTD Online Yannakakis passes.
    """

    def __init__(self, index: CQAPIndex, cache_size: int = 256,
                 prepare_seconds: float = 0.0,
                 prepare_counters: Optional[Counters] = None) -> None:
        if not index._ready:
            raise ValueError("PreparedQuery needs a preprocessed CQAPIndex; "
                             "use repro.engine.prepare()")
        self._index = index
        self.cqap = index.cqap
        self.cache = LRUCache(cache_size)
        self.prepare_seconds = prepare_seconds
        self.prepare_counters = (prepare_counters or Counters()).copy()
        # lifecycle snapshot: probes must leave these untouched
        self.plan_calls_at_prepare = index.planner.plan_calls
        self.preprocess_runs_at_prepare = index.executor.preprocess_runs
        self.probes_served = 0
        self.batch_calls = 0
        self.online_phases = 0
        self.updates_seen = 0
        self.keys_invalidated = 0
        # lifecycle counters are bumped under this lock so concurrent
        # probes (the sharded serving layer runs a worker pool) never lose
        # increments; the answer cache carries its own lock
        self._stats_lock = threading.Lock()
        index.register_delta_listener(self)

    # ------------------------------------------------------------------
    # binding plumbing
    # ------------------------------------------------------------------
    def _normalize_binding(self, binding) -> Binding:
        """One probe binding as a tuple matching the access pattern arity."""
        return normalize_access_binding(self.cqap.access, binding)

    def _from_cache_payload(self, payload) -> Relation:
        schema, rows = payload
        return Relation(f"{self.cqap.name}_answer", schema, rows)

    # ------------------------------------------------------------------
    # single-probe fast path
    # ------------------------------------------------------------------
    def probe(self, binding, counters: Optional[Counters] = None) -> Relation:
        """Answer one access binding; cached answers cost one dict lookup."""
        observe = _OBS.enabled
        start = time.perf_counter() if observe else 0.0
        key = self._normalize_binding(binding)
        with self._stats_lock:
            self.probes_served += 1
        cached = self.cache.get(key)
        if cached is not None:
            if observe:
                record_probe(key, "cache", 0,
                             time.perf_counter() - start)
            return self._from_cache_payload(cached)
        ctr = counters or Counters()
        span = base = None
        if observe:
            span = TRACER.start_span("engine.probe", binding=list(key))
            base = ctr.copy()
        answer = self._index.answer(key, counters=ctr)
        with self._stats_lock:
            self.online_phases += 1
        if self.cache.capacity > 0:
            self.cache.put(key, (answer.schema, frozenset(answer.tuples)))
        if observe:
            work = ctr.delta_since(base).online_work
            TRACER.finish_span(span, route="online", work=work)
            record_probe(key, "online", work,
                         time.perf_counter() - start,
                         trace_id=span.trace_id)
        return answer

    def probe_boolean(self, binding,
                      counters: Optional[Counters] = None) -> bool:
        """True iff the probe has at least one answer."""
        return len(self.probe(binding, counters=counters)) > 0

    # ------------------------------------------------------------------
    # batched path (§6.4)
    # ------------------------------------------------------------------
    def probe_many(self, bindings: Iterable,
                   counters: Optional[Counters] = None,
                   ) -> Dict[Binding, Relation]:
        """Answer many bindings in one online phase.

        Bindings are deduplicated (first occurrence wins the ordering),
        cache hits are served immediately, and the remaining misses are
        grouped into a single access relation ``Q_A`` so that split scans,
        view assembly, and the Yannakakis passes are paid once for the whole
        batch instead of once per binding.  Returns a dict keyed by the
        normalized binding; results are identical to per-binding
        :meth:`probe` calls.

        Stats contract: ``probes_served`` counts every *incoming* binding
        (duplicates included), exactly as a loop of :meth:`probe` calls
        would — so the counter is comparable across the single and
        batched paths and dedupe savings show up in ``online_phases``,
        not in a silently smaller served count.
        """
        observe = _OBS.enabled
        start = time.perf_counter() if observe else 0.0
        span = TRACER.start_span("engine.probe_many") if observe else None
        keys: List[Binding] = [self._normalize_binding(b) for b in bindings]
        unique = list(dict.fromkeys(keys))
        with self._stats_lock:
            self.batch_calls += 1
            self.probes_served += len(keys)
        results: Dict[Binding, Relation] = {}
        missing: List[Binding] = []
        hit_keys: set = set()
        for key in unique:
            cached = self.cache.get(key)
            if cached is not None:
                results[key] = self._from_cache_payload(cached)
                if observe:
                    hit_keys.add(key)
            else:
                missing.append(key)
        total_work = 0
        if missing:
            ctr = counters or Counters()
            base = ctr.copy() if observe else None
            batched = self._index.answer(missing, counters=ctr)
            if observe:
                total_work = ctr.delta_since(base).online_work
            with self._stats_lock:
                self.online_phases += 1
            access_pos = tuple(batched.schema.index(v)
                               for v in self.cqap.access)
            by_key: Dict[Binding, set] = {}
            for row in batched.tuples:
                by_key.setdefault(
                    tuple(row[p] for p in access_pos), set()
                ).add(row)
            cache_answers = self.cache.capacity > 0
            for key in missing:
                rows = frozenset(by_key.get(key, ()))
                if cache_answers:
                    self.cache.put(key, (batched.schema, rows))
                results[key] = Relation(f"{self.cqap.name}_answer",
                                        batched.schema, rows)
        if observe:
            # one observation per *incoming* binding, matching the
            # probes_served contract: duplicates route as "dedupe", hits
            # as "cache", and the batch's online work amortizes evenly
            # over the misses that shared the single online phase
            elapsed = time.perf_counter() - start
            amortized = total_work / len(missing) if missing else 0.0
            seen: set = set()
            for key in keys:
                if key in seen:
                    route, work = "dedupe", 0.0
                elif key in hit_keys:
                    route, work = "cache", 0.0
                else:
                    route, work = "online", amortized
                seen.add(key)
                record_probe(key, route, work, elapsed,
                             trace_id=span.trace_id)
            TRACER.finish_span(span, n_keys=len(keys),
                               n_missing=len(missing), work=total_work)
        return results

    def probe_many_boolean(self, bindings: Iterable,
                           counters: Optional[Counters] = None,
                           ) -> Dict[Binding, bool]:
        """Batched Boolean variant: binding -> has-answer."""
        return {key: len(rel) > 0
                for key, rel in self.probe_many(bindings,
                                                counters=counters).items()}

    # ------------------------------------------------------------------
    # incremental updates (repro.updates delta events)
    # ------------------------------------------------------------------
    def on_index_delta(self, event) -> None:
        """Keep the answer cache coherent after an index delta.

        Eviction is *surgical*: the event carries the exact set of access
        keys whose answers could have changed (computed by pinning the
        delta row into one join occurrence at a time), so only those
        entries are dropped — hot unaffected keys keep serving from
        cache.  ``affected_keys is None`` is the conservative signal
        ("anything may have moved") and flushes everything.

        A drift-triggered re-selection re-runs the planner and the
        executor's preprocess; re-snapshotting the lifecycle counters
        here keeps the :attr:`replanned` invariant meaningful — it still
        flags *probe-triggered* planning, not sanctioned update-path
        replans (those are counted in the ``updates`` stats section).
        """
        if not event.changed:
            return
        with self._stats_lock:
            self.updates_seen += 1
        if event.affected_keys is None:
            self.cache.clear()
        else:
            dropped = 0
            for key in event.affected_keys:
                if self.cache.invalidate(key):
                    dropped += 1
            if dropped:
                with self._stats_lock:
                    self.keys_invalidated += dropped
        if event.reselected:
            with self._stats_lock:
                self.plan_calls_at_prepare = self._index.planner.plan_calls
                self.preprocess_runs_at_prepare = (
                    self._index.executor.preprocess_runs)

    # ------------------------------------------------------------------
    # differential self-check
    # ------------------------------------------------------------------
    def verify_against_oracle(self, bindings: Iterable):
        """Check served answers against the brute-force oracle.

        Probes every binding through :meth:`probe` (cache included — a
        poisoned cache entry is exactly the kind of bug this catches) and
        diffs the answers against ``repro.oracle``'s naive evaluation.
        Returns the :class:`~repro.oracle.diff.EquivalenceReport` on
        agreement and raises
        :class:`~repro.oracle.diff.OracleMismatch` otherwise.
        """
        from repro.oracle import (
            answer_rows,
            assert_equivalent,
            oracle_probe_many,
        )

        keys = [self._normalize_binding(b) for b in bindings]
        expected = oracle_probe_many(self.cqap, self._index.db, keys)
        head = tuple(self.cqap.head)
        actual = {key: answer_rows(self.probe(key), head)
                  for key in dict.fromkeys(keys)}
        return assert_equivalent(
            expected, actual, path="engine_probe",
            context={"query": repr(self.cqap)},
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def index(self) -> CQAPIndex:
        """The underlying preprocessed index (what ``serve()`` shards)."""
        return self._index

    @property
    def stored_tuples(self) -> int:
        """Space held by the prepared S-targets."""
        return self._index.stored_tuples

    @property
    def predicted_log_time(self) -> float:
        """The planner's OBJ(S) — the T of the space-time tradeoff."""
        return self._index.predicted_log_time

    @property
    def selection(self):
        """The rule-selection result frozen at prepare time
        (:class:`~repro.tradeoff.selection.SelectionResult`)."""
        return self._index.selection

    @property
    def replanned(self) -> bool:
        """True if any probe triggered planning work (must stay False)."""
        return (self._index.planner.plan_calls != self.plan_calls_at_prepare
                or self._index.executor.preprocess_runs
                != self.preprocess_runs_at_prepare)

    def describe(self) -> str:
        """Human-readable dump of the frozen plans."""
        return self._index.describe()

    def engine_section(self) -> Dict:
        """The stats envelope's ``engine`` section for this prepared query.

        Counter contract: ``probes_served`` is the number of incoming
        probe bindings (every :meth:`probe` call, plus every binding —
        duplicates included — passed to :meth:`probe_many`);
        ``online_phases`` is how many uncached online executions those
        required; ``batch_calls`` counts :meth:`probe_many` invocations.
        Cache hits and batch dedupe therefore show up as the gap between
        ``probes_served`` and ``online_phases``.
        """
        return {
            "relation_backend": self._index.relation_backend,
            "prepare_seconds": self.prepare_seconds,
            "prepare_counters": self.prepare_counters.snapshot(),
            "stored_tuples": self.stored_tuples,
            "predicted_log_time": self.predicted_log_time,
            "selection": self._index.selection.snapshot(),
            # catalog statistics (degree keys, join samples, LP-bound
            # usage) plus estimated-vs-actual S-target sizes, both frozen
            # at prepare time
            "statistics": self._index.stats.statistics,
            "estimate_error": self._index.stats.estimate_error,
            "plan_calls": self._index.planner.plan_calls,
            "preprocess_runs": self._index.executor.preprocess_runs,
            "compile_runs": self._index.executor.compile_runs,
            "online_runs": self._index.executor.online_runs,
            "probes_served": self.probes_served,
            "batch_calls": self.batch_calls,
            "online_phases": self.online_phases,
            "replanned": self.replanned,
            "cache": self.cache.snapshot(),
        }

    def updates_section(self) -> Dict:
        """The stats envelope's ``updates`` section for this layer.

        Index-level delta accounting plus this layer's cache-coherence
        counters (events observed, cache keys surgically dropped).
        """
        return {
            **self._index.updates_section(),
            "events_seen": self.updates_seen,
            "keys_invalidated": self.keys_invalidated,
        }

    def stats(self) -> Dict:
        """Serving statistics in the versioned stats envelope.

        Same shape as every other serving-stack layer
        (:mod:`repro.serving.stats`): the prepared-engine numbers live
        under ``"engine"``; ``scheduler``/``server``/``shards`` are empty
        at this layer.
        """
        from repro.serving.stats import stats_envelope

        return stats_envelope(query=self.cqap.name,
                              engine=self.engine_section(),
                              updates=self.updates_section(),
                              metrics=metrics_section())
