"""Serving engine: prepare a CQAP instance once, probe it many times.

The north-star serving surface of the repo::

    from repro import catalog, path_database
    from repro.engine import prepare

    cqap = catalog.k_path_cqap(3)
    db = path_database(k=3, n_edges=2000, domain=200, seed=7)
    pq = prepare(cqap, db, space_budget=int(db.size ** 1.2))

    pq.probe_boolean((4, 17))                 # one probe
    pq.probe_many([(4, 17), (8, 2), (4, 17)]) # batched, deduplicated
    pq.stats()                                # cache + lifecycle counters,
                                              # incl. the "selection" block
                                              # (chosen rules, est. space/time)

The ``space_budget`` threads all the way down: it bounds the S-targets the
2PP planner materializes *and* drives the budgeted rule selection
(``repro.tradeoff.selection``) that decides which rules get planned when
the PMTD set is large.
"""

from repro.engine.cache import LRUCache
from repro.engine.prepared import PreparedQuery, prepare

__all__ = [
    "LRUCache",
    "PreparedQuery",
    "prepare",
]
