"""Synthetic workload generators.

The paper proves worst-case bounds and gives no datasets, so benchmarks run on
synthetic inputs designed to *exercise* the heavy/light machinery: uniform
random graphs, graphs with planted high-degree hubs (skew), layered DAGs for
k-reachability, set families with planted large sets, and hierarchical fact
tables matching Figure 6a.

All generators take an explicit ``seed`` so every experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.data.database import Database
from repro.data.relation import Relation


def random_edge_relation(name: str, schema: Sequence[str], n_edges: int,
                         domain: int, seed: int = 0,
                         skew_hubs: int = 0,
                         hub_fraction: float = 0.5) -> Relation:
    """A binary relation of ``n_edges`` distinct pairs over ``[0, domain)``.

    With ``skew_hubs > 0``, roughly ``hub_fraction`` of the edges attach their
    first column to one of ``skew_hubs`` hub values, planting heavy keys so
    heavy/light splits are non-trivial.
    """
    if len(schema) != 2:
        raise ValueError("random_edge_relation builds binary relations")
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    max_attempts = 50 * n_edges + 100
    while len(edges) < n_edges and attempts < max_attempts:
        attempts += 1
        if skew_hubs and rng.random() < hub_fraction:
            src = rng.randrange(skew_hubs)
        else:
            src = rng.randrange(domain)
        dst = rng.randrange(domain)
        edges.add((src, dst))
    return Relation(name, schema, edges)


def path_database(k: int, n_edges: int, domain: int, seed: int = 0,
                  shared_relation: bool = False,
                  skew_hubs: int = 0) -> Database:
    """Input for the k-path / k-reachability CQAP.

    Produces relations ``R1(x1,x2) ... Rk(xk,xk+1)``.  With
    ``shared_relation=True`` all k atoms share the *same* edge set (the graph
    semantics of Example 2.3); otherwise each layer is drawn independently.
    """
    db = Database()
    base = random_edge_relation("R_base", ("a", "b"), n_edges, domain,
                                seed=seed, skew_hubs=skew_hubs)
    for i in range(1, k + 1):
        schema = (f"x{i}", f"x{i + 1}")
        if shared_relation:
            rel = Relation(f"R{i}", schema, base.tuples)
        else:
            rel = random_edge_relation(f"R{i}", schema, n_edges, domain,
                                       seed=seed + i, skew_hubs=skew_hubs)
        db.add(rel)
    return db


def layered_path_database(k: int, layer_size: int, out_degree: int,
                          seed: int = 0) -> Database:
    """A layered DAG with ``k + 1`` layers; guarantees many length-k paths.

    Layer ``i`` holds values ``i * layer_size .. (i+1) * layer_size - 1``;
    every node gets ``out_degree`` random successors in the next layer.
    """
    rng = random.Random(seed)
    db = Database()
    for i in range(1, k + 1):
        lo_src = (i - 1) * layer_size
        lo_dst = i * layer_size
        edges = set()
        for src in range(lo_src, lo_src + layer_size):
            for _ in range(out_degree):
                edges.add((src, lo_dst + rng.randrange(layer_size)))
        db.add(Relation(f"R{i}", (f"x{i}", f"x{i + 1}"), edges))
    return db


def set_family(n_sets: int, universe: int, total_elements: int,
               seed: int = 0, heavy_sets: int = 0,
               heavy_size: Optional[int] = None) -> Relation:
    """A set membership relation ``R(y, x)``: element ``y`` belongs to set ``x``.

    ``heavy_sets`` plants that many sets of size ``heavy_size`` (default:
    ``universe // 2``) so that the heavy/light threshold separates a real
    population.  Remaining elements are spread uniformly.
    """
    rng = random.Random(seed)
    rows = set()
    if heavy_sets:
        size = heavy_size if heavy_size is not None else max(1, universe // 2)
        for s in range(heavy_sets):
            members = rng.sample(range(universe), min(size, universe))
            for y in members:
                rows.add((y, s))
    while len(rows) < total_elements:
        rows.add((rng.randrange(universe), rng.randrange(n_sets)))
    return Relation("R", ("y", "x"), rows)


def star_database(k: int, n_edges: int, domain: int, seed: int = 0,
                  heavy_sets: int = 0) -> Database:
    """Input for the k-set disjointness CQAP: atoms ``R(y, x_i)``, i in [k].

    All atoms share one membership relation, per Example 2.2.
    """
    membership = set_family(domain, domain, n_edges, seed=seed,
                            heavy_sets=heavy_sets)
    db = Database()
    for i in range(1, k + 1):
        db.add(Relation(f"R{i}", ("y", f"x{i}"), membership.tuples))
    return db


def square_database(n_edges: int, domain: int, seed: int = 0,
                    skew_hubs: int = 0) -> Database:
    """Input for the square CQAP: R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x1)."""
    base = random_edge_relation("base", ("a", "b"), n_edges, domain,
                                seed=seed, skew_hubs=skew_hubs)
    db = Database()
    schemas = [("x1", "x2"), ("x2", "x3"), ("x3", "x4"), ("x4", "x1")]
    for i, schema in enumerate(schemas, start=1):
        db.add(Relation(f"R{i}", schema, base.tuples))
    return db


def triangle_database(n_edges: int, domain: int, seed: int = 0) -> Database:
    """Input for the triangle CQAP over one shared edge relation."""
    base = random_edge_relation("base", ("a", "b"), n_edges, domain, seed=seed)
    db = Database()
    schemas = [("x1", "x2"), ("x2", "x3"), ("x3", "x1")]
    for i, schema in enumerate(schemas, start=1):
        db.add(Relation(f"R{i}", schema, base.tuples))
    return db


def hierarchical_binary_tree_database(n_tuples: int, domain: int,
                                      seed: int = 0,
                                      heavy_x: int = 0) -> Database:
    """Input for the Figure 6a hierarchical CQAP.

    Relations R(x,y1,z1), S(x,y1,z2), T(x,y2,z3), U(x,y2,z4).  ``heavy_x``
    plants that many x-values with large fanout, exercising the §F heavy/light
    indicator views.
    """
    rng = random.Random(seed)

    def draw_x() -> int:
        if heavy_x and rng.random() < 0.5:
            return rng.randrange(heavy_x)
        return rng.randrange(domain)

    def ternary(name: str, schema: Tuple[str, str, str]) -> Relation:
        rows = set()
        while len(rows) < n_tuples:
            rows.add((draw_x(), rng.randrange(domain), rng.randrange(domain)))
        return Relation(name, schema, rows)

    db = Database()
    db.add(ternary("R", ("x", "y1", "z1")))
    db.add(ternary("S", ("x", "y1", "z2")))
    db.add(ternary("T", ("x", "y2", "z3")))
    db.add(ternary("U", ("x", "y2", "z4")))
    return db


def access_requests_from_output(full_output: Relation, access_vars: Sequence[str],
                                count: int, seed: int = 0,
                                hit_fraction: float = 0.5,
                                domain: int = 1 << 30) -> List[Tuple]:
    """Sample ``count`` single-tuple access requests.

    A ``hit_fraction`` of them are projections of actual query answers (so the
    online phase does real work); the rest are random misses.
    """
    rng = random.Random(seed)
    hits = list(full_output.project(access_vars).tuples)
    requests: List[Tuple] = []
    for _ in range(count):
        if hits and rng.random() < hit_fraction:
            requests.append(rng.choice(hits))
        else:
            requests.append(tuple(rng.randrange(domain)
                                  for _ in access_vars))
    return requests
