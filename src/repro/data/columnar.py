"""Columnar relation backend: dict-of-columns storage, batch kernels.

:class:`ColumnarRelation` is a drop-in :class:`~repro.data.relation.
Relation` whose operators run as *batch* kernels over lazily materialized
column data instead of per-row Python loops with per-row counter bumps.
The tuple :class:`set` remains the ground truth (so equality, iteration,
pickling, and every base-class fallback behave identically — answers are
bit-identical across backends by construction); the row list and the
per-variable columns are derived caches, rebuilt after any mutation and
never pickled (the process fleet ships payloads, not caches).

NumPy is used when importable — integer key columns get an
``np.isin``-vectorized semijoin membership kernel — but is **not** a
dependency: every kernel has a pure-Python column path built on ``zip``
transposes, which already beats the row-at-a-time base operators by
hoisting position lookups and counter accounting out of the loop.

Counter accounting is preserved *in total*: a kernel that scans ``n``
rows charges ``scans += n`` in one update where the base operator charged
``1`` per row, so benchmarks comparing intrinsic operation counts across
backends see the same work.

Pick a backend by name through :func:`relation_class` /
:func:`to_backend`; the engine threads the choice from
``prepare(..., backend=...)`` down to every execution layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.relation import Relation, SchemaError
from repro.util.counters import Counters, global_counters

try:  # pragma: no cover - exercised implicitly on numpy-equipped hosts
    import numpy as _np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - numpy-less container
    _np = None
    HAVE_NUMPY = False

Tuple_ = Tuple[object, ...]

#: marker for "this column cannot be vectorized" in the int-array cache
_NO_ARRAY = object()

#: below this row count the numpy membership kernel loses to plain dict
#: probes (array construction + ``np.isin`` fixed overhead dominate), so
#: small relations — e.g. per-probe T-views — take the hash-index path
_MIN_VECTOR_ROWS = 128


class ColumnarRelation(Relation):
    """A relation whose operators run as column-batch kernels.

    Storage contract: ``self.tuples`` (the inherited set) is authoritative;
    ``_rows`` (a stable row list) and ``_columns`` (variable -> column
    tuple) are derived lazily and dropped on mutation or unpickling.  All
    operators return :class:`ColumnarRelation` (the base class constructs
    results through ``type(self)``, so mixed pipelines stay columnar), and
    all inherit the base class's schemas, counters, and mutation contract.
    """

    __slots__ = ("_rows", "_columns", "_int_cols")

    # ------------------------------------------------------------------
    # derived column state
    # ------------------------------------------------------------------
    def _reset_derived(self) -> None:
        super()._reset_derived()
        self._rows: Optional[List[Tuple_]] = None
        self._columns: Optional[Dict[str, tuple]] = None
        self._int_cols: Dict[str, object] = {}

    def _row_data(self) -> List[Tuple_]:
        """The tuple set as a stable list (lazily materialized)."""
        rows = self._rows
        if rows is None:
            rows = self._rows = list(self.tuples)
        return rows

    def _column_data(self) -> Dict[str, tuple]:
        """Variable -> column tuple, one entry per schema variable."""
        cols = self._columns
        if cols is None:
            rows = self._row_data()
            if rows and self.schema:
                cols = dict(zip(self.schema, zip(*rows)))
            else:
                cols = {v: () for v in self.schema}
            self._columns = cols
        return cols

    def _int_array(self, var: str):
        """The column as an ``int64`` array, or None if not vectorizable.

        Only columns whose every value is a plain ``int`` (or ``bool``,
        which hashes and compares as its integer value) qualify: numeric
        *conversion* (1.5 -> 1) would silently change membership
        semantics, so anything else falls back to the hash-index path.
        """
        if not HAVE_NUMPY:
            return None
        cached = self._int_cols.get(var)
        if cached is not None:
            return None if cached is _NO_ARRAY else cached
        col = self._column_data()[var]
        if all(type(v) is int or type(v) is bool for v in col):
            try:
                arr = _np.fromiter(col, dtype=_np.int64, count=len(col))
            except (OverflowError, ValueError):
                arr = None
        else:
            arr = None
        self._int_cols[var] = _NO_ARRAY if arr is None else arr
        return arr

    # ------------------------------------------------------------------
    # batch kernels (same outputs and counter totals as the base loops)
    # ------------------------------------------------------------------
    def index_on(self, key: Sequence[str]) -> Dict[Tuple_, list]:
        if self._view_of is not None:
            self._check_fresh()
        key = tuple(key)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        self.positions(key)  # schema validation, same errors as the base
        rows = self._row_data()
        index: Dict[Tuple_, list] = {}
        if not key:
            if rows:
                index[()] = list(rows)
        else:
            setdefault = index.setdefault
            cols = self._column_data()
            if len(key) == 1:
                for row, v in zip(rows, cols[key[0]]):
                    setdefault((v,), []).append(row)
            else:
                for row, k in zip(rows, zip(*(cols[v] for v in key))):
                    setdefault(k, []).append(row)
        self._indexes[key] = index
        return index

    def project(self, onto: Sequence[str], name: Optional[str] = None,
                counters: Optional[Counters] = None) -> "ColumnarRelation":
        """Batch projection: one transpose, one bulk scan charge."""
        if self._view_of is not None:
            self._check_fresh()
        ctr = counters or global_counters
        onto = tuple(onto)
        self.positions(onto)
        n = len(self.tuples)
        ctr.scans += n
        if not onto:
            out = {()} if n else set()
        elif not n:
            out = set()
        else:
            cols = self._column_data()
            if len(onto) == 1:
                col = cols[onto[0]]
                out = {(v,) for v in set(col)}
            else:
                out = set(zip(*(cols[v] for v in onto)))
        return type(self)._wrap(name or f"pi_{self.name}", onto, out)

    def semijoin(self, other: Relation,
                 counters: Optional[Counters] = None,
                 name: Optional[str] = None) -> "ColumnarRelation":
        """Batch semijoin: column-key zip against ``other``'s hash index.

        Single-variable integer keys additionally get the vectorized
        ``np.isin`` membership mask when numpy is importable and both
        sides' key columns are plain ints.
        """
        if self._view_of is not None:
            self._check_fresh()
        ctr = counters or global_counters
        shared = tuple(v for v in self.schema if v in other.variables)
        if not shared:
            if len(other) == 0:
                return type(self)._wrap(name or self.name, self.schema,
                                        set())
            return self.copy(name)
        n = len(self.tuples)
        ctr.scans += n
        ctr.probes += n
        rows = self._row_data()
        out: Optional[set] = None
        if len(shared) == 1 and n >= _MIN_VECTOR_ROWS:
            var = shared[0]
            arr = self._int_array(var)
            if arr is not None and isinstance(other, ColumnarRelation) \
                    and var in other.variables:
                other_arr = other._int_array(var)
                if other_arr is not None:
                    mask = _np.isin(arr, other_arr)
                    out = {row for row, keep in zip(rows, mask) if keep}
        if out is None:
            other_index = other.index_on(shared)
            cols = self._column_data()
            if len(shared) == 1:
                col = cols[shared[0]]
                out = {row for row, v in zip(rows, col)
                       if (v,) in other_index}
            else:
                keys = zip(*(cols[v] for v in shared))
                out = {row for row, k in zip(rows, keys)
                       if k in other_index}
        return type(self)._wrap(name or self.name, self.schema, out)

    def join(self, other: Relation, name: Optional[str] = None,
             counters: Optional[Counters] = None) -> "ColumnarRelation":
        """Natural hash join with hoisted positions and bulk counters."""
        if self._view_of is not None:
            self._check_fresh()
        ctr = counters or global_counters
        shared = tuple(v for v in self.schema if v in other.variables)
        extra = tuple(v for v in other.schema if v not in self.variables)
        out_schema = self.schema + extra
        index = other.index_on(shared)
        pos_self = self.positions(shared)
        pos_extra = other.positions(extra)
        rows = self._row_data()
        ctr.scans += len(rows)
        ctr.probes += len(rows)
        out: set = set()
        emitted = 0
        get = index.get
        for row in rows:
            matches = get(tuple(row[p] for p in pos_self))
            if matches:
                emitted += len(matches)
                for match in matches:
                    out.add(row + tuple(match[p] for p in pos_extra))
        ctr.joins_emitted += emitted
        return type(self)._wrap(name or f"{self.name}_x_{other.name}",
                                out_schema, out)

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarRelation":
        """Adopt an existing relation (zero-copy: the tuple set is shared).

        The caller hands over the read-only discipline: the source must
        not be mutated afterwards (the serving layers never do — prepared
        state is frozen).
        """
        if type(relation) is cls:
            return relation
        return cls._wrap(relation.name, relation.schema, relation.tuples)


#: backend name -> relation class, the single registry every layer resolves
RELATION_BACKENDS: Dict[str, type] = {
    "set": Relation,
    "columnar": ColumnarRelation,
}


def relation_class(backend: str) -> type:
    """Resolve a ``backend=`` name to its relation class (or raise)."""
    try:
        return RELATION_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"relation backend must be one of "
            f"{sorted(RELATION_BACKENDS)}, got {backend!r}"
        ) from None


def to_backend(relation: Relation, backend: str) -> Relation:
    """Re-wrap ``relation`` in the named backend's class (zero-copy)."""
    cls = relation_class(backend)
    if type(relation) is cls:
        return relation
    if cls is ColumnarRelation:
        return ColumnarRelation.from_relation(relation)
    return Relation._wrap(relation.name, relation.schema, relation.tuples)
