"""Database instances: named relations guarding degree constraints."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.data.relation import Relation

Tuple_ = Tuple[object, ...]


class Database:
    """A mapping from relation names to :class:`Relation` instances.

    ``|D|`` (the paper's database size) is the *maximum* relation cardinality,
    matching §2's convention ``|D| = max_F |R_F|``.
    """

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        for rel in relations:
            self.add(rel)

    def add(self, relation: Relation) -> None:
        """Register a relation; names must be unique."""
        if relation.name in self._relations:
            raise KeyError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> list:
        return list(self._relations)

    @property
    def size(self) -> int:
        """``|D|``: maximum cardinality over the stored relations."""
        if not self._relations:
            return 0
        return max(len(rel) for rel in self._relations.values())

    @property
    def total_tuples(self) -> int:
        """Sum of all relation cardinalities (storage accounting)."""
        return sum(len(rel) for rel in self._relations.values())

    # ------------------------------------------------------------------
    # single-tuple deltas (the repro.updates entry points)
    # ------------------------------------------------------------------
    def insert(self, name: str, row: Tuple_, counters=None) -> bool:
        """Insert ``row`` into relation ``name``.

        Returns ``True`` iff the database changed (the row was new).
        Unknown relation names raise ``KeyError``; arity mismatches raise
        :class:`~repro.data.relation.SchemaError` — a delta must never
        silently no-op.  Indexes over this database do *not* see the
        change automatically: route the delta through
        :func:`repro.updates.apply_delta` to keep materialized S-targets
        and answer caches coherent.
        """
        return self._relations[name].add(row, counters=counters)

    def delete(self, name: str, row: Tuple_, counters=None) -> bool:
        """Delete ``row`` from relation ``name`` (symmetric to insert).

        Returns ``True`` iff the database changed (the row was present).
        """
        return self._relations[name].discard(row, counters=counters)

    def get(self, name: str, default: Optional[Relation] = None):
        return self._relations.get(name, default)

    def copy(self) -> "Database":
        return Database(rel.copy() for rel in self)

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.name}[{len(r)}]" for r in self)
        return f"Database({parts})"
