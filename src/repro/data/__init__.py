"""Data substrate: relations, databases, and synthetic generators."""

from repro.data.database import Database
from repro.data.relation import Relation, SchemaError, singleton_request
from repro.data.generators import (
    access_requests_from_output,
    hierarchical_binary_tree_database,
    layered_path_database,
    path_database,
    random_edge_relation,
    set_family,
    square_database,
    star_database,
    triangle_database,
)

__all__ = [
    "Database",
    "Relation",
    "SchemaError",
    "singleton_request",
    "access_requests_from_output",
    "hierarchical_binary_tree_database",
    "layered_path_database",
    "path_database",
    "random_edge_relation",
    "set_family",
    "square_database",
    "star_database",
    "triangle_database",
]
