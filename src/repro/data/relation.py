"""In-memory relations over named variables.

A :class:`Relation` is a named set of tuples together with a *schema*: an
ordered tuple of variable names.  All engine operators (projection, selection,
semijoin, hash join) live here and report their work through the counters
substrate so that benchmarks can measure probes/scans/stores instead of
wall-clock time.

Values are arbitrary hashable Python objects (the test suite and generators
use ints and strings).
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.util.counters import Counters, global_counters

Tuple_ = Tuple[object, ...]


def _canonical_bytes(value) -> bytes:
    """An equality-consistent, process-independent encoding of one value.

    Two requirements pull in different directions.  Routing must respect
    the engine's own equality (``(1, 2) == (1.0, 2.0) == (True, 2)`` as
    dict keys), so numbers that compare equal must encode identically —
    a bare ``repr`` would split them across shards and silently break
    shard-count invariance.  And routing must be stable across processes,
    so the builtin (string-salted) ``hash`` is out.  Numbers therefore
    canonicalize through their mathematical value, strings/bytes through
    their raw contents, each behind a type tag; anything exotic falls back
    to ``repr`` (equality-consistent for values of one type, which is all
    the engine's generators and workloads produce).
    """
    if isinstance(value, (bool, int, float)):
        if isinstance(value, float) and not value.is_integer():
            return b"f" + repr(value).encode()
        return b"i" + repr(int(value)).encode()
    if isinstance(value, str):
        return b"s" + value.encode("utf-8", "backslashreplace")
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, tuple):
        return b"t" + b"\x00".join(_canonical_bytes(v) for v in value)
    return b"o" + repr(value).encode("utf-8", "backslashreplace")


def stable_hash(value) -> int:
    """A process-independent, equality-consistent hash for shard routing.

    Guarantees (for the engine's value types — numbers, strings, bytes,
    and tuples thereof): values that compare equal hash equal, and the
    hash is identical across processes and platforms, so a server and its
    replay shard identically (Python's builtin ``hash`` is salted per
    process for strings and unusable here).
    """
    data = _canonical_bytes(value)
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(),
                          "big")


class SchemaError(ValueError):
    """Raised when an operation references variables absent from a schema."""


class StalePartitionError(RuntimeError):
    """Raised when a mutation would desynchronize live partition views.

    Partition views from :meth:`Relation.partition_by_hash` each hold an
    independent row set: mutating the base (or a view) through the plain
    :meth:`Relation.add`/:meth:`Relation.discard` API cannot keep the
    other side coherent, and probing a view whose base has moved on would
    return wrong answers.  The coordinated update path
    (:mod:`repro.updates`) routes deltas into the right view explicitly
    and re-marks views fresh; everything else fails fast here.
    """


class Relation:
    """A named set of tuples with an ordered schema of variable names.

    The tuple set is stored as a Python ``set`` for O(1) membership; auxiliary
    hash indexes are built lazily per key and cached.

    Mutation contract: go through :meth:`add` / :meth:`discard`, which
    invalidate the cached indexes.  Mutating ``.tuples`` directly is
    unsupported — cached indexes would keep serving the stale tuple set
    (``tests/test_relation.py::TestIndexInvalidation`` pins this down).
    """

    __slots__ = ("name", "schema", "tuples", "_variables", "_indexes",
                 "version", "_views", "_view_of", "__weakref__")

    def __init__(self, name: str, schema: Sequence[str],
                 tuples: Iterable[Tuple_] = ()) -> None:
        self.name = name
        self.schema: Tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"duplicate variables in schema {self.schema}")
        self._variables = frozenset(self.schema)
        self.tuples: set = set()
        width = len(self.schema)
        for row in tuples:
            row = tuple(row)
            if len(row) != width:
                raise SchemaError(
                    f"tuple {row} has arity {len(row)}, schema {self.schema} "
                    f"expects {width}"
                )
            self.tuples.add(row)
        self._init_epoch()
        self._reset_derived()

    # ------------------------------------------------------------------
    # derived-state lifecycle (hash indexes; subclasses add more)
    # ------------------------------------------------------------------
    def _reset_derived(self) -> None:
        """(Re)initialize every cache derived from the tuple set.

        Called on construction, unpickling, and mutation.  Subclasses
        holding extra derived state (the columnar backend's column
        arrays) extend this instead of duplicating the invalidation
        points.
        """
        self._indexes: Dict[Tuple[str, ...], Dict[Tuple_, list]] = {}

    def _init_epoch(self) -> None:
        """Start the mutation epoch: fresh version, no partition links."""
        self.version = 0
        # weakrefs to live partition views (a plain list: relations are
        # deliberately unhashable, so WeakSet cannot hold them); dead
        # refs are pruned on the guard checks
        self._views: Optional[List["weakref.ref[Relation]"]] = None
        self._view_of: Optional[Tuple["weakref.ref[Relation]", int]] = None

    @classmethod
    def _wrap(cls, name: str, schema: Sequence[str],
              tuples: set) -> "Relation":
        """Internal fast constructor over trusted, already-valid rows.

        ``tuples`` must be a ``set`` of tuples matching ``schema``'s
        arity; it is *shared*, not copied.  Callers either hand over
        ownership (operators wrapping a freshly built set) or guarantee
        the set is never mutated through this handle (view assembly over
        frozen targets — the engine-wide read-only serving discipline).
        Skips ``__init__``'s per-row validation, which on the per-probe
        hot path is a measurable slice of the work.
        """
        self = cls.__new__(cls)
        self.name = name
        self.schema = tuple(schema)
        self._variables = frozenset(self.schema)
        self.tuples = tuples
        self._init_epoch()
        self._reset_derived()
        return self

    # ------------------------------------------------------------------
    # pickling (process-backed serving ships relation payloads to shard
    # worker processes)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle the payload, not the cache.

        The lazily-built hash indexes are derived state — often larger
        than the tuple set itself — and every process can rebuild them on
        first use, so shipping a relation to a shard worker serializes
        only ``(name, schema, tuples)``.
        """
        return (self.name, self.schema, self.tuples)

    def __setstate__(self, state) -> None:
        name, schema, tuples = state
        self.name = name
        self.schema = schema
        self._variables = frozenset(schema)
        self.tuples = tuples
        # partition links are process-local bookkeeping: a relation
        # unpickled in a shard worker starts a fresh epoch of its own
        self._init_epoch()
        self._reset_derived()

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self.tuples)

    def __contains__(self, row: Tuple_) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema == other.schema:
            return self.tuples == other.tuples
        if set(self.schema) != set(other.schema):
            return False
        # the reordering is bookkeeping internal to the comparison: it
        # goes against a throwaway local counter so equality checks in
        # tests/benchmarks never inflate the global scan counts
        reordered = other.project(self.schema, name=other.name,
                                  counters=Counters())
        return self.tuples == reordered.tuples

    def __hash__(self):  # relations are mutable containers
        raise TypeError("Relation objects are unhashable")

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, schema={self.schema}, n={len(self)})"

    @property
    def variables(self) -> FrozenSet[str]:
        """The schema as an (unordered) frozenset of variable names."""
        # cached at construction: the online passes consult this on every
        # operator call, and rebuilding the frozenset per read was one of
        # the hot-path warts this property used to hide
        return self._variables

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Shallow copy (tuples are shared immutable objects)."""
        return type(self)(name or self.name, self.schema, self.tuples)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        """Fail fast when a plain mutation would desynchronize partitions."""
        if self._view_of is not None and self._view_of[0]() is not None:
            raise StalePartitionError(
                f"{self.name!r} is a partition view of "
                f"{self._view_of[0]().name!r}; mutate the base through the "
                f"coordinated update path (repro.updates) instead"
            )
        if self._views is not None:
            self._views = [ref for ref in self._views if ref() is not None]
            if self._views:
                raise StalePartitionError(
                    f"{self.name!r} has live partition views; a plain "
                    f"mutation would leave them silently stale — route the "
                    f"delta through the coordinated update path "
                    f"(repro.updates) instead"
                )

    def _check_fresh(self) -> None:
        """Fail fast when probing a partition view whose base moved on."""
        if self._view_of is None:
            return
        ref, recorded = self._view_of
        base = ref()
        if base is not None and base.version != recorded:
            raise StalePartitionError(
                f"partition view {self.name!r} is stale: base {base.name!r} "
                f"mutated since the partition was taken (version "
                f"{base.version} != {recorded}); rebuild the partition or "
                f"route deltas through the coordinated update path"
            )

    def add(self, row: Tuple_, counters: Optional[Counters] = None) -> bool:
        """Insert one tuple, invalidating cached indexes.

        Returns ``True`` iff the row was new (counters are only charged
        for actual state changes).
        """
        row = tuple(row)
        if len(row) != len(self.schema):
            raise SchemaError(f"arity mismatch adding {row} to {self.schema}")
        self._check_mutable()
        if row in self.tuples:
            return False
        self.tuples.add(row)
        (counters or global_counters).stores += 1
        self.version += 1
        self._reset_derived()
        return True

    def discard(self, row: Tuple_,
                counters: Optional[Counters] = None) -> bool:
        """Remove one tuple if present, invalidating cached indexes.

        Mirrors :meth:`add` exactly: arity-mismatched rows raise
        :class:`SchemaError` (they can never be present, and silently
        accepting them hides caller bugs), counters charge one store per
        *actual* removal, and the return value says whether state changed.
        """
        row = tuple(row)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"arity mismatch discarding {row} from {self.schema}"
            )
        self._check_mutable()
        if row not in self.tuples:
            return False
        self.tuples.discard(row)
        (counters or global_counters).stores += 1
        self.version += 1
        self._reset_derived()
        return True

    # ------------------------------------------------------------------
    # coordinated delta primitives (repro.updates) — these skip the
    # partition-view guard because the caller takes responsibility for
    # routing the same delta into the affected views and re-marking them
    # fresh via _sync_with_base()
    # ------------------------------------------------------------------
    def _delta_add(self, row: Tuple_) -> bool:
        """Unchecked insert for the coordinated update path."""
        row = tuple(row)
        if row in self.tuples:
            return False
        self.tuples.add(row)
        self.version += 1
        self._reset_derived()
        return True

    def _delta_discard(self, row: Tuple_) -> bool:
        """Unchecked removal for the coordinated update path."""
        row = tuple(row)
        if row not in self.tuples:
            return False
        self.tuples.discard(row)
        self.version += 1
        self._reset_derived()
        return True

    def _sync_with_base(self) -> None:
        """Re-mark this partition view fresh after a coordinated delta."""
        if self._view_of is None:
            return
        ref, _ = self._view_of
        base = ref()
        if base is not None:
            self._view_of = (ref, base.version)

    # ------------------------------------------------------------------
    # positions and indexes
    # ------------------------------------------------------------------
    def positions(self, variables: Sequence[str]) -> Tuple[int, ...]:
        """Column positions of ``variables`` within the schema."""
        try:
            return tuple(self.schema.index(v) for v in variables)
        except ValueError as exc:
            raise SchemaError(
                f"{list(variables)} not all in schema {self.schema}"
            ) from exc

    def index_on(self, key: Sequence[str]) -> Dict[Tuple_, list]:
        """Hash index: key-tuple -> list of full tuples (built lazily).

        Concurrency note (the serving layer's single-writer/many-reader
        discipline): the index is built *fully* into a local dict and only
        then published with one cache assignment, so concurrent readers of
        a frozen relation either see the finished index or rebuild an
        identical one — never a half-built dict.  Mutation remains
        single-threaded-only, as per the class contract above.
        """
        if self._view_of is not None:
            self._check_fresh()
        key = tuple(key)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        pos = self.positions(key)
        index: Dict[Tuple_, list] = {}
        for row in self.tuples:
            index.setdefault(tuple(row[p] for p in pos), []).append(row)
        self._indexes[key] = index
        return index

    def key_values(self, key: Sequence[str]) -> set:
        """Distinct key tuples over ``key``."""
        return set(self.index_on(key).keys())

    def degree(self, key: Sequence[str]) -> int:
        """Maximum number of tuples sharing one ``key`` value (0 if empty)."""
        index = self.index_on(key)
        if not index:
            return 0
        return max(len(bucket) for bucket in index.values())

    def degree_of(self, key: Sequence[str], key_value: Tuple_) -> int:
        """Number of tuples whose ``key`` columns equal ``key_value``."""
        return len(self.index_on(key).get(tuple(key_value), ()))

    # ------------------------------------------------------------------
    # partition views
    # ------------------------------------------------------------------
    def partition_by_hash(self, key: Sequence[str], n_shards: int,
                          hasher: Optional[Callable[[Tuple_], int]] = None,
                          ) -> List["Relation"]:
        """Split into ``n_shards`` relations by a hash of the ``key`` columns.

        Shard ``i`` holds exactly the tuples whose key-column values hash to
        ``i`` modulo ``n_shards`` (:func:`stable_hash` by default, so the
        split is identical across processes).  The returned relations share
        the stored tuple objects — a partition *view*, not a copy of the
        payloads — and re-unioning them reproduces this relation exactly.
        Each partition starts with an empty index cache of its own, so
        mutating one partition invalidates only that partition's indexes.

        Views are epoch-guarded: mutating this relation (or a view) through
        the plain :meth:`add`/:meth:`discard` API while views are alive
        raises :class:`StalePartitionError`, as does probing a view after
        its base mutated through the coordinated delta path without the
        view being resynced.  Registration is by weak reference, so
        dropping every handle to the views lifts the guard.
        """
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        pos = self.positions(key)
        hash_ = hasher or stable_hash
        buckets: List[set] = [set() for _ in range(n_shards)]
        for row in self.tuples:
            buckets[hash_(tuple(row[p] for p in pos)) % n_shards].add(row)
        parts = [type(self)._wrap(f"{self.name}@{i}", self.schema, bucket)
                 for i, bucket in enumerate(buckets)]
        if self._views is None:
            self._views = []
        else:
            self._views = [ref for ref in self._views if ref() is not None]
        for part in parts:
            part._view_of = (weakref.ref(self), self.version)
            self._views.append(weakref.ref(part))
        return parts

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------
    def project(self, onto: Sequence[str], name: Optional[str] = None,
                counters: Optional[Counters] = None) -> "Relation":
        """Duplicate-eliminating projection onto ``onto`` (ordered)."""
        if self._view_of is not None:
            self._check_fresh()
        ctr = counters or global_counters
        onto = tuple(onto)
        pos = self.positions(onto)
        out = set()
        for row in self.tuples:
            ctr.scans += 1
            out.add(tuple(row[p] for p in pos))
        return type(self)._wrap(name or f"pi_{self.name}", onto, out)

    def select(self, predicate: Callable[[dict], bool],
               name: Optional[str] = None,
               counters: Optional[Counters] = None) -> "Relation":
        """Filter by an arbitrary predicate over a var->value mapping."""
        if self._view_of is not None:
            self._check_fresh()
        ctr = counters or global_counters
        out = set()
        for row in self.tuples:
            ctr.scans += 1
            if predicate(dict(zip(self.schema, row))):
                out.add(row)
        return type(self)._wrap(name or f"sigma_{self.name}", self.schema,
                                out)

    def select_equals(self, bindings: dict, name: Optional[str] = None,
                      counters: Optional[Counters] = None) -> "Relation":
        """Equality selection via the hash index on the bound variables.

        Every binding variable must be in the schema: a silently ignored
        unknown variable (e.g. a typo) would return *unfiltered* rows, so
        unknown variables raise :class:`SchemaError` instead.  Callers
        that intentionally filter on whichever binding variables the
        schema happens to contain must pass the pre-filtered dict
        explicitly.
        """
        ctr = counters or global_counters
        unknown = set(bindings) - self._variables
        if unknown:
            raise SchemaError(
                f"select_equals binding variables {sorted(unknown)} not in "
                f"schema {self.schema}"
            )
        key = tuple(v for v in self.schema if v in bindings)
        if not key:
            return self.copy(name)
        index = self.index_on(key)
        ctr.probes += 1
        want = tuple(bindings[v] for v in key)
        rows = index.get(want, [])
        ctr.scans += len(rows)
        return type(self)._wrap(name or f"sigma_{self.name}", self.schema,
                                set(rows))

    def rename(self, mapping: Dict[str, str],
               name: Optional[str] = None) -> "Relation":
        """Rename variables; ``mapping`` may be partial."""
        new_schema = tuple(mapping.get(v, v) for v in self.schema)
        return Relation(name or self.name, new_schema, self.tuples)

    def union(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Set union; the other relation is reordered to this schema."""
        if set(other.schema) != set(self.schema):
            raise SchemaError(
                f"union schema mismatch: {self.schema} vs {other.schema}"
            )
        if other.schema == self.schema:
            rows = self.tuples | other.tuples
        else:
            # the reordering is internal plumbing, not query work: it is
            # accounted to a throwaway local counter so unions (T-target
            # assembly runs one per same-schema step) never inflate the
            # global scan counts
            reordered = other.project(self.schema, name=other.name,
                                      counters=Counters())
            rows = self.tuples | reordered.tuples
        return type(self)._wrap(name or f"{self.name}_u_{other.name}",
                                self.schema, rows)

    def semijoin(self, other: "Relation",
                 counters: Optional[Counters] = None,
                 name: Optional[str] = None) -> "Relation":
        """``self ⋉ other``: keep tuples matching ``other`` on shared vars.

        Probes a hash index on ``other``; cost is one probe per tuple of
        ``self`` — never a scan of ``other`` (this is what makes Online
        Yannakakis independent of S-view sizes).
        """
        if self._view_of is not None:
            self._check_fresh()
        ctr = counters or global_counters
        shared = tuple(v for v in self.schema if v in other.variables)
        if not shared:
            # A cartesian semijoin degenerates to emptiness testing.
            if len(other) == 0:
                return type(self)._wrap(name or self.name, self.schema,
                                        set())
            return self.copy(name)
        # membership goes against the cached hash index itself: building a
        # fresh key set would cost O(|other|) per call, which on a hot
        # probe path re-scans the S-view every probe
        other_index = other.index_on(shared)
        pos = self.positions(shared)
        out = set()
        for row in self.tuples:
            ctr.scans += 1
            ctr.probes += 1
            if tuple(row[p] for p in pos) in other_index:
                out.add(row)
        return type(self)._wrap(name or self.name, self.schema, out)

    def join(self, other: "Relation", name: Optional[str] = None,
             counters: Optional[Counters] = None) -> "Relation":
        """Natural hash join on the shared variables.

        Builds the hash side on ``other`` and streams ``self``.
        """
        if self._view_of is not None:
            self._check_fresh()
        ctr = counters or global_counters
        shared = tuple(v for v in self.schema if v in other.variables)
        extra = tuple(v for v in other.schema if v not in self.variables)
        out_schema = self.schema + extra
        index = other.index_on(shared)
        pos_self = self.positions(shared)
        pos_extra = other.positions(extra)
        out = set()
        for row in self.tuples:
            ctr.scans += 1
            ctr.probes += 1
            key = tuple(row[p] for p in pos_self)
            for match in index.get(key, ()):
                ctr.joins_emitted += 1
                out.add(row + tuple(match[p] for p in pos_extra))
        return type(self)._wrap(name or f"{self.name}_x_{other.name}",
                                out_schema, out)

    def is_empty(self) -> bool:
        """True when the relation holds no tuples."""
        return not self.tuples

    def to_bindings(self) -> Iterator[dict]:
        """Yield each tuple as a var->value dict."""
        for row in self.tuples:
            yield dict(zip(self.schema, row))

    @classmethod
    def from_bindings(cls, name: str, schema: Sequence[str],
                      bindings: Iterable[dict]) -> "Relation":
        """Build a relation from var->value dicts (missing keys error)."""
        schema = tuple(schema)
        rows = [tuple(b[v] for v in schema) for b in bindings]
        return cls(name, schema, rows)


def singleton_request(schema: Sequence[str], values: Tuple_,
                      name: str = "Q_A") -> Relation:
    """The most natural access request: a single fixed binding (|Q_A| = 1)."""
    return Relation(name, schema, [tuple(values)])
