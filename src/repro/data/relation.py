"""In-memory relations over named variables.

A :class:`Relation` is a named set of tuples together with a *schema*: an
ordered tuple of variable names.  All engine operators (projection, selection,
semijoin, hash join) live here and report their work through the counters
substrate so that benchmarks can measure probes/scans/stores instead of
wall-clock time.

Values are arbitrary hashable Python objects (the test suite and generators
use ints and strings).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from repro.util.counters import Counters, global_counters

Tuple_ = Tuple[object, ...]


class SchemaError(ValueError):
    """Raised when an operation references variables absent from a schema."""


class Relation:
    """A named set of tuples with an ordered schema of variable names.

    The tuple set is stored as a Python ``set`` for O(1) membership; auxiliary
    hash indexes are built lazily per key and cached.

    Mutation contract: go through :meth:`add` / :meth:`discard`, which
    invalidate the cached indexes.  Mutating ``.tuples`` directly is
    unsupported — cached indexes would keep serving the stale tuple set
    (``tests/test_relation.py::TestIndexInvalidation`` pins this down).
    """

    __slots__ = ("name", "schema", "tuples", "_indexes")

    def __init__(self, name: str, schema: Sequence[str],
                 tuples: Iterable[Tuple_] = ()) -> None:
        self.name = name
        self.schema: Tuple[str, ...] = tuple(schema)
        if len(set(self.schema)) != len(self.schema):
            raise SchemaError(f"duplicate variables in schema {self.schema}")
        self.tuples: set = set()
        width = len(self.schema)
        for row in tuples:
            row = tuple(row)
            if len(row) != width:
                raise SchemaError(
                    f"tuple {row} has arity {len(row)}, schema {self.schema} "
                    f"expects {width}"
                )
            self.tuples.add(row)
        self._indexes: Dict[Tuple[str, ...], Dict[Tuple_, list]] = {}

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self.tuples)

    def __contains__(self, row: Tuple_) -> bool:
        return tuple(row) in self.tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if set(self.schema) != set(other.schema):
            return False
        reordered = other.project(self.schema, name=other.name)
        return self.tuples == reordered.tuples

    def __hash__(self):  # relations are mutable containers
        raise TypeError("Relation objects are unhashable")

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, schema={self.schema}, n={len(self)})"

    @property
    def variables(self) -> FrozenSet[str]:
        """The schema as an (unordered) frozenset of variable names."""
        return frozenset(self.schema)

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Shallow copy (tuples are shared immutable objects)."""
        return Relation(name or self.name, self.schema, self.tuples)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, row: Tuple_, counters: Optional[Counters] = None) -> None:
        """Insert one tuple, invalidating cached indexes."""
        row = tuple(row)
        if len(row) != len(self.schema):
            raise SchemaError(f"arity mismatch adding {row} to {self.schema}")
        if row not in self.tuples:
            self.tuples.add(row)
            (counters or global_counters).stores += 1
            self._indexes.clear()

    def discard(self, row: Tuple_) -> None:
        """Remove one tuple if present, invalidating cached indexes."""
        self.tuples.discard(tuple(row))
        self._indexes.clear()

    # ------------------------------------------------------------------
    # positions and indexes
    # ------------------------------------------------------------------
    def positions(self, variables: Sequence[str]) -> Tuple[int, ...]:
        """Column positions of ``variables`` within the schema."""
        try:
            return tuple(self.schema.index(v) for v in variables)
        except ValueError as exc:
            raise SchemaError(
                f"{list(variables)} not all in schema {self.schema}"
            ) from exc

    def index_on(self, key: Sequence[str]) -> Dict[Tuple_, list]:
        """Hash index: key-tuple -> list of full tuples (built lazily)."""
        key = tuple(key)
        cached = self._indexes.get(key)
        if cached is not None:
            return cached
        pos = self.positions(key)
        index: Dict[Tuple_, list] = {}
        for row in self.tuples:
            index.setdefault(tuple(row[p] for p in pos), []).append(row)
        self._indexes[key] = index
        return index

    def key_values(self, key: Sequence[str]) -> set:
        """Distinct key tuples over ``key``."""
        return set(self.index_on(key).keys())

    def degree(self, key: Sequence[str]) -> int:
        """Maximum number of tuples sharing one ``key`` value (0 if empty)."""
        index = self.index_on(key)
        if not index:
            return 0
        return max(len(bucket) for bucket in index.values())

    def degree_of(self, key: Sequence[str], key_value: Tuple_) -> int:
        """Number of tuples whose ``key`` columns equal ``key_value``."""
        return len(self.index_on(key).get(tuple(key_value), ()))

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------
    def project(self, onto: Sequence[str], name: Optional[str] = None,
                counters: Optional[Counters] = None) -> "Relation":
        """Duplicate-eliminating projection onto ``onto`` (ordered)."""
        ctr = counters or global_counters
        onto = tuple(onto)
        pos = self.positions(onto)
        out = set()
        for row in self.tuples:
            ctr.scans += 1
            out.add(tuple(row[p] for p in pos))
        return Relation(name or f"pi_{self.name}", onto, out)

    def select(self, predicate: Callable[[dict], bool],
               name: Optional[str] = None,
               counters: Optional[Counters] = None) -> "Relation":
        """Filter by an arbitrary predicate over a var->value mapping."""
        ctr = counters or global_counters
        out = []
        for row in self.tuples:
            ctr.scans += 1
            if predicate(dict(zip(self.schema, row))):
                out.append(row)
        return Relation(name or f"sigma_{self.name}", self.schema, out)

    def select_equals(self, bindings: dict, name: Optional[str] = None,
                      counters: Optional[Counters] = None) -> "Relation":
        """Equality selection via the hash index on the bound variables."""
        ctr = counters or global_counters
        key = tuple(v for v in self.schema if v in bindings)
        if not key:
            return self.copy(name)
        index = self.index_on(key)
        ctr.probes += 1
        want = tuple(bindings[v] for v in key)
        rows = index.get(want, [])
        ctr.scans += len(rows)
        return Relation(name or f"sigma_{self.name}", self.schema, rows)

    def rename(self, mapping: Dict[str, str],
               name: Optional[str] = None) -> "Relation":
        """Rename variables; ``mapping`` may be partial."""
        new_schema = tuple(mapping.get(v, v) for v in self.schema)
        return Relation(name or self.name, new_schema, self.tuples)

    def union(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Set union; the other relation is reordered to this schema."""
        if set(other.schema) != set(self.schema):
            raise SchemaError(
                f"union schema mismatch: {self.schema} vs {other.schema}"
            )
        reordered = other.project(self.schema, name=other.name)
        return Relation(name or f"{self.name}_u_{other.name}", self.schema,
                        self.tuples | reordered.tuples)

    def semijoin(self, other: "Relation",
                 counters: Optional[Counters] = None,
                 name: Optional[str] = None) -> "Relation":
        """``self ⋉ other``: keep tuples matching ``other`` on shared vars.

        Probes a hash index on ``other``; cost is one probe per tuple of
        ``self`` — never a scan of ``other`` (this is what makes Online
        Yannakakis independent of S-view sizes).
        """
        ctr = counters or global_counters
        shared = tuple(v for v in self.schema if v in other.variables)
        if not shared:
            # A cartesian semijoin degenerates to emptiness testing.
            if len(other) == 0:
                return Relation(name or self.name, self.schema, ())
            return self.copy(name)
        # membership goes against the cached hash index itself: building a
        # fresh key set would cost O(|other|) per call, which on a hot
        # probe path re-scans the S-view every probe
        other_index = other.index_on(shared)
        pos = self.positions(shared)
        out = []
        for row in self.tuples:
            ctr.scans += 1
            ctr.probes += 1
            if tuple(row[p] for p in pos) in other_index:
                out.append(row)
        return Relation(name or self.name, self.schema, out)

    def join(self, other: "Relation", name: Optional[str] = None,
             counters: Optional[Counters] = None) -> "Relation":
        """Natural hash join on the shared variables.

        Builds the hash side on ``other`` and streams ``self``.
        """
        ctr = counters or global_counters
        shared = tuple(v for v in self.schema if v in other.variables)
        extra = tuple(v for v in other.schema if v not in self.variables)
        out_schema = self.schema + extra
        index = other.index_on(shared)
        pos_self = self.positions(shared)
        pos_extra = other.positions(extra)
        out = set()
        for row in self.tuples:
            ctr.scans += 1
            ctr.probes += 1
            key = tuple(row[p] for p in pos_self)
            for match in index.get(key, ()):
                ctr.joins_emitted += 1
                out.add(row + tuple(match[p] for p in pos_extra))
        return Relation(name or f"{self.name}_x_{other.name}", out_schema, out)

    def is_empty(self) -> bool:
        """True when the relation holds no tuples."""
        return not self.tuples

    def to_bindings(self) -> Iterator[dict]:
        """Yield each tuple as a var->value dict."""
        for row in self.tuples:
            yield dict(zip(self.schema, row))

    @classmethod
    def from_bindings(cls, name: str, schema: Sequence[str],
                      bindings: Iterable[dict]) -> "Relation":
        """Build a relation from var->value dicts (missing keys error)."""
        schema = tuple(schema)
        rows = [tuple(b[v] for v in schema) for b in bindings]
        return cls(name, schema, rows)


def singleton_request(schema: Sequence[str], values: Tuple_,
                      name: str = "Q_A") -> Relation:
    """The most natural access request: a single fixed binding (|Q_A| = 1)."""
    return Relation(name, schema, [tuple(values)])
