"""repro — Space-time tradeoffs for conjunctive queries with access patterns.

A from-scratch implementation of the PODS 2023 framework of Zhao, Deep and
Koutris: partially materialized tree decompositions (PMTDs), 2-phase
disjunctive rules, joint Shannon-flow inequalities, and the 2PP evaluation
algorithm, plus the paper's applications (k-set disjointness, k-reachability,
square/triangle queries, hierarchical CQAPs).

Quickstart::

    from repro import catalog, path_database, prepare, serve

    cqap = catalog.k_path_cqap(2)
    db = path_database(k=2, n_edges=2000, domain=300, seed=1)
    prepared = prepare(cqap, db, space_budget=4000)
    print(prepared.probe_boolean((3, 17)))  # a 2-path from 3 to 17?

    with serve(prepared, backend="process", shards=4) as server:
        answers = server.serve_all(stream_of_bindings)
"""

from repro.data import (
    Database,
    Relation,
    path_database,
    singleton_request,
    square_database,
    star_database,
    triangle_database,
)
from repro.query import (
    Atom,
    CQAP,
    ConjunctiveQuery,
    ConstraintSet,
    DegreeConstraint,
    catalog,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "CQAP",
    "CQAPIndex",
    "ConjunctiveQuery",
    "ConstraintSet",
    "Database",
    "DegreeConstraint",
    "PreparedQuery",
    "Relation",
    "catalog",
    "path_database",
    "prepare",
    "serve",
    "singleton_request",
    "square_database",
    "star_database",
    "triangle_database",
]


def __getattr__(name):
    # The index and the serving engine pull in the planner stack; import
    # lazily to keep the base import light and cycle-free.
    if name == "CQAPIndex":
        from repro.core.index import CQAPIndex

        return CQAPIndex
    if name == "PreparedQuery":
        from repro.engine.prepared import PreparedQuery

        return PreparedQuery
    if name == "prepare":
        from repro.engine.prepared import prepare

        return prepare
    if name == "serve":
        from repro.serving.api import serve

        return serve
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
