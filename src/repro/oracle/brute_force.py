"""Naive reference evaluation of CQs and CQAPs.

This is the *oracle* side of the differential harness, so it deliberately
avoids every piece of machinery it is supposed to check: no hypergraphs, no
decompositions, no planner, and none of the :class:`Relation` operators
(join/semijoin/project all route through hash indexes the oracle must stay
independent of).  Evaluation is plain backtracking search over the raw
tuple sets — exponential in query size, linear-ish in data size, and
obviously correct by inspection.  Instances fed to it should therefore be
small; the workload generators keep them that way.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.data.database import Database
from repro.query.cq import CQAP, ConjunctiveQuery, normalize_access_binding

Row = Tuple[object, ...]
AnswerSet = FrozenSet[Row]


def _atom_rows(db: Database, atom) -> List[Row]:
    """Raw stored tuples for one atom, with an arity check."""
    base = db[atom.relation]
    if len(base.schema) != len(atom.variables):
        raise ValueError(
            f"atom {atom} arity {len(atom.variables)} does not match stored "
            f"schema {base.schema}"
        )
    return list(base.tuples)


def oracle_evaluate(cq: ConjunctiveQuery, db: Database,
                    binding: Optional[Mapping[str, object]] = None,
                    ) -> AnswerSet:
    """All head tuples of ``cq`` on ``db`` consistent with ``binding``.

    ``binding`` pre-assigns values to some variables (unknown variables are
    rejected).  A Boolean query (empty head) returns ``{()}`` when
    satisfiable and ``frozenset()`` otherwise, matching the engine's
    convention for nullary answer relations.
    """
    initial: Dict[str, object] = dict(binding or {})
    unknown = set(initial) - set(cq.variables)
    if unknown:
        raise ValueError(
            f"binding variables {sorted(unknown)} do not occur in {cq!r}"
        )
    atoms = list(cq.atoms)
    rows_per_atom = [_atom_rows(db, atom) for atom in atoms]
    head = tuple(cq.head)
    answers: set = set()

    def extend(i: int, assignment: Dict[str, object]) -> None:
        if i == len(atoms):
            answers.add(tuple(assignment[v] for v in head))
            return
        atom = atoms[i]
        for row in rows_per_atom[i]:
            candidate = dict(assignment)
            consistent = True
            for var, val in zip(atom.variables, row):
                if var in candidate and candidate[var] != val:
                    consistent = False
                    break
                candidate[var] = val
            if consistent:
                extend(i + 1, candidate)

    extend(0, initial)
    return frozenset(answers)


def oracle_probe(cqap: CQAP, db: Database, binding) -> AnswerSet:
    """The exact answer set of one access binding, as head-ordered tuples."""
    binding = normalize_access_binding(cqap.access, binding)
    return oracle_evaluate(cqap, db, dict(zip(cqap.access, binding)))


def oracle_probe_many(cqap: CQAP, db: Database,
                      bindings: Iterable) -> Dict[Row, AnswerSet]:
    """Per-binding exact answers for a probe stream (duplicates collapse)."""
    out: Dict[Row, AnswerSet] = {}
    for binding in bindings:
        key = normalize_access_binding(cqap.access, binding)
        if key not in out:
            out[key] = oracle_probe(cqap, db, key)
    return out
