"""Answer diffing for the differential oracle.

Comparisons are per binding: for every probed binding we report the tuples
the oracle expects but the candidate lacks (*missing*) and the tuples the
candidate invents (*extra*).  :class:`EquivalenceReport.describe` renders a
minimal reproduction — enough to rerun the failing scenario without the
original process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.data.relation import Relation

Row = Tuple[object, ...]
AnswerSet = FrozenSet[Row]


def answer_rows(relation: Relation, head: Sequence[str]) -> AnswerSet:
    """A candidate answer relation as head-ordered raw tuples.

    Reorders columns by hand (no :meth:`Relation.project`) so candidate
    normalization cannot lean on the operators under test.
    """
    head = tuple(head)
    if set(relation.schema) != set(head):
        raise ValueError(
            f"answer schema {relation.schema} does not match head {head}"
        )
    pos = tuple(relation.schema.index(v) for v in head)
    return frozenset(tuple(row[p] for p in pos) for row in relation.tuples)


@dataclass(frozen=True)
class BindingDiff:
    """One binding's disagreement: what is missing, what is extra."""

    binding: Row
    missing: AnswerSet
    extra: AnswerSet

    def describe(self) -> str:
        parts = [f"binding {self.binding}:"]
        if self.missing:
            parts.append(f"missing {sorted(self.missing)}")
        if self.extra:
            parts.append(f"extra {sorted(self.extra)}")
        return " ".join(parts)


@dataclass
class EquivalenceReport:
    """Outcome of checking one execution path against the oracle."""

    path: str
    bindings_checked: int = 0
    diffs: List[BindingDiff] = field(default_factory=list)
    #: free-form reproduction context (seed, query repr, budget, ...)
    context: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.diffs

    def describe(self) -> str:
        """Human-readable verdict, minimal reproduction included."""
        ctx = " ".join(f"{k}={v}" for k, v in self.context.items())
        header = (f"[{self.path}] {self.bindings_checked} bindings checked"
                  + (f" ({ctx})" if ctx else ""))
        if self.ok:
            return header + ": OK"
        lines = [header + f": {len(self.diffs)} disagreeing binding(s)"]
        lines.extend("  " + diff.describe() for diff in self.diffs)
        return "\n".join(lines)


class OracleMismatch(AssertionError):
    """An execution path disagreed with the brute-force oracle."""

    def __init__(self, report: EquivalenceReport) -> None:
        super().__init__(report.describe())
        self.report = report


def compare_answers(expected: Mapping[Row, AnswerSet],
                    actual: Mapping[Row, AnswerSet],
                    path: str = "candidate",
                    context: Optional[Dict[str, object]] = None,
                    ) -> EquivalenceReport:
    """Diff candidate answers against the oracle's, binding by binding.

    ``actual`` bindings absent from ``expected`` are treated as all-extra;
    expected bindings the candidate never answered are all-missing.
    """
    report = EquivalenceReport(path=path, context=dict(context or {}))
    empty: AnswerSet = frozenset()
    for binding in sorted(set(expected) | set(actual), key=repr):
        want = expected.get(binding, empty)
        got = actual.get(binding, empty)
        report.bindings_checked += 1
        if want != got:
            report.diffs.append(
                BindingDiff(binding, missing=want - got, extra=got - want)
            )
    return report


def assert_equivalent(expected: Mapping[Row, AnswerSet],
                      actual: Mapping[Row, AnswerSet],
                      path: str = "candidate",
                      context: Optional[Dict[str, object]] = None,
                      ) -> EquivalenceReport:
    """Like :func:`compare_answers` but raises :class:`OracleMismatch`."""
    report = compare_answers(expected, actual, path=path, context=context)
    if not report.ok:
        raise OracleMismatch(report)
    return report
