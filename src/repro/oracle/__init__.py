"""Brute-force differential oracle (the repo's standing correctness gate).

The paper's guarantees are *semantic*: every 2PP/PANDA-derived plan must
return exactly the answers of the conjunctive query under the access
pattern.  This package provides the reference implementation those
guarantees are checked against:

* :mod:`repro.oracle.brute_force` — naive backtracking evaluation over raw
  tuple sets, sharing **no** code with the planner, the decompositions, or
  the :class:`~repro.data.relation.Relation` operators;
* :mod:`repro.oracle.diff` — per-binding answer diffing
  (:func:`assert_equivalent`) that pinpoints missing/extra tuples and
  renders a minimal reproduction.

Every execution path in the repo (``answer_from_scratch``, ``CQAPIndex``,
``PreparedQuery.probe``/``probe_many``) is compared against this oracle by
``repro.workloads.differential`` in tier-1 tests and the CI fuzz-smoke job.
"""

from repro.oracle.brute_force import (
    oracle_evaluate,
    oracle_probe,
    oracle_probe_many,
)
from repro.oracle.diff import (
    BindingDiff,
    EquivalenceReport,
    OracleMismatch,
    answer_rows,
    assert_equivalent,
    compare_answers,
)

__all__ = [
    "BindingDiff",
    "EquivalenceReport",
    "OracleMismatch",
    "answer_rows",
    "assert_equivalent",
    "compare_answers",
    "oracle_evaluate",
    "oracle_probe",
    "oracle_probe_many",
]
