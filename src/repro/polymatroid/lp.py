"""A small named-variable linear-programming layer over scipy.

``scipy.optimize.linprog`` wants dense matrices and anonymous columns; the
tradeoff layer wants to say ``h_S({x1,x3}) - h_S({x1}) <= log N``.  This
module bridges the two, and exposes dual values so witnesses of Shannon-flow
inequalities can be extracted (Theorem D.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog


class LPError(RuntimeError):
    """Raised when an LP terminates abnormally (not infeasible/unbounded)."""


@dataclass
class LPSolution:
    """Solved LP: status plus primal/dual values keyed by names."""

    status: str  # "optimal" | "infeasible" | "unbounded"
    objective: Optional[float]
    values: Dict[Hashable, float] = field(default_factory=dict)
    duals: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def __getitem__(self, name: Hashable) -> float:
        return self.values[name]


class LinearProgram:
    """Incrementally built LP: named variables, <=/==/>= constraints."""

    def __init__(self) -> None:
        self._var_index: Dict[Hashable, int] = {}
        self._lower: List[float] = []
        self._upper: List[float] = []
        self._rows_ub: List[Dict[int, float]] = []
        self._rhs_ub: List[float] = []
        self._names_ub: List[Hashable] = []
        self._rows_eq: List[Dict[int, float]] = []
        self._rhs_eq: List[float] = []
        self._objective: Dict[int, float] = {}
        self._maximize = True

    # ------------------------------------------------------------------
    def variable(self, name: Hashable, lower: float = 0.0,
                 upper: float = np.inf) -> Hashable:
        """Declare (or fetch) a variable; returns the name for chaining."""
        if name not in self._var_index:
            self._var_index[name] = len(self._var_index)
            self._lower.append(lower)
            self._upper.append(upper)
        return name

    def _row(self, coeffs: Dict[Hashable, float]) -> Dict[int, float]:
        row: Dict[int, float] = {}
        for name, coef in coeffs.items():
            if coef == 0:
                continue
            if name not in self._var_index:
                self.variable(name)
            row[self._var_index[name]] = row.get(self._var_index[name], 0.0) + coef
        return row

    def add_le(self, coeffs: Dict[Hashable, float], rhs: float,
               name: Hashable = None) -> None:
        """Add ``sum coeffs <= rhs``."""
        self._rows_ub.append(self._row(coeffs))
        self._rhs_ub.append(rhs)
        self._names_ub.append(name if name is not None
                              else f"ub{len(self._rhs_ub)}")

    def add_ge(self, coeffs: Dict[Hashable, float], rhs: float,
               name: Hashable = None) -> None:
        """Add ``sum coeffs >= rhs`` (stored as negated <=)."""
        self.add_le({k: -v for k, v in coeffs.items()}, -rhs, name=name)

    def add_eq(self, coeffs: Dict[Hashable, float], rhs: float) -> None:
        self._rows_eq.append(self._row(coeffs))
        self._rhs_eq.append(rhs)

    def set_objective(self, coeffs: Dict[Hashable, float],
                      maximize: bool = True) -> None:
        self._objective = dict(self._row(coeffs))
        self._maximize = maximize

    def clone(self) -> "LinearProgram":
        """A copy safe to extend without mutating this program.

        Rows are append-only (``add_le``/``add_ge``/``add_eq`` build fresh
        dicts and never mutate existing ones), so cloning shares the row
        dicts and copies only the list/scalar containers.  This makes
        solve-many-variants workflows — the size-bound oracle adds a
        target row and an objective per query on top of one polymatroid
        cone — cheap: the cone is built once and cloned per solve.
        """
        new = LinearProgram()
        new._var_index = dict(self._var_index)
        new._lower = list(self._lower)
        new._upper = list(self._upper)
        new._rows_ub = list(self._rows_ub)
        new._rhs_ub = list(self._rhs_ub)
        new._names_ub = list(self._names_ub)
        new._rows_eq = list(self._rows_eq)
        new._rhs_eq = list(self._rhs_eq)
        new._objective = dict(self._objective)
        new._maximize = self._maximize
        return new

    # ------------------------------------------------------------------
    def solve(self) -> LPSolution:
        """Run HiGHS and translate the result."""
        n = len(self._var_index)
        c = np.zeros(n)
        for idx, coef in self._objective.items():
            c[idx] = -coef if self._maximize else coef

        def densify(rows: List[Dict[int, float]]) -> Optional[np.ndarray]:
            if not rows:
                return None
            mat = np.zeros((len(rows), n))
            for i, row in enumerate(rows):
                for j, coef in row.items():
                    mat[i, j] = coef
            return mat

        a_ub = densify(self._rows_ub)
        a_eq = densify(self._rows_eq)
        res = linprog(
            c,
            A_ub=a_ub,
            b_ub=np.array(self._rhs_ub) if self._rhs_ub else None,
            A_eq=a_eq,
            b_eq=np.array(self._rhs_eq) if self._rhs_eq else None,
            bounds=list(zip(self._lower, self._upper)),
            method="highs",
        )
        if res.status == 2:
            return LPSolution("infeasible", None)
        if res.status == 3:
            return LPSolution("unbounded", None)
        if res.status != 0:
            raise LPError(f"linprog failed: {res.message}")
        objective = -res.fun if self._maximize else res.fun
        values = {
            name: float(res.x[idx]) for name, idx in self._var_index.items()
        }
        duals: Dict[Hashable, float] = {}
        if a_ub is not None and res.ineqlin is not None:
            for row_name, marginal in zip(self._names_ub,
                                          res.ineqlin.marginals):
                # HiGHS marginals are <= 0 for binding <= rows under
                # minimization; flip sign so duals are the usual >= 0
                # multipliers of the stated inequality.
                duals[row_name] = float(-marginal)
        return LPSolution("optimal", float(objective), values, duals)
