"""Shannon-flow inequalities and proof sequences (Appendix D.1).

A Shannon-flow inequality ``⟨δ, h⟩ ≥ ⟨λ, h⟩`` lives over *conditional
polymatroid* coordinates ``h(Y|X)`` indexed by pairs ``∅ ⊆ X ⊂ Y ⊆ [n]``.
A *proof sequence* derives it step by step using four rules:

====  =================  ===============================================
R1    submodularity      consume  h(I | I∩J)   produce  h(I∪J | J)
R2    monotonicity       consume  h(Y | ∅)     produce  h(X | ∅)
R3    composition        consume  h(Y|X), h(X|∅)  produce  h(Y | ∅)
R4    decomposition      consume  h(Y | ∅)     produce  h(Y|X), h(X|∅)
====  =================  ===============================================

Each rule's "consumed minus produced" pairing is nonnegative on every
polymatroid, so ``⟨δ_i, h⟩`` decreases monotonically along a valid sequence.
The :class:`ProofSequence` verifier checks — in exact rational arithmetic —
that every intermediate coefficient vector stays nonnegative and that the
final vector dominates the target (conditions (3) and (4) of the paper's
definition).

The PANDA evaluator consumes these same step objects, interpreting each as a
relational operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.polymatroid.lattice import SubsetSpace

Coord = Tuple[int, int]  # (X mask, Y mask) with X ⊂ Y
Vector = Dict[Coord, Fraction]


def _check_coord(x: int, y: int) -> None:
    if x & ~y or x == y:
        raise ValueError(f"invalid conditional coordinate X={x}, Y={y}")


def make_vector(entries: Dict[Coord, object]) -> Vector:
    """Normalize an entries dict into a Fraction-valued vector."""
    out: Vector = {}
    for (x, y), value in entries.items():
        _check_coord(x, y)
        frac = Fraction(value)
        if frac:
            out[(x, y)] = frac
    return out


def vector_ge(a: Vector, b: Vector) -> bool:
    """Pointwise ``a >= b``."""
    keys = set(a) | set(b)
    return all(a.get(k, Fraction(0)) >= b.get(k, Fraction(0)) for k in keys)


def vector_nonnegative(a: Vector) -> bool:
    return all(v >= 0 for v in a.values())


@dataclass(frozen=True)
class ProofStep:
    """One weighted application of rules R1-R4.

    ``kind`` is one of ``"submodularity" | "monotonicity" | "composition" |
    "decomposition"``; the masks parameterize the rule as in the table above.
    """

    kind: str
    # R1 uses (i_mask, j_mask); R2-R4 use (x_mask, y_mask)
    first: int
    second: int
    weight: Fraction = Fraction(1)

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("proof step weights must be positive")
        if self.kind == "submodularity":
            i, j = self.first, self.second
            if i & ~j == 0 or j & ~i == 0:
                raise ValueError(
                    "submodularity needs incomparable sets I ⊥ J"
                )
        elif self.kind in ("monotonicity", "composition", "decomposition"):
            _check_coord(self.first, self.second)
        else:
            raise ValueError(f"unknown proof step kind {self.kind!r}")

    # ------------------------------------------------------------------
    def consumed(self) -> List[Tuple[Coord, Fraction]]:
        """Coordinates this step consumes (must be present in δ)."""
        w = self.weight
        if self.kind == "submodularity":
            i, j = self.first, self.second
            return [(((i & j), i), w)]
        if self.kind == "monotonicity":
            return [((0, self.second), w)]
        if self.kind == "composition":
            x, y = self.first, self.second
            return [((x, y), w), ((0, x), w)]
        # decomposition
        return [((0, self.second), w)]

    def produced(self) -> List[Tuple[Coord, Fraction]]:
        """Coordinates this step produces."""
        w = self.weight
        if self.kind == "submodularity":
            i, j = self.first, self.second
            return [((j, i | j), w)]
        if self.kind == "monotonicity":
            return [((0, self.first), w)]
        if self.kind == "composition":
            return [((0, self.second), w)]
        # decomposition
        x, y = self.first, self.second
        return [((x, y), w), ((0, x), w)]

    def apply(self, delta: Vector) -> Vector:
        """Return δ + w·step; raises if any coefficient would go negative."""
        out = dict(delta)
        for coord, amount in self.consumed():
            new = out.get(coord, Fraction(0)) - amount
            if new < 0:
                raise ValueError(
                    f"step {self} consumes {amount} at {coord} but only "
                    f"{out.get(coord, Fraction(0))} is available"
                )
            if new:
                out[coord] = new
            else:
                out.pop(coord, None)
        for coord, amount in self.produced():
            out[coord] = out.get(coord, Fraction(0)) + amount
        return out

    def describe(self, space: Optional[SubsetSpace] = None) -> str:
        label = (lambda m: space.label(m)) if space else str
        if self.kind == "submodularity":
            return (f"{self.weight}·submod: h({label(self.first)}|"
                    f"{label(self.first & self.second)}) → "
                    f"h({label(self.first | self.second)}|{label(self.second)})")
        return (f"{self.weight}·{self.kind}: "
                f"({label(self.first)}, {label(self.second)})")


class ProofSequence:
    """An ordered list of proof steps with a machine-checked verifier."""

    def __init__(self, steps: Iterable[ProofStep]) -> None:
        self.steps: List[ProofStep] = list(steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def run(self, delta: Vector) -> Vector:
        """Apply all steps to δ, checking nonnegativity along the way."""
        current = make_vector(delta)
        for step in self.steps:
            current = step.apply(current)
        return current

    def verifies(self, delta: Vector, target: Vector) -> bool:
        """True iff the sequence proves ``⟨δ, h⟩ ≥ ⟨target, h⟩``."""
        try:
            final = self.run(delta)
        except ValueError:
            return False
        return vector_ge(final, make_vector(target))

    def explain(self, space: Optional[SubsetSpace] = None) -> str:
        return "\n".join(step.describe(space) for step in self.steps)


def submod(i: int, j: int, weight=1) -> ProofStep:
    return ProofStep("submodularity", i, j, Fraction(weight))


def mono(x: int, y: int, weight=1) -> ProofStep:
    return ProofStep("monotonicity", x, y, Fraction(weight))


def compose(x: int, y: int, weight=1) -> ProofStep:
    return ProofStep("composition", x, y, Fraction(weight))


def decompose(x: int, y: int, weight=1) -> ProofStep:
    return ProofStep("decomposition", x, y, Fraction(weight))
