"""The subset lattice over a fixed variable tuple.

The LP machinery indexes polymatroid coordinates by nonempty subsets of the
query variables.  :class:`SubsetSpace` fixes an ordering of the variables and
converts between frozensets of names and integer bitmasks, which keeps the LP
construction fast and deterministic.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.query.hypergraph import VarSet, varset


class SubsetSpace:
    """Bitmask arithmetic over a fixed ordered variable universe."""

    def __init__(self, variables: Iterable[str]) -> None:
        self.variables: Tuple[str, ...] = tuple(sorted(set(variables)))
        if not self.variables:
            raise ValueError("need at least one variable")
        self._position: Dict[str, int] = {
            v: i for i, v in enumerate(self.variables)
        }
        self.full_mask = (1 << len(self.variables)) - 1

    def __len__(self) -> int:
        return len(self.variables)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def mask(self, subset: Iterable[str]) -> int:
        """Bitmask of a set of variable names."""
        out = 0
        for var in subset:
            try:
                out |= 1 << self._position[var]
            except KeyError as exc:
                raise KeyError(
                    f"variable {var!r} not in universe {self.variables}"
                ) from exc
        return out

    def members(self, mask: int) -> VarSet:
        """Variable names present in ``mask``."""
        return varset(
            v for i, v in enumerate(self.variables) if mask >> i & 1
        )

    def label(self, mask: int) -> str:
        """Human-readable label for a mask, e.g. ``{x1,x3}``."""
        return "{" + ",".join(sorted(self.members(mask))) + "}"

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def nonempty_masks(self) -> Iterator[int]:
        """All nonempty subsets, ascending by mask value."""
        return iter(range(1, self.full_mask + 1))

    def singletons(self) -> List[int]:
        return [1 << i for i in range(len(self.variables))]

    def strict_pairs(self) -> Iterator[Tuple[int, int]]:
        """All (X, Y) with ∅ ⊆ X ⊂ Y ⊆ [n] as mask pairs (X may be 0)."""
        for y in range(1, self.full_mask + 1):
            x = (y - 1) & y
            while True:
                yield (x, y)
                if x == 0:
                    break
                x = (x - 1) & y

    def subsets_of(self, mask: int, proper: bool = False) -> Iterator[int]:
        """All subsets of ``mask`` (including 0; excluding mask if proper)."""
        sub = mask
        while True:
            if not (proper and sub == mask):
                yield sub
            if sub == 0:
                break
            sub = (sub - 1) & mask
