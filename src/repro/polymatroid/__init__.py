"""Polymatroid cone, LP layer, and Shannon-flow proof calculus."""

from repro.polymatroid.cone import add_polymatroid_constraints, elemental_inequalities
from repro.polymatroid.lattice import SubsetSpace
from repro.polymatroid.lp import LinearProgram, LPError, LPSolution
from repro.polymatroid.shannon import (
    ProofSequence,
    ProofStep,
    compose,
    decompose,
    make_vector,
    mono,
    submod,
    vector_ge,
    vector_nonnegative,
)

__all__ = [
    "LinearProgram",
    "LPError",
    "LPSolution",
    "ProofSequence",
    "ProofStep",
    "SubsetSpace",
    "add_polymatroid_constraints",
    "compose",
    "decompose",
    "elemental_inequalities",
    "make_vector",
    "mono",
    "submod",
    "vector_ge",
    "vector_nonnegative",
]
