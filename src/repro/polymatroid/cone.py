"""The polymatroid cone Γ_n as LP constraints.

A set function ``h : 2^[n] → R+`` with ``h(∅) = 0`` is a polymatroid iff it
is monotone and submodular.  Rather than emitting the paper's full constraint
list (every ``I ⊥ J`` pair), we use the standard *elemental* characterization,
which is equivalent and much smaller:

* monotonicity at the top: ``h([n]) ≥ h([n] \\ {i})`` for every i;
* elemental submodularity: ``h(A∪i) + h(A∪j) ≥ h(A∪i∪j) + h(A)`` for every
  pair ``i ≠ j`` and every ``A ⊆ [n] \\ {i, j}``.

Every monotonicity/submodularity inequality is a nonnegative combination of
these, so the feasible region is exactly Γ_n (``test_cone_equivalence``
checks a sample of derived inequalities).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, List, Tuple

from repro.polymatroid.lattice import SubsetSpace
from repro.polymatroid.lp import LinearProgram


def elemental_inequalities(space: SubsetSpace) -> Iterator[Tuple[Dict[int, float], str]]:
    """Yield (coeffs-by-mask, label) rows meaning ``sum coeffs >= 0``."""
    n = len(space)
    full = space.full_mask
    # top monotonicity: h(full) - h(full \ {i}) >= 0
    for i in range(n):
        rest = full & ~(1 << i)
        coeffs = {full: 1.0}
        if rest:
            coeffs[rest] = coeffs.get(rest, 0.0) - 1.0
        yield coeffs, f"mono_top_{i}"
    # elemental submodularity
    for i in range(n):
        for j in range(i + 1, n):
            bi, bj = 1 << i, 1 << j
            others = full & ~(bi | bj)
            sub = others
            while True:
                a = sub
                coeffs = {}
                for mask, delta in ((a | bi, 1.0), (a | bj, 1.0),
                                    (a | bi | bj, -1.0), (a, -1.0)):
                    if mask:  # h(∅) = 0 is implicit
                        coeffs[mask] = coeffs.get(mask, 0.0) + delta
                yield coeffs, f"submod_{i}_{j}_{a}"
                if sub == 0:
                    break
                sub = (sub - 1) & others


def add_polymatroid_constraints(
    lp: LinearProgram,
    space: SubsetSpace,
    var: Callable[[int], Hashable],
    tag: str = "h",
) -> None:
    """Constrain ``{var(mask)}`` to be a polymatroid over ``space``.

    ``var(mask)`` names the LP variable holding ``h(members(mask))``; all
    variables get a zero lower bound (nonnegativity), and the elemental
    inequalities above enforce monotonicity + submodularity.
    """
    for mask in space.nonempty_masks():
        lp.variable(var(mask), lower=0.0)
    for coeffs, label in elemental_inequalities(space):
        lp.add_ge({var(mask): c for mask, c in coeffs.items()}, 0.0,
                  name=(tag, label))
