"""Differential harness: every execution path vs the brute-force oracle.

For each workload (seeded random query + database + probe stream) the
harness computes the exact per-binding answers with ``repro.oracle`` and
then diffs eight checks across the repo's answer stacks against them:

* ``from_scratch``   — ``CQAP.answer_from_scratch`` (textbook join path);
* ``index_lean``     — ``CQAPIndex.answer`` at a tiny space budget, so the
  plans lean on the online phase (TwoPhaseExecutor T-phase + Online
  Yannakakis);
* ``index_medium``   — ``CQAPIndex.answer`` at a data-linear budget, the
  regime where budgeted rule selection actually has to trade S-routes
  against T-routes;
* ``index_rich``     — ``CQAPIndex.answer`` at an ample budget, so
  preprocessing materializes S-targets and the online phase serves off the
  prepared views (plus an ``answer_batch`` union check);
* ``engine_probe`` / ``engine_probe_many`` — the serving engine
  (``PreparedQuery``) over the prepared indexes, cache and batch dedupe
  included;
* ``*_columnar`` — the same index/engine/serving stacks re-run with
  ``relation_backend="columnar"`` (batch-kernel relations); each columnar
  path diffs against the oracle *and* must be bit-identical to its
  set-backend sibling (the drop-in contract of the backend swap).  The
  columnar process path uses a single partitioned shard count — its job
  is to fuzz columnar payload pickling and worker-side cache rebuilds,
  not to re-sweep shard counts;
* ``serving_sharded`` / ``serving_process`` — the serving layer
  (``repro.serving``) through the one public entry point
  ``serve(prepared, backend=...)``: the same prepared index
  hash-partitioned across every shard count in ``SHARD_SWEEP``
  (``PROCESS_SHARD_SWEEP`` for the process fleet, whose workers rebuild
  their shard state in their own processes) and probed in batches.  The
  two paths differ *only* in the ``backend=`` argument — exactly the
  drop-in contract the API promises — and beyond the oracle diff each
  asserts *shard-count invariance*: answers must be bit-identical across
  shard counts;
* ``update_replay`` / ``update_replay_columnar`` /
  ``update_replay_process`` — seeded insert/delete scripts replayed
  through ``index.apply_delta`` with a ``PreparedQuery`` *and* a full
  ``serve()`` stack listening on the **same** index (the multi-listener
  configuration production would run).  After every step both the
  engine path and the serving path are diffed against the oracle on a
  mirror database mutated in lockstep; probe keys rotate so the same
  binding is asked before and after the mutations that affect it, which
  turns a missed cache eviction into a visible stale answer.  After the
  script, the replayed index must agree binding-for-binding with an
  index rebuilt from scratch on the final database (replay == rebuild).
  The thread path runs with a deliberately tight ``staleness_threshold``
  so drift-triggered re-selection (and every listener's rebind-on-
  reselect flow) is fuzzed too.

The three index paths sweep ``space_budget`` ∈ {tight, medium, ∞} per
scenario, and every index is built through the budget-aware rule-selection
pipeline (``rule_selection="auto"``; no PMTD truncation — large PMTD
sets go through the beam selection instead of being cut off), so every
budget setting of the selection subsystem is fuzzed against the oracle.
The sweep additionally asserts the selection ledger's *route-stability*
invariant: re-routing each preprocessed index's rule set across the
sorted budgets, a rule routed S under budget B must stay routed S under
every B' ≥ B (``repro.tradeoff.selection.evaluate_rules`` freezes its
paying prefix precisely to guarantee this).

A scenario that fails is reproducible from its seed alone: every recorded
disagreement carries the seed, the binding, the tuple diff, and a ready-to-
paste command line.  Run directly::

    PYTHONPATH=src python -m repro.workloads.differential \
        --scenarios 200 --seed 12345

which is exactly what the CI fuzz-smoke job does — a fixed seed block
as the merge gate plus a rotating exploration seed (echoed into the log
so any red run can be replayed locally) — and what
``tests/test_differential.py`` does with small fixed seeds in tier-1.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.index import CQAPIndex
from repro.core.two_phase import PlanningError
from repro.data.relation import Relation
from repro.engine.prepared import PreparedQuery
from repro.oracle import answer_rows, compare_answers, oracle_probe_many
from repro.workloads.workload import Workload, make_workload, workload_suite

Row = Tuple[object, ...]
AnswerSet = FrozenSet[Row]

PATHS: Tuple[str, ...] = (
    "from_scratch",
    "index_lean",
    "index_medium",
    "index_rich",
    "engine_probe",
    "engine_probe_many",
    "serving_sharded",
    "serving_process",
    "index_lean_columnar",
    "index_medium_columnar",
    "index_rich_columnar",
    "engine_probe_columnar",
    "engine_probe_many_columnar",
    "serving_sharded_columnar",
    "serving_process_columnar",
    "update_replay",
    "update_replay_columnar",
    "update_replay_process",
    "serving_observability",
)

LEAN_BUDGET = 2
RICH_BUDGET = 10 ** 7

#: shard counts the sharded serving path must agree across (1 = unsharded
#: reference; 4 and 7 exercise even and non-divisor partition shapes)
SHARD_SWEEP: Tuple[int, ...] = (1, 4, 7)

#: shard counts for the process fleet — worker start-up costs real time
#: per scenario, so the sweep is the acceptance pair {1, 4}
PROCESS_SHARD_SWEEP: Tuple[int, ...] = (1, 4)

#: the columnar process path exists to fuzz one specific risk — columnar
#: payloads pickling to workers and rebuilding their caches there — so a
#: single partitioned shard count keeps per-scenario fleet start-up cost
#: bounded (shard-count invariance is already swept on the other paths)
PROCESS_SHARD_SWEEP_COLUMNAR: Tuple[int, ...] = (2,)

#: batch width the sharded path chunks each probe stream into
SHARD_BATCH = 3

#: update-replay script lengths: the thread paths replay a longer script
#: (delta work is in-process, cheap); the process path pays a worker
#: round-trip per step, so its script is shorter — its job is to fuzz
#: the parent→worker delta shipping, not script length
UPDATE_STEPS = 8
UPDATE_STEPS_PROCESS = 4

#: probes re-checked after every update step; the window slides through
#: the workload's probe stream so keys repeat across steps
UPDATE_PROBES_PER_STEP = 4

#: drift threshold for the thread update path — tight enough that long
#: scripts occasionally push measured statistics past it, so the
#: reselect→listener-rebind flow gets fuzzed too (the process path keeps
#: the 0.5 default: a reselect respawns every worker, too slow to pay
#: per scenario)
UPDATE_STALENESS = 0.15

#: keep fuzz planning cheap: beyond this many PMTDs the index switches to
#: budgeted beam selection (the default auto behavior, tightened so rule
#: counts stay near the old MAX_PMTDS=4 cap without discarding tradeoffs
#: arbitrarily)
AUTO_SELECT_THRESHOLD = 4


def scenario_budgets(db) -> Dict[str, float]:
    """The tight/medium/∞ budget sweep for one workload's database."""
    return {
        "index_lean": LEAN_BUDGET,
        "index_medium": max(LEAN_BUDGET + 1, db.size),
        "index_rich": RICH_BUDGET,
    }


@dataclass
class Disagreement:
    """One oracle mismatch (or crash), with a minimal reproduction."""

    seed: int
    path: str
    detail: str
    repro: str

    def describe(self) -> str:
        return (f"seed={self.seed} path={self.path}: {self.detail}\n"
                f"    repro: {self.repro}")


@dataclass
class ScenarioOutcome:
    """What happened on one workload."""

    workload: Workload
    comparisons: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)
    skips: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements


@dataclass
class DifferentialSummary:
    """Aggregate over a whole run of scenarios."""

    base_seed: int
    scenarios: int = 0
    comparisons: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)
    skips: List[Tuple[int, str, str]] = field(default_factory=list)
    #: path -> number of scenarios in which it actually ran (not skipped)
    path_runs: Dict[str, int] = field(default_factory=dict)

    @property
    def uncovered_paths(self) -> Tuple[str, ...]:
        """Paths that ran in *no* scenario — a degraded gate, not a pass.

        Only meaningful on multi-scenario runs: a single-scenario replay
        may legitimately skip a path (e.g. a lean-budget PlanningError).
        """
        if self.scenarios <= 1:
            return ()
        return tuple(p for p in PATHS if not self.path_runs.get(p))

    @property
    def ok(self) -> bool:
        return not self.disagreements and not self.uncovered_paths

    def describe(self) -> str:
        runs = " ".join(f"{p}={self.path_runs.get(p, 0)}" for p in PATHS)
        line = (f"DIFFERENTIAL base_seed={self.base_seed} "
                f"scenarios={self.scenarios} paths={len(PATHS)} "
                f"comparisons={self.comparisons} "
                f"disagreements={len(self.disagreements)} "
                f"skips={len(self.skips)}\n  path runs: {runs}")
        if self.uncovered_paths:
            line += ("\n  COVERAGE FAILURE: paths never ran: "
                     + ", ".join(self.uncovered_paths))
        if self.disagreements:
            line += "\n" + "\n".join(d.describe()
                                     for d in self.disagreements)
        return line


def _repro_command(seed: int,
                   pins: Optional[Dict[str, str]] = None) -> str:
    """The exact CLI replay for one scenario.

    ``pins`` are the generator dimensions the original run fixed (shape /
    profile / probe kind).  They must be replayed identically: pinning a
    dimension skips its seeded draw, so an unpinned rerun of the same seed
    would generate a *different* scenario.
    """
    flags = "".join(
        f" --{flag} {value}" for flag, value in (pins or {}).items()
        if value is not None
    )
    return ("PYTHONPATH=src python -m repro.workloads.differential "
            f"--seed {seed} --scenarios 1{flags} --verbose")


def _scratch_answers(workload: Workload,
                     bindings: Sequence[Row]) -> Dict[Row, AnswerSet]:
    """Batched ``answer_from_scratch`` output, regrouped per binding."""
    cqap = workload.cqap
    request = Relation("Q_A", cqap.access, bindings)
    result = cqap.answer_from_scratch(workload.db, request)
    head = tuple(cqap.head)
    rows = answer_rows(result, head)
    access_pos = tuple(head.index(v) for v in cqap.access)
    grouped: Dict[Row, set] = {b: set() for b in bindings}
    for row in rows:
        key = tuple(row[p] for p in access_pos)
        # rows for unrequested bindings are kept: compare_answers treats
        # actual-only keys as all-extra, so over-answering is flagged
        # instead of silently dropped
        grouped.setdefault(key, set()).add(row)
    return {b: frozenset(s) for b, s in grouped.items()}


def _run_update_replay(outcome: ScenarioOutcome, workload: Workload,
                       repro: str, path: str, relation_backend: str,
                       serve_backend: str, n_shards: int, steps: int,
                       staleness_threshold: float = 0.5) -> None:
    """Replay a seeded insert/delete script through one live stack.

    One index carries several simultaneous delta listeners — a
    ``PreparedQuery`` plus a ``serve()`` backend with its scheduler
    cache — and after every step both the engine path and the serving
    path are diffed against the brute-force oracle on a mirror database
    mutated in lockstep.  The script deletes rows that are actually
    present and inserts recombinations of the original column domains
    (occasionally re-inserting a previously deleted row); probe keys
    rotate so the same binding is asked before and after the mutations
    that affect it, which turns a missed cache eviction into a visible
    stale answer.  After the script, the replayed index must agree
    binding-for-binding with an index rebuilt from scratch on the final
    database.
    """
    import random

    from repro.serving import serve, validate_stats

    cqap = workload.cqap
    head = tuple(cqap.head)
    seed = workload.seed
    budget = max(LEAN_BUDGET + 1, workload.db.size)
    live = workload.db.copy()
    mirror = workload.db.copy()
    try:
        index = CQAPIndex(
            cqap, live, budget,
            auto_select_threshold=AUTO_SELECT_THRESHOLD,
            relation_backend=relation_backend,
            staleness_threshold=staleness_threshold,
        ).preprocess(verify_plans=True)
    except PlanningError as exc:
        outcome.skips.append((path, f"PlanningError: {exc}"))
        return
    except Exception as exc:
        outcome.disagreements.append(Disagreement(
            seed, path, f"preprocess raised {exc!r}", repro))
        return

    rng = random.Random(seed * 7919 + steps)
    names = sorted({atom.relation for atom in cqap.atoms})
    pools = {
        name: [sorted({row[i] for row in mirror[name].tuples})
               for i in range(len(mirror[name].schema))]
        for name in names
    }
    insertable = [name for name in names if all(pools[name])]
    probe_cycle = list(dict.fromkeys(workload.probes))
    if not probe_cycle:
        outcome.skips.append((path, "workload has no probes"))
        return

    deleted: List[Tuple[str, Row]] = []
    pq = PreparedQuery(index, cache_size=workload.cache_size)
    server = None
    try:
        server = serve(index, backend=serve_backend, shards=n_shards,
                       batch_size=SHARD_BATCH,
                       cache_size=workload.cache_size,
                       inline_threshold=0)
        for step in range(steps):
            deletable = [name for name in names if mirror[name].tuples]
            if deleted and rng.random() < 0.25:
                # re-insert a previously deleted row: exercises the
                # delete-then-insert round trip on the same tuple
                name, row = deleted.pop(rng.randrange(len(deleted)))
                op = "insert"
            elif deletable and (not insertable or rng.random() < 0.45):
                op = "delete"
                name = rng.choice(deletable)
                row = rng.choice(sorted(mirror[name].tuples))
            elif insertable:
                op = "insert"
                name = rng.choice(insertable)
                row = tuple(rng.choice(pool) for pool in pools[name])
            else:
                outcome.skips.append((path, "database has no usable rows"))
                return
            index.apply_delta(op, name, row)
            if op == "insert":
                mirror.insert(name, row)
            else:
                mirror.delete(name, row)
                deleted.append((name, row))

            lo = (step * UPDATE_PROBES_PER_STEP) % len(probe_cycle)
            sample = list(dict.fromkeys(
                probe_cycle[(lo + j) % len(probe_cycle)]
                for j in range(UPDATE_PROBES_PER_STEP)
            ))
            want = oracle_probe_many(cqap, mirror, sample)
            got = {b: answer_rows(rel, head)
                   for b, rel in pq.probe_many(sample).items()}
            report = compare_answers(want, got, path=path,
                                     context={"seed": seed, "step": step})
            outcome.comparisons += report.bindings_checked
            for diff in report.diffs:
                outcome.disagreements.append(Disagreement(
                    seed, f"{path}.step{step}", diff.describe(), repro))
            served = {key: answer_rows(rel, head)
                      for key, rel in server.serve(sample)}
            report = compare_answers(want, served, path=f"{path}.serving",
                                     context={"seed": seed, "step": step})
            outcome.comparisons += report.bindings_checked
            for diff in report.diffs:
                outcome.disagreements.append(Disagreement(
                    seed, f"{path}.serving.step{step}", diff.describe(),
                    repro))

        # sanctioned update-path replans must not flip the anomaly flag
        outcome.comparisons += 1
        if pq.replanned:
            outcome.disagreements.append(Disagreement(
                seed, path,
                "PreparedQuery.replanned flipped during update replay",
                repro))
        stats = server.stats()
        validate_stats(stats)
        outcome.comparisons += 1
        if stats["updates"] is None:
            outcome.disagreements.append(Disagreement(
                seed, path, "stats envelope lost its updates section",
                repro))

        # -- replay == rebuild: the replayed index must be answer-
        # equivalent to an index built from scratch on the final database
        try:
            rebuilt = CQAPIndex(
                cqap, mirror.copy(), budget,
                auto_select_threshold=AUTO_SELECT_THRESHOLD,
                relation_backend=relation_backend,
            ).preprocess(verify_plans=True)
        except PlanningError as exc:
            outcome.skips.append((f"{path}.rebuild",
                                  f"PlanningError: {exc}"))
            return
        for binding in probe_cycle:
            outcome.comparisons += 1
            replayed = answer_rows(index.answer(binding), head)
            fresh = answer_rows(rebuilt.answer(binding), head)
            if replayed != fresh:
                outcome.disagreements.append(Disagreement(
                    seed, f"{path}.rebuild",
                    f"replayed index disagrees with rebuilt index at "
                    f"{binding}: replay-only {sorted(replayed - fresh)} "
                    f"rebuild-only {sorted(fresh - replayed)}", repro))
    except Exception as exc:
        outcome.disagreements.append(Disagreement(
            seed, path, f"raised {exc!r}", repro))
    finally:
        if server is not None:
            server.close()


def run_scenario(workload: Workload,
                 pins: Optional[Dict[str, str]] = None) -> ScenarioOutcome:
    """Diff every execution path against the oracle on one workload.

    ``pins`` names the generator dimensions that were pinned when
    ``workload`` was made (see :func:`_repro_command`).
    """
    outcome = ScenarioOutcome(workload)
    cqap, db = workload.cqap, workload.db
    head = tuple(cqap.head)
    seed = workload.seed
    repro = _repro_command(seed, pins)

    expected = oracle_probe_many(cqap, db, workload.probes)
    unique: List[Row] = list(expected)

    #: path -> its produced answers; feeds the cross-backend identity diff
    produced: Dict[str, Dict[Row, AnswerSet]] = {}

    def check(path: str, actual: Dict[Row, AnswerSet]) -> None:
        produced[path] = actual
        report = compare_answers(expected, actual, path=path,
                                 context={"seed": seed})
        outcome.comparisons += report.bindings_checked
        for diff in report.diffs:
            outcome.disagreements.append(
                Disagreement(seed, path, diff.describe(), repro)
            )

    def run(path: str, thunk) -> None:
        try:
            check(path, thunk())
        except Exception as exc:  # a crash is a failure, not a skip
            outcome.disagreements.append(
                Disagreement(seed, path, f"raised {exc!r}", repro)
            )

    # -- path 1: the textbook from-scratch evaluator --------------------
    run("from_scratch", lambda: _scratch_answers(workload, unique))

    # -- paths 2-4 (x2 backends): CQAPIndex across the budget sweep -----
    # catalog statistics depend only on (cqap, db): measure once, share
    # across the three budget points and both relation backends
    from repro.tradeoff.cost import CatalogStatistics

    statistics = CatalogStatistics.from_database(cqap, db)
    indexes: Dict[str, CQAPIndex] = {}
    for backend, suffix in (("set", ""), ("columnar", "_columnar")):
        for base_path, budget in scenario_budgets(db).items():
            path = base_path + suffix
            try:
                indexes[path] = CQAPIndex(
                    cqap, db, budget,
                    auto_select_threshold=AUTO_SELECT_THRESHOLD,
                    statistics=statistics,
                    relation_backend=backend,
                ).preprocess(verify_plans=True)
            except PlanningError as exc:
                # legitimately infeasible at this budget (S-only rules)
                outcome.skips.append((path, f"PlanningError: {exc}"))
                continue
            except Exception as exc:
                outcome.disagreements.append(
                    Disagreement(seed, path,
                                 f"preprocess raised {exc!r}", repro)
                )
                continue
            index = indexes[path]
            run(path, lambda index=index: {
                b: answer_rows(index.answer(b), head) for b in unique
            })
            if base_path == "index_rich":
                # batching must equal the union of the per-binding answers
                try:
                    batch = answer_rows(index.answer_batch(unique), head)
                    union = frozenset().union(*expected.values()) \
                        if expected else frozenset()
                    outcome.comparisons += 1
                    if batch != union:
                        outcome.disagreements.append(Disagreement(
                            seed, f"{path}.answer_batch",
                            f"missing {sorted(union - batch)} "
                            f"extra {sorted(batch - union)}", repro,
                        ))
                except Exception as exc:
                    outcome.disagreements.append(Disagreement(
                        seed, f"{path}.answer_batch",
                        f"raised {exc!r}", repro,
                    ))

    # -- route-stability invariant of the selection ledger --------------
    # re-route each preprocessed index's selected rule set across the
    # sorted budget sweep: the S-routed set must grow monotonically with
    # the budget (a rule routed S at B stays S at B' >= B)
    from repro.tradeoff.selection import evaluate_rules

    sweep = sorted(scenario_budgets(db).values())
    for path, index in indexes.items():
        if path.endswith("_columnar"):
            continue  # planning is backend-independent; check once
        try:
            previous = None
            for budget in sweep:
                _, _, routed, _ = evaluate_rules(
                    index.selection.rules, index.cost_model, budget
                )
                s_routed = {est.rule.label for est in routed
                            if est.route == "S"}
                outcome.comparisons += 1
                if previous is not None and not previous <= s_routed:
                    outcome.disagreements.append(Disagreement(
                        seed, f"{path}.route_stability",
                        f"rules {sorted(previous - s_routed)} lost their "
                        f"S-route when the budget grew to {budget:g}",
                        repro,
                    ))
                previous = s_routed
        except Exception as exc:
            outcome.disagreements.append(Disagreement(
                seed, f"{path}.route_stability", f"raised {exc!r}", repro,
            ))

    # -- paths 5-6 (x2 backends): the serving engine over the prepared
    # indexes
    def engine_probe_path(probe_index):
        def thunk() -> Dict[Row, AnswerSet]:
            pq = PreparedQuery(probe_index,
                               cache_size=workload.cache_size)
            out: Dict[Row, AnswerSet] = {}
            for binding in workload.probes:  # duplicates exercise the cache
                out[binding] = answer_rows(pq.probe(binding), head)
            if pq.replanned:
                raise AssertionError("probe path re-planned")
            return out
        return thunk

    def engine_probe_many_path(batch_index):
        def thunk() -> Dict[Row, AnswerSet]:
            pq = PreparedQuery(batch_index,
                               cache_size=workload.cache_size)
            first = pq.probe_many(workload.probes)
            again = pq.probe_many(workload.probes)  # cache-served replay
            if set(first) != set(again):
                raise AssertionError("probe_many replay changed keys")
            for key, rel in again.items():
                if answer_rows(rel, head) != answer_rows(first[key], head):
                    raise AssertionError(
                        f"probe_many replay changed answers at {key}"
                    )
            if pq.replanned:
                raise AssertionError("probe_many path re-planned")
            return {b: answer_rows(rel, head) for b, rel in first.items()}
        return thunk

    # -- paths 7-8 (x2 backends): the serving layer behind
    # serve(backend=...), invariant across shard counts; the thread and
    # process paths differ only in the backend arg
    def serving_path(batch_index, backend: str,
                     shard_sweep: Tuple[int, ...]):
        def thunk() -> Dict[Row, AnswerSet]:
            from repro.serving import serve

            per_count: Dict[int, Dict[Row, AnswerSet]] = {}
            for n_shards in shard_sweep:
                # inline_threshold=0 forces every multi-shard batch of the
                # thread backend through the concurrent pool dispatch, so
                # the riskiest branch (parallel shard groups over shared
                # read-only plan state) is the one the oracle fuzzes; the
                # process backend always dispatches to its workers
                with serve(batch_index, backend=backend,
                           shards=n_shards, batch_size=SHARD_BATCH,
                           cache_size=workload.cache_size,
                           inline_threshold=0) as server:
                    answers: Dict[Row, AnswerSet] = {}
                    for key, rel in server.serve(workload.probes):
                        answers[key] = answer_rows(rel, head)
                per_count[n_shards] = answers
            reference = per_count[shard_sweep[0]]
            for n_shards, answers in per_count.items():
                if answers != reference:
                    changed = sorted(
                        key for key in set(reference) | set(answers)
                        if answers.get(key) != reference.get(key)
                    )
                    raise AssertionError(
                        f"shard-count invariance violated: {n_shards} "
                        f"shards disagree with {shard_sweep[0]} at "
                        f"bindings {changed}"
                    )
            return reference
        return thunk

    for suffix, process_sweep in (("", PROCESS_SHARD_SWEEP),
                                  ("_columnar",
                                   PROCESS_SHARD_SWEEP_COLUMNAR)):
        probe_index = (indexes.get("index_lean" + suffix)
                       or indexes.get("index_medium" + suffix)
                       or indexes.get("index_rich" + suffix))
        if probe_index is None:
            outcome.skips.append(("engine_probe" + suffix,
                                  "no preprocessed index"))
        else:
            run("engine_probe" + suffix, engine_probe_path(probe_index))

        batch_index = (indexes.get("index_rich" + suffix)
                       or indexes.get("index_medium" + suffix)
                       or indexes.get("index_lean" + suffix))
        if batch_index is None:
            for path in ("engine_probe_many", "serving_sharded",
                         "serving_process"):
                outcome.skips.append((path + suffix,
                                      "no preprocessed index"))
        else:
            run("engine_probe_many" + suffix,
                engine_probe_many_path(batch_index))
            run("serving_sharded" + suffix,
                serving_path(batch_index, "thread", SHARD_SWEEP))
            run("serving_process" + suffix,
                serving_path(batch_index, "process", process_sweep))

    # -- path 19: serving with observability enabled --------------------
    # same thread/4-shard configuration the sharded sweep covers, but
    # with tracing on: proves the instrumented hot path is observation-
    # only (answers bit-identical to the oracle AND to the uninstrumented
    # serving_sharded run below)
    obs_index = (indexes.get("index_rich") or indexes.get("index_medium")
                 or indexes.get("index_lean"))
    if obs_index is None:
        outcome.skips.append(("serving_observability",
                              "no preprocessed index"))
    else:
        def observability_path() -> Dict[Row, AnswerSet]:
            import repro.obs as obs
            from repro.serving import serve

            with obs.tracing():
                with serve(obs_index, backend="thread", shards=4,
                           batch_size=SHARD_BATCH,
                           cache_size=workload.cache_size,
                           inline_threshold=0) as server:
                    answers = {key: answer_rows(rel, head)
                               for key, rel
                               in server.serve(workload.probes)}
                hist = obs.probe_work_histogram()
                if hist is None or hist.count == 0:
                    raise AssertionError(
                        "observability was enabled but recorded no "
                        "per-probe work observations")
            return answers

        run("serving_observability", observability_path)
        if ("serving_observability" in produced
                and "serving_sharded" in produced):
            outcome.comparisons += 1
            if produced["serving_observability"] \
                    != produced["serving_sharded"]:
                changed = sorted(
                    key for key in set(produced["serving_sharded"])
                    | set(produced["serving_observability"])
                    if produced["serving_sharded"].get(key)
                    != produced["serving_observability"].get(key)
                )
                outcome.disagreements.append(Disagreement(
                    seed, "serving_observability.bit_identity",
                    f"tracing-enabled answers differ from the "
                    f"uninstrumented serving path at bindings {changed}",
                    repro,
                ))

    # -- paths 16-18: seeded update replay ------------------------------
    _run_update_replay(outcome, workload, repro, "update_replay",
                       relation_backend="set", serve_backend="thread",
                       n_shards=4, steps=UPDATE_STEPS,
                       staleness_threshold=UPDATE_STALENESS)
    _run_update_replay(outcome, workload, repro, "update_replay_columnar",
                       relation_backend="columnar", serve_backend="thread",
                       n_shards=4, steps=UPDATE_STEPS)
    _run_update_replay(outcome, workload, repro, "update_replay_process",
                       relation_backend="set", serve_backend="process",
                       n_shards=2, steps=UPDATE_STEPS_PROCESS)

    # -- cross-backend bit-identity -------------------------------------
    # oracle agreement already implies identical answer *sets*; this diff
    # additionally pins the two backends to each other even on paths
    # where both disagreed with the oracle the same way, and documents
    # the drop-in contract as an explicit invariant
    for base in ("index_lean", "index_medium", "index_rich",
                 "engine_probe", "engine_probe_many",
                 "serving_sharded", "serving_process"):
        variant = base + "_columnar"
        if base in produced and variant in produced:
            outcome.comparisons += 1
            if produced[base] != produced[variant]:
                changed = sorted(
                    key for key in set(produced[base])
                    | set(produced[variant])
                    if produced[base].get(key)
                    != produced[variant].get(key)
                )
                outcome.disagreements.append(Disagreement(
                    seed, f"{variant}.bit_identity",
                    f"columnar answers differ from set-backend answers "
                    f"at bindings {changed}", repro,
                ))

    return outcome


#: a slack this small turns the abort limit into ~1 tuple, so any
#: designated S-target that materializes at all outgrows it
ABORT_SLACK = 1e-9


def run_abort_scenario(workload: Workload,
                       pins: Optional[Dict[str, str]] = None,
                       ) -> ScenarioOutcome:
    """Force the preprocess budget-abort fallback and oracle-check it.

    ``budget_slack`` is driven to ~0 at an ample ``space_budget``, so the
    planner happily designates S-targets and then every materialization
    outgrows the slack limit: Algorithm 1's abort flips each decision to
    the online phase with the planner's re-priced T-target.  The aborted
    index must (a) record ``budget_aborts``, (b) carry *finite* re-priced
    ``predicted_log_size`` on every decision — the selection-ledger wart
    this scenario pins — and (c) still answer every probe correctly,
    checked against the oracle through **both** ``serve()`` backends.

    Scenarios whose plans designate no S-target (nothing to abort) or
    whose rules are S-only (legitimate ``PlanningError``) are skips, not
    failures; the fixed-seed CI block picks seeds where the abort fires.
    """
    import math

    outcome = ScenarioOutcome(workload)
    cqap, db = workload.cqap, workload.db
    head = tuple(cqap.head)
    seed = workload.seed
    repro = _repro_command(seed, pins)
    expected = oracle_probe_many(cqap, db, workload.probes)

    try:
        index = CQAPIndex(
            cqap, db, RICH_BUDGET,
            auto_select_threshold=AUTO_SELECT_THRESHOLD,
            budget_slack=ABORT_SLACK,
        ).preprocess(verify_plans=True)
    except PlanningError as exc:
        outcome.skips.append(("abort", f"PlanningError: {exc}"))
        return outcome
    except Exception as exc:
        outcome.disagreements.append(Disagreement(
            seed, "abort", f"preprocess raised {exc!r}", repro))
        return outcome
    if index.executor.budget_aborts == 0:
        outcome.skips.append(
            ("abort", "no S-target designated, nothing to abort"))
        return outcome

    infinite = [
        decision.describe()
        for plan in index.plans for decision in plan.decisions
        if not math.isfinite(decision.predicted_log_size)
    ]
    outcome.comparisons += 1
    if infinite:
        outcome.disagreements.append(Disagreement(
            seed, "abort.repricing",
            f"aborted decisions kept infinite predictions: {infinite}",
            repro,
        ))

    from repro.serving import serve

    for backend in ("thread", "process"):
        path = f"abort.serving_{backend}"
        try:
            with serve(index, backend=backend, shards=2,
                       batch_size=SHARD_BATCH,
                       cache_size=workload.cache_size,
                       inline_threshold=0) as server:
                actual: Dict[Row, AnswerSet] = {}
                for key, rel in server.serve(workload.probes):
                    actual[key] = answer_rows(rel, head)
            report = compare_answers(expected, actual, path=path,
                                     context={"seed": seed})
            outcome.comparisons += report.bindings_checked
            for diff in report.diffs:
                outcome.disagreements.append(
                    Disagreement(seed, path, diff.describe(), repro))
        except Exception as exc:
            outcome.disagreements.append(Disagreement(
                seed, path, f"raised {exc!r}", repro))
    return outcome


def run_differential(scenarios: int, base_seed: int,
                     shape: Optional[str] = None,
                     profile: Optional[str] = None,
                     probe_kind: Optional[str] = None,
                     verbose: bool = False,
                     fail_fast: bool = False) -> DifferentialSummary:
    """Run ``scenarios`` seeded workloads through every execution path."""
    summary = DifferentialSummary(base_seed=base_seed)
    pins = {"shape": shape, "profile": profile, "probes": probe_kind}
    for workload in workload_suite(base_seed, scenarios, shape=shape,
                                   profile=profile, probe_kind=probe_kind):
        outcome = run_scenario(workload, pins=pins)
        summary.scenarios += 1
        summary.comparisons += outcome.comparisons
        summary.disagreements.extend(outcome.disagreements)
        skipped = {path for path, _ in outcome.skips}
        for path in PATHS:
            if path not in skipped:
                summary.path_runs[path] = summary.path_runs.get(path, 0) + 1
        summary.skips.extend(
            (workload.seed, path, reason)
            for path, reason in outcome.skips
        )
        if verbose:
            status = "ok" if outcome.ok else "DISAGREE"
            print(f"  [{status}] {workload.describe()} "
                  f"({outcome.comparisons} comparisons)")
        if fail_fast and not outcome.ok:
            break
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Differential fuzzing: all execution paths vs the "
                    "brute-force oracle."
    )
    parser.add_argument("--scenarios", type=int, default=50,
                        help="number of (query, database, probes) scenarios")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; scenario i uses seed+i")
    parser.add_argument("--shape", default=None,
                        help="pin the query shape (default: rotate)")
    parser.add_argument("--profile", default=None,
                        help="pin the database profile (default: rotate)")
    parser.add_argument("--probes", default=None, dest="probe_kind",
                        help="pin the probe-stream kind (default: rotate)")
    parser.add_argument("--verbose", action="store_true",
                        help="print one line per scenario")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first disagreeing scenario")
    args = parser.parse_args(argv)
    summary = run_differential(
        args.scenarios, args.seed, shape=args.shape, profile=args.profile,
        probe_kind=args.probe_kind, verbose=args.verbose,
        fail_fast=args.fail_fast,
    )
    print(summary.describe())
    return 0 if summary.ok else 1


if __name__ == "__main__":
    sys.exit(main())
