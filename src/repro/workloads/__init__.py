"""Randomized, reproducible CQAP workloads.

A :class:`Workload` bundles a random CQAP (random hypergraph with a random
bound/free split), a matched random database (uniform, Zipf-skewed hubs, or
planted-heavy), and a probe stream (uniform, hot-key, adversarial
cold-miss) — all derived deterministically from one integer seed, so any
scenario that ever fails is reproducible from its seed alone.

``repro.workloads.differential`` drives every execution path in the repo
over such workloads and diffs the answers against ``repro.oracle``; it is
both a tier-1 test (small fixed seeds) and the CI fuzz-smoke job (larger
budget, rotating seed).
"""

from repro.workloads.databases import DB_PROFILES, random_database
from repro.workloads.probes import PROBE_KINDS, probe_stream
from repro.workloads.queries import QUERY_SHAPES, random_cqap
from repro.workloads.workload import Workload, make_workload, workload_suite

__all__ = [
    "DB_PROFILES",
    "PROBE_KINDS",
    "QUERY_SHAPES",
    "Workload",
    "make_workload",
    "probe_stream",
    "random_cqap",
    "random_database",
    "workload_suite",
]
