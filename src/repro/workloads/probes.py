"""Probe streams for a prepared CQAP (the serving-side half of a workload).

A probe stream is a list of access-pattern bindings, duplicates included —
the engine's answer cache and batch dedupe are part of what the
differential harness checks.  Kinds:

* ``uniform`` — bindings drawn uniformly from the values actually occurring
  in the database columns of each access variable (a healthy mix of hits
  and misses);
* ``hot`` — a Zipf-hot-key stream: a couple of hot bindings dominate,
  exercising the LRU answer cache and batch dedupe;
* ``cold`` — adversarial cold misses: every binding uses values outside
  the data domain, so every answer is empty and the cache never helps;
* ``mixed`` — interleaves the above;
* ``batched`` — a serving-shaped stream drawn from a small distinct pool
  with a configurable dedupe ratio and hot-key skew
  (:func:`batched_stream` produces the same stream pre-chunked into
  batches), so batch dedupe, the answer cache, and the sharded serving
  path all see realistic redundancy.

For an empty access pattern the only possible binding is ``()`` and the
stream is just that binding repeated.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.data.database import Database
from repro.query.cq import CQAP

Row = Tuple[object, ...]

PROBE_KINDS: Tuple[str, ...] = ("uniform", "hot", "cold", "mixed",
                                "batched")

#: cold-miss bindings start here — far outside any generated domain
_COLD_BASE = 10 ** 6


def _value_pools(cqap: CQAP, db: Database) -> Dict[str, List[object]]:
    """Access variable -> values occurring in that variable's columns."""
    pools: Dict[str, set] = {v: set() for v in cqap.access}
    for atom in cqap.atoms:
        rel = db[atom.relation]
        for i, var in enumerate(atom.variables):
            if var in pools:
                for row in rel.tuples:
                    pools[var].add(row[i])
    return {v: sorted(vals) if vals else [0, 1]
            for v, vals in pools.items()}


def _uniform_binding(rng: random.Random, cqap: CQAP,
                     pools: Dict[str, List[object]]) -> Row:
    return tuple(rng.choice(pools[v]) for v in cqap.access)


def _cold_binding(rng: random.Random, cqap: CQAP) -> Row:
    return tuple(_COLD_BASE + rng.randrange(100)
                 for _ in cqap.access)


def probe_stream(cqap: CQAP, db: Database, rng: random.Random,
                 kind: Optional[str] = None, count: int = 6) -> List[Row]:
    """``count`` access bindings of the given (or drawn) kind."""
    kind = kind if kind is not None else rng.choice(PROBE_KINDS)
    if kind not in PROBE_KINDS:
        raise ValueError(
            f"unknown probe kind {kind!r}; known: {PROBE_KINDS}"
        )
    if not cqap.access:
        return [()] * count
    if kind == "batched":
        batches = batched_stream(cqap, db, rng, batches=max(1, count // 2),
                                 batch_size=2)
        flat = [b for batch in batches for b in batch]
        return flat[:count] if len(flat) >= count \
            else flat + flat[:count - len(flat)]
    pools = _value_pools(cqap, db)
    hot = [_uniform_binding(rng, cqap, pools)
           for _ in range(rng.randint(1, 2))]
    stream: List[Row] = []
    for _ in range(count):
        if kind == "mixed":
            draw = rng.choice(("uniform", "hot", "cold"))
        else:
            draw = kind
        if draw == "hot" and rng.random() < 0.7:
            stream.append(rng.choice(hot))
        elif draw == "cold":
            stream.append(_cold_binding(rng, cqap))
        else:
            stream.append(_uniform_binding(rng, cqap, pools))
    return stream


def batched_stream(cqap: CQAP, db: Database, rng: random.Random,
                   batches: int = 4, batch_size: int = 8,
                   dedupe_ratio: float = 0.5,
                   hot_fraction: float = 0.6) -> List[List[Row]]:
    """A pre-batched probe stream with controlled redundancy.

    ``dedupe_ratio`` is the fraction of probe slots that repeat an
    already-drawn binding (0.0 = every slot distinct, 0.75 = a 4:1
    dedupe opportunity); ``hot_fraction`` is the share of those repeats
    that go to a couple of *hot* bindings rather than a uniformly chosen
    previous one — the skew that makes answer caches and batch dedupe
    worth their complexity.  Deterministic in ``rng``; the distinct pool
    is drawn from values actually occurring in the access columns, so the
    stream is a realistic hit/miss mix.
    """
    if not 0.0 <= dedupe_ratio < 1.0:
        raise ValueError(f"dedupe_ratio must be in [0, 1), got "
                         f"{dedupe_ratio}")
    total = max(1, batches) * max(1, batch_size)
    if not cqap.access:
        flat = [()] * total
    else:
        pools = _value_pools(cqap, db)
        distinct = max(1, round(total * (1.0 - dedupe_ratio)))
        pool = [_uniform_binding(rng, cqap, pools) for _ in range(distinct)]
        hot = [rng.choice(pool) for _ in range(min(2, len(pool)))]
        flat = []
        for i in range(total):
            if i < len(pool):       # guarantee every distinct binding occurs
                flat.append(pool[i])
            elif rng.random() < hot_fraction:
                flat.append(rng.choice(hot))
            else:
                flat.append(rng.choice(pool))
        rng.shuffle(flat)
    return [flat[i:i + batch_size]
            for i in range(0, total, max(1, batch_size))]
