"""Random databases matched to a generated CQAP.

One relation is drawn per distinct relation name in the query (atoms that
share a name share the stored relation, as in the paper's graph-semantics
examples).  Profiles shape the value distribution:

* ``uniform`` — i.i.d. uniform values;
* ``zipf`` — Zipf-skewed values (hot hubs on every column), the regime the
  heavy/light split machinery exists for;
* ``heavy`` — a planted heavy hub: half of all tuples share one value in
  their first column;
* ``sparse`` — few tuples over a large domain (joins mostly empty), and a
  fair chance of a completely empty relation.

Instances are deliberately tiny (tens of tuples) so the brute-force oracle
stays affordable; sizes and domains are themselves randomized per seed.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.data.database import Database
from repro.data.relation import Relation
from repro.query.cq import CQAP

DB_PROFILES: Tuple[str, ...] = ("uniform", "zipf", "heavy", "sparse")


def _zipf_value(rng: random.Random, domain: int, s: float = 1.3) -> int:
    weights = [1.0 / (rank + 1) ** s for rank in range(domain)]
    return rng.choices(range(domain), weights=weights, k=1)[0]


def _draw_rows(rng: random.Random, arity: int, n_tuples: int, domain: int,
               profile: str) -> set:
    rows: set = set()
    attempts = 0
    # a set over a small domain can saturate before reaching n_tuples
    while len(rows) < n_tuples and attempts < 20 * n_tuples + 20:
        attempts += 1
        if profile == "zipf":
            row = tuple(_zipf_value(rng, domain) for _ in range(arity))
        elif profile == "heavy" and rng.random() < 0.5:
            row = (0,) + tuple(rng.randrange(domain)
                               for _ in range(arity - 1))
        else:
            row = tuple(rng.randrange(domain) for _ in range(arity))
        rows.add(row)
    return rows


def random_database(cqap: CQAP, rng: random.Random,
                    profile: Optional[str] = None,
                    max_tuples: int = 24) -> Database:
    """A database instance for ``cqap`` under the given (or drawn) profile."""
    profile = profile if profile is not None else rng.choice(DB_PROFILES)
    if profile not in DB_PROFILES:
        raise ValueError(
            f"unknown database profile {profile!r}; known: {DB_PROFILES}"
        )
    arities: Dict[str, int] = {}
    for atom in cqap.atoms:
        existing = arities.setdefault(atom.relation, len(atom.variables))
        if existing != len(atom.variables):
            raise ValueError(
                f"relation {atom.relation!r} used at arities "
                f"{existing} and {len(atom.variables)}"
            )
    if profile == "sparse":
        domain = rng.randint(12, 30)
    else:
        domain = rng.randint(2, 10)
    db = Database()
    for name, arity in arities.items():
        if profile == "sparse":
            n_tuples = rng.randint(0, 4)
        else:
            n_tuples = rng.randint(1, max_tuples)
        rows = _draw_rows(rng, arity, n_tuples, domain, profile)
        db.add(Relation(name, tuple(f"c{i}" for i in range(arity)), rows))
    return db
