"""Reproducible workload objects: one seed -> (query, database, probes).

``make_workload(seed)`` derives *everything* — query shape, bound/free
split, database profile, probe kind, sizes, and the serving cache size —
from a single integer, so a failing scenario is reproducible from its seed
alone (the differential harness prints exactly that seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.data.database import Database
from repro.query.cq import CQAP
from repro.workloads.databases import DB_PROFILES, random_database
from repro.workloads.probes import PROBE_KINDS, probe_stream
from repro.workloads.queries import QUERY_SHAPES, random_cqap

Row = Tuple[object, ...]

#: serving cache sizes the engine paths rotate through (0 disables caching)
CACHE_SIZES: Tuple[int, ...] = (0, 2, 256)


@dataclass
class Workload:
    """One reproducible scenario: a CQAP, its data, and a probe stream."""

    seed: int
    shape: str
    profile: str
    probe_kind: str
    cache_size: int
    cqap: CQAP = field(repr=False)
    db: Database = field(repr=False)
    probes: List[Row] = field(repr=False)

    def describe(self) -> str:
        return (f"workload(seed={self.seed}, shape={self.shape}, "
                f"profile={self.profile}, probes={self.probe_kind}"
                f"×{len(self.probes)}, cache={self.cache_size}, "
                f"query={self.cqap!r}, |D|={self.db.size})")


def make_workload(seed: int, shape: Optional[str] = None,
                  profile: Optional[str] = None,
                  probe_kind: Optional[str] = None,
                  probe_count: Optional[int] = None,
                  max_tuples: int = 24) -> Workload:
    """Build the workload deterministically associated with ``seed``.

    Explicit ``shape``/``profile``/``probe_kind`` pin that dimension; the
    rest is still drawn from the seeded stream.
    """
    rng = random.Random(seed)
    shape = shape if shape is not None else rng.choice(QUERY_SHAPES)
    profile = profile if profile is not None else rng.choice(DB_PROFILES)
    probe_kind = (probe_kind if probe_kind is not None
                  else rng.choice(PROBE_KINDS))
    count = probe_count if probe_count is not None else rng.randint(3, 8)
    cqap = random_cqap(rng, shape=shape, name=f"fuzz_{shape}_{seed}")
    db = random_database(cqap, rng, profile=profile, max_tuples=max_tuples)
    probes = probe_stream(cqap, db, rng, kind=probe_kind, count=count)
    cache_size = rng.choice(CACHE_SIZES)
    return Workload(seed=seed, shape=shape, profile=profile,
                    probe_kind=probe_kind, cache_size=cache_size,
                    cqap=cqap, db=db, probes=probes)


def workload_suite(base_seed: int, count: int,
                   **kwargs) -> Iterator[Workload]:
    """``count`` workloads with seeds ``base_seed .. base_seed+count-1``."""
    for i in range(count):
        yield make_workload(base_seed + i, **kwargs)
