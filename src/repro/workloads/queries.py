"""Random CQAP generators (random hypergraphs + random bound/free splits).

Shapes mirror the paper's application catalog (``repro.problems``):

* ``path`` — acyclic chains (k-reachability, Example 2.3);
* ``cycle`` — cyclic queries (square/triangle, Examples 5.2/E.4);
* ``star`` — shared-variable stars (k-set disjointness, Example 2.2);
* ``hierarchical`` — random variable trees whose atoms are root-to-leaf
  paths (§F; validated with :func:`repro.problems.is_hierarchical`);
* ``random`` — arbitrary small hypergraphs, connectivity not guaranteed.

Every generated query gets a *random* head (free variables, in random
order) and a random access pattern ``A ⊆ H`` — including the empty access
pattern — so the bound/free split machinery is fuzzed alongside the joins.
Heads are always nonempty: the planner stack supports Boolean heads only
through nonempty projections today.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.problems import assert_hierarchical
from repro.query.cq import Atom, CQAP

QUERY_SHAPES: Tuple[str, ...] = (
    "path", "cycle", "star", "hierarchical", "random",
)


def _path_atoms(rng: random.Random) -> List[Atom]:
    k = rng.randint(1, 4)
    return [Atom(f"R{i}", (f"x{i}", f"x{i + 1}")) for i in range(1, k + 1)]


def _cycle_atoms(rng: random.Random) -> List[Atom]:
    k = rng.randint(3, 4)
    atoms = [Atom(f"R{i}", (f"x{i}", f"x{i + 1}")) for i in range(1, k)]
    atoms.append(Atom(f"R{k}", (f"x{k}", "x1")))
    return atoms


def _star_atoms(rng: random.Random) -> List[Atom]:
    k = rng.randint(2, 3)
    return [Atom(f"R{i}", ("y", f"x{i}")) for i in range(1, k + 1)]


def _hierarchical_atoms(rng: random.Random) -> List[Atom]:
    """Atoms are root-to-leaf variable paths of a random tree (always §F).

    Capped at 6 body variables: the planner's joint Shannon-flow LPs are
    exponential in the variable count, and fuzz scenarios must stay cheap.
    """
    branches = rng.randint(1, 2)
    if branches == 1:
        leaf_counts = [rng.randint(1, 2)]
    else:
        leaf_counts = rng.choice([[1, 1], [1, 2], [2, 1]])
    atoms: List[Atom] = []
    i = 0
    for b, leaves in enumerate(leaf_counts, start=1):
        for leaf in range(1, leaves + 1):
            i += 1
            atoms.append(Atom(f"R{i}", ("x", f"y{b}", f"z{b}{leaf}")))
    return atoms


def _random_atoms(rng: random.Random) -> List[Atom]:
    n_vars = rng.randint(2, 5)
    variables = [f"x{i}" for i in range(1, n_vars + 1)]
    atoms: List[Atom] = []
    for i in range(1, rng.randint(2, 4) + 1):
        width = rng.randint(1, min(3, n_vars))
        atoms.append(Atom(f"R{i}", tuple(rng.sample(variables, width))))
    return atoms


_SHAPE_BUILDERS = {
    "path": _path_atoms,
    "cycle": _cycle_atoms,
    "star": _star_atoms,
    "hierarchical": _hierarchical_atoms,
    "random": _random_atoms,
}


def random_cqap(rng: random.Random, shape: Optional[str] = None,
                name: Optional[str] = None) -> CQAP:
    """One random CQAP of the given (or randomly drawn) shape.

    The head is a nonempty random-order subset of the body variables; the
    access pattern is a (possibly empty) random-order subset of the head.
    """
    shape = shape if shape is not None else rng.choice(QUERY_SHAPES)
    try:
        atoms = _SHAPE_BUILDERS[shape](rng)
    except KeyError:
        raise ValueError(
            f"unknown query shape {shape!r}; known: {sorted(_SHAPE_BUILDERS)}"
        ) from None
    body_vars = sorted({v for atom in atoms for v in atom.variables})
    head = tuple(rng.sample(body_vars, rng.randint(1, len(body_vars))))
    access = tuple(rng.sample(head, rng.randint(0, len(head))))
    cqap = CQAP(head, access, atoms, name=name or f"fuzz_{shape}")
    if shape == "hierarchical":
        assert_hierarchical(cqap)
    return cqap
