"""Tradeoffs via tree decompositions — root-to-leaf paths (§6.3, §E.2).

Fix a free-connex decomposition rooted at ``r`` with ``A ⊆ χ(r)`` and a
fractional edge cover ``u_t`` per bag.  With ``A_t`` the bag's interface (the
variables shared with the parent; ``A_r = A``) and ``α_t`` the slack of
``u_t`` w.r.t. ``A_t``, every root-to-leaf path P yields the intrinsic
tradeoff (eq. 35)

    S^{Σ_{t∈P} 1/α_t} · T  ≍  |Q_A| · D^{Σ_{t∈P} u*_t / α_t},

and the decomposition's tradeoff is the worst (most expensive) path.  The
induced PMTD set of §6.3 realizes these bounds inside the framework;
Example 6.3 instantiates the 4-reachability decomposition
{x1,x2,x4,x5} → {x2,x3,x4} to get ``S^{3/2} · T ≍ Q · D³``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.decomposition.tree_decomposition import NodeId, TreeDecomposition
from repro.query.cq import CQAP
from repro.query.hypergraph import Hypergraph, VarSet, varset
from repro.tradeoff.curves import TradeoffFormula
from repro.tradeoff.edge_cover import fractional_edge_cover, slack
from repro.util.rationals import approx_fraction


@dataclass(frozen=True)
class BagCover:
    """Per-bag cover data: weights, total weight u*, interface, slack α."""

    node: NodeId
    cover: Tuple[Tuple[VarSet, Fraction], ...]
    total_weight: Fraction
    interface: VarSet
    alpha: Fraction


def bag_interfaces(td: TreeDecomposition, root: NodeId,
                   access: VarSet) -> Dict[NodeId, VarSet]:
    """``A_t``: common variables with the parent bag (root gets A)."""
    parents = td.parent_map(root)
    out: Dict[NodeId, VarSet] = {}
    for node in td.nodes:
        parent = parents[node]
        if parent is None:
            out[node] = access
        else:
            out[node] = td.bags[node] & td.bags[parent]
    return out


def cover_bag(cqap: CQAP, bag: VarSet,
              explicit: Optional[Dict[VarSet, object]] = None,
              interface: Optional[VarSet] = None) -> Dict[VarSet, Fraction]:
    """A fractional edge cover of one bag's variables by query edges.

    Defaults to a two-stage LP over the edges restricted to the bag:
    (1) minimize the total weight; (2) among minimum-weight covers, maximize
    the slack w.r.t. ``interface`` — minimum-weight covers are usually not
    unique and only the slack-maximizing ones realize the paper's bounds
    (Example 6.3 needs ``u23 = u34 = 1``, slack 2, for bag {x2,x3,x4}).
    """
    if explicit is not None:
        return {varset(e): Fraction(w) for e, w in explicit.items()}
    hypergraph = cqap.hypergraph()
    restricted = sorted(
        {e & bag for e in hypergraph.edge_sets if e & bag},
        key=lambda e: tuple(sorted(e)),
    )
    # stage 1: minimum total weight
    from repro.polymatroid.lp import LinearProgram

    def coverage_constraints(lp: LinearProgram) -> None:
        for var in sorted(bag):
            coeffs = {("u", i): 1.0
                      for i, e in enumerate(restricted) if var in e}
            if not coeffs:
                raise ValueError(f"bag variable {var!r} is in no hyperedge")
            lp.add_ge(coeffs, 1.0)

    lp1 = LinearProgram()
    for i in range(len(restricted)):
        lp1.variable(("u", i), lower=0.0)
    coverage_constraints(lp1)
    lp1.set_objective({("u", i): 1.0 for i in range(len(restricted))},
                      maximize=False)
    stage1 = lp1.solve()
    if not stage1.is_optimal:
        raise RuntimeError(f"edge cover LP ended {stage1.status}")
    min_weight = stage1.objective
    free = (bag - interface) if interface else frozenset()
    if not free:
        weights = {("u", i): stage1.values[("u", i)]
                   for i in range(len(restricted))}
    else:
        # stage 2: maximize slack at the minimum weight
        lp2 = LinearProgram()
        for i in range(len(restricted)):
            lp2.variable(("u", i), lower=0.0)
        coverage_constraints(lp2)
        lp2.add_le({("u", i): 1.0 for i in range(len(restricted))},
                   min_weight + 1e-9)
        lp2.variable("t", lower=0.0)
        for var in sorted(free):
            coeffs = {("u", i): 1.0
                      for i, e in enumerate(restricted) if var in e}
            coeffs["t"] = -1.0
            lp2.add_ge(coeffs, 0.0)
        lp2.set_objective({"t": 1.0}, maximize=True)
        stage2 = lp2.solve()
        if not stage2.is_optimal:
            raise RuntimeError(f"slack LP ended {stage2.status}")
        weights = {("u", i): stage2.values[("u", i)]
                   for i in range(len(restricted))}
    out: Dict[VarSet, Fraction] = {}
    for i, edge in enumerate(restricted):
        value = weights[("u", i)]
        if value > 1e-9:
            out[edge] = approx_fraction(value, 64, tol=1e-6)
    return out


def path_tradeoff(cqap: CQAP, td: TreeDecomposition, root: NodeId,
                  covers: Optional[Dict[NodeId, Dict[VarSet, object]]] = None,
                  ) -> List[Tuple[List[NodeId], TradeoffFormula]]:
    """The eq.-(35) tradeoff of every root-to-leaf path.

    Returns ``[(path_nodes, formula), ...]``; the decomposition's overall
    tradeoff is the worst entry (the one with the largest D exponent after
    normalizing, see :func:`worst_path_tradeoff`).
    """
    td.validate(cqap.access_hypergraph())
    interfaces = bag_interfaces(td, root, cqap.access_set)
    hypergraph = cqap.hypergraph()
    bag_data: Dict[NodeId, BagCover] = {}
    for node in td.nodes:
        bag = td.bags[node]
        explicit = covers.get(node) if covers else None
        cover = cover_bag(cqap, bag, explicit, interface=interfaces[node] & bag)
        total = sum(cover.values(), Fraction(0))
        # restrict cover edges to the bag for the slack computation,
        # merging weights of edges that coincide after restriction
        slack_cover: Dict[VarSet, Fraction] = {}
        for edge, weight in cover.items():
            restricted = edge & bag
            if restricted:
                slack_cover[restricted] = (
                    slack_cover.get(restricted, Fraction(0)) + Fraction(weight)
                )
        sub = Hypergraph(bag, list(slack_cover))
        alpha = slack(sub, slack_cover, interfaces[node] & bag)
        bag_data[node] = BagCover(
            node, tuple(sorted(cover.items(),
                               key=lambda kv: tuple(sorted(kv[0])))),
            total, interfaces[node], alpha,
        )
    out: List[Tuple[List[NodeId], TradeoffFormula]] = []
    for path in td.root_to_leaf_paths(root):
        s_exp = sum((Fraction(1) / bag_data[t].alpha for t in path),
                    Fraction(0))
        d_exp = sum(
            (bag_data[t].total_weight / bag_data[t].alpha for t in path),
            Fraction(0),
        )
        # S^{s_exp} · T ≍ Q · D^{d_exp}
        out.append((
            path,
            TradeoffFormula(s_exp, Fraction(1), d_exp, Fraction(1)),
        ))
    return out


def worst_path_tradeoff(cqap: CQAP, td: TreeDecomposition, root: NodeId,
                        covers: Optional[Dict] = None,
                        log_space: float = 1.0) -> TradeoffFormula:
    """The most expensive path at the given (log_D) space budget.

    Paths are compared by the online time they imply at ``log_space``; the
    maximum is the decomposition's binding tradeoff (§E.2 takes the worst
    across root-to-leaf paths).
    """
    entries = path_tradeoff(cqap, td, root, covers)
    def implied_log_time(formula: TradeoffFormula) -> float:
        return formula.log_time(log_space, log_d=1.0, log_q=0.0)
    return max((f for _, f in entries), key=implied_log_time)
