"""Analytic tradeoff machinery: rules, joint Shannon-flow LP, curves."""

from repro.tradeoff import catalog
from repro.tradeoff.curves import (
    PiecewiseCurve,
    Segment,
    TradeoffFormula,
    envelope_max,
    envelope_min,
    fit_segment_formulas,
)
from repro.tradeoff.edge_cover import (
    fractional_edge_cover,
    slack,
    theorem_6_1,
    uniform_cover,
)
from repro.tradeoff.joint_flow import (
    JointFlowProgram,
    ObjResult,
    for_cqap,
    symbolic_program,
)
from repro.tradeoff.cost import (
    CatalogStatistics,
    CostModel,
    RuleEstimate,
    order_pmtds_by_cost,
)
from repro.tradeoff.paths import path_tradeoff, worst_path_tradeoff
from repro.tradeoff.rules import (
    TwoPhaseRule,
    paper_rules_3reach,
    rules_from_pmtds,
    stream_rules_from_pmtds,
)
from repro.tradeoff.selection import (
    SelectionResult,
    evaluate_rules,
    keep_all_rules,
    select_rules,
)
from repro.tradeoff.witness import JointFlowWitness, extract_witness, obj_with_witness
from repro.tradeoff import proofs_catalog

__all__ = [
    "CatalogStatistics",
    "CostModel",
    "JointFlowProgram",
    "JointFlowWitness",
    "RuleEstimate",
    "SelectionResult",
    "evaluate_rules",
    "extract_witness",
    "keep_all_rules",
    "obj_with_witness",
    "order_pmtds_by_cost",
    "proofs_catalog",
    "select_rules",
    "stream_rules_from_pmtds",
    "ObjResult",
    "PiecewiseCurve",
    "Segment",
    "TradeoffFormula",
    "TwoPhaseRule",
    "catalog",
    "envelope_max",
    "envelope_min",
    "fit_segment_formulas",
    "for_cqap",
    "fractional_edge_cover",
    "paper_rules_3reach",
    "path_tradeoff",
    "rules_from_pmtds",
    "slack",
    "symbolic_program",
    "theorem_6_1",
    "uniform_cover",
    "worst_path_tradeoff",
]
