"""Tradeoffs via fractional edge covers and slack (§6.2, Theorem 6.1).

For a CQAP ``φ(x_A | x_A)`` and any fractional edge cover ``u`` of its
hypergraph, the paper proves the intrinsic tradeoff

    S · T^{α(u, A)}  ≍  |Q_A|^{α(u, A)} · Π_F |R_F|^{u_F},

where the *slack* ``α(u, A) = min_{i ∉ A} Σ_{F ∋ i} u_F`` is the largest
factor by which ``u`` can be scaled down and still cover the non-access
variables.  This module computes minimal covers by LP, slacks, and the
resulting formulas; it is also the engine behind §6.3's per-bag covers.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Iterable, Optional

from repro.polymatroid.lp import LinearProgram
from repro.query.cq import CQAP
from repro.query.hypergraph import Hypergraph, VarSet, varset
from repro.tradeoff.curves import TradeoffFormula
from repro.util.rationals import approx_fraction


def fractional_edge_cover(hypergraph: Hypergraph,
                          cover: Iterable[str],
                          minimize_over: Optional[Iterable[str]] = None,
                          ) -> Dict[VarSet, Fraction]:
    """Minimum-weight fractional edge cover of ``cover`` (LP, snapped to ℚ).

    Returns edge -> weight; edges absent from the result have weight zero.
    """
    cover = varset(cover)
    if not cover <= hypergraph.vertices:
        raise ValueError("cover set must be query variables")
    edges = sorted(hypergraph.edge_sets,
                   key=lambda e: tuple(sorted(e)))
    lp = LinearProgram()
    for idx, edge in enumerate(edges):
        lp.variable(("u", idx), lower=0.0)
    for var in sorted(cover):
        coeffs = {("u", i): 1.0 for i, e in enumerate(edges) if var in e}
        if not coeffs:
            raise ValueError(f"variable {var!r} is in no hyperedge")
        lp.add_ge(coeffs, 1.0)
    lp.set_objective({("u", i): 1.0 for i in range(len(edges))},
                     maximize=False)
    solution = lp.solve()
    if not solution.is_optimal:
        raise RuntimeError(f"edge cover LP ended {solution.status}")
    out: Dict[VarSet, Fraction] = {}
    for idx, edge in enumerate(edges):
        weight = solution.values[("u", idx)]
        if weight > 1e-9:
            out[edge] = approx_fraction(weight, 64, tol=1e-6)
    return out


def slack(hypergraph: Hypergraph, u: Dict[VarSet, object],
          access: Iterable[str]) -> Fraction:
    """``α(u, A) = min_{i ∉ A} Σ_{F ∋ i} u_F`` (∞ when A covers everything).

    The paper notes α ≥ 1 whenever u is a valid cover of all variables.
    """
    access = varset(access)
    remaining = hypergraph.vertices - access
    if not remaining:
        return Fraction(10**9)  # effectively unbounded slack
    totals = []
    for var in sorted(remaining):
        total = Fraction(0)
        for edge, weight in u.items():
            if var in edge:
                total += Fraction(weight)
        totals.append(total)
    # ``remaining`` is nonempty here, so ``totals`` is too
    return min(totals)


def theorem_6_1(cqap: CQAP, u: Optional[Dict[VarSet, object]] = None,
                ) -> TradeoffFormula:
    """The Theorem 6.1 tradeoff for ``φ(x_A | x_A)``.

    With all atoms of equal size D this reads ``S · T^α ≍ Q^α · D^{Σ u_F}``.
    ``u`` defaults to a minimum fractional edge cover of all variables.
    Relation-size exponents are aggregated into the |D| exponent — matching
    the paper's applications, where every atom is the same relation.
    """
    hypergraph = cqap.hypergraph()
    if u is None:
        u = fractional_edge_cover(hypergraph, hypergraph.vertices)
    total_weight = sum(Fraction(w) for w in u.values())
    alpha = slack(hypergraph, u, cqap.access_set)
    # S^1 · T^alpha = Q^alpha · D^total
    lcm = alpha.denominator * total_weight.denominator // math.gcd(
        alpha.denominator, total_weight.denominator
    )
    return TradeoffFormula(
        Fraction(lcm), alpha * lcm, total_weight * lcm, alpha * lcm
    )


def uniform_cover(hypergraph: Hypergraph, weight: object = 1,
                  ) -> Dict[VarSet, Fraction]:
    """Assign the same weight to every hyperedge (Example 6.2's cover)."""
    return {edge: Fraction(weight) for edge in hypergraph.edge_sets}
