"""The joint Shannon-flow LP and the OBJ(S) maximin program (Appendix C/D).

This module is the analytic engine of the reproduction.  Given a 2-phase
disjunctive rule under degree constraints ``DC`` (guarded by the input) and
``AC`` (guarded by the access request), Theorem C.3 characterizes the best
online time attainable with space budget S as

    OBJ(S) = max  min_{B ∈ BT} h_T(B)
             s.t. h_S ∈ Γ_n ∩ H_DC,
                  h_T ∈ Γ_n ∩ H_{DC∪AC},
                  (h_S, h_T) ∈ H_SC          (split-constraint coupling)
                  h_S(B) ≥ log S for B ∈ BS.

Infeasibility of the constraint ``h_S(B) ≥ log S`` branch means the whole
preprocessing output fits in the budget, i.e. T = O(1) (§C.3).  The program
is a plain LP after introducing the epigraph variable ``w``.

The same machinery answers three more questions:

* ``log_size_bound`` — the polymatroid bound of a one-phase disjunctive rule
  (Theorem C.1), used by the evaluator to pick per-subproblem targets;
* ``verify_joint_inequality`` — checks a claimed joint Shannon-flow
  inequality (Definition D.4) by maximizing RHS − LHS over the coupled cone;
* dual values of the optimal LP expose the witness coefficients
  (δ_S, δ_T, γ) of Theorem D.5, which drive the 2PP evaluator's split steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.polymatroid.cone import add_polymatroid_constraints
from repro.polymatroid.lattice import SubsetSpace
from repro.polymatroid.lp import LinearProgram, LPSolution
from repro.query.constraints import ConstraintSet, SplitConstraint
from repro.query.hypergraph import VarSet, varset
from repro.tradeoff.rules import TwoPhaseRule

#: LP variable name tags for the two polymatroids.
H_S = "hS"
H_T = "hT"


@dataclass
class ObjResult:
    """Outcome of one OBJ(S) solve."""

    log_space: float
    log_time: float                  # OBJ(S); 0.0 when everything fits
    status: str                      # "optimal" | "materialize" | "unbounded"
    h_s: Dict[VarSet, float] = field(default_factory=dict)
    h_t: Dict[VarSet, float] = field(default_factory=dict)
    duals: Dict = field(default_factory=dict)

    @property
    def fits_in_budget(self) -> bool:
        """True when the S-targets can simply be materialized (T = O(1))."""
        return self.status == "materialize"


class JointFlowProgram:
    """Builds and solves eq. (12)/(21) for one CQAP's constraint profile.

    Args:
        variables: the query variables (the ``[n]`` universe).
        dc: degree constraints guarded by the database.
        ac: degree constraints guarded by access requests.
        sc: split constraints; defaults to the full span of ``dc``
            (Definition C.2).
    """

    def __init__(self, variables: Iterable[str], dc: ConstraintSet,
                 ac: ConstraintSet,
                 sc: Optional[Sequence[SplitConstraint]] = None) -> None:
        self.space = SubsetSpace(variables)
        self.dc = dc
        self.ac = ac
        self.dc_ac = dc.union(ac)
        self.sc: List[SplitConstraint] = (
            list(sc) if sc is not None else dc.split_constraints()
        )
        #: cached cone+constraints base per phase for log_size_bound —
        #: the cone is by far the largest part of the LP and is identical
        #: across every target queried at the same phase
        self._size_bound_base: Dict[str, LinearProgram] = {}

    # ------------------------------------------------------------------
    # LP construction helpers
    # ------------------------------------------------------------------
    def _mask(self, subset: VarSet) -> int:
        return self.space.mask(subset)

    def _base_program(self) -> LinearProgram:
        """Cones + DC on h_S + (DC ∪ AC) on h_T + split coupling."""
        lp = LinearProgram()
        add_polymatroid_constraints(
            lp, self.space, lambda m: (H_S, m), tag=H_S
        )
        add_polymatroid_constraints(
            lp, self.space, lambda m: (H_T, m), tag=H_T
        )
        for tag, constraints in ((H_S, self.dc), (H_T, self.dc_ac)):
            for c in constraints:
                if math.isinf(c.bound):
                    continue
                coeffs = {(tag, self._mask(c.y)): 1.0}
                if c.x:
                    coeffs[(tag, self._mask(c.x))] = -1.0
                lp.add_le(coeffs, c.log_bound,
                          name=("dc", tag, tuple(sorted(c.x)),
                                tuple(sorted(c.y))))
        for s in self.sc:
            if math.isinf(s.cardinality_bound):
                continue
            x_mask, y_mask = self._mask(s.x), self._mask(s.y)
            key = (tuple(sorted(s.x)), tuple(sorted(s.y)))
            # h_S(X) + h_T(Y|X) <= log N_Z   (materialize heavy X-values)
            lp.add_le(
                {(H_S, x_mask): 1.0, (H_T, y_mask): 1.0,
                 (H_T, x_mask): -1.0},
                s.log_bound, name=("sc_s_heavy", key),
            )
            # h_S(Y|X) + h_T(X) <= log N_Z   (materialize light X-values)
            lp.add_le(
                {(H_S, y_mask): 1.0, (H_S, x_mask): -1.0,
                 (H_T, x_mask): 1.0},
                s.log_bound, name=("sc_t_heavy", key),
            )
        return lp

    # ------------------------------------------------------------------
    # OBJ(S)
    # ------------------------------------------------------------------
    def obj_for_budget(self, rule: TwoPhaseRule,
                       log_space: float) -> ObjResult:
        """Solve eq. (12) for one rule at one space budget.

        Returns ``status="materialize"`` (T cost 0) when forcing every
        S-target above the budget is infeasible — i.e. the preprocessing
        output provably fits in Õ(S).
        """
        if not rule.t_targets:
            # nothing ever needs the online phase
            return ObjResult(log_space, 0.0, "materialize")
        lp = self._base_program()
        lp.variable("w", lower=0.0)
        for b in rule.t_targets:
            lp.add_ge({(H_T, self._mask(b)): 1.0, "w": -1.0}, 0.0,
                      name=("target_t", tuple(sorted(b))))
        for b in rule.s_targets:
            lp.add_ge({(H_S, self._mask(b)): 1.0}, log_space,
                      name=("budget", tuple(sorted(b))))
        lp.set_objective({"w": 1.0}, maximize=True)
        solution = lp.solve()
        if solution.status == "infeasible":
            return ObjResult(log_space, 0.0, "materialize")
        if solution.status == "unbounded":
            return ObjResult(log_space, math.inf, "unbounded")
        return ObjResult(
            log_space,
            solution.objective,
            "optimal",
            h_s=self._extract(solution, H_S),
            h_t=self._extract(solution, H_T),
            duals=solution.duals,
        )

    def _extract(self, solution: LPSolution, tag: str) -> Dict[VarSet, float]:
        out: Dict[VarSet, float] = {}
        for name, value in solution.values.items():
            if isinstance(name, tuple) and len(name) == 2 and name[0] == tag:
                out[self.space.members(name[1])] = value
        return out

    # ------------------------------------------------------------------
    # one-phase bounds (Theorem C.1)
    # ------------------------------------------------------------------
    def log_size_bound(self, targets: Iterable[VarSet],
                       phase: str = "S",
                       extra: Optional[ConstraintSet] = None) -> float:
        """Polymatroid bound of a one-phase disjunctive rule.

        ``phase="S"`` uses DC (preprocessing rule, eq. 6); ``phase="T"`` uses
        DC ∪ AC (online rule, eq. 7).  ``extra`` adds per-subproblem refined
        constraints (the DC(j) of split steps).  No split coupling applies —
        this is the single-polymatroid bound.
        """
        tag = "h"

        def constraint_rows(lp: LinearProgram, constraints) -> None:
            for c in constraints:
                if math.isinf(c.bound):
                    continue
                coeffs = {(tag, self._mask(c.y)): 1.0}
                if c.x:
                    coeffs[(tag, self._mask(c.x))] = -1.0
                lp.add_le(coeffs, c.log_bound)

        base = self._size_bound_base.get(phase)
        if base is None:
            base = LinearProgram()
            add_polymatroid_constraints(base, self.space,
                                        lambda m: (tag, m))
            constraint_rows(base, self.dc if phase == "S" else self.dc_ac)
            self._size_bound_base[phase] = base
        lp = base.clone()
        if extra is not None:
            constraint_rows(lp, extra)
        lp.variable("w", lower=0.0)
        for b in targets:
            lp.add_ge({(tag, self._mask(b)): 1.0, "w": -1.0}, 0.0)
        lp.set_objective({"w": 1.0}, maximize=True)
        solution = lp.solve()
        if solution.status == "unbounded":
            return math.inf
        if not solution.is_optimal:
            raise RuntimeError(f"size-bound LP ended {solution.status}")
        return solution.objective

    # ------------------------------------------------------------------
    # inequality verification (Definition D.4)
    # ------------------------------------------------------------------
    def verify_joint_inequality(
        self,
        lhs_s: Dict[Tuple[VarSet, VarSet], float],
        lhs_t: Dict[Tuple[VarSet, VarSet], float],
        rhs_s: Dict[VarSet, float],
        rhs_t: Dict[VarSet, float],
        tolerance: float = 1e-7,
    ) -> bool:
        """Check that Σ lhs ≥ Σ rhs holds for every polymatroid pair.

        ``lhs_s``/``lhs_t`` map (X, Y) pairs to coefficients of
        ``h_S(Y|X)`` / ``h_T(Y|X)``; the rhs maps target schemas to their λ/θ
        coefficients.  Verification maximizes RHS − LHS over Γ_n × Γ_n
        (*without* the DC/SC restrictions — a joint Shannon-flow inequality
        must hold for all polymatroid pairs) and accepts iff the max is ≤ 0.
        """
        lp = LinearProgram()
        add_polymatroid_constraints(lp, self.space, lambda m: (H_S, m),
                                    tag=H_S)
        add_polymatroid_constraints(lp, self.space, lambda m: (H_T, m),
                                    tag=H_T)
        objective: Dict = {}

        def bump(name, delta: float) -> None:
            objective[name] = objective.get(name, 0.0) + delta

        for (x, y), coef in lhs_s.items():
            bump((H_S, self._mask(y)), -coef)
            if x:
                bump((H_S, self._mask(x)), coef)
        for (x, y), coef in lhs_t.items():
            bump((H_T, self._mask(y)), -coef)
            if x:
                bump((H_T, self._mask(x)), coef)
        for z, coef in rhs_s.items():
            bump((H_S, self._mask(z)), coef)
        for z, coef in rhs_t.items():
            bump((H_T, self._mask(z)), coef)
        # normalize scale: polymatroids are a cone, so RHS − LHS > 0 happens
        # iff it is unbounded; cap h(full) to keep the LP bounded instead.
        for tag in (H_S, H_T):
            lp.add_le({(tag, self.space.full_mask): 1.0}, 1.0)
        lp.set_objective(objective, maximize=True)
        solution = lp.solve()
        if not solution.is_optimal:
            return False
        return solution.objective <= tolerance


class SizeBoundOracle:
    """Cached single-phase polymatroid size bounds for selection feedback.

    Wraps a :class:`JointFlowProgram` (typically the planner's own, so the
    bounds selection sees are exactly the bounds planning will enforce)
    and memoizes ``log_size_bound`` per (target, phase).  ``max_solves``
    caps the number of fresh LP solves one selection may trigger: past the
    cap unknown targets answer ``+inf`` (no clamp) and are counted as
    skips, so beam refinement stays O(beam width), never O(pool).
    """

    def __init__(self, program: JointFlowProgram,
                 max_solves: int = 32) -> None:
        self.program = program
        self.max_solves = max_solves
        self.solves = 0
        self.skips = 0
        self._pass_start = 0
        self._cache: Dict[Tuple[VarSet, str], float] = {}

    def reset_budget(self) -> None:
        """Grant the next selection pass a fresh ``max_solves`` allowance.

        The cache and the cumulative counters are kept.  Callers sharing
        one oracle across selection passes (the preprocess re-selection
        backstop does) must call this between passes, otherwise a pass
        that exhausted the cap starves the retry of every fresh bound —
        the very pass that just learned the estimates were wrong.
        """
        self._pass_start = self.solves

    def _bound(self, target: VarSet, phase: str) -> float:
        key = (target, phase)
        if key not in self._cache:
            if self.solves - self._pass_start >= self.max_solves:
                self.skips += 1
                return math.inf
            self.solves += 1
            self._cache[key] = self.program.log_size_bound([target],
                                                           phase=phase)
        return self._cache[key]

    def log_s_bound(self, target: VarSet) -> float:
        """Provable log₂ bound on materializing ``target`` (DC only)."""
        return self._bound(target, "S")

    def log_t_bound(self, target: VarSet) -> float:
        """Provable log₂ bound on the online ``target`` (DC ∪ AC)."""
        return self._bound(target, "T")

    def snapshot(self) -> Dict:
        """JSON-friendly usage summary for selection/stats reporting."""
        return {
            "lp_solves": self.solves,
            "lp_solves_skipped": self.skips,
            "cached_bounds": len(self._cache),
            "max_solves": self.max_solves,
        }


def for_cqap(cqap, db=None, request_size: float = 1,
             dc: Optional[ConstraintSet] = None,
             ac: Optional[ConstraintSet] = None) -> JointFlowProgram:
    """Convenience builder from a CQAP plus a database (or explicit DC/AC)."""
    if dc is None:
        if db is None:
            raise ValueError("need either a database or explicit DC")
        dc = cqap.default_constraints(db)
    if ac is None:
        ac = cqap.access_constraints(request_size)
    return JointFlowProgram(cqap.variables, dc, ac)


def symbolic_program(cqap, d_log: float = 1.0,
                     q_log: float = 0.0) -> JointFlowProgram:
    """A JointFlowProgram in log_D units: every atom gets cardinality 2^d_log.

    With ``d_log = 1`` all LP quantities are directly the exponents of |D|
    (the axes of Figures 4a/4b); ``q_log`` sets log_D |Q_A|.
    """
    dc = ConstraintSet()
    for atom in cqap.atoms:
        dc.add_cardinality(atom.variables, 2.0 ** d_log)
    ac = ConstraintSet()
    if cqap.access:
        ac.add_cardinality(cqap.access, 2.0 ** q_log)
    return JointFlowProgram(cqap.variables, dc, ac)
