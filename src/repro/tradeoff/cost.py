"""Catalog-statistics cost model for budgeted rule selection.

The planner's joint Shannon-flow LP (``tradeoff.joint_flow``) prices one
rule exactly but is far too expensive to call inside a search over PMTD
subsets.  This module prices rules *approximately* from per-relation
catalog statistics — cardinalities, per-variable distinct counts,
measured max-degrees keyed by single variables *and* small variable sets,
and reservoir-sampled join sizes — the same degree-constraint information
``query.constraints`` feeds the LP — so selection can rank hundreds of
candidate rule sets in milliseconds:

* an **S-target** costs *space*: the estimated size of its materialized
  projection (greedy weighted edge cover over the body atoms, capped by
  the product of per-variable distinct counts, by any single covering
  atom, and by any sampled join whose schema covers the target);
* a **T-target** costs *time*: the same estimate but with the access
  pattern bound, so atoms touching bound variables are priced at the
  tightest matching measured degree — a multi-variable degree when
  several of the atom's variables are pinned at once — instead of their
  cardinality.

Selection can additionally hand the model a *bound oracle* (the planner's
single-phase polymatroid bounds, see
:class:`repro.tradeoff.joint_flow.SizeBoundOracle`): estimates are then
clamped to the provable worst case, so an estimate that contradicts an LP
bound loses to the bound.

Everything is a log₂ estimate internally; the linear-scale accessors
(`s_space`, `t_time`) are what selection accumulates against the budget.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.decomposition.pmtd import PMTD, S_VIEW
from repro.query.cq import CQAP
from repro.query.hypergraph import VarSet, varset
from repro.tradeoff.rules import TwoPhaseRule

#: rows reservoir-sampled per atom when estimating join sizes
DEFAULT_JOIN_SAMPLE_SIZE = 64

#: multi-variable degree keys are measured for subsets up to this arity
#: (plus each atom's access-relevant prefix, whatever its size)
DEFAULT_MAX_DEGREE_KEY = 2


@dataclass(frozen=True)
class AtomStatistics:
    """One body atom's catalog entry."""

    relation: str
    variables: Tuple[str, ...]
    cardinality: int
    #: per-variable max degree: how many tuples share one value of ``v``
    degrees: Tuple[Tuple[str, int], ...]
    #: per-variable distinct counts
    distinct: Tuple[Tuple[str, int], ...]
    #: max degrees keyed by variable *sets* (2-subsets of the schema plus
    #: the atom's access-relevant prefix): how many tuples share one
    #: combined value of the whole set
    set_degrees: Tuple[Tuple[FrozenSet[str], int], ...] = ()

    @property
    def varset(self) -> VarSet:
        return varset(self.variables)

    def degree_of(self, variable: str) -> int:
        """Max degree of one variable.

        Raises ``KeyError`` for a variable this atom does not mention —
        silently answering with the full cardinality used to let malformed
        targets read as cheaper than they are.
        """
        try:
            return dict(self.degrees)[variable]
        except KeyError:
            raise KeyError(
                f"atom {self.relation}{self.variables} has no measured "
                f"degree for variable {variable!r}"
            ) from None

    def degree_for(self, pinned: Iterable[str],
                   multivariable: bool = True) -> int:
        """Tightest measured degree given that ``pinned`` is fixed.

        Consults every measured key that is a subset of ``pinned``: the
        single-variable degrees always, and (with ``multivariable``) the
        variable-set degrees, which are never looser.  Raises ``KeyError``
        when some pinned variable is not in the atom's schema.
        """
        pinned = frozenset(pinned)
        best = min(self.degree_of(v) for v in pinned)
        if multivariable:
            for key, degree in self.set_degrees:
                if key <= pinned and degree < best:
                    best = degree
        return best


@dataclass(frozen=True)
class JoinSample:
    """A sampled two-atom join-size estimate.

    ``estimated_size`` averages the directional estimates ``|L| · E[#match
    in R per sampled L-row]`` and the mirror image; it upper-bounds (in
    expectation) any projection of the query output onto a subset of
    ``variables``, which is how :meth:`CostModel.log_size` uses it.
    """

    left: str
    right: str
    variables: VarSet
    shared: Tuple[str, ...]
    sample_size: int
    estimated_size: float


@dataclass
class CatalogStatistics:
    """Per-atom statistics of one (CQAP, database) pair."""

    atoms: List[AtomStatistics] = field(default_factory=list)
    join_samples: List[JoinSample] = field(default_factory=list)
    sample_size: int = 0

    @classmethod
    def from_database(cls, cqap: CQAP, db,
                      sample_size: int = DEFAULT_JOIN_SAMPLE_SIZE,
                      max_degree_key: int = DEFAULT_MAX_DEGREE_KEY,
                      seed: int = 0) -> "CatalogStatistics":
        """Measure cardinalities, degrees, distinct counts, and join samples.

        One streaming pass per stored relation (shared across atoms that
        reuse it) yields the per-column counts; per-atom passes measure
        the multi-variable degree keys (every ``max_degree_key``-subset of
        the schema plus the atom's access-relevant prefix — the variables
        a probe pins together); and for every pair of atoms sharing
        variables, ``sample_size`` reservoir-sampled rows estimate the
        pairwise join size.  ``seed`` fixes the reservoir draws so equal
        inputs measure equal statistics.
        """
        per_relation: Dict[str, List[Dict[object, int]]] = {}
        access = set(cqap.access)
        out = []
        for atom in cqap.atoms:
            relation = db[atom.relation]
            counts = per_relation.get(atom.relation)
            if counts is None:
                counts = [
                    {} for _ in range(len(relation.schema))
                ]
                for row in relation.tuples:
                    for pos, value in enumerate(row):
                        counts[pos][value] = counts[pos].get(value, 0) + 1
                per_relation[atom.relation] = counts
            # the atom's variables name the stored columns positionally
            degrees = []
            distinct = []
            for pos, var in enumerate(atom.variables):
                column = counts[pos] if pos < len(counts) else {}
                distinct.append((var, max(1, len(column))))
                degrees.append((var, max(1, max(column.values(), default=0))))
            set_degrees = cls._measure_set_degrees(
                atom.variables, relation, access, max_degree_key
            )
            out.append(AtomStatistics(
                relation=atom.relation,
                variables=tuple(atom.variables),
                cardinality=max(1, len(relation)),
                degrees=tuple(degrees),
                distinct=tuple(distinct),
                set_degrees=set_degrees,
            ))
        samples = cls._sample_joins(cqap, db, sample_size, seed)
        return cls(out, join_samples=samples, sample_size=sample_size)

    @staticmethod
    def _measure_set_degrees(variables: Tuple[str, ...], relation,
                             access: set, max_key: int,
                             ) -> Tuple[Tuple[FrozenSet[str], int], ...]:
        """Max degree per variable-set key (proper subsets of the schema)."""
        from itertools import combinations

        keys = {
            frozenset(combo)
            for size in range(2, max_key + 1)
            for combo in combinations(variables, size)
        }
        prefix = frozenset(variables) & frozenset(access)
        if len(prefix) >= 2:
            keys.add(prefix)
        keys = {k for k in keys if len(k) < len(variables)}
        out = []
        for key in sorted(keys, key=lambda k: tuple(sorted(k))):
            # atom variables name stored columns positionally: translate
            # the key into stored column names so the relation's cached
            # hash index does the counting (shared across atoms/pairs)
            stored = tuple(relation.schema[i]
                           for i, v in enumerate(variables) if v in key)
            out.append((key, max(1, relation.degree(stored))))
        return tuple(out)

    @staticmethod
    def _sample_joins(cqap: CQAP, db, sample_size: int,
                      seed: int) -> List[JoinSample]:
        """Reservoir-sample per-atom join partners for pairwise size estimates."""
        if sample_size <= 0:
            return []
        rng = random.Random(seed)
        atoms = list(cqap.atoms)
        samples: List[JoinSample] = []
        for i, left in enumerate(atoms):
            for right in atoms[i + 1:]:
                shared = tuple(v for v in left.variables
                               if v in right.variables)
                if not shared:
                    continue
                estimates = []
                for a, b in ((left, right), (right, left)):
                    estimate = CatalogStatistics._directional_estimate(
                        db[a.relation], a.variables,
                        db[b.relation], b.variables,
                        shared, sample_size, rng,
                    )
                    if estimate is not None:
                        estimates.append(estimate)
                if not estimates:
                    continue
                combined = varset(set(left.variables) | set(right.variables))
                samples.append(JoinSample(
                    left=left.relation,
                    right=right.relation,
                    variables=combined,
                    shared=shared,
                    sample_size=min(sample_size,
                                    max(1, len(db[left.relation]))),
                    estimated_size=sum(estimates) / len(estimates),
                ))
        return samples

    @staticmethod
    def _directional_estimate(left, left_vars, right, right_vars,
                              shared: Tuple[str, ...], sample_size: int,
                              rng: random.Random) -> Optional[float]:
        """``|L| · mean(#matching R-rows over a reservoir sample of L)``."""
        if not len(left):
            return 0.0
        left_pos = [left_vars.index(v) for v in shared]
        # atom variables name stored columns positionally: the right
        # side's cached hash index (keyed by stored column names) answers
        # the per-row match counts
        right_index = right.index_on(
            tuple(right.schema[right_vars.index(v)] for v in shared)
        )
        # classic reservoir sampling over the left relation's stream
        reservoir: List[Tuple] = []
        for n, row in enumerate(left.tuples):
            if n < sample_size:
                reservoir.append(row)
            else:
                slot = rng.randrange(n + 1)
                if slot < sample_size:
                    reservoir[slot] = row
        total = sum(
            len(right_index.get(tuple(row[p] for p in left_pos), ()))
            for row in reservoir
        )
        return len(left) * (total / len(reservoir))

    def distinct_count(self, variable: str) -> int:
        """Distinct values of ``variable`` across every atom mentioning it.

        Raises ``KeyError`` when no atom mentions the variable: silently
        answering 1 used to under-cap :meth:`CostModel.log_size` for
        malformed targets.
        """
        best = None
        for atom in self.atoms:
            for var, count in atom.distinct:
                if var == variable:
                    best = count if best is None else min(best, count)
        if best is None:
            raise KeyError(
                f"no atom mentions variable {variable!r}; cannot bound its "
                "distinct count"
            )
        return best

    @property
    def variables(self) -> FrozenSet[str]:
        return frozenset(v for atom in self.atoms for v in atom.variables)

    def cardinality_drift(self, db) -> float:
        """Max relative cardinality drift of ``db`` vs these statistics.

        The staleness measure behind drift-triggered re-selection
        (:mod:`repro.updates`): ``0.0`` means every base relation still
        has the cardinality measured at statistics time, ``0.5`` means
        some relation grew or shrank by half.  Only cardinalities are
        compared — degrees and join samples move with them and a full
        re-measure happens anyway once the threshold trips.
        """
        drift = 0.0
        seen = set()
        for atom in self.atoms:
            if atom.relation in seen:
                continue
            seen.add(atom.relation)
            relation = db.get(atom.relation)
            if relation is None:
                continue
            recorded = max(1, atom.cardinality)
            drift = max(drift,
                        abs(len(relation) - recorded) / recorded)
        return drift

    def snapshot(self) -> Dict:
        """JSON-friendly summary for ``stats()['statistics']``."""
        return {
            "atoms": len(self.atoms),
            "single_degree_keys": sum(len(a.degrees) for a in self.atoms),
            "multi_degree_keys": sum(len(a.set_degrees)
                                     for a in self.atoms),
            "join_samples": len(self.join_samples),
            "join_sample_size": self.sample_size,
            "sampled_rows": sum(s.sample_size for s in self.join_samples),
        }


@dataclass(frozen=True)
class RuleEstimate:
    """One rule priced by the cost model.

    ``s_target``/``s_space`` describe the cheapest S-route (None/inf when
    the rule has no S-target); ``t_target``/``t_time`` the cheapest
    T-route.  ``route`` is filled in by selection once the budget decides
    which one the rule will actually take.  ``lp_clamped`` records that a
    bound oracle tightened at least one of the numbers.
    """

    rule: TwoPhaseRule
    s_target: Optional[VarSet]
    s_space: float
    t_target: Optional[VarSet]
    t_time: float
    route: Optional[str] = None  # "S" | "T", set by selection
    #: pessimistic size of the S-route; what feasibility checks use for
    #: rules that have no T-target to abort to
    s_space_worst: float = math.inf
    lp_clamped: bool = False

    def routed(self, route: str) -> "RuleEstimate":
        return RuleEstimate(self.rule, self.s_target, self.s_space,
                            self.t_target, self.t_time, route,
                            self.s_space_worst, self.lp_clamped)

    def describe(self) -> str:
        parts = []
        if self.s_target is not None:
            parts.append(f"S~{self.s_space:.3g}")
        if self.t_target is not None:
            parts.append(f"T~{self.t_time:.3g}")
        route = f" -> {self.route}" if self.route else ""
        clamp = " lp" if self.lp_clamped else ""
        return f"est[{' '.join(parts)}{route}{clamp}]"


class CostModel:
    """Prices targets, rules, and PMTDs from catalog statistics.

    ``use_multivar_degrees`` / ``use_join_samples`` gate the two upgraded
    estimate refinements so benchmarks can diff the single-variable
    baseline against the full model.  ``bound_oracle`` (anything with
    ``log_s_bound(target)`` / ``log_t_bound(target)``) clamps estimates to
    provable worst-case LP bounds; see :meth:`with_bound_oracle`.
    """

    def __init__(self, cqap: CQAP, stats: CatalogStatistics,
                 request_size: float = 1.0,
                 use_multivar_degrees: bool = True,
                 use_join_samples: bool = True,
                 bound_oracle=None) -> None:
        self.cqap = cqap
        self.stats = stats
        self.access: VarSet = varset(cqap.access)
        self.log_request = math.log2(max(1.0, request_size))
        self.use_multivar_degrees = use_multivar_degrees
        self.use_join_samples = use_join_samples
        self.bound_oracle = bound_oracle
        self._cache: Dict[Tuple[VarSet, FrozenSet[str], bool], float] = {}

    def with_bound_oracle(self, oracle) -> "CostModel":
        """A view of this model whose estimates are clamped by ``oracle``.

        Shares the statistics and the greedy-cover cache (clamping happens
        at the rule-estimate layer, so cached cover costs stay valid).
        """
        clone = CostModel.__new__(CostModel)
        clone.__dict__.update(self.__dict__)
        clone.bound_oracle = oracle
        return clone

    # ------------------------------------------------------------------
    # target estimates
    # ------------------------------------------------------------------
    def log_size(self, target: VarSet,
                 bound: Optional[Iterable[str]] = None) -> float:
        """log₂ estimate of the projection onto ``target``.

        Greedy weighted edge cover: repeatedly pick the atom covering the
        most still-uncovered target variables per log-cardinality unit.  An
        atom touching ``bound`` variables is priced at the tightest
        measured degree with respect to the pinned set (the probe pins
        them), not its cardinality.  The result is capped by the product
        of per-variable distinct counts, by the cardinality of any single
        atom covering the whole target, and by any sampled join whose
        combined schema covers the target — each an unconditional (or
        sampled) upper bound on the projection.
        """
        bound_set = frozenset(bound) if bound is not None else frozenset()
        key = (target, bound_set, False)
        if key not in self._cache:
            cost = self._greedy_cover(target, bound_set, worst_case=False)
            cost = min(cost, self._log_size_caps(target, bound_set))
            self._cache[key] = cost
        return self._cache[key]

    def _log_size_caps(self, target: VarSet,
                       bound_set: FrozenSet[str]) -> float:
        """The tightest unconditional/sampled cap on the projection size."""
        cap = sum(math.log2(self.stats.distinct_count(v))
                  for v in set(target) - bound_set)
        for atom in self.stats.atoms:
            if target <= atom.varset:
                cap = min(cap, math.log2(atom.cardinality))
        if self.use_join_samples:
            for sample in self.stats.join_samples:
                if target <= sample.variables:
                    cap = min(cap,
                              math.log2(max(1.0, sample.estimated_size)))
        return cap

    def log_size_worst(self, target: VarSet) -> float:
        """Pessimistic log₂ size: cardinality-only cover, no distinct cap.

        Tracks the planner's worst-case LP bounds (which never see the
        data's distinct counts) closely enough to judge whether a rule
        *without an online fallback* can be risked against the budget.
        When a bound oracle is attached, the provable polymatroid bound
        replaces the greedy cover wherever it is tighter.
        """
        worst = self._greedy_worst(target)
        if self.bound_oracle is not None:
            worst = min(worst, self.bound_oracle.log_s_bound(target))
        return worst

    def _greedy_worst(self, target: VarSet) -> float:
        """The cached cardinality-only cover (never oracle-clamped)."""
        key = (target, frozenset(), True)
        if key not in self._cache:
            self._cache[key] = self._greedy_cover(target, frozenset(),
                                                  worst_case=True)
        return self._cache[key]

    def _greedy_cover(self, target: VarSet, bound_set: FrozenSet[str],
                      worst_case: bool) -> float:
        """Greedy weighted cover shared by both estimates.

        ``worst_case`` prices every atom at its cardinality (ignoring the
        pinned-variable degree refinement), matching what the planner's
        cardinality-constraint LPs can see.
        """
        covered = set(bound_set)
        uncovered = set(target) - covered
        cost = 0.0
        while uncovered:
            best = None  # (weight / gain, weight, name, vars, atom)
            for atom in self.stats.atoms:
                gain = len(set(atom.variables) & uncovered)
                if not gain:
                    continue
                weight = self._atom_log_weight(atom, covered, worst_case)
                score = (weight / gain, weight, atom.relation,
                         tuple(atom.variables))
                if best is None or score < best[:4]:
                    best = score + (atom,)
            if best is None:
                # target variables outside every atom: nothing to join on
                break
            cost += best[1]
            covered |= set(best[4].variables)
            uncovered -= covered
        return cost

    def _atom_log_weight(self, atom: AtomStatistics, covered,
                         worst_case: bool) -> float:
        pinned = set(atom.variables) & set(covered)
        if pinned and not worst_case:
            degree = atom.degree_for(
                pinned, multivariable=self.use_multivar_degrees
            )
            return math.log2(degree)
        return math.log2(atom.cardinality)

    def s_space(self, target: VarSet) -> float:
        """Estimated tuple count of materializing ``target`` (S-phase)."""
        space = 2.0 ** self.log_size(target)
        if self.bound_oracle is not None:
            space = min(space, 2.0 ** self.bound_oracle.log_s_bound(target))
        return space

    def s_space_worst(self, target: VarSet) -> float:
        """Worst-case tuple count of materializing ``target``."""
        return 2.0 ** self.log_size_worst(target)

    def _log_t_raw(self, target: VarSet) -> float:
        """Un-clamped log₂ per-probe work (size with access bound + |Q|)."""
        return self.log_size(target, bound=self.access) + self.log_request

    def t_time(self, target: VarSet) -> float:
        """Estimated per-probe work of computing ``target`` online."""
        time = 2.0 ** self._log_t_raw(target)
        if self.bound_oracle is not None:
            time = min(time, 2.0 ** (self.bound_oracle.log_t_bound(target)
                                     + self.log_request))
        return time

    # ------------------------------------------------------------------
    # rule / PMTD estimates
    # ------------------------------------------------------------------
    def estimate_rule(self, rule: TwoPhaseRule) -> RuleEstimate:
        """Cheapest S-route and T-route of one rule.

        With a bound oracle attached the per-target numbers are already
        clamped by the provable LP bounds, so the cheapest-target choice
        and the downstream ledger both see the blended values;
        ``lp_clamped`` records whether any clamp actually bound.
        """
        clamped = False
        s_target, s_space = None, math.inf
        for target in sorted(rule.s_targets, key=lambda t: tuple(sorted(t))):
            blended = self.s_space(target)
            clamped = clamped or blended < 2.0 ** self.log_size(target)
            if blended < s_space:
                s_target, s_space = target, blended
        t_target, t_time = None, math.inf
        for target in sorted(rule.t_targets, key=lambda t: tuple(sorted(t))):
            time = self.t_time(target)
            clamped = clamped or time < 2.0 ** self._log_t_raw(target)
            if time < t_time:
                t_target, t_time = target, time
        worst = math.inf
        if s_target is not None:
            worst = self.s_space_worst(s_target)
            clamped = clamped or worst < 2.0 ** self._greedy_worst(s_target)
        return RuleEstimate(rule, s_target, s_space, t_target, t_time,
                            s_space_worst=worst, lp_clamped=clamped)

    def estimate_pmtd(self, pmtd: PMTD) -> Tuple[float, float]:
        """(S-space, T-time) totals over one PMTD's own views.

        Used to order PMTDs deterministically (cheapest first) for
        ``max_selected_pmtds`` capping and for stable tie-breaking.
        """
        space = 0.0
        time = 0.0
        for view in pmtd.ordered_views():
            if view.kind == S_VIEW:
                space += self.s_space(view.variables)
            else:
                time += self.t_time(view.variables)
        return space, time

    def pmtd_order_key(self, pmtd: PMTD) -> Tuple:
        """Deterministic sort key: cheapest (time, space) PMTD first."""
        space, time = self.estimate_pmtd(pmtd)
        labels = tuple(v.label for v in pmtd.ordered_views())
        return (time, space, len(labels), labels)


def order_pmtds_by_cost(pmtds: Sequence[PMTD],
                        model: CostModel) -> List[PMTD]:
    """PMTDs sorted cheapest-first under the cost model (deterministic)."""
    return sorted(pmtds, key=model.pmtd_order_key)
