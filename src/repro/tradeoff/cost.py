"""Catalog-statistics cost model for budgeted rule selection.

The planner's joint Shannon-flow LP (``tradeoff.joint_flow``) prices one
rule exactly but is far too expensive to call inside a search over PMTD
subsets.  This module prices rules *approximately* from per-relation
catalog statistics — cardinalities, per-variable distinct counts, and
measured max-degrees, the same quantities ``query.constraints`` feeds the
LP as degree constraints — so selection can rank hundreds of candidate
rule sets in milliseconds:

* an **S-target** costs *space*: the estimated size of its materialized
  projection (greedy weighted edge cover over the body atoms, capped by
  the product of per-variable distinct counts);
* a **T-target** costs *time*: the same estimate but with the access
  pattern bound, so atoms touching a bound variable are priced at their
  measured degree instead of their cardinality.

Everything is a log₂ estimate internally; the linear-scale accessors
(`s_space`, `t_time`) are what selection accumulates against the budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.decomposition.pmtd import PMTD, S_VIEW
from repro.query.cq import CQAP
from repro.query.hypergraph import VarSet, varset
from repro.tradeoff.rules import TwoPhaseRule


@dataclass(frozen=True)
class AtomStatistics:
    """One body atom's catalog entry."""

    relation: str
    variables: Tuple[str, ...]
    cardinality: int
    #: per-variable max degree: how many tuples share one value of ``v``
    degrees: Tuple[Tuple[str, int], ...]
    #: per-variable distinct counts
    distinct: Tuple[Tuple[str, int], ...]

    @property
    def varset(self) -> VarSet:
        return varset(self.variables)

    def degree_of(self, variable: str) -> int:
        return dict(self.degrees).get(variable, self.cardinality)


@dataclass
class CatalogStatistics:
    """Per-atom statistics of one (CQAP, database) pair."""

    atoms: List[AtomStatistics] = field(default_factory=list)

    @classmethod
    def from_database(cls, cqap: CQAP, db) -> "CatalogStatistics":
        """Measure cardinalities, degrees, and distinct counts per atom.

        One streaming pass per stored relation (shared across atoms that
        reuse it): per-column value counts give the distinct count and the
        max degree without building hash indexes or rebound copies.
        """
        per_relation: Dict[str, List[Dict[object, int]]] = {}
        out = []
        for atom in cqap.atoms:
            relation = db[atom.relation]
            counts = per_relation.get(atom.relation)
            if counts is None:
                counts = [
                    {} for _ in range(len(relation.schema))
                ]
                for row in relation.tuples:
                    for pos, value in enumerate(row):
                        counts[pos][value] = counts[pos].get(value, 0) + 1
                per_relation[atom.relation] = counts
            # the atom's variables name the stored columns positionally
            degrees = []
            distinct = []
            for pos, var in enumerate(atom.variables):
                column = counts[pos] if pos < len(counts) else {}
                distinct.append((var, max(1, len(column))))
                degrees.append((var, max(1, max(column.values(), default=0))))
            out.append(AtomStatistics(
                relation=atom.relation,
                variables=tuple(atom.variables),
                cardinality=max(1, len(relation)),
                degrees=tuple(degrees),
                distinct=tuple(distinct),
            ))
        return cls(out)

    def distinct_count(self, variable: str) -> int:
        """Distinct values of ``variable`` across every atom mentioning it."""
        best = None
        for atom in self.atoms:
            for var, count in atom.distinct:
                if var == variable:
                    best = count if best is None else min(best, count)
        return best if best is not None else 1


@dataclass(frozen=True)
class RuleEstimate:
    """One rule priced by the cost model.

    ``s_target``/``s_space`` describe the cheapest S-route (None/inf when
    the rule has no S-target); ``t_target``/``t_time`` the cheapest
    T-route.  ``route`` is filled in by selection once the budget decides
    which one the rule will actually take.
    """

    rule: TwoPhaseRule
    s_target: Optional[VarSet]
    s_space: float
    t_target: Optional[VarSet]
    t_time: float
    route: Optional[str] = None  # "S" | "T", set by selection
    #: pessimistic size of the S-route; what feasibility checks use for
    #: rules that have no T-target to abort to
    s_space_worst: float = math.inf

    def routed(self, route: str) -> "RuleEstimate":
        return RuleEstimate(self.rule, self.s_target, self.s_space,
                            self.t_target, self.t_time, route,
                            self.s_space_worst)

    def describe(self) -> str:
        parts = []
        if self.s_target is not None:
            parts.append(f"S~{self.s_space:.3g}")
        if self.t_target is not None:
            parts.append(f"T~{self.t_time:.3g}")
        route = f" -> {self.route}" if self.route else ""
        return f"est[{' '.join(parts)}{route}]"


class CostModel:
    """Prices targets, rules, and PMTDs from catalog statistics."""

    def __init__(self, cqap: CQAP, stats: CatalogStatistics,
                 request_size: float = 1.0) -> None:
        self.cqap = cqap
        self.stats = stats
        self.access: VarSet = varset(cqap.access)
        self.log_request = math.log2(max(1.0, request_size))
        self._cache: Dict[Tuple[VarSet, FrozenSet[str], bool], float] = {}

    # ------------------------------------------------------------------
    # target estimates
    # ------------------------------------------------------------------
    def log_size(self, target: VarSet,
                 bound: Optional[Iterable[str]] = None) -> float:
        """log₂ estimate of the projection onto ``target``.

        Greedy weighted edge cover: repeatedly pick the atom covering the
        most still-uncovered target variables per log-cardinality unit.  An
        atom touching a ``bound`` variable is priced at its max degree with
        respect to that variable (the probe pins it), not its cardinality.
        The result is capped by the product of per-variable distinct
        counts, which is an unconditional upper bound on any projection.
        """
        bound_set = frozenset(bound) if bound is not None else frozenset()
        key = (target, bound_set, False)
        if key not in self._cache:
            cost = self._greedy_cover(target, bound_set, worst_case=False)
            cap = sum(math.log2(self.stats.distinct_count(v))
                      for v in set(target) - bound_set)
            self._cache[key] = min(cost, cap)
        return self._cache[key]

    def log_size_worst(self, target: VarSet) -> float:
        """Pessimistic log₂ size: cardinality-only cover, no distinct cap.

        Tracks the planner's worst-case LP bounds (which never see the
        data's distinct counts) closely enough to judge whether a rule
        *without an online fallback* can be risked against the budget.
        """
        key = (target, frozenset(), True)
        if key not in self._cache:
            self._cache[key] = self._greedy_cover(target, frozenset(),
                                                  worst_case=True)
        return self._cache[key]

    def _greedy_cover(self, target: VarSet, bound_set: FrozenSet[str],
                      worst_case: bool) -> float:
        """Greedy weighted cover shared by both estimates.

        ``worst_case`` prices every atom at its cardinality (ignoring the
        pinned-variable degree refinement), matching what the planner's
        cardinality-constraint LPs can see.
        """
        covered = set(bound_set)
        uncovered = set(target) - covered
        cost = 0.0
        while uncovered:
            best = None  # (weight / gain, weight, name, vars, atom)
            for atom in self.stats.atoms:
                gain = len(set(atom.variables) & uncovered)
                if not gain:
                    continue
                weight = self._atom_log_weight(atom, covered, worst_case)
                score = (weight / gain, weight, atom.relation,
                         tuple(atom.variables))
                if best is None or score < best[:4]:
                    best = score + (atom,)
            if best is None:
                # target variables outside every atom: nothing to join on
                break
            cost += best[1]
            covered |= set(best[4].variables)
            uncovered -= covered
        return cost

    def _atom_log_weight(self, atom: AtomStatistics, covered,
                         worst_case: bool) -> float:
        pinned = set(atom.variables) & set(covered)
        if pinned and not worst_case:
            return math.log2(min(atom.degree_of(v) for v in pinned))
        return math.log2(atom.cardinality)

    def s_space(self, target: VarSet) -> float:
        """Estimated tuple count of materializing ``target`` (S-phase)."""
        return 2.0 ** self.log_size(target)

    def s_space_worst(self, target: VarSet) -> float:
        """Worst-case tuple count of materializing ``target``."""
        return 2.0 ** self.log_size_worst(target)

    def t_time(self, target: VarSet) -> float:
        """Estimated per-probe work of computing ``target`` online."""
        return 2.0 ** (self.log_size(target, bound=self.access)
                       + self.log_request)

    # ------------------------------------------------------------------
    # rule / PMTD estimates
    # ------------------------------------------------------------------
    def estimate_rule(self, rule: TwoPhaseRule) -> RuleEstimate:
        """Cheapest S-route and T-route of one rule."""
        s_target, s_space = None, math.inf
        for target in sorted(rule.s_targets, key=lambda t: tuple(sorted(t))):
            space = self.s_space(target)
            if space < s_space:
                s_target, s_space = target, space
        t_target, t_time = None, math.inf
        for target in sorted(rule.t_targets, key=lambda t: tuple(sorted(t))):
            time = self.t_time(target)
            if time < t_time:
                t_target, t_time = target, time
        worst = (self.s_space_worst(s_target) if s_target is not None
                 else math.inf)
        return RuleEstimate(rule, s_target, s_space, t_target, t_time,
                            s_space_worst=worst)

    def estimate_pmtd(self, pmtd: PMTD) -> Tuple[float, float]:
        """(S-space, T-time) totals over one PMTD's own views.

        Used to order PMTDs deterministically (cheapest first) for the
        deprecated ``max_pmtds`` truncation and for stable tie-breaking.
        """
        space = 0.0
        time = 0.0
        for view in pmtd.ordered_views():
            if view.kind == S_VIEW:
                space += self.s_space(view.variables)
            else:
                time += self.t_time(view.variables)
        return space, time

    def pmtd_order_key(self, pmtd: PMTD) -> Tuple:
        """Deterministic sort key: cheapest (time, space) PMTD first."""
        space, time = self.estimate_pmtd(pmtd)
        labels = tuple(v.label for v in pmtd.ordered_views())
        return (time, space, len(labels), labels)


def order_pmtds_by_cost(pmtds: Sequence[PMTD],
                        model: CostModel) -> List[PMTD]:
    """PMTDs sorted cheapest-first under the cost model (deterministic)."""
    return sorted(pmtds, key=model.pmtd_order_key)
