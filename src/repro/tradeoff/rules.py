"""2-phase disjunctive rules and their generation from PMTD sets (§4).

A 2-phase disjunctive rule (Definition 4.1) has the body of the access CQ and
a head split into *S-targets* (answerable during preprocessing) and
*T-targets* (answerable online).  §4.2 builds one rule per element of the
cartesian product of the PMTDs' node sets: the chosen node contributes its
S-view or T-view schema as a target.

Two reductions keep the rule set at the paper's size (Table 1 lists 4 rules
for 3-reachability out of the raw 16):

* within a rule, a target whose schema contains another same-kind target's
  schema is redundant (§E.8 drops ``T2345`` in the presence of ``T234``);
* across rules, a rule whose S-target and T-target sets both contain another
  rule's is *no easier* (Observation E.1) and a model of the smaller rule is
  a model of the larger one — so only subset-minimal rules are kept.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.decomposition.pmtd import PMTD, S_VIEW, view_label
from repro.query.cq import CQAP
from repro.query.hypergraph import VarSet, varset


@dataclass(frozen=True)
class TwoPhaseRule:
    """An (S-targets, T-targets) head over a CQAP's access body."""

    s_targets: FrozenSet[VarSet]
    t_targets: FrozenSet[VarSet]

    def __post_init__(self) -> None:
        if not self.s_targets and not self.t_targets:
            raise ValueError("a rule needs at least one target")

    @property
    def label(self) -> str:
        """Paper-style head, e.g. ``T134 ∨ T124 ∨ S14``."""
        t_part = sorted(view_label("T", t) for t in self.t_targets)
        s_part = sorted(view_label("S", s) for s in self.s_targets)
        return " ∨ ".join(t_part + s_part)

    def __repr__(self) -> str:
        return f"TwoPhaseRule({self.label})"

    def no_easier_than(self, other: "TwoPhaseRule") -> bool:
        """Observation E.1: other's targets ⊆ ours (componentwise)."""
        return (other.s_targets <= self.s_targets
                and other.t_targets <= self.t_targets)

    @staticmethod
    def reduced(s_targets: Iterable[VarSet],
                t_targets: Iterable[VarSet]) -> "TwoPhaseRule":
        """Build a rule, dropping same-kind superset targets."""

        def minimal(targets: Iterable[VarSet]) -> FrozenSet[VarSet]:
            targets = set(targets)
            return frozenset(
                t for t in targets
                if not any(o < t for o in targets)
            )

        return TwoPhaseRule(minimal(s_targets), minimal(t_targets))


def rules_from_pmtds(pmtds: Sequence[PMTD],
                     reduce_rules: bool = True) -> List[TwoPhaseRule]:
    """§4.2: one rule per choice of one view from every PMTD.

    With ``reduce_rules`` (default), within-rule target reduction and the
    across-rule subset-minimality filter are applied, reproducing Table 1.
    """
    if not pmtds:
        raise ValueError("need at least one PMTD")
    choices = [list(p.views.values()) for p in pmtds]
    raw: List[TwoPhaseRule] = []
    seen = set()
    for combo in product(*choices):
        s_targets = [v.variables for v in combo if v.kind == S_VIEW]
        t_targets = [v.variables for v in combo if v.kind != S_VIEW]
        if reduce_rules:
            rule = TwoPhaseRule.reduced(s_targets, t_targets)
        else:
            rule = TwoPhaseRule(frozenset(s_targets), frozenset(t_targets))
        key = (rule.s_targets, rule.t_targets)
        if key not in seen:
            seen.add(key)
            raw.append(rule)
    if not reduce_rules:
        return raw
    # keep subset-minimal rules only
    kept: List[TwoPhaseRule] = []
    for rule in raw:
        if not any(other is not rule and rule.no_easier_than(other)
                   and (other.s_targets, other.t_targets)
                   != (rule.s_targets, rule.t_targets)
                   for other in raw):
            kept.append(rule)
    return kept


def paper_rules_3reach() -> List[TwoPhaseRule]:
    """The four Table-1 rules, constructed explicitly for cross-checking."""

    def v(*nums: int) -> VarSet:
        return varset(f"x{n}" for n in nums)

    return [
        TwoPhaseRule(frozenset({v(1, 4)}),
                     frozenset({v(1, 3, 4), v(1, 2, 4)})),
        TwoPhaseRule(frozenset({v(1, 3), v(1, 4)}),
                     frozenset({v(1, 2, 3), v(1, 2, 4)})),
        TwoPhaseRule(frozenset({v(2, 4), v(1, 4)}),
                     frozenset({v(1, 3, 4), v(2, 3, 4)})),
        TwoPhaseRule(frozenset({v(1, 3), v(2, 4), v(1, 4)}),
                     frozenset({v(1, 2, 3), v(2, 3, 4)})),
    ]
