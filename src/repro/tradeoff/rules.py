"""2-phase disjunctive rules and their generation from PMTD sets (§4).

A 2-phase disjunctive rule (Definition 4.1) has the body of the access CQ and
a head split into *S-targets* (answerable during preprocessing) and
*T-targets* (answerable online).  §4.2 builds one rule per element of the
cartesian product of the PMTDs' node sets: the chosen node contributes its
S-view or T-view schema as a target.

Two reductions keep the rule set at the paper's size (Table 1 lists 4 rules
for 3-reachability out of the raw 16):

* within a rule, a target whose schema contains another same-kind target's
  schema is redundant (§E.8 drops ``T2345`` in the presence of ``T234``);
* across rules, a rule whose S-target and T-target sets both contain another
  rule's is *no easier* (Observation E.1) and a model of the smaller rule is
  a model of the larger one — so only subset-minimal rules are kept.

The production generator, :func:`stream_rules_from_pmtds`, applies both
reductions *incrementally*: it sweeps the PMTDs one at a time, keeping a
frontier of reduced partial heads instead of the cartesian product, so rule
generation for 20+-PMTD sets (a ~1e10-combination product) terminates in
milliseconds.  The eager product survives as the private reference
implementation ``_rules_from_pmtds_eager`` that the property tests diff the
stream against.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
)

from repro.decomposition.pmtd import PMTD, S_VIEW, view_label
from repro.query.hypergraph import VarSet, varset

#: (s_targets, t_targets) identity of a rule / partial head
RuleKey = Tuple[FrozenSet[VarSet], FrozenSet[VarSet]]


def _minimal(targets: Iterable[VarSet]) -> FrozenSet[VarSet]:
    """Within-rule reduction: drop same-kind targets that contain another."""
    targets = set(targets)
    return frozenset(
        t for t in targets
        if not any(o < t for o in targets)
    )


@dataclass(frozen=True)
class TwoPhaseRule:
    """An (S-targets, T-targets) head over a CQAP's access body."""

    s_targets: FrozenSet[VarSet]
    t_targets: FrozenSet[VarSet]

    def __post_init__(self) -> None:
        if not self.s_targets and not self.t_targets:
            raise ValueError("a rule needs at least one target")

    @property
    def label(self) -> str:
        """Paper-style head, e.g. ``T134 ∨ T124 ∨ S14``."""
        t_part = sorted(view_label("T", t) for t in self.t_targets)
        s_part = sorted(view_label("S", s) for s in self.s_targets)
        return " ∨ ".join(t_part + s_part)

    def __repr__(self) -> str:
        return f"TwoPhaseRule({self.label})"

    def no_easier_than(self, other: "TwoPhaseRule") -> bool:
        """Observation E.1: other's targets ⊆ ours (componentwise)."""
        return (other.s_targets <= self.s_targets
                and other.t_targets <= self.t_targets)

    @staticmethod
    def reduced(s_targets: Iterable[VarSet],
                t_targets: Iterable[VarSet]) -> "TwoPhaseRule":
        """Build a rule, dropping same-kind superset targets."""
        return TwoPhaseRule(_minimal(s_targets), _minimal(t_targets))


def _sort_key(key: RuleKey) -> Tuple:
    """Canonical rule order: fewest targets first, then by schema."""
    s_targets, t_targets = key
    return (
        len(s_targets) + len(t_targets),
        sorted(tuple(sorted(t)) for t in t_targets),
        sorted(tuple(sorted(s)) for s in s_targets),
    )


def _ordered_layers(pmtds: Sequence[PMTD]) -> List[List]:
    """Per-PMTD view choices in the frontier sweep's processing order.

    The final rule *set* is invariant under reordering (the product is
    symmetric), so the sweep is free to pick the order that keeps the
    frontier smallest: PMTDs with fewer choices first, deterministic
    tie-break on the view schemas (see :meth:`PMTD.ordered_views`).
    """
    layers = [p.ordered_views() for p in pmtds]
    return sorted(
        layers,
        key=lambda views: (
            len(views),
            [(v.kind, tuple(sorted(v.variables))) for v in views],
        ),
    )


def _extend(key: RuleKey, view) -> RuleKey:
    """One partial head plus one chosen view, reduced on the fly."""
    s_targets, t_targets = key
    if view.kind == S_VIEW:
        return (_minimal(set(s_targets) | {view.variables}), t_targets)
    return (s_targets, _minimal(set(t_targets) | {view.variables}))


def _prune_frontier(frontier: Set[RuleKey],
                    rest_s: FrozenSet[VarSet],
                    rest_t: FrozenSet[VarSet]) -> Set[RuleKey]:
    """Incremental Observation E.1: drop partial heads that can only extend
    into rules no easier than another surviving head's extensions.

    A partial head ``a`` is pruned in favour of ``b`` when ``b``'s targets
    are a componentwise subset of ``a``'s *and* no view still to come
    strictly contains a target in the difference ``a \\ b``.  The guard is
    what makes the pruning exact: a later view ``v ⊋ d`` with ``d ∈ a \\ b``
    would be absorbed by ``a`` (``d`` subsumes it) but *enter* ``b``,
    flipping the dominance — with the guard, ``b``'s extensions stay a
    componentwise subset of ``a``'s, so the eager subset-minimality filter
    would have discarded ``a``'s rule anyway.
    """
    ordered = sorted(frontier, key=_sort_key)
    kept: List[RuleKey] = []
    for a_s, a_t in ordered:
        dominated = False
        for b_s, b_t in kept:
            if not (b_s <= a_s and b_t <= a_t):
                continue
            if (b_s, b_t) == (a_s, a_t):
                continue
            if any(d < v for d in a_s - b_s for v in rest_s):
                continue
            if any(d < v for d in a_t - b_t for v in rest_t):
                continue
            dominated = True
            break
        if not dominated:
            kept.append((a_s, a_t))
    return set(kept)


def stream_rules_from_pmtds(pmtds: Sequence[PMTD]) -> Iterator[TwoPhaseRule]:
    """§4.2 rule generation as a streamed frontier sweep.

    Yields exactly the rules of ``_rules_from_pmtds_eager(pmtds)`` (same
    set; canonical :func:`_sort_key` order) while never materializing the
    cartesian product: memory is bounded by the frontier of distinct
    reduced partial heads, which on-the-fly dominance pruning keeps small
    (tens of entries for the 21-PMTD fuzz queries whose raw product has
    ~1e10 combinations).
    """
    if not pmtds:
        raise ValueError("need at least one PMTD")
    layers = _ordered_layers(pmtds)
    # suffix view pools, per kind, used by the exactness guard in
    # _prune_frontier: rests[i] = schemas still to come after layer i
    rests: List[Tuple[FrozenSet[VarSet], FrozenSet[VarSet]]] = []
    pool_s: Set[VarSet] = set()
    pool_t: Set[VarSet] = set()
    for views in reversed(layers):
        rests.insert(0, (frozenset(pool_s), frozenset(pool_t)))
        for view in views:
            (pool_s if view.kind == S_VIEW else pool_t).add(view.variables)
    frontier: Set[RuleKey] = {(frozenset(), frozenset())}
    for views, (rest_s, rest_t) in zip(layers, rests):
        frontier = {_extend(key, view) for key in frontier for view in views}
        frontier = _prune_frontier(frontier, rest_s, rest_t)
    # final pass: with no views left the guard is vacuous, so the frontier
    # is now exactly the subset-minimal rule set
    for s_targets, t_targets in sorted(frontier, key=_sort_key):
        if s_targets or t_targets:
            yield TwoPhaseRule(s_targets, t_targets)


def _rules_from_pmtds_eager(pmtds: Sequence[PMTD],
                            reduce_rules: bool = True) -> List[TwoPhaseRule]:
    """Reference implementation: the full cartesian product (pre-stream).

    Exponential in the PMTD count — kept (a) for ``reduce_rules=False``,
    where the raw product *is* the requested output, and (b) as the oracle
    the property tests diff :func:`stream_rules_from_pmtds` against.
    """
    if not pmtds:
        raise ValueError("need at least one PMTD")
    choices = [p.ordered_views() for p in pmtds]
    raw: List[TwoPhaseRule] = []
    seen = set()
    for combo in product(*choices):
        s_targets = [v.variables for v in combo if v.kind == S_VIEW]
        t_targets = [v.variables for v in combo if v.kind != S_VIEW]
        if reduce_rules:
            rule = TwoPhaseRule.reduced(s_targets, t_targets)
        else:
            rule = TwoPhaseRule(frozenset(s_targets), frozenset(t_targets))
        key = (rule.s_targets, rule.t_targets)
        if key not in seen:
            seen.add(key)
            raw.append(rule)
    if not reduce_rules:
        return raw
    # keep subset-minimal rules only
    kept: List[TwoPhaseRule] = []
    for rule in raw:
        if not any(other is not rule and rule.no_easier_than(other)
                   and (other.s_targets, other.t_targets)
                   != (rule.s_targets, rule.t_targets)
                   for other in raw):
            kept.append(rule)
    return kept


def rules_from_pmtds(pmtds: Sequence[PMTD],
                     reduce_rules: bool = True) -> List[TwoPhaseRule]:
    """§4.2: one rule per choice of one view from every PMTD.

    With ``reduce_rules`` (default), within-rule target reduction and the
    across-rule subset-minimality filter are applied, reproducing Table 1;
    the work is done by the streamed frontier sweep, so large PMTD sets are
    fine.  Rules come back in canonical order (fewest targets first).

    ``reduce_rules=False`` returns the raw cartesian product (deduplicated,
    product order) and is only usable for small PMTD sets.
    """
    if not reduce_rules:
        return _rules_from_pmtds_eager(pmtds, reduce_rules=False)
    return list(stream_rules_from_pmtds(pmtds))


def paper_rules_3reach() -> List[TwoPhaseRule]:
    """The four Table-1 rules, constructed explicitly for cross-checking."""

    def v(*nums: int) -> VarSet:
        return varset(f"x{n}" for n in nums)

    return [
        TwoPhaseRule(frozenset({v(1, 4)}),
                     frozenset({v(1, 3, 4), v(1, 2, 4)})),
        TwoPhaseRule(frozenset({v(1, 3), v(1, 4)}),
                     frozenset({v(1, 2, 3), v(1, 2, 4)})),
        TwoPhaseRule(frozenset({v(2, 4), v(1, 4)}),
                     frozenset({v(1, 3, 4), v(2, 3, 4)})),
        TwoPhaseRule(frozenset({v(1, 3), v(2, 4), v(1, 4)}),
                     frozenset({v(1, 2, 3), v(2, 3, 4)})),
    ]
