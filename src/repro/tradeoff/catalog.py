"""Closed-form tradeoffs from the paper and prior work (baselines).

Each entry is a :class:`TradeoffFormula` (or a function producing one), used
by the figure benchmarks as the brown "baseline" lines and by tests as the
expected outputs of the LP machinery.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.tradeoff.curves import TradeoffFormula

F = Fraction


def goldstein_k_reach(k: int) -> TradeoffFormula:
    """Goldstein et al.'s conjectured-optimal ``S · T^{2/(k-1)} ≍ D² · Q^{2/(k-1)}``.

    The Figure 4a/4b brown baselines (§6.4); conjectured optimal for
    ``|Q_A| = 1`` and falsified by the paper for k >= 3.
    """
    if k < 2:
        raise ValueError("k-reachability baseline needs k >= 2")
    return TradeoffFormula(F(k - 1), F(2), F(2 * (k - 1)), F(2))


def set_disjointness_boolean(k: int) -> TradeoffFormula:
    """``S · T^k ≍ D^k · Q^k`` — Example 6.2 via Theorem 6.1 (slack k)."""
    return TradeoffFormula(F(1), F(k), F(k), F(k))


def set_intersection_enumeration(k: int) -> TradeoffFormula:
    """``S · T^{k-1} ≍ D^k · Q^{k-1}`` — §6.1 (non-Boolean k-set)."""
    return TradeoffFormula(F(1), F(k - 1), F(k), F(k - 1))


def two_set_disjointness() -> TradeoffFormula:
    """The classic ``S · T² = O(N²)`` from Cohen-Porat / Goldstein et al."""
    return TradeoffFormula(F(1), F(2), F(2), F(2))


def square_query() -> TradeoffFormula:
    """``S · T² ≍ D² · Q²`` — Example 5.2 / E.5."""
    return TradeoffFormula(F(1), F(2), F(2), F(2))


def example_6_3_path() -> TradeoffFormula:
    """``S^{3/2} · T ≍ Q · D³`` — Example 6.3 (4-reachability, one path)."""
    return TradeoffFormula(F(3, 2), F(1), F(3), F(1))


def hierarchical_fig6_derived() -> TradeoffFormula:
    """``S · T³ ≍ D⁴ · Q³`` — §F first derivation for the Fig. 6 query."""
    return TradeoffFormula(F(1), F(3), F(4), F(3))


def hierarchical_fig6_improved() -> TradeoffFormula:
    """``S · T⁴ ≍ D⁴ · Q⁴`` — §F improved (bucketize on bound variables)."""
    return TradeoffFormula(F(1), F(4), F(4), F(4))


def table1_3reach() -> dict:
    """Table 1: rule label -> list of intrinsic tradeoffs."""
    return {
        "T124 ∨ T134 ∨ S14": [
            TradeoffFormula(F(1), F(2), F(2), F(2)),
        ],
        "T123 ∨ T124 ∨ S13 ∨ S14": [
            TradeoffFormula(F(2), F(3), F(4), F(3)),
            TradeoffFormula(F(0), F(1), F(1), F(1)),
        ],
        "T134 ∨ T234 ∨ S14 ∨ S24": [
            TradeoffFormula(F(2), F(3), F(4), F(3)),
            TradeoffFormula(F(0), F(1), F(1), F(1)),
        ],
        "T123 ∨ T234 ∨ S13 ∨ S14 ∨ S24": [
            TradeoffFormula(F(1), F(1), F(2), F(1)),
            TradeoffFormula(F(4), F(1), F(6), F(1)),
            TradeoffFormula(F(0), F(1), F(1), F(1)),
        ],
    }


def example_e8_4reach() -> dict:
    """§E.8: the 4-reachability rule tradeoffs used for Figure 4b."""
    return {
        "rho1": [TradeoffFormula(F(1), F(1), F(2), F(1))],
        "rho2": [TradeoffFormula(F(2), F(2), F(4), F(2))],
        "rho4": [
            TradeoffFormula(F(6), F(5), F(12), F(5)),
            TradeoffFormula(F(8), F(3), F(13), F(3)),
        ],
        "bfs": [TradeoffFormula(F(0), F(1), F(1), F(1))],
    }


def figure4a_expected_breakpoints() -> List[tuple]:
    """The (log_D S, log_D T) corners of the Fig. 4a dotted envelope.

    Derived from Table 1 (|Q|=1): start (1,1); ρ4's S·T=D² until it meets
    ρ4's S⁴·T=D⁶ at (4/3, 2/3); that line until ρ2's S²T³=D⁴ overtakes at
    (7/5, 2/5); ρ2 to (2, 0).
    """
    return [
        (F(1), F(1)),
        (F(4, 3), F(2, 3)),
        (F(7, 5), F(2, 5)),
        (F(2), F(0)),
    ]


def figure4b_expected_breakpoints() -> List[tuple]:
    """The (log_D S, log_D T) corners of the Fig. 4b dotted envelope.

    Derived from §E.8 (|Q|=1): flat T=D until ρ4's S⁶T⁵=D¹² drops below at
    S = D^{7/6}; that segment until it meets ρ4's S⁸T³=D¹³ at (29/22, 9/11);
    then to ρ1's S·T=D² at (7/5, 3/5); then ρ1 to (2, 0).
    """
    return [
        (F(1), F(1)),
        (F(7, 6), F(1)),
        (F(29, 22), F(9, 11)),
        (F(7, 5), F(3, 5)),
        (F(2), F(0)),
    ]


def figure4b_lp_breakpoints() -> List[tuple]:
    """The LP-optimal Fig. 4b envelope computed by this reproduction.

    Theorem C.3's LP finds the *optimal* joint Shannon-flow inequality per
    rule, so the envelope can only sit at or below the paper's hand-derived
    curve.  It coincides at (1,1), (7/6,1), (7/5,3/5), (2,0) and is strictly
    better on (9/7, 7/5): the LP discovers an ``S⁵·T³ ≍ D⁹`` piece (slope
    −5/3) between ρ4's two hand-constructed segments.
    """
    return [
        (F(1), F(1)),
        (F(7, 6), F(1)),
        (F(9, 7), F(6, 7)),
        (F(4, 3), F(7, 9)),
        (F(7, 5), F(3, 5)),
        (F(2), F(0)),
    ]
