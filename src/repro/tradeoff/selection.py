"""Budget-aware rule selection: pick the PMTD subset worth planning.

The paper realizes its space-time tradeoff by *choosing* a 2-phase
disjunctive rule set that meets a space budget (§4, Table 1).  The rule
set of a PMTD family is its cartesian product, so the selectable sound
units are PMTD subsets: answering unions the per-PMTD ψ_i and each ψ_i is
complete once its views are filled by its subset's full (reduced) rule
product — any nonempty PMTD subset therefore answers exactly, and the
choice only moves the space/time point.

``select_rules`` runs a deterministic beam search over PMTD subsets.  A
candidate subset is priced by streaming its rule set
(:func:`~repro.tradeoff.rules.stream_rules_from_pmtds`) and letting the
cost model route every rule:

* a rule takes its cheapest **S-route** when the estimated materialized
  size still fits the remaining space budget (probes then cost ~1 hash
  lookup);  S-targets shared across rules are paid for once;
* otherwise it takes its cheapest **T-route** and its estimated online
  cost lands on the probe-time side of the ledger.

Routing is *monotone in the budget*: the first S-candidate that fails the
budget check freezes the paying prefix, so a rule routed S at budget B is
routed S at every budget B' ≥ B (the route-stability invariant the
differential harness asserts; see :func:`evaluate_rules`).

Candidates are ranked (feasible first, then estimated probe time, then
space, then a label tie-break), so equal inputs always select the same
rules.  The search never returns an empty selection: when nothing fits
the budget the *cheapest-space* candidate is kept and flagged
``over_budget`` — over-budget candidates rank by space before time, since
the planner's own abort paths (the backstop that over-budget selections
lean on) pay in space, mirroring ``budget_slack`` elsewhere.

When a ``lp_oracle`` (:class:`~repro.tradeoff.joint_flow.SizeBoundOracle`
over the planner's own degree-constraint LP) is supplied, the candidates
the final beam kept — never the whole pool — are re-priced with estimates
clamped to the provable polymatroid bounds, so an estimate that
contradicts a bound loses; the blend is exposed in
:meth:`SelectionResult.snapshot` under ``"lp_blend"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.decomposition.pmtd import PMTD
from repro.tradeoff.cost import CostModel, RuleEstimate
from repro.tradeoff.rules import TwoPhaseRule, stream_rules_from_pmtds

#: estimated per-probe overhead of carrying one extra PMTD (its Online
#: Yannakakis pass); biases selection toward fewer PMTDs on near-ties
PMTD_OVERHEAD = 1.0

#: probe cost of a rule served from a materialized S-target (hash lookup)
S_PROBE_COST = 1.0


@dataclass
class SelectionResult:
    """The chosen rule set plus the estimates that chose it."""

    mode: str                       # "all" | "budget"
    pmtds: List[PMTD]
    rules: List[TwoPhaseRule]
    estimates: List[RuleEstimate]   # parallel to ``rules``, routes filled
    estimated_space: float
    estimated_time: float
    space_budget: Optional[float]
    candidate_pmtds: int            # size of the pool selection drew from
    considered_subsets: int = 1
    over_budget: bool = False
    #: worker count the space ledger was priced for (1 = global ledger)
    shards: int = 1
    #: LP-bound blend summary (None when selection ran estimates-only)
    lp_blend: Optional[Dict] = None

    def snapshot(self, budget_split: Optional[Dict] = None) -> Dict:
        """JSON-friendly summary for lifecycle counters / stats().

        ``budget_split`` is the sharded serving layer's per-shard division
        of the space budget (:meth:`repro.serving.ShardedIndex.stats`
        computes it); when given it is recorded verbatim so a selection
        snapshot always names the budget regime it is actually serving
        under — global for a single index, per-shard once partitioned.
        """
        snap = {
            "mode": self.mode,
            "space_budget": self.space_budget,
            "candidate_pmtds": self.candidate_pmtds,
            "selected_pmtds": len(self.pmtds),
            "selected_rules": len(self.rules),
            "rules": [rule.label for rule in self.rules],
            "routes": [est.route for est in self.estimates],
            "estimated_space": self.estimated_space,
            "estimated_time": self.estimated_time,
            "considered_subsets": self.considered_subsets,
            "over_budget": self.over_budget,
            "shards": self.shards,
            "lp_blend": self.lp_blend,
        }
        if budget_split is not None:
            snap["budget_split"] = dict(budget_split)
        return snap

    def s_view_keys(self, access: Sequence[str]) -> List[Dict]:
        """Per-rule S-view key schemas — what the sharder routes on.

        Every S-routed rule serves probes out of a materialized view whose
        *key* is its schema; a view is hash-partitionable by access tuple
        exactly when its schema contains every access variable (rows that
        could answer a probe then all carry that probe's access binding,
        so partitioning commutes with probe semantics).  Returns one entry
        per rule with an S-target::

            {"rule": label, "s_target": sorted schema tuple,
             "access_prefix": access vars in access-pattern order,
             "partitionable": bool}

        ``access_prefix`` is the key the sharder hashes — ordered like the
        access pattern so routing and probe normalization agree.
        """
        access = tuple(access)
        out: List[Dict] = []
        for est in self.estimates:
            if est.s_target is None:
                continue
            target = est.s_target
            partitionable = bool(access) and set(access) <= set(target)
            out.append({
                "rule": est.rule.label,
                "s_target": tuple(sorted(target)),
                "access_prefix": access if partitionable else (),
                "partitionable": partitionable,
            })
        return out

    def describe(self) -> str:
        return (f"selection[{self.mode}]: {len(self.pmtds)}/"
                f"{self.candidate_pmtds} PMTDs, {len(self.rules)} rules, "
                f"~{self.estimated_space:.3g} tuples, "
                f"~{self.estimated_time:.3g} probe cost"
                + (" (over budget)" if self.over_budget else "")
                + (" (lp-blended)" if self.lp_blend else ""))


def shard_fraction(target, access: Sequence[str], shards: int) -> float:
    """The share of an S-target resident on one of ``shards`` workers.

    A target whose schema contains every access variable partitions by
    access hash (see :meth:`SelectionResult.s_view_keys`), so each shard
    holds ~``1/shards`` of it; any other target is replicated whole to
    every shard and costs each worker its full size.  This is what makes
    the fleet's per-process space budget *honest*: replicated state must
    fit every per-shard budget, partitioned state splits.
    """
    if shards <= 1:
        return 1.0
    if access and set(access) <= set(target):
        return 1.0 / shards
    return 1.0


def evaluate_rules(rules: Sequence[TwoPhaseRule], model: CostModel,
                   space_budget: Optional[float],
                   shards: int = 1,
                   ) -> Tuple[float, float, List[RuleEstimate], bool]:
    """Route every rule S-or-T against the budget; returns the ledger.

    Rules are routed greedily in benefit order (time saved per tuple
    stored, S-only rules first since they have no online fallback).
    Returns ``(estimated_space, estimated_time, routed_estimates,
    over_budget)`` with ``routed_estimates`` back in input order.

    Two ledgers run side by side: the *optimistic* one accumulates the
    cost model's estimated S-target sizes (this is ``estimated_space``),
    and a *worst-case* one accumulates the pessimistic sizes of the forced
    (S-only) rules, which have no online phase to abort to.  The selection
    is flagged ``over_budget`` when either total exceeds the budget — N
    forced rules that each fit individually can still sink the candidate
    collectively.

    Routing is monotone in the budget: optional rules are visited in a
    budget-independent order and the first one that fails the budget check
    freezes the paying prefix (later rules may still ride a target that is
    already paid for, which consumes no budget).  Skipping the failure and
    packing later, smaller targets would fill tight budgets slightly
    better, but makes routes flap as the budget moves — a rule could be
    routed S at a small budget and T at a larger one.  With the frozen
    prefix the S-routed set grows monotonically with the budget, which is
    the route-stability invariant the differential sweep asserts.

    ``shards`` prices the ledger *per worker process* for the sharded
    serving fleet: the budget check compares each shard's resident set —
    access-partitionable targets at ``1/shards`` of their estimate,
    replicated targets whole (:func:`shard_fraction`) — against the
    per-shard budget ``space_budget / shards``.  ``shards=1`` is exactly
    the old global ledger.  ``estimated_space`` stays the *global* total
    either way, so stats remain comparable across shard counts, and the
    frozen-prefix routing (hence route stability) is untouched: the
    visiting order is budget- and shard-independent.
    """
    shards = max(1, int(shards))
    # the access tuple only matters to the per-shard fraction, so the
    # single-shard ledger never touches it (crafted-estimate stubs in the
    # ledger unit tests carry no cqap)
    access = tuple(model.cqap.access) if shards > 1 else ()
    estimates = [model.estimate_rule(rule) for rule in rules]
    return route_estimates(estimates, space_budget, shards=shards,
                           access=access)


def route_estimates(estimates: Sequence[RuleEstimate],
                    space_budget: Optional[float],
                    shards: int = 1,
                    access: Sequence[str] = (),
                    ) -> Tuple[float, float, List[RuleEstimate], bool]:
    """The pure ledger core of :func:`evaluate_rules`.

    Takes already-priced estimates instead of a cost model, so routing is
    a deterministic function of ``(estimates, space_budget, shards,
    access)`` alone.  This is what lets the static plan verifier
    (:mod:`repro.analysis.verify_plan`) re-derive a stored selection's
    routes and ledger totals from its snapshot without re-running the
    estimator: both the live selection and the verifier call this one
    implementation.

    Returns ``(estimated_space, estimated_time, routed_estimates,
    over_budget)`` with ``routed_estimates`` parallel to ``estimates``.
    """
    shards = max(1, int(shards))
    access = tuple(access) if shards > 1 else ()
    per_shard_budget = (None if space_budget is None
                        else space_budget / shards)
    forced = [e for e in estimates if e.t_target is None]
    optional = [e for e in estimates if e.t_target is not None]
    forced.sort(key=lambda e: (e.s_space, e.rule.label))
    optional.sort(key=lambda e: (-(e.t_time - S_PROBE_COST)
                                 / max(e.s_space, 1.0), e.rule.label))
    space = 0.0
    resident = 0.0           # one shard's share of ``space``
    worst_resident = 0.0
    time = 0.0
    over = False
    paid: Dict[FrozenSet, float] = {}
    routed: Dict[TwoPhaseRule, RuleEstimate] = {}
    for est in forced:
        if est.s_target not in paid:
            frac = shard_fraction(est.s_target, access, shards)
            space += est.s_space
            resident += est.s_space * frac
            # forced rules have no online fallback: the worst-case ledger
            # accumulates their pessimistic sizes (tracking the planner's
            # worst-case bounds), deduplicated per target like the
            # optimistic one
            worst_resident += est.s_space_worst * frac
            paid[est.s_target] = est.s_space
        time += S_PROBE_COST
        routed[est.rule] = est.routed("S")
    if per_shard_budget is not None and (resident > per_shard_budget
                                         or worst_resident
                                         > per_shard_budget):
        over = True
    blocked = False
    for est in optional:
        worth = est.s_target is not None and S_PROBE_COST <= est.t_time
        shared = worth and est.s_target in paid
        frac = (shard_fraction(est.s_target, access, shards)
                if est.s_target is not None else 1.0)
        fits = (per_shard_budget is None
                or resident + est.s_space * frac <= per_shard_budget)
        if worth and (shared or (not blocked and fits)):
            if not shared:
                space += est.s_space
                resident += est.s_space * frac
                paid[est.s_target] = est.s_space
            time += S_PROBE_COST
            routed[est.rule] = est.routed("S")
        else:
            if worth and not shared and not blocked and not fits:
                # first budget failure freezes the paying prefix (see
                # docstring: this is what makes routing monotone)
                blocked = True
            time += est.t_time
            routed[est.rule] = est.routed("T")
    return space, time, [routed[est.rule] for est in estimates], over


@dataclass
class _Candidate:
    """One PMTD subset priced by :func:`evaluate_rules`."""

    indices: FrozenSet[int]
    pmtds: List[PMTD]
    rules: List[TwoPhaseRule]
    estimates: List[RuleEstimate]
    space: float
    time: float
    over_budget: bool
    order_key: Tuple = field(default=())

    @property
    def rank(self) -> Tuple:
        if self.over_budget:
            # nothing fits: keep the candidate that overshoots the budget
            # the least — the planner backstop these selections lean on
            # pays in space, so space outranks probe time here (this is
            # the documented "cheapest-space candidate is kept" contract)
            return (True, self.space, self.time, self.order_key)
        return (False, self.time, self.space, self.order_key)


def _evaluate_subset(indices: FrozenSet[int], pool: Sequence[PMTD],
                     model: CostModel,
                     space_budget: Optional[float],
                     shards: int = 1) -> _Candidate:
    pmtds = [pool[i] for i in sorted(indices)]
    rules = list(stream_rules_from_pmtds(pmtds))
    space, time, estimates, over = evaluate_rules(rules, model, space_budget,
                                                  shards=shards)
    time += PMTD_OVERHEAD * len(pmtds)
    order_key = tuple(sorted(model.pmtd_order_key(p) for p in pmtds))
    return _Candidate(indices, pmtds, rules, estimates, space, time, over,
                      order_key)


def _reprice(candidate: _Candidate, model: CostModel,
             space_budget: Optional[float],
             shards: int = 1) -> _Candidate:
    """The same subset re-priced under a (differently clamped) model."""
    space, time, estimates, over = evaluate_rules(candidate.rules, model,
                                                  space_budget, shards=shards)
    time += PMTD_OVERHEAD * len(candidate.pmtds)
    return _Candidate(candidate.indices, candidate.pmtds, candidate.rules,
                      estimates, space, time, over, candidate.order_key)


def select_rules(pmtds: Sequence[PMTD], model: CostModel,
                 space_budget: Optional[float] = None,
                 beam_width: int = 3,
                 max_selected: Optional[int] = None,
                 require_online_fallback: bool = False,
                 lp_oracle=None,
                 shards: int = 1) -> SelectionResult:
    """Beam-select the PMTD subset whose rule set probes fastest in budget.

    Seeds with every single PMTD, then grows the ``beam_width`` best
    subsets one PMTD at a time, stopping as soon as a growth round fails
    to improve the best estimated probe time (adding PMTDs multiplies the
    rule set, so unhelpful growth gets priced immediately).  Subsets are
    capped at ``max_selected`` PMTDs (default: min(6, len(pmtds))).

    ``require_online_fallback`` additionally rejects every candidate whose
    rule set contains an S-only rule — the retry mode
    :meth:`CQAPIndex.preprocess` uses when the planner proves such a rule
    infeasible at the budget despite the estimates.

    ``lp_oracle`` enables the LP-bound blend: the finalists the beam kept
    are re-priced with estimates clamped to the planner's provable
    polymatroid bounds and re-ranked, so a finalist whose estimates
    contradict a provable bound loses.  Only finalist targets are solved
    (cached, capped by the oracle), keeping the LP out of the search loop.

    ``shards`` prices every candidate for a ``shards``-worker fleet (see
    :func:`evaluate_rules`): replicated S-targets must fit each worker's
    ``space_budget / shards`` slice whole, partitionable ones split.
    """
    shards = max(1, int(shards))
    pool = list(pmtds)
    if not pool:
        raise ValueError("need at least one PMTD to select from")
    if max_selected is None:
        max_selected = min(6, len(pool))
    max_selected = max(1, min(max_selected, len(pool)))

    seen: Dict[FrozenSet[int], _Candidate] = {}

    def evaluate(indices: FrozenSet[int]) -> _Candidate:
        if indices not in seen:
            seen[indices] = _evaluate_subset(indices, pool, model,
                                             space_budget, shards=shards)
        return seen[indices]

    def admissible(candidate: _Candidate) -> bool:
        if not require_online_fallback:
            return True
        return all(rule.t_targets for rule in candidate.rules)

    seeds = [c for i in range(len(pool))
             if admissible(c := evaluate(frozenset({i})))]
    if not seeds:
        # No larger subset can help: a subset's reduced rule set is free
        # of S-only rules iff it contains an all-T-view PMTD — and that
        # PMTD alone would already have been an admissible seed.
        raise ValueError(
            "no admissible PMTD subset: every candidate rule set contains "
            "an S-only rule that cannot be risked at this budget"
        )
    beam = sorted(seeds, key=lambda c: c.rank)[:max(1, beam_width)]
    best = beam[0]
    for _ in range(1, max_selected):
        grown: List[_Candidate] = []
        for candidate in beam:
            for j in range(len(pool)):
                if j in candidate.indices:
                    continue
                indices = candidate.indices | {j}
                if indices in seen:
                    continue
                extended = evaluate(indices)
                if admissible(extended):
                    grown.append(extended)
        if not grown:
            break
        grown.sort(key=lambda c: c.rank)
        if grown[0].rank >= best.rank:
            break
        beam = grown[:max(1, beam_width)]
        best = beam[0]

    lp_blend = None
    if lp_oracle is not None:
        blended_model = model.with_bound_oracle(lp_oracle)
        finalists = [_reprice(c, blended_model, space_budget, shards=shards)
                     for c in beam]
        finalists.sort(key=lambda c: c.rank)
        winner = finalists[0]
        lp_blend = {
            "finalists": len(finalists),
            "winner_changed": winner.indices != best.indices,
            "estimates_clamped": sum(1 for e in winner.estimates
                                     if e.lp_clamped),
            **lp_oracle.snapshot(),
        }
        best = winner

    return SelectionResult(
        mode="budget",
        pmtds=best.pmtds,
        rules=best.rules,
        estimates=best.estimates,
        estimated_space=best.space,
        estimated_time=best.time,
        space_budget=space_budget,
        candidate_pmtds=len(pool),
        considered_subsets=len(seen),
        over_budget=best.over_budget,
        shards=shards,
        lp_blend=lp_blend,
    )


def keep_all_rules(pmtds: Sequence[PMTD], rules: Sequence[TwoPhaseRule],
                   model: CostModel,
                   space_budget: Optional[float] = None,
                   shards: int = 1) -> SelectionResult:
    """A :class:`SelectionResult` for the keep-everything mode.

    Used when the PMTD set is small enough to plan outright; the estimates
    are still computed so lifecycle counters always expose the predicted
    space/time of whatever rule set is being served.
    """
    shards = max(1, int(shards))
    space, time, estimates, over = evaluate_rules(rules, model, space_budget,
                                                  shards=shards)
    return SelectionResult(
        mode="all",
        pmtds=list(pmtds),
        rules=list(rules),
        estimates=estimates,
        estimated_space=space,
        estimated_time=time + PMTD_OVERHEAD * len(pmtds),
        space_budget=space_budget,
        candidate_pmtds=len(pmtds),
        considered_subsets=1,
        over_budget=over,
        shards=shards,
    )
