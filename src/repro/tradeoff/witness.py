"""Witness extraction — Theorem D.5 made executable.

Theorem D.5 says the dual of the OBJ(S) LP *is* a joint Shannon-flow
inequality: the dual values on the DC rows give the δ_S/δ_T coefficients,
those on the split-constraint rows give the γ pairs, and (λ, θ) come from
the target/budget rows.  This module reads those duals back out of a solved
:class:`ObjResult`, reassembles the inequality

    Σ δ_S·h_S(Y|X) + Σ δ_T·h_T(Y|X) + Σ γ·(split pairs)
        ≥ Σ θ_B·h_S(B) + Σ λ_B·h_T(B),

and re-verifies it *independently* over Γ_n × Γ_n.  The implied upper bound

    Σ coefficients · log-bounds  −  (log S)·‖θ‖₁

must then reproduce OBJ(S) by strong duality — closing the loop between the
algorithmic LP and the paper's inequality-level story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.query.hypergraph import VarSet, varset
from repro.tradeoff.joint_flow import JointFlowProgram, ObjResult
from repro.tradeoff.rules import TwoPhaseRule


@dataclass
class JointFlowWitness:
    """The (δ_S, δ_T, γ, λ, θ) certificate of one OBJ(S) optimum."""

    delta_s: Dict[Tuple[VarSet, VarSet], float] = field(default_factory=dict)
    delta_t: Dict[Tuple[VarSet, VarSet], float] = field(default_factory=dict)
    gamma_s_heavy: Dict[Tuple[VarSet, VarSet], float] = field(
        default_factory=dict
    )
    gamma_t_heavy: Dict[Tuple[VarSet, VarSet], float] = field(
        default_factory=dict
    )
    lambda_t: Dict[VarSet, float] = field(default_factory=dict)
    theta_s: Dict[VarSet, float] = field(default_factory=dict)
    log_bounds: Dict[Tuple[str, Tuple[VarSet, VarSet]], float] = field(
        default_factory=dict
    )

    @property
    def lambda_norm(self) -> float:
        return sum(self.lambda_t.values())

    @property
    def theta_norm(self) -> float:
        return sum(self.theta_s.values())

    # ------------------------------------------------------------------
    def lhs_terms(self) -> Tuple[Dict, Dict]:
        """(lhs_s, lhs_t) in the verify_joint_inequality format."""
        lhs_s: Dict[Tuple[VarSet, VarSet], float] = {}
        lhs_t: Dict[Tuple[VarSet, VarSet], float] = {}

        def bump(target, key, coef):
            if coef > 1e-12:
                target[key] = target.get(key, 0.0) + coef

        empty = varset(())
        for (x, y), coef in self.delta_s.items():
            bump(lhs_s, (x, y), coef)
        for (x, y), coef in self.delta_t.items():
            bump(lhs_t, (x, y), coef)
        # γ (X, Y|X): h_S(X) + h_T(Y|X)
        for (x, y), coef in self.gamma_s_heavy.items():
            bump(lhs_s, (empty, x), coef)
            bump(lhs_t, (x, y), coef)
        # γ (Y|X, X): h_S(Y|X) + h_T(X)
        for (x, y), coef in self.gamma_t_heavy.items():
            bump(lhs_s, (x, y), coef)
            bump(lhs_t, (empty, x), coef)
        return lhs_s, lhs_t

    def implied_bound(self, log_space: float) -> float:
        """``ℓ(λ, θ) − logS·‖θ‖₁`` — must equal OBJ(S) at the optimum."""
        total = 0.0
        for key, coef_map in (
            (("dc", "s"), self.delta_s),
            (("dc", "t"), self.delta_t),
            (("sc_s",), self.gamma_s_heavy),
            (("sc_t",), self.gamma_t_heavy),
        ):
            for pair, coef in coef_map.items():
                bound = self.log_bounds.get((key[0] if len(key) == 1
                                             else key[0] + key[1], pair))
                if bound is None:
                    continue
                total += coef * bound
        return total - log_space * self.theta_norm

    def verify(self, program: JointFlowProgram,
               tolerance: float = 1e-6) -> bool:
        """Independent Definition-D.4 check of the extracted inequality."""
        lhs_s, lhs_t = self.lhs_terms()
        rhs_s = {b: c for b, c in self.theta_s.items() if c > 1e-12}
        rhs_t = {b: c for b, c in self.lambda_t.items() if c > 1e-12}
        if not rhs_s and not rhs_t:
            return True  # trivial inequality
        return program.verify_joint_inequality(
            lhs_s, lhs_t, rhs_s, rhs_t, tolerance=tolerance
        )


def extract_witness(program: JointFlowProgram, rule: TwoPhaseRule,
                    result: ObjResult) -> JointFlowWitness:
    """Parse a solved OBJ(S) LP's duals into a :class:`JointFlowWitness`.

    Relies on the constraint names assigned in
    :meth:`JointFlowProgram._base_program` and
    :meth:`JointFlowProgram.obj_for_budget`: ``("dc", tag, X, Y)``,
    ``("sc_s_heavy"|"sc_t_heavy", (X, Y))``, ``("target_t", B)``,
    ``("budget", B)``.
    """
    if result.status != "optimal":
        raise ValueError(f"cannot extract a witness from a {result.status} "
                         "result")
    witness = JointFlowWitness()
    from repro.tradeoff.joint_flow import H_S, H_T

    for name, value in result.duals.items():
        if value <= 1e-9 or not isinstance(name, tuple):
            continue
        kind = name[0]
        if kind == "dc":
            _, tag, x_sorted, y_sorted = name
            pair = (varset(x_sorted), varset(y_sorted))
            if tag == H_S:
                witness.delta_s[pair] = value
            else:
                witness.delta_t[pair] = value
            constraints = program.dc if tag == H_S else program.dc_ac
            witness.log_bounds[("dc" + ("s" if tag == H_S else "t"),
                                pair)] = math.log2(
                constraints.bound(pair[0], pair[1])
            )
        elif kind in ("sc_s_heavy", "sc_t_heavy"):
            x_sorted, y_sorted = name[1]
            pair = (varset(x_sorted), varset(y_sorted))
            target = (witness.gamma_s_heavy if kind == "sc_s_heavy"
                      else witness.gamma_t_heavy)
            target[pair] = target.get(pair, 0.0) + value
            for split in program.sc:
                if (split.x, split.y) == pair:
                    witness.log_bounds[
                        ("sc_s" if kind == "sc_s_heavy" else "sc_t", pair)
                    ] = split.log_bound
                    break
        elif kind == "target_t":
            witness.lambda_t[varset(name[1])] = value
        elif kind == "budget":
            witness.theta_s[varset(name[1])] = value
    return witness


def obj_with_witness(program: JointFlowProgram, rule: TwoPhaseRule,
                     log_space: float) -> Tuple[ObjResult, JointFlowWitness]:
    """Solve OBJ(S) and return the result plus its extracted witness."""
    result = program.obj_for_budget(rule, log_space)
    if result.status != "optimal":
        return result, JointFlowWitness()
    return result, extract_witness(program, rule, result)
