"""Machine-checkable catalog of the paper's joint Shannon-flow inequalities.

Every proof sequence printed in Section 5, Section 6.1 and Appendix E/F is
encoded here as a :class:`PaperInequality`: the LHS terms over the two
polymatroids (with their log-cost accounting against DC/AC/SC), the RHS
target terms, and the tradeoff the paper reads off the coefficients.

Each entry supports two levels of verification, exercised by the tests:

* ``verify_lp`` — the inequality holds over Γ_n × Γ_n (Definition D.4),
  checked by maximizing RHS − LHS over the coupled polymatroid cones;
* ``cost`` / ``tradeoff`` — the LHS accounting reproduces the claimed
  ``S^a T^b ≍ D^c Q^e`` when every split/DC term costs log D and every
  access term costs log Q (Theorem 5.1's coefficient reading).

Variable convention: the k-path queries use ``x1 .. x(k+1)``; terms name
subsets by their indexes (e.g. ``(0, {1,3})`` is ``h(x1 x3 | ∅)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.query.cq import CQAP
from repro.query.hypergraph import VarSet, varset
from repro.tradeoff.curves import TradeoffFormula
from repro.tradeoff.joint_flow import JointFlowProgram, symbolic_program

F = Fraction


def _v(indexes: Iterable) -> VarSet:
    """Indexes may be ints (k-path convention x<i>) or literal names."""
    return varset(
        i if isinstance(i, str) else f"x{i}" for i in indexes
    )


@dataclass(frozen=True)
class Term:
    """One ``coef · h_phase(Y | X)`` term with its log-cost class.

    ``cost`` is "D" when the term is charged against an input-relation
    bound (a DC constraint or one side of a split pair), "Q" when charged
    against the access request, and "free" when it is part of a split pair
    whose cost is carried by the partner term.
    """

    phase: str                   # "S" or "T"
    x: Tuple[int, ...]
    y: Tuple[int, ...]
    coef: Fraction
    cost: str                    # "D" | "Q" | "free"


@dataclass
class PaperInequality:
    """A named joint Shannon-flow inequality with its claimed tradeoff."""

    name: str
    cqap_factory: object                 # () -> CQAP
    lhs: List[Term]
    rhs_s: Dict[Tuple[int, ...], Fraction]
    rhs_t: Dict[Tuple[int, ...], Fraction]
    claimed: TradeoffFormula
    note: str = ""

    # ------------------------------------------------------------------
    def cqap(self) -> CQAP:
        return self.cqap_factory()

    def program(self) -> JointFlowProgram:
        return symbolic_program(self.cqap())

    def verify_lp(self) -> bool:
        """Definition D.4 check over the coupled polymatroid cones."""
        lhs_s: Dict = {}
        lhs_t: Dict = {}
        for term in self.lhs:
            key = (_v(term.x), _v(term.y))
            target = lhs_s if term.phase == "S" else lhs_t
            target[key] = target.get(key, 0) + float(term.coef)
        return self.program().verify_joint_inequality(
            lhs_s, lhs_t,
            {_v(k): float(c) for k, c in self.rhs_s.items()},
            {_v(k): float(c) for k, c in self.rhs_t.items()},
        )

    def cost(self) -> Tuple[Fraction, Fraction]:
        """(d_exponent, q_exponent) of the LHS accounting."""
        d = sum((t.coef for t in self.lhs if t.cost == "D"), F(0))
        q = sum((t.coef for t in self.lhs if t.cost == "Q"), F(0))
        return d, q

    def tradeoff(self) -> TradeoffFormula:
        """Theorem 5.1: read the tradeoff off the coefficients.

        ``S^{Σθ} · T^{Σλ} ≍ D^{d-cost} · Q^{q-cost}``.
        """
        s_exp = sum(self.rhs_s.values(), F(0))
        t_exp = sum(self.rhs_t.values(), F(0))
        d_exp, q_exp = self.cost()
        return TradeoffFormula(s_exp, t_exp, d_exp, q_exp)

    def matches_claim(self) -> bool:
        return self.tradeoff().normalized() == self.claimed.normalized()


def _t(phase, x, y, coef=1, cost="D") -> Term:
    return Term(phase, tuple(sorted(x)), tuple(sorted(y)), F(coef), cost)


# ----------------------------------------------------------------------
# constructors for each catalogued inequality
# ----------------------------------------------------------------------
def sec5_2reach() -> PaperInequality:
    """§5 / E.6: h_S(1)+h_T(2|1) [R1] + h_S(3)+h_T(2|3) [R2] + 2h_T(13)
    ≥ h_S(13) + 2h_T(123); tradeoff S·T² ≍ D²·Q²."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="sec5_2reach",
        cqap_factory=lambda: k_path_cqap(2),
        lhs=[
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            _t("S", (), (3,), 1, "D"), _t("T", (3,), (2, 3), 1, "free"),
            _t("T", (), (1, 3), 2, "Q"),
        ],
        rhs_s={(1, 3): F(1)},
        rhs_t={(1, 2, 3): F(2)},
        claimed=TradeoffFormula(F(1), F(2), F(2), F(2)),
    )


def e5_square_first() -> PaperInequality:
    """E.5 first rule: S·T² ≍ D²·Q² via splits of R4 (on x1), R3 (on x3)."""
    from repro.query.catalog import square_cqap

    return PaperInequality(
        name="e5_square_first",
        cqap_factory=square_cqap,
        lhs=[
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 4), 1, "free"),
            _t("S", (), (3,), 1, "D"), _t("T", (3,), (3, 4), 1, "free"),
            _t("T", (), (1, 3), 2, "Q"),
        ],
        rhs_s={(1, 3): F(1)},
        rhs_t={(1, 3, 4): F(2)},
        claimed=TradeoffFormula(F(1), F(2), F(2), F(2)),
    )


def e5_square_second() -> PaperInequality:
    """E.5 second rule (symmetric through x2): h_S(13) + 2h_T(123)."""
    from repro.query.catalog import square_cqap

    return PaperInequality(
        name="e5_square_second",
        cqap_factory=square_cqap,
        lhs=[
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            _t("S", (), (3,), 1, "D"), _t("T", (3,), (2, 3), 1, "free"),
            _t("T", (), (1, 3), 2, "Q"),
        ],
        rhs_s={(1, 3): F(1)},
        rhs_t={(1, 2, 3): F(2)},
        claimed=TradeoffFormula(F(1), F(2), F(2), F(2)),
    )


def sec61_kset(k: int) -> PaperInequality:
    """§6.1: h_S(k,k+1) + Σ_{i<k}[h_S(i|k+1) + h_T(k+1)] + (k-1)h_T([k])
    ≥ h_S([k+1]) + (k-1)h_T([k+1]); tradeoff S·T^{k-1} ≍ D^k·Q^{k-1}."""
    from repro.query.catalog import k_set_disjointness_cqap

    def cqap_factory(k=k):
        # §6.1 uses y = x_{k+1}; our catalog names the element variable y
        return k_set_disjointness_cqap(k, boolean=False)

    # map index k+1 -> the element variable's position; we rename by hand:
    # variables are y, x1..xk; encode y as index 0 for term sets
    def elem(*idx):
        return tuple(sorted(idx))

    lhs = [
        Term("S", (), ("y", f"x{k}"), F(1), "D"),
    ]
    for i in range(1, k):
        lhs.append(Term("S", ("y",), ("y", f"x{i}"), F(1), "free"))
        lhs.append(Term("T", (), ("y",), F(1), "D"))
    lhs.append(Term("T", (),
                    tuple(f"x{i}" for i in range(1, k + 1)),
                    F(k - 1), "Q"))
    all_vars = ("y",) + tuple(f"x{i}" for i in range(1, k + 1))
    return PaperInequality(
        name=f"sec61_kset_{k}",
        cqap_factory=cqap_factory,
        lhs=lhs,
        rhs_s={all_vars: F(1)},
        rhs_t={all_vars: F(k - 1)},
        claimed=TradeoffFormula(F(1), F(k - 1), F(k), F(k - 1)),
    )


def e7_rho1() -> PaperInequality:
    """E.7 ρ1: S·T² ≍ D²·Q² via splits of R1 (on x1) and R3 (on x4)."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e7_rho1",
        cqap_factory=lambda: k_path_cqap(3),
        lhs=[
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            _t("S", (), (4,), 1, "D"), _t("T", (4,), (3, 4), 1, "free"),
            _t("T", (), (1, 4), 2, "Q"),
        ],
        rhs_s={(1, 4): F(1)},
        rhs_t={(1, 2, 4): F(1), (1, 3, 4): F(1)},
        claimed=TradeoffFormula(F(1), F(2), F(2), F(2)),
        note="RHS splits one unit each to T124 and T134 (min over targets)",
    )


def e7_rho2() -> PaperInequality:
    """E.7 ρ2: S²·T³ ≍ D⁴·Q³."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e7_rho2",
        cqap_factory=lambda: k_path_cqap(3),
        lhs=[
            _t("S", (), (1,), 2, "D"), _t("T", (1,), (1, 2), 2, "free"),
            _t("S", (), (3,), 1, "D"), _t("T", (3,), (2, 3), 1, "free"),
            _t("S", (), (4,), 1, "D"), _t("T", (4,), (3, 4), 1, "free"),
            _t("T", (), (1, 4), 3, "Q"),
        ],
        rhs_s={(1, 4): F(1), (1, 3): F(1)},
        rhs_t={(1, 2, 4): F(3)},
        claimed=TradeoffFormula(F(2), F(3), F(4), F(3)),
    )


def e7_rho4_first() -> PaperInequality:
    """E.7 ρ4 first sequence: S·T ≍ D²·Q."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e7_rho4_first",
        cqap_factory=lambda: k_path_cqap(3),
        lhs=[
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            _t("S", (), (4,), 1, "D"), _t("T", (4,), (3, 4), 1, "free"),
            _t("T", (), (1, 4), 1, "Q"),
        ],
        rhs_s={(1, 4): F(1)},
        rhs_t={(1, 2, 3): F(1)},
        claimed=TradeoffFormula(F(1), F(1), F(2), F(1)),
    )


def e7_rho4_second() -> PaperInequality:
    """E.7 ρ4 second sequence: S⁴·T ≍ D⁶·Q."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e7_rho4_second",
        cqap_factory=lambda: k_path_cqap(3),
        lhs=[
            _t("S", (), (2, 3), 2, "D"),
            _t("S", (), (1, 2), 1, "D"),
            _t("S", (), (3, 4), 1, "D"),
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            _t("S", (), (4,), 1, "D"), _t("T", (4,), (3, 4), 1, "free"),
            _t("T", (), (1, 4), 1, "Q"),
        ],
        rhs_s={(2, 4): F(2), (1, 3): F(2)},
        rhs_t={(1, 2, 3): F(1)},
        claimed=TradeoffFormula(F(4), F(1), F(6), F(1)),
    )


def e7_bfs() -> PaperInequality:
    """E.7: the BFS fallback — n23 + q14 ≥ h_T(134); T ≍ D·Q."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e7_bfs",
        cqap_factory=lambda: k_path_cqap(3),
        lhs=[
            _t("T", (), (2, 3), 1, "D"),
            _t("T", (), (1, 4), 1, "Q"),
        ],
        rhs_s={},
        rhs_t={(1, 3, 4): F(1)},
        claimed=TradeoffFormula(F(0), F(1), F(1), F(1)),
    )


def e8_rho1() -> PaperInequality:
    """E.8 ρ1: S·T ≍ D²·Q for 4-reachability."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e8_rho1",
        cqap_factory=lambda: k_path_cqap(4),
        lhs=[
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            _t("S", (), (5,), 1, "D"), _t("T", (5,), (4, 5), 1, "free"),
            _t("T", (), (1, 5), 1, "Q"),
        ],
        rhs_s={(1, 5): F(1)},
        rhs_t={(1, 2, 4, 5): F(1)},
        claimed=TradeoffFormula(F(1), F(1), F(2), F(1)),
    )


def e8_rho2() -> PaperInequality:
    """E.8 ρ2: S²·T² ≍ D⁴·Q²."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e8_rho2",
        cqap_factory=lambda: k_path_cqap(4),
        lhs=[
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            _t("S", (), (2,), 1, "D"), _t("T", (2,), (2, 3), 1, "free"),
            _t("S", (), (4,), 1, "D"), _t("T", (4,), (3, 4), 1, "free"),
            _t("S", (), (5,), 1, "D"), _t("T", (5,), (4, 5), 1, "free"),
            _t("T", (), (1, 5), 2, "Q"),
        ],
        rhs_s={(1, 5): F(1), (2, 4): F(1)},
        rhs_t={(1, 2, 3, 5): F(1), (1, 3, 4, 5): F(1)},
        claimed=TradeoffFormula(F(2), F(2), F(4), F(2)),
    )


def e8_rho4_first() -> PaperInequality:
    """E.8 ρ4 first sequence: S⁶·T⁵ ≍ D¹²·Q⁵."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e8_rho4_first",
        cqap_factory=lambda: k_path_cqap(4),
        lhs=[
            _t("S", (), (2,), 2, "D"), _t("T", (2,), (2, 3), 2, "free"),
            _t("S", (), (1,), 2, "D"), _t("T", (1,), (1, 2), 2, "free"),
            _t("S", (), (3,), 2, "D"), _t("T", (3,), (3, 4), 2, "free"),
            _t("S", (), (4,), 3, "D"), _t("T", (4,), (3, 4), 3, "free"),
            _t("S", (), (5,), 3, "D"), _t("T", (5,), (4, 5), 3, "free"),
            _t("T", (), (1, 5), 5, "Q"),
        ],
        rhs_s={(3, 5): F(2), (2, 5): F(1), (2, 4): F(1), (1, 4): F(2)},
        rhs_t={(3, 4, 5): F(5)},
        claimed=TradeoffFormula(F(6), F(5), F(12), F(5)),
        note="the paper charges 5 n34; our D-count is 2+3 split across the "
             "two h_T(·|3)/h_T(·|4) orientations of R3",
    )


def e8_rho4_second() -> PaperInequality:
    """E.8 ρ4 second sequence: S⁸·T³ ≍ D¹³·Q³."""
    from repro.query.catalog import k_path_cqap

    return PaperInequality(
        name="e8_rho4_second",
        cqap_factory=lambda: k_path_cqap(4),
        lhs=[
            # 3(h_S(3) + h_S(2|3))  <- 3 n23
            _t("S", (), (3,), 3, "D"), _t("S", (3,), (2, 3), 3, "free"),
            # 3 h_S(34)             <- 3 n34
            _t("S", (), (3, 4), 3, "D"),
            # 3(h_S(5) + h_T(4|5))  <- 3 n45
            _t("S", (), (5,), 3, "D"), _t("T", (5,), (4, 5), 3, "free"),
            # h_S(1) + h_T(2|1)     <- n12
            _t("S", (), (1,), 1, "D"), _t("T", (1,), (1, 2), 1, "free"),
            # 2(h_S(4) + h_T(3|4))  <- 2 n34
            _t("S", (), (4,), 2, "D"), _t("T", (4,), (3, 4), 2, "free"),
            # h_S(2) + h_T(3|2)     <- n23
            _t("S", (), (2,), 1, "D"), _t("T", (2,), (2, 3), 1, "free"),
            _t("T", (), (1, 5), 3, "Q"),
        ],
        rhs_s={(2, 4): F(4), (3, 5): F(3), (1, 4): F(1)},
        rhs_t={(3, 4, 5): F(3)},
        claimed=TradeoffFormula(F(8), F(3), F(13), F(3)),
    )


def f_first_derivation() -> PaperInequality:
    """§F first derivation for Figure 6a: S·T³ ≍ D⁴·Q³."""
    from repro.query.catalog import hierarchical_binary_tree_cqap

    z = ("z1", "z2", "z3", "z4")
    return PaperInequality(
        name="f_first",
        cqap_factory=hierarchical_binary_tree_cqap,
        lhs=[
            Term("T", (), ("x",), F(3), "free"),
            Term("S", ("x",), ("x", "y1", "z1"), F(1), "D"),
            Term("S", ("x",), ("x", "y1", "z2"), F(1), "D"),
            Term("S", ("x",), ("x", "y2", "z3"), F(1), "D"),
            Term("S", (), ("x", "y2", "z4"), F(1), "D"),
            Term("T", (), z, F(3), "Q"),
        ],
        rhs_s={z: F(1)},
        rhs_t={("x",) + z: F(3)},
        claimed=TradeoffFormula(F(1), F(3), F(4), F(3)),
    )


def f_improved() -> PaperInequality:
    """§F eq. (36): bucketize on bound variables — S·T⁴ ≍ D⁴·Q⁴."""
    from repro.query.catalog import hierarchical_binary_tree_cqap

    z = ("z1", "z2", "z3", "z4")
    atoms = [("x", "y1", "z1"), ("x", "y1", "z2"),
             ("x", "y2", "z3"), ("x", "y2", "z4")]
    lhs = []
    for i, atom in enumerate(atoms):
        zi = (f"z{i + 1}",)
        lhs.append(Term("S", (), zi, F(1), "D"))
        lhs.append(Term("T", zi, tuple(sorted(atom)), F(1), "free"))
    lhs.append(Term("T", (), z, F(4), "Q"))
    return PaperInequality(
        name="f_improved",
        cqap_factory=hierarchical_binary_tree_cqap,
        lhs=lhs,
        rhs_s={z: F(1)},
        rhs_t={("x",) + z: F(4)},
        claimed=TradeoffFormula(F(1), F(4), F(4), F(4)),
    )


def all_inequalities() -> List[PaperInequality]:
    """Every catalogued inequality, in paper order."""
    return [
        sec5_2reach(),
        e5_square_first(),
        e5_square_second(),
        sec61_kset(2),
        sec61_kset(3),
        e7_rho1(),
        e7_rho2(),
        e7_rho4_first(),
        e7_rho4_second(),
        e7_bfs(),
        e8_rho1(),
        e8_rho2(),
        e8_rho4_first(),
        e8_rho4_second(),
        f_first_derivation(),
        f_improved(),
    ]
