"""Piecewise-linear tradeoff curves in (log S, log T) space.

Every per-rule value function ``OBJ(log S)`` is piecewise linear and
non-increasing (it is the value of an LP whose right-hand side moves linearly
with ``log S``); the query-level curve is the pointwise *max* over its rules
(§4.3: the online phase must run every rule).  This module samples curves,
takes envelopes, recovers exact rational breakpoints by intersecting the
fitted segments, and pretty-prints the results benchmarks compare against
the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple

from repro.util.rationals import approx_fraction


@dataclass(frozen=True)
class Segment:
    """One maximal linear piece ``logT = intercept + slope * logS``."""

    x_start: Fraction
    x_end: Fraction
    slope: Fraction
    intercept: Fraction

    def value(self, x: Fraction) -> Fraction:
        return self.intercept + self.slope * x

    def __repr__(self) -> str:
        return (f"Segment([{self.x_start},{self.x_end}] "
                f"T = {self.intercept} + {self.slope}·S)")


class PiecewiseCurve:
    """A sampled piecewise-linear curve with exact-rational reconstruction."""

    def __init__(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        if len(xs) != len(ys) or len(xs) < 2:
            raise ValueError("need >= 2 sample points")
        self.xs = list(xs)
        self.ys = list(ys)

    @classmethod
    def sample(cls, fn: Callable[[float], float], x_min: float, x_max: float,
               steps: int = 120) -> "PiecewiseCurve":
        xs = [x_min + (x_max - x_min) * i / steps for i in range(steps + 1)]
        return cls(xs, [fn(x) for x in xs])

    def value_at(self, x: float) -> float:
        """Linear interpolation of the samples."""
        if x <= self.xs[0]:
            return self.ys[0]
        if x >= self.xs[-1]:
            return self.ys[-1]
        for i in range(len(self.xs) - 1):
            if self.xs[i] <= x <= self.xs[i + 1]:
                t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i])
                return self.ys[i] * (1 - t) + self.ys[i + 1] * t
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    def segments(self, max_denominator: int = 64,
                 tol: float = 1e-5) -> List[Segment]:
        """Reconstruct exact segments from the samples.

        Consecutive sample slopes are snapped to rationals; runs with equal
        slope merge into one segment; breakpoints come from intersecting
        adjacent segment lines (exact in Fraction arithmetic), which removes
        the grid-resolution error.
        """
        slopes: List[Fraction] = []
        for i in range(len(self.xs) - 1):
            raw = (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i])
            slopes.append(approx_fraction(raw, max_denominator, tol=0.5))
        # merge equal-slope runs, fitting each line from its midpoint sample
        pieces: List[Tuple[int, int, Fraction]] = []
        start = 0
        for i in range(1, len(slopes) + 1):
            if i == len(slopes) or slopes[i] != slopes[start]:
                pieces.append((start, i, slopes[start]))
                start = i
        # a sample interval that straddles a true breakpoint produces a
        # single-interval run whose slope blends its neighbours; drop such
        # interior runs — the surrounding lines intersect at the breakpoint
        if len(pieces) > 2:
            pieces = (
                [pieces[0]]
                + [p for p in pieces[1:-1] if p[1] - p[0] > 1]
                + [pieces[-1]]
            )
        # re-merge neighbours that became slope-equal after dropping
        merged: List[Tuple[int, int, Fraction]] = []
        for piece in pieces:
            if merged and merged[-1][2] == piece[2]:
                merged[-1] = (merged[-1][0], piece[1], piece[2])
            else:
                merged.append(piece)
        pieces = merged
        lines: List[Tuple[Fraction, Fraction]] = []  # (slope, intercept)
        for lo, hi, slope in pieces:
            mid = (lo + hi) // 2
            x_mid, y_mid = self.xs[mid], self.ys[mid]
            intercept_f = y_mid - float(slope) * x_mid
            intercept = approx_fraction(intercept_f, max_denominator * 8,
                                        tol=10 * tol)
            lines.append((slope, intercept))
        # breakpoints by intersecting consecutive lines
        xs: List[Fraction] = [approx_fraction(self.xs[0], 10**6, tol=1e-9)]
        for (s1, b1), (s2, b2) in zip(lines, lines[1:]):
            if s1 == s2:
                continue
            xs.append((b2 - b1) / (s1 - s2))
        xs.append(approx_fraction(self.xs[-1], 10**6, tol=1e-9))
        # dedupe slope-equal merges
        merged_lines: List[Tuple[Fraction, Fraction]] = []
        for line in lines:
            if not merged_lines or merged_lines[-1] != line:
                merged_lines.append(line)
        segments: List[Segment] = []
        idx = 0
        for slope, intercept in merged_lines:
            x0 = xs[idx]
            x1 = xs[idx + 1]
            segments.append(Segment(x0, x1, slope, intercept))
            idx += 1
        return segments

    def breakpoints(self, max_denominator: int = 64) -> List[Tuple[Fraction, Fraction]]:
        """(x, y) corners of the curve, endpoints included."""
        segs = self.segments(max_denominator=max_denominator)
        points = [(segs[0].x_start, segs[0].value(segs[0].x_start))]
        for seg in segs:
            points.append((seg.x_end, seg.value(seg.x_end)))
        return points


def envelope_max(curves: Sequence[PiecewiseCurve]) -> PiecewiseCurve:
    """Pointwise maximum on the union of sample grids."""
    if not curves:
        raise ValueError("need at least one curve")
    xs = sorted({x for c in curves for x in c.xs})
    ys = [max(c.value_at(x) for c in curves) for x in xs]
    return PiecewiseCurve(xs, ys)


def envelope_min(curves: Sequence[PiecewiseCurve]) -> PiecewiseCurve:
    """Pointwise minimum on the union of sample grids."""
    if not curves:
        raise ValueError("need at least one curve")
    xs = sorted({x for c in curves for x in c.xs})
    ys = [min(c.value_at(x) for c in curves) for x in xs]
    return PiecewiseCurve(xs, ys)


@dataclass(frozen=True)
class TradeoffFormula:
    """A closed-form tradeoff ``S^a · T^b ≍ D^c · Q^e``.

    ``simeq`` in the paper; rendered in log space as
    ``a·logS + b·logT = c·logD + e·logQ``.
    """

    s_exp: Fraction
    t_exp: Fraction
    d_exp: Fraction
    q_exp: Fraction = Fraction(0)

    def log_time(self, log_space: float, log_d: float = 1.0,
                 log_q: float = 0.0) -> float:
        """Solve for logT given logS (requires t_exp > 0)."""
        if self.t_exp <= 0:
            raise ValueError("cannot solve for T when its exponent is <= 0")
        rhs = float(self.d_exp) * log_d + float(self.q_exp) * log_q
        return (rhs - float(self.s_exp) * log_space) / float(self.t_exp)

    def curve(self, x_min: float, x_max: float, log_d: float = 1.0,
              log_q: float = 0.0, steps: int = 120,
              floor: float = 0.0) -> PiecewiseCurve:
        """Sample the formula's line, clamped below at ``floor``."""
        return PiecewiseCurve.sample(
            lambda x: max(floor, self.log_time(x, log_d, log_q)),
            x_min, x_max, steps,
        )

    def normalized(self) -> "TradeoffFormula":
        """Canonical form: scaled so the T exponent is 1 (when positive).

        ``S³·T² ≍ D⁶·Q²`` and ``S^{3/2}·T ≍ D³·Q`` describe the same line;
        comparisons should go through this form.
        """
        if self.t_exp <= 0:
            return self
        return TradeoffFormula(
            self.s_exp / self.t_exp,
            Fraction(1),
            self.d_exp / self.t_exp,
            self.q_exp / self.t_exp,
        )

    def __repr__(self) -> str:
        def power(base: str, exp: Fraction) -> str:
            if exp == 0:
                return ""
            if exp == 1:
                return base
            return f"{base}^{exp}"

        lhs = "·".join(p for p in (power("S", self.s_exp),
                                   power("T", self.t_exp)) if p)
        rhs = "·".join(p for p in (power("D", self.d_exp),
                                   power("Q", self.q_exp)) if p) or "1"
        return f"{lhs} ≍ {rhs}"


def fit_segment_formulas(curve: PiecewiseCurve,
                         q_slope_probe: Optional[Callable[[float, float], float]] = None,
                         max_denominator: int = 64) -> List[TradeoffFormula]:
    """Convert each segment of a log_D-unit curve to a TradeoffFormula.

    A segment ``logT = intercept + slope·logS`` (log_D units, Q = 1) matches
    ``S^a T^b = D^c`` with ``a/b = -slope`` and ``c/b = intercept``.  The
    exponents are normalized so (a, b, c) are the smallest integers.  When
    ``q_slope_probe(x_mid, dq) -> dlogT`` is given, the |Q| exponent is
    recovered from a finite difference in log Q.
    """
    out: List[TradeoffFormula] = []
    for seg in curve.segments(max_denominator=max_denominator):
        slope, intercept = seg.slope, seg.intercept
        a, b, c = -slope, Fraction(1), intercept
        q = Fraction(0)
        if q_slope_probe is not None:
            x_mid = float(seg.x_start + seg.x_end) / 2
            dq = 0.125
            dlog_t = q_slope_probe(x_mid, dq)
            q = approx_fraction(dlog_t / dq, max_denominator, tol=1e-4)
        # clear denominators
        denominator = 1
        for frac in (a, b, c, q):
            denominator = denominator * frac.denominator // _gcd(
                denominator, frac.denominator
            )
        out.append(TradeoffFormula(a * denominator, b * denominator,
                                   c * denominator, q * denominator))
    return out


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
