"""A minimal, dependency-free Prometheus text-exposition parser.

Exists so CI can *validate* what :meth:`~repro.obs.registry.
MetricsRegistry.render_prometheus` emits without installing a Prometheus
client: the benchmark-smoke job serves a short workload with tracing on,
scrapes the exposition, and runs :func:`validate_exposition` over it.
The parser accepts the subset of the format the registry produces (and
any well-formed exposition using it): ``# HELP`` / ``# TYPE`` comments,
samples with optional ``{label="value"}`` bodies, and histogram series
(``_bucket``/``_sum``/``_count``).

Validation is strict where a scrape consumer would break:

* every sample line must parse and belong to a ``# TYPE``-declared family
  (histogram suffixes resolve to their base family);
* histogram bucket series must be cumulative (non-decreasing in ``le``),
  must end with an ``le="+Inf"`` bucket, and that bucket must equal the
  family's ``_count`` sample for the same label set;
* counter values must be non-negative and finite.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_HIST_SUFFIXES = ("_bucket", "_sum", "_count")

Sample = Tuple[str, Dict[str, str], float]


class ExpositionError(ValueError):
    """The exposition text violates the format (line number included)."""


def _parse_labels(body: str, lineno: int) -> Dict[str, str]:
    """Parse the inside of one ``{...}`` label body (handles escapes)."""
    labels: Dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise ExpositionError(
                f"line {lineno}: malformed label body {body!r}")
        name = body[i:eq].strip()
        if not re.match(r"^[a-zA-Z_][a-zA-Z0-9_]*$", name):
            raise ExpositionError(
                f"line {lineno}: invalid label name {name!r}")
        i = eq + 1
        if i >= n or body[i] != '"':
            raise ExpositionError(
                f"line {lineno}: label {name!r} value is not quoted")
        i += 1
        chars: List[str] = []
        while i < n:
            ch = body[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise ExpositionError(
                        f"line {lineno}: dangling escape in label value")
                esc = body[i + 1]
                chars.append({"n": "\n", "\\": "\\", '"': '"'}
                             .get(esc, esc))
                i += 2
                continue
            if ch == '"':
                break
            chars.append(ch)
            i += 1
        else:
            raise ExpositionError(
                f"line {lineno}: unterminated label value for {name!r}")
        labels[name] = "".join(chars)
        i += 1  # past the closing quote
        if i < n:
            if body[i] != ",":
                raise ExpositionError(
                    f"line {lineno}: expected ',' between labels, got "
                    f"{body[i]!r}")
            i += 1
    return labels


def _parse_value(token: str, lineno: int) -> float:
    token = token.strip()
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError:
        raise ExpositionError(
            f"line {lineno}: unparseable sample value {token!r}") from None


def parse_exposition(text: str) -> Dict[str, Dict]:
    """Parse an exposition into ``{family: {type, help, samples}}``.

    ``samples`` preserves file order as ``(sample_name, labels, value)``
    tuples; histogram series samples attach to their base family name.
    """
    families: Dict[str, Dict] = {}

    def family(name: str) -> Dict:
        return families.setdefault(
            name, {"type": None, "help": None, "samples": []})

    def base_family(sample_name: str) -> str:
        for suffix in _HIST_SUFFIXES:
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if families.get(base, {}).get("type") == "histogram":
                    return base
        return sample_name

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not _NAME_RE.match(name):
                    raise ExpositionError(
                        f"line {lineno}: invalid metric name {name!r}")
                if parts[1] == "HELP":
                    family(name)["help"] = parts[3] if len(parts) > 3 \
                        else ""
                else:
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        raise ExpositionError(
                            f"line {lineno}: unknown metric type "
                            f"{kind!r}")
                    family(name)["type"] = kind
            continue
        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)"
            r"(?:\s+\d+)?$", line)
        if not match:
            raise ExpositionError(
                f"line {lineno}: unparseable sample line {line!r}")
        sample_name, label_body, value_token = match.groups()
        labels = _parse_labels(label_body, lineno) if label_body else {}
        value = _parse_value(value_token, lineno)
        family(base_family(sample_name))["samples"].append(
            (sample_name, labels, value))
    return families


def _labelset_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def validate_exposition(text: str) -> Dict[str, Dict]:
    """Parse *and* check scrape-consumer invariants; returns the parse.

    Raises :class:`ExpositionError` naming the first violation.
    """
    families = parse_exposition(text)
    for name, info in families.items():
        kind = info["type"]
        if kind is None:
            raise ExpositionError(
                f"family {name!r} has samples but no # TYPE line")
        if kind == "histogram":
            _validate_histogram(name, info["samples"])
        elif kind == "counter":
            for sample_name, labels, value in info["samples"]:
                if value < 0 or math.isinf(value) or math.isnan(value):
                    raise ExpositionError(
                        f"counter {sample_name}{labels} has invalid "
                        f"value {value}")
    return families


def _validate_histogram(name: str, samples: List[Sample]) -> None:
    buckets: Dict[Tuple, List[Tuple[float, float]]] = {}
    counts: Dict[Tuple, float] = {}
    sums: Dict[Tuple, float] = {}
    for sample_name, labels, value in samples:
        key = _labelset_key(labels)
        if sample_name == f"{name}_bucket":
            le = labels.get("le")
            if le is None:
                raise ExpositionError(
                    f"histogram {name} bucket sample missing 'le'")
            bound = math.inf if le == "+Inf" else float(le)
            buckets.setdefault(key, []).append((bound, value))
        elif sample_name == f"{name}_count":
            counts[key] = value
        elif sample_name == f"{name}_sum":
            sums[key] = value
        else:
            raise ExpositionError(
                f"histogram {name} has stray sample {sample_name!r}")
    for key, series in buckets.items():
        series.sort(key=lambda bv: bv[0])
        running: Optional[float] = None
        for bound, value in series:
            if running is not None and value < running:
                raise ExpositionError(
                    f"histogram {name}{dict(key)} buckets are not "
                    f"cumulative at le={bound}")
            running = value
        if series[-1][0] != math.inf:
            raise ExpositionError(
                f"histogram {name}{dict(key)} is missing the le=\"+Inf\" "
                "bucket")
        if key not in counts:
            raise ExpositionError(
                f"histogram {name}{dict(key)} is missing a _count sample")
        if key not in sums:
            raise ExpositionError(
                f"histogram {name}{dict(key)} is missing a _sum sample")
        if counts[key] != series[-1][1]:
            raise ExpositionError(
                f"histogram {name}{dict(key)} _count {counts[key]} != "
                f"+Inf bucket {series[-1][1]}")
