"""Per-probe trace spans, the bounded ring buffer, slow-probe exemplars.

A span is a lightweight record of one step of a probe's journey through
the serving stack: the scheduler opens a root span per batch (the engine
per probe), a child span per shard-group dispatch, and — for the process
backend — the worker stamps its own child span (pid + ``process_time``)
which rides back over the pickle boundary inside the result tuple.  Trace
and span ids are plain strings embedding the pid, so ids minted inside a
worker process can never collide with the parent's.

Finished spans land in a bounded in-memory ring buffer (old spans fall
off; tracing never grows without bound), and every per-probe observation
is offered to the *slow-probe exemplar* reservoir: the top-K probes by
intrinsic ``online_work``, each carrying the probe binding, the route
taken (cache / dedupe / shard / online) and — when a worker served it —
the worker pid.  That is the artifact a tail-latency regression
investigation starts from.

The enable flag lives here (:data:`STATE`) as one attribute read so the
serving hot paths stay zero-cost when observability is off.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

#: default ring-buffer capacity (finished spans retained)
DEFAULT_RING_CAPACITY = 512

#: default exemplar reservoir size (top-K probes by online_work)
DEFAULT_EXEMPLAR_K = 8


class _ObsState:
    """The module-level enable flag, one attribute read on the hot path."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


#: checked once per probe by every instrumented layer
STATE = _ObsState()

_SEQ = itertools.count(1)


def new_id(prefix: str = "s") -> str:
    """A process-unique id (pid-scoped, so worker ids never collide)."""
    return f"{prefix}-{os.getpid():x}-{next(_SEQ):x}"


@dataclass
class Span:
    """One step of a probe's journey; attrs carry route/shard/pid/work."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    duration: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Span factory + bounded ring buffer + slow-probe exemplar top-K."""

    def __init__(self, ring_capacity: int = DEFAULT_RING_CAPACITY,
                 exemplar_k: int = DEFAULT_EXEMPLAR_K) -> None:
        self._lock = threading.Lock()
        self._ring: Deque[Span] = deque(maxlen=ring_capacity)
        self._exemplar_k = exemplar_k
        #: min-heap of (work, tiebreak, exemplar-dict); smallest evicted
        self._exemplars: List[Tuple[float, int, Dict]] = []
        self._tiebreak = itertools.count()
        self.spans_total = 0

    # ------------------------------------------------------------------
    # configuration / lifecycle
    # ------------------------------------------------------------------
    def configure(self, ring_capacity: Optional[int] = None,
                  exemplar_k: Optional[int] = None) -> None:
        """Resize the ring / reservoir (existing contents preserved)."""
        with self._lock:
            if ring_capacity is not None:
                if ring_capacity <= 0:
                    raise ValueError("ring_capacity must be positive, got "
                                     f"{ring_capacity}")
                self._ring = deque(self._ring, maxlen=ring_capacity)
            if exemplar_k is not None:
                if exemplar_k <= 0:
                    raise ValueError("exemplar_k must be positive, got "
                                     f"{exemplar_k}")
                self._exemplar_k = exemplar_k
                while len(self._exemplars) > exemplar_k:
                    heapq.heappop(self._exemplars)

    def reset(self) -> None:
        """Drop every retained span and exemplar (capacities kept)."""
        with self._lock:
            self._ring.clear()
            self._exemplars = []
            self.spans_total = 0

    @property
    def ring_capacity(self) -> int:
        return self._ring.maxlen or 0

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def start_span(self, name: str, *, trace_id: Optional[str] = None,
                   parent_id: Optional[str] = None,
                   **attrs: object) -> Span:
        """Open a span; a missing ``trace_id`` starts a new trace."""
        return Span(
            name=name,
            trace_id=trace_id or new_id("t"),
            span_id=new_id("s"),
            parent_id=parent_id,
            start=time.perf_counter(),
            attrs=dict(attrs),
        )

    def finish_span(self, span: Span, **attrs: object) -> Span:
        """Stamp the duration and retain the span in the ring buffer."""
        span.duration = time.perf_counter() - span.start
        if attrs:
            span.attrs.update(attrs)
        self._retain(span)
        return span

    def add_span(self, name: str, *, trace_id: str,
                 parent_id: Optional[str] = None,
                 span_id: Optional[str] = None,
                 duration: float = 0.0,
                 attrs: Optional[Dict[str, object]] = None) -> Span:
        """Retain an already-finished span (e.g. shipped from a worker)."""
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id or new_id("s"),
            parent_id=parent_id,
            duration=duration,
            attrs=dict(attrs or {}),
        )
        self._retain(span)
        return span

    def _retain(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)
            self.spans_total += 1

    def spans(self) -> List[Span]:
        """The retained spans, oldest first (a snapshot copy)."""
        with self._lock:
            return list(self._ring)

    # ------------------------------------------------------------------
    # slow-probe exemplars
    # ------------------------------------------------------------------
    def record_exemplar(self, *, binding: Tuple, route: str, work: float,
                        latency_seconds: float,
                        shard: Optional[int] = None,
                        pid: Optional[int] = None,
                        trace_id: Optional[str] = None) -> None:
        """Offer one per-probe observation to the top-K-by-work reservoir."""
        exemplar = {
            "binding": list(binding),
            "route": route,
            "work": work,
            "latency_seconds": latency_seconds,
            "shard": shard,
            "pid": pid,
            "trace_id": trace_id,
        }
        with self._lock:
            entry = (float(work), next(self._tiebreak), exemplar)
            if len(self._exemplars) < self._exemplar_k:
                heapq.heappush(self._exemplars, entry)
            elif entry[0] > self._exemplars[0][0]:
                heapq.heapreplace(self._exemplars, entry)

    def exemplars(self) -> List[Dict]:
        """The slowest probes seen, heaviest ``online_work`` first."""
        with self._lock:
            ranked = sorted(self._exemplars,
                            key=lambda e: (-e[0], e[1]))
        return [dict(exemplar) for _work, _tb, exemplar in ranked]


#: The process-wide tracer the serving stack records into.
TRACER = Tracer()
