"""End-to-end observability for the serving stack.

The paper's guarantees are per-probe, so this package records
*distributions and traces*, not just sums:

* :mod:`repro.obs.trace` — per-probe spans through scheduler → dispatch →
  worker, a bounded ring buffer, and slow-probe exemplars (top-K by
  intrinsic ``online_work``, carrying the binding / route / worker pid);
* :mod:`repro.obs.hist` — fixed-bucket log-spaced histograms for wall
  latency and intrinsic work, merged exactly worker→parent;
* :mod:`repro.obs.registry` — the process-wide metrics registry every
  layer publishes into, exported as Prometheus text or JSON
  (``python -m repro.obs``) and as the stats envelope's ``metrics``
  section (schema v3).

Zero-cost when off: every instrumented hot path checks one module-level
flag (:data:`repro.obs.trace.STATE`) and does nothing else.  Enable a
window with::

    import repro.obs as obs

    with obs.tracing():
        ...serve...
        print(obs.render_prometheus())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.obs.hist import (
    LATENCY_BUCKETS,
    WORK_BUCKETS,
    Histogram,
    merge_all,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    HistogramFamily,
    MetricsRegistry,
)
from repro.obs.trace import (
    STATE,
    TRACER,
    Span,
    Tracer,
    new_id,
)

__all__ = [
    "LATENCY_BUCKETS",
    "WORK_BUCKETS",
    "Histogram",
    "merge_all",
    "REGISTRY",
    "Counter",
    "Gauge",
    "HistogramFamily",
    "MetricsRegistry",
    "STATE",
    "TRACER",
    "Span",
    "Tracer",
    "new_id",
    "is_enabled",
    "enable",
    "disable",
    "tracing",
    "reset",
    "record_probe",
    "probe_latency_histogram",
    "probe_work_histogram",
    "metrics_section",
    "render_prometheus",
    "render_json",
]

#: the routes a probe can take; exemplars and counters use these labels
ROUTES = ("cache", "dedupe", "shard", "online")


def is_enabled() -> bool:
    """True when the serving stack is currently publishing observations."""
    return STATE.enabled


def enable(*, ring_capacity: Optional[int] = None,
           exemplar_k: Optional[int] = None, reset: bool = True) -> None:
    """Turn observability on (optionally starting a fresh window).

    ``reset=True`` (the default) drops previously retained spans,
    exemplars, and metric families so the window's histogram counts line
    up with its ``probes_served``; pass ``reset=False`` to accumulate
    across windows.
    """
    if reset:
        TRACER.reset()
        REGISTRY.reset()
    if ring_capacity is not None or exemplar_k is not None:
        TRACER.configure(ring_capacity=ring_capacity,
                         exemplar_k=exemplar_k)
    STATE.enabled = True
    REGISTRY.gauge("repro_tracing_enabled",
                   "1 while the observability layer is recording").set(1)


def disable() -> None:
    """Turn observability off; retained spans/metrics stay readable."""
    STATE.enabled = False
    gauge = REGISTRY.get("repro_tracing_enabled")
    if gauge is not None:
        gauge.set(0)


@contextmanager
def tracing(*, ring_capacity: Optional[int] = None,
            exemplar_k: Optional[int] = None,
            reset: bool = True) -> Iterator[None]:
    """Observability on for the block; prior flag restored on exit."""
    prior = STATE.enabled
    enable(ring_capacity=ring_capacity, exemplar_k=exemplar_k,
           reset=reset)
    try:
        yield
    finally:
        if not prior:
            disable()


def reset() -> None:
    """Drop all retained spans, exemplars, and metric families."""
    TRACER.reset()
    REGISTRY.reset()


# ---------------------------------------------------------------------------
# the per-probe observation every instrumented layer funnels through
# ---------------------------------------------------------------------------
def record_probe(binding: Tuple, route: str, work: float,
                 latency_seconds: float, *, shard: Optional[int] = None,
                 pid: Optional[int] = None,
                 trace_id: Optional[str] = None) -> None:
    """Publish one per-probe observation (callers gate on ``STATE``).

    Feeds the route counter, the wall-latency and intrinsic-work
    histograms, and the slow-probe exemplar reservoir.  Exactly one call
    per incoming probe keeps histogram ``count`` equal to
    ``probes_served``.
    """
    REGISTRY.counter("repro_probes_total",
                     "probes observed by route taken",
                     ("route",)).labels(route=route).inc()
    REGISTRY.histogram("repro_probe_latency_seconds",
                       "per-probe wall latency",
                       bounds=LATENCY_BUCKETS).observe(latency_seconds)
    REGISTRY.histogram("repro_probe_work",
                       "per-probe intrinsic work "
                       "(probes+scans+joins_emitted deltas)",
                       bounds=WORK_BUCKETS).observe(work)
    TRACER.record_exemplar(binding=binding, route=route, work=work,
                           latency_seconds=latency_seconds, shard=shard,
                           pid=pid, trace_id=trace_id)


def probe_latency_histogram() -> Optional[Histogram]:
    """The merged per-probe wall-latency histogram, or None if unseen."""
    family = REGISTRY.get("repro_probe_latency_seconds")
    return family.merged() if family is not None else None


def probe_work_histogram() -> Optional[Histogram]:
    """The merged per-probe intrinsic-work histogram, or None if unseen."""
    family = REGISTRY.get("repro_probe_work")
    return family.merged() if family is not None else None


# ---------------------------------------------------------------------------
# export surfaces
# ---------------------------------------------------------------------------
def metrics_section() -> Optional[Dict]:
    """The stats envelope's ``metrics`` section (schema v3).

    ``None`` while observability has never recorded anything (the
    disabled hot path pays nothing and envelopes stay v2-shaped plus an
    explicit ``"metrics": None``); otherwise a JSON-able snapshot of the
    registry plus the trace layer's exemplars.
    """
    if not STATE.enabled and not REGISTRY.families():
        return None
    return {
        "tracing_enabled": STATE.enabled,
        "spans_total": TRACER.spans_total,
        "spans_retained": len(TRACER.spans()),
        "ring_capacity": TRACER.ring_capacity,
        "exemplars": TRACER.exemplars(),
        "families": REGISTRY.collect(),
    }


def render_prometheus() -> str:
    """The registry's Prometheus text exposition."""
    return REGISTRY.render_prometheus()


def render_json(indent: Optional[int] = None) -> str:
    """The registry's JSON export."""
    return REGISTRY.render_json(indent=indent)
