"""``python -m repro.obs`` — serve a demo workload with tracing on.

Prints the Prometheus text exposition (default) or the JSON export
(``--json``) of the metrics the serving stack published while answering a
short 3-path workload through :func:`repro.serving.serve`.

``--check`` turns the run into a self-validating smoke (the CI
benchmark-smoke job runs it with ``--backend process``): the exposition
must pass the in-repo parser (:mod:`repro.obs.promparse`), the per-probe
latency and intrinsic-work histograms must count exactly
``probes_served`` observations, at least one slow-probe exemplar must
carry its binding and route (and, on the process backend, a worker pid),
and every served answer is cross-checked against an uninstrumented
:class:`~repro.engine.prepared.PreparedQuery` — exit 1 on any failure.
"""

from __future__ import annotations

import argparse
import random
import sys

import repro.obs as obs
from repro.obs.promparse import ExpositionError, validate_exposition


def _serve_demo(backend: str, shards: int, batches: int):
    """Serve the demo stream with tracing on; returns (server stats,
    served answers, reference PreparedQuery)."""
    from repro.core.index import CQAPIndex
    from repro.data import path_database
    from repro.engine import PreparedQuery
    from repro.query.catalog import k_path_cqap
    from repro.serving import serve
    from repro.workloads.probes import batched_stream

    cqap = k_path_cqap(3)
    db = path_database(3, 300, 60, seed=7)
    index = CQAPIndex(cqap, db, int(db.size ** 1.2))
    index.preprocess()
    stream = batched_stream(cqap, db, random.Random(5), batches=batches,
                            batch_size=8, dedupe_ratio=0.5)

    reference_index = CQAPIndex(cqap, db, int(db.size ** 1.2))
    reference_index.preprocess()
    reference = PreparedQuery(reference_index, cache_size=64)

    served = []
    with serve(index, backend=backend, shards=shards, batch_size=8,
               cache_size=64) as server:
        served = list(server.serve(stream))
        stats = server.stats()
    return stats, served, reference


def _check(args, stats, served, expected) -> int:
    failures = []

    def require(ok: bool, what: str) -> None:
        if not ok:
            failures.append(what)

    # 1. answers bit-identical to the uninstrumented engine
    mismatches = sum(
        1 for key, rel in served
        if frozenset(rel.tuples) != frozenset(expected[key].tuples))
    require(mismatches == 0,
            f"{mismatches} served answers differ from the reference")

    # 2. the exposition parses and satisfies scrape-consumer invariants
    exposition = obs.render_prometheus()
    try:
        validate_exposition(exposition)
    except ExpositionError as exc:
        require(False, f"exposition rejected: {exc}")

    # 3. histogram counts equal probes_served (one observation per probe)
    probes_served = stats["server"]["probes_served"]
    for name, hist in (("repro_probe_latency_seconds",
                        obs.probe_latency_histogram()),
                       ("repro_probe_work", obs.probe_work_histogram())):
        if hist is None:
            require(False, f"{name} was never recorded")
        else:
            require(hist.count == probes_served,
                    f"{name} count {hist.count} != "
                    f"probes_served {probes_served}")

    # 4. at least one slow-probe exemplar with binding + route (+ pid on
    #    the process backend, where a worker served the probe)
    exemplars = obs.TRACER.exemplars()
    require(len(exemplars) >= 1, "no slow-probe exemplars captured")
    rich = [e for e in exemplars
            if e["binding"] and e["route"] in obs.ROUTES]
    require(len(rich) >= 1,
            "no exemplar carries a binding and a known route")
    if args.backend == "process":
        require(any(e["pid"] is not None for e in exemplars),
                "process backend captured no exemplar with a worker pid")

    # 5. the envelope carries the metrics section (schema v3)
    require(stats.get("metrics") is not None,
            "stats envelope has no metrics section")

    for what in failures:
        print(f"OBS CHECK FAIL: {what}", file=sys.stderr)
    verdict = "FAIL" if failures else "OK"
    print(f"obs check [{args.backend}/{args.shards} shards]: "
          f"{probes_served} probes, {len(exemplars)} exemplars, "
          f"{verdict}", file=sys.stderr, flush=True)
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="serve a demo workload with tracing on and export "
                    "the metrics")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--batches", type=int, default=3)
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON export instead of the "
                             "Prometheus exposition")
    parser.add_argument("--check", action="store_true",
                        help="validate the run (parser, histogram "
                             "counts, exemplars, answers); exit 1 on "
                             "failure")
    args = parser.parse_args(argv)

    # only the served workload runs inside the tracing window — the
    # reference PreparedQuery probes after it, so the histograms count
    # exactly the served probes
    with obs.tracing():
        stats, served, reference = _serve_demo(args.backend, args.shards,
                                               args.batches)
        output = (obs.render_json(indent=2) if args.json
                  else obs.render_prometheus())
    rc = 0
    if args.check:
        expected = {key: reference.probe_many([key])[key]
                    for key, _ in served}
        rc = _check(args, stats, served, expected)
    print(output)
    return rc


if __name__ == "__main__":
    sys.exit(main())
