"""Fixed-bucket, log-spaced, mergeable histograms.

The paper's guarantees are *per-probe* — answering time bounded by the
tradeoff curve for every access request — so the observability layer needs
distributions, not sums.  A :class:`Histogram` has a *frozen* bucket
boundary vector fixed at construction; two histograms over the same
boundaries merge by element-wise addition, which makes the merge exact,
associative and commutative (the property the worker→parent merge in the
process fleet relies on, and the one the hypothesis test pins).

Bucket semantics follow Prometheus: bucket ``i`` counts observations with
``value <= bounds[i]``; one implicit overflow bucket (``+Inf``) catches the
rest.  Instances are plain picklable objects, so a worker-side histogram
ships back to the parent inside a result tuple.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: wall-latency bounds: half-decades from 1 microsecond to ~31.6 seconds
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** ((i - 12) / 2) for i in range(16)
)

#: intrinsic-work bounds (probes+scans+joins_emitted per probe): powers of
#: four from 1 to ~1.07e9 — cache hits land in the first bucket (work 0)
WORK_BUCKETS: Tuple[float, ...] = tuple(float(4 ** i) for i in range(16))


class Histogram:
    """A mergeable fixed-bucket histogram with exact counts.

    ``bounds`` must be strictly increasing; it is frozen at construction
    and two histograms only merge when their bounds are identical.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = WORK_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds: Tuple[float, ...] = bounds
        #: per-bucket counts; the trailing slot is the +Inf overflow bucket
        self.buckets: List[int] = [0] * (len(bounds) + 1)
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    def record(self, value: float, n: int = 1) -> None:
        """Add ``n`` observations of ``value``."""
        if n <= 0:
            return
        value = float(value)
        self.buckets[bisect_left(self.bounds, value)] += n
        self.count += n
        self.total += value * n
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> "Histogram":
        """Element-wise add ``other`` into this histogram (exact)."""
        if self.bounds != other.bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds: "
                f"{self.bounds} vs {other.bounds}")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.total += other.total
        for attr, pick in (("min", min), ("max", max)):
            theirs = getattr(other, attr)
            if theirs is not None:
                mine = getattr(self, attr)
                setattr(self, attr,
                        theirs if mine is None else pick(mine, theirs))
        return self

    def copy(self) -> "Histogram":
        clone = Histogram(self.bounds)
        clone.buckets = list(self.buckets)
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    def __add__(self, other: "Histogram") -> "Histogram":
        return self.copy().merge(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.bounds == other.bounds
                and self.buckets == other.buckets
                and self.count == other.count
                and self.total == other.total
                and self.min == other.min
                and self.max == other.max)

    def __hash__(self) -> int:  # pragma: no cover - mutable, unhashable
        raise TypeError("Histogram is mutable and unhashable")

    # ------------------------------------------------------------------
    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.buckets):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.buckets[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Upper bucket bound at quantile ``q`` (0..1); None when empty.

        A bucket estimate, not an exact order statistic: the answer is
        the smallest bucket boundary whose cumulative count reaches
        ``q * count`` (the overflow bucket reports the observed max).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        running = 0
        for bound, n in zip(self.bounds, self.buckets):
            running += n
            if running >= target:
                return bound
        return self.max

    def snapshot(self) -> Dict:
        """JSON-able state: counts, sum, min/max, quantile estimates."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": [[bound, n]
                        for bound, n in zip(self.bounds, self.buckets)],
            "overflow": self.buckets[-1],
        }

    def __repr__(self) -> str:
        return (f"Histogram(count={self.count}, sum={self.total:g}, "
                f"buckets={len(self.bounds)}+inf)")


def merge_all(histograms: Iterable[Histogram],
              bounds: Sequence[float] = WORK_BUCKETS) -> Histogram:
    """Fold many histograms into one fresh accumulator."""
    acc = Histogram(bounds)
    for h in histograms:
        acc.merge(h)
    return acc
