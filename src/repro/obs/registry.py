"""The process-wide metrics registry: counters, gauges, histograms.

Every serving layer — engine, scheduler, sharding, fleet, updates —
publishes into the module-level :data:`REGISTRY` when observability is
enabled (:mod:`repro.obs`).  Metrics follow the Prometheus data model:

* a metric *family* has a name, a type, a help string and a fixed set of
  label names;
* each distinct label-value combination is a *child* holding the actual
  value (or :class:`~repro.obs.hist.Histogram`);
* :meth:`MetricsRegistry.render_prometheus` emits the text exposition
  format (``# HELP`` / ``# TYPE`` + samples; histograms as cumulative
  ``_bucket{le=...}`` series with ``_sum``/``_count``), and
  :meth:`MetricsRegistry.render_json` the equivalent JSON document.

All mutation goes through a per-family lock, so concurrent scheduler
threads never lose increments.  The registry itself does nothing unless
some layer publishes into it — the enable flag lives in
:mod:`repro.obs.trace` and is checked by the instrumented layers, not
here.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.hist import WORK_BUCKETS, Histogram

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    """A sample value in exposition form (ints unadorned, floats repr)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def _label_suffix(labelnames: Tuple[str, ...],
                  labelvalues: Tuple[str, ...],
                  extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


class _Family:
    """Shared plumbing: name/help/labels, child table, one lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues: object):
        """The child at this label combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.labelnames)}, got {sorted(labelvalues)}")
        key = tuple(str(labelvalues[label]) for label in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _default_child(self):
        """The no-label child, for unlabeled convenience calls."""
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} has labels "
                f"{sorted(self.labelnames)}; call .labels(...) first")
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got inc({n})")
        with self._lock:
            self.value += n


class Counter(_Family):
    """A monotonically increasing value (optionally labeled)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, n: float = 1) -> None:
        self._default_child().inc(n)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1) -> None:
        with self._lock:
            self.value -= n


class Gauge(_Family):
    """A value that can go up and down (optionally labeled)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, n: float = 1) -> None:
        self._default_child().inc(n)

    def dec(self, n: float = 1) -> None:
        self._default_child().dec(n)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("_lock", "hist")

    def __init__(self, lock: threading.Lock,
                 bounds: Tuple[float, ...]) -> None:
        self._lock = lock
        self.hist = Histogram(bounds)

    def observe(self, value: float, n: int = 1) -> None:
        with self._lock:
            self.hist.record(value, n)

    def merge(self, other: Histogram) -> None:
        """Exact worker→parent merge of a shipped histogram."""
        with self._lock:
            self.hist.merge(other)

    def snapshot(self) -> Histogram:
        with self._lock:
            return self.hist.copy()


class HistogramFamily(_Family):
    """A labeled family of fixed-bucket histograms (shared bounds)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str],
                 bounds: Sequence[float] = WORK_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames)
        self.bounds = tuple(float(b) for b in bounds)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.bounds)

    def observe(self, value: float, n: int = 1) -> None:
        self._default_child().observe(value, n)

    def merge(self, other: Histogram) -> None:
        self._default_child().merge(other)

    def merged(self) -> Histogram:
        """One histogram folding every labeled child together (exact)."""
        acc = Histogram(self.bounds)
        for _key, child in self.children():
            acc.merge(child.snapshot())
        return acc


class MetricsRegistry:
    """Name → metric family table with idempotent get-or-create."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: Sequence[str], **kwargs) -> _Family:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}")
                return existing
            family = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  bounds: Sequence[float] = WORK_BUCKETS,
                  ) -> HistogramFamily:
        family = self._get_or_create(HistogramFamily, name, help_text,
                                     labelnames, bounds=bounds)
        if family.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{family.bounds}")
        return family

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every registered family (a fresh observation window)."""
        with self._lock:
            self._metrics = {}

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def collect(self) -> Dict:
        """JSON-able snapshot of every family and child."""
        out: Dict = {}
        for family in self.families():
            samples = []
            for key, child in family.children():
                labels = dict(zip(family.labelnames, key))
                if family.kind == "histogram":
                    samples.append({"labels": labels,
                                    **child.snapshot().snapshot()})
                else:
                    samples.append({"labels": labels,
                                    "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def _exposition_lines(self) -> Iterator[str]:
        for family in self.families():
            if family.help:
                yield f"# HELP {family.name} {family.help}"
            yield f"# TYPE {family.name} {family.kind}"
            for key, child in family.children():
                if family.kind == "histogram":
                    hist = child.snapshot()
                    for bound, running in hist.cumulative():
                        le = "+Inf" if bound == float("inf") \
                            else _fmt(bound)
                        suffix = _label_suffix(family.labelnames, key,
                                               (("le", le),))
                        yield (f"{family.name}_bucket{suffix} "
                               f"{running}")
                    suffix = _label_suffix(family.labelnames, key)
                    yield f"{family.name}_sum{suffix} {_fmt(hist.total)}"
                    yield f"{family.name}_count{suffix} {hist.count}"
                else:
                    suffix = _label_suffix(family.labelnames, key)
                    yield f"{family.name}{suffix} {_fmt(child.value)}"

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every registered metric."""
        return "\n".join(self._exposition_lines()) + "\n"

    def render_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.collect(), indent=indent, sort_keys=True)


#: The process-wide registry every instrumented layer publishes into.
REGISTRY = MetricsRegistry()
