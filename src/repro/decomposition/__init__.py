"""Tree decompositions, PMTDs, and their enumeration (§3 / §6.3)."""

from repro.decomposition.enumeration import (
    decompositions_over_bags,
    enumerate_pmtds,
    enumerate_tree_decompositions,
    induced_pmtds,
    minimal_under_domination,
    paper_pmtds_3reach,
    paper_pmtds_4reach,
    paper_pmtds_square,
)
from repro.decomposition.pmtd import PMTD, S_VIEW, T_VIEW, View, trivial_pmtds, view_label
from repro.decomposition.tree_decomposition import (
    DecompositionError,
    TreeDecomposition,
    path_decomposition,
)

__all__ = [
    "DecompositionError",
    "PMTD",
    "S_VIEW",
    "T_VIEW",
    "TreeDecomposition",
    "View",
    "decompositions_over_bags",
    "enumerate_pmtds",
    "enumerate_tree_decompositions",
    "induced_pmtds",
    "minimal_under_domination",
    "paper_pmtds_3reach",
    "paper_pmtds_4reach",
    "paper_pmtds_square",
    "path_decomposition",
    "trivial_pmtds",
    "view_label",
]
