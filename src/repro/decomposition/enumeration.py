"""Enumeration of tree decompositions and PMTD sets.

The paper's framework is parameterized by a finite set of non-redundant,
pairwise non-dominating PMTDs; "including all such PMTDs will result in the
best possible tradeoff" (§4).  The paper never spells out an enumeration
procedure, so this module provides one that is exhaustive for the small
hypergraphs the paper analyzes:

1. candidate bags = connected vertex subsets of the *access hypergraph*
   (body hyperedges plus the ``Q_A`` edge);
2. bag sets of bounded size that are non-redundant, cover every hyperedge,
   and admit a join tree (checked by brute force over labeled trees with the
   running-intersection property);
3. for every valid (tree, root ⊇ A, free-connex) combination, every
   descendant-closed materialization set;
4. redundancy filter (Def. 3.4), deduplication, then a global domination
   filter keeping only the *minimal* PMTDs — Example 3.6 discards the
   single-bag PMTD because it dominates the two-bag one.

It also implements the §6.3 *induced* construction: starting from one fixed
decomposition, every antichain of nodes becomes a materialization set after
merging each chosen node's subtree into its bag.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.decomposition.pmtd import PMTD
from repro.decomposition.tree_decomposition import (
    DecompositionError,
    NodeId,
    TreeDecomposition,
)
from repro.query.cq import CQAP
from repro.query.hypergraph import Hypergraph, VarSet, varset


def _labeled_trees(n: int) -> List[List[Tuple[int, int]]]:
    """All labeled trees on nodes 0..n-1 (brute force; fine for n <= 5)."""
    if n == 1:
        return [[]]
    all_edges = list(combinations(range(n), 2))
    trees = []
    for subset in combinations(all_edges, n - 1):
        # union-find acyclicity/connectivity check
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        ok = True
        for a, b in subset:
            ra, rb = find(a), find(b)
            if ra == rb:
                ok = False
                break
            parent[ra] = rb
        if ok:
            trees.append(list(subset))
    return trees


def decompositions_over_bags(bags: Sequence[VarSet]) -> List[TreeDecomposition]:
    """All tree shapes over a fixed bag list that satisfy running intersection."""
    out = []
    for edges in _labeled_trees(len(bags)):
        try:
            out.append(TreeDecomposition(dict(enumerate(bags)), edges))
        except DecompositionError:
            continue
    return out


def enumerate_tree_decompositions(
    hypergraph: Hypergraph,
    max_bags: int = 3,
    candidate_bags: Optional[Iterable[VarSet]] = None,
) -> List[TreeDecomposition]:
    """Non-redundant tree decompositions of ``hypergraph``.

    Bags default to connected vertex subsets; the count is exponential in the
    vertex count, intended for n <= 8.  Decompositions are deduplicated by
    their bag/edge signature.
    """
    if candidate_bags is None:
        candidates = list(hypergraph.connected_subsets())
    else:
        candidates = [varset(bag) for bag in candidate_bags]
    edges = list(hypergraph.edge_sets)
    out: List[TreeDecomposition] = []
    seen = set()
    for size in range(1, max_bags + 1):
        for combo in combinations(candidates, size):
            # non-redundant bag set
            if any(a <= b or b <= a for a, b in combinations(combo, 2)):
                continue
            # must cover every hyperedge
            if not all(any(e <= bag for bag in combo) for e in edges):
                continue
            for td in decompositions_over_bags(combo):
                sig = td.signature()
                if sig not in seen:
                    seen.add(sig)
                    out.append(td)
    return out


def _descendant_closed_sets(td: TreeDecomposition,
                            root: NodeId) -> List[frozenset]:
    """All materialization sets: unions of complete subtrees."""
    nodes = td.nodes
    # A set M is descendant-closed iff it is a union of complete subtrees;
    # enumerate by choosing, for every node, whether its full subtree is in.
    subtree_of = {n: frozenset(td.subtree(n, root)) for n in nodes}
    frontier = [frozenset()]
    for node in nodes:
        new = []
        for current in frontier:
            new.append(current)
            new.append(current | subtree_of[node])
        frontier = list(dict.fromkeys(new))
    return list(dict.fromkeys(frozenset(s) for s in frontier))


def enumerate_pmtds(
    cqap: CQAP,
    max_bags: int = 3,
    candidate_bags: Optional[Iterable[VarSet]] = None,
    filter_redundant: bool = True,
    filter_dominating: bool = True,
) -> List[PMTD]:
    """All non-redundant, non-dominant PMTDs of ``cqap`` (up to ``max_bags``).

    Reproduces Figure 3: for the 3-reachability CQAP this returns exactly the
    five PMTDs {(T134,T123), (T134,S13), (T124,T234), (T124,S24), (S14)}.
    """
    hypergraph = cqap.access_hypergraph()
    pmtds: List[PMTD] = []
    seen = set()
    for td in enumerate_tree_decompositions(hypergraph, max_bags,
                                            candidate_bags):
        for root in td.nodes:
            if not cqap.access_set <= td.bags[root]:
                continue
            if not td.is_free_connex_wrt(root, cqap.head_set):
                continue
            for mat_set in _descendant_closed_sets(td, root):
                pmtd = PMTD(td, root, mat_set, cqap.head, cqap.access)
                if filter_redundant and pmtd.is_redundant():
                    continue
                sig = pmtd.signature()
                if sig in seen:
                    continue
                seen.add(sig)
                pmtds.append(pmtd)
    if filter_dominating:
        pmtds = minimal_under_domination(pmtds)
    return pmtds


def minimal_under_domination(pmtds: Sequence[PMTD]) -> List[PMTD]:
    """Drop every PMTD that (strictly) dominates another one.

    Mutually-dominating (equivalent) PMTDs keep a single representative.
    """
    # collapse mutual-domination (equivalence) classes to one representative
    reps: List[PMTD] = []
    for pmtd in pmtds:
        if not any(pmtd.dominated_by(rep) and rep.dominated_by(pmtd)
                   for rep in reps):
            reps.append(pmtd)
    # drop any representative that strictly dominates another
    return [
        p for p in reps
        if not any(
            q is not p and q.dominated_by(p) and not p.dominated_by(q)
            for q in reps
        )
    ]


def induced_pmtds(cqap: CQAP, td: TreeDecomposition,
                  root: NodeId) -> List[PMTD]:
    """The §6.3 induced PMTD set of one fixed decomposition.

    For every antichain of nodes (no two on a common root-to-leaf path), each
    chosen node absorbs its entire subtree into its bag (the subtree is
    truncated) and becomes a materialized leaf.  The empty antichain yields
    the all-T PMTD.
    """
    td.validate(cqap.access_hypergraph())
    if not cqap.access_set <= td.bags[root]:
        raise ValueError("root bag must contain the access pattern")
    children = td.children_map(root)
    parents = td.parent_map(root)
    nodes = td.nodes

    def is_antichain(selection: Sequence[NodeId]) -> bool:
        chosen = set(selection)
        for node in selection:
            above = set(td.ancestors(node, root))
            if above & chosen:
                return False
        return True

    out: List[PMTD] = []
    seen = set()
    for size in range(0, len(nodes) + 1):
        for selection in combinations(nodes, size):
            if not is_antichain(selection):
                continue
            merged_bags: Dict[NodeId, VarSet] = {}
            merged_edges: List[Tuple[NodeId, NodeId]] = []
            removed: Set[NodeId] = set()
            for node in selection:
                subtree = td.subtree(node, root)
                removed |= subtree - {node}
            for node in nodes:
                if node in removed:
                    continue
                if node in selection:
                    bag: Set[str] = set()
                    for member in td.subtree(node, root):
                        bag |= td.bags[member]
                    merged_bags[node] = varset(bag)
                else:
                    merged_bags[node] = td.bags[node]
            for node in merged_bags:
                parent = parents[node]
                if parent is not None and parent in merged_bags:
                    merged_edges.append((parent, node))
            try:
                new_td = TreeDecomposition(merged_bags, merged_edges)
                pmtd = PMTD(new_td, root, frozenset(selection),
                            cqap.head, cqap.access)
            except (DecompositionError, ValueError):
                continue
            if pmtd.is_redundant():
                continue
            sig = pmtd.signature()
            if sig not in seen:
                seen.add(sig)
                out.append(pmtd)
    return out


# ----------------------------------------------------------------------
# Paper fixtures: the exact PMTD sets the paper fixes for its figures.
# ----------------------------------------------------------------------
def paper_pmtds_3reach() -> List[PMTD]:
    """The five PMTDs of Figure 3 (constructed explicitly, not enumerated)."""
    from repro.query.catalog import k_path_cqap

    cqap = k_path_cqap(3)
    two_a = TreeDecomposition(
        {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
    )
    two_b = TreeDecomposition(
        {0: {"x1", "x2", "x4"}, 1: {"x2", "x3", "x4"}}, [(0, 1)]
    )
    one = TreeDecomposition({0: {"x1", "x2", "x3", "x4"}}, [])
    return [
        PMTD(two_a, 0, (), cqap.head, cqap.access),
        PMTD(two_a, 0, (1,), cqap.head, cqap.access),
        PMTD(two_b, 0, (), cqap.head, cqap.access),
        PMTD(two_b, 0, (1,), cqap.head, cqap.access),
        PMTD(one, 0, (0,), cqap.head, cqap.access),
    ]


def paper_pmtds_4reach() -> List[PMTD]:
    """The eleven PMTDs fixed in §E.8 for the 4-reachability analysis.

    Written as (root view, child view) tuples in the paper:
    (T1235,T345) (T1235,S35) (T1345,T123) (T1345,S13) (T1245,T234)
    (T1245,S24) (T125,T2345) (T125,S25) (T145,T1234) (T145,S14) (S15).
    """
    from repro.query.catalog import k_path_cqap

    cqap = k_path_cqap(4)

    def two(root_bag, child_bag, materialize_child):
        td = TreeDecomposition({0: root_bag, 1: child_bag}, [(0, 1)])
        mat = (1,) if materialize_child else ()
        return PMTD(td, 0, mat, cqap.head, cqap.access)

    one = TreeDecomposition({0: {"x1", "x2", "x3", "x4", "x5"}}, [])
    return [
        two({"x1", "x2", "x3", "x5"}, {"x3", "x4", "x5"}, False),
        two({"x1", "x2", "x3", "x5"}, {"x3", "x4", "x5"}, True),
        two({"x1", "x3", "x4", "x5"}, {"x1", "x2", "x3"}, False),
        two({"x1", "x3", "x4", "x5"}, {"x1", "x2", "x3"}, True),
        two({"x1", "x2", "x4", "x5"}, {"x2", "x3", "x4"}, False),
        two({"x1", "x2", "x4", "x5"}, {"x2", "x3", "x4"}, True),
        two({"x1", "x2", "x5"}, {"x2", "x3", "x4", "x5"}, False),
        two({"x1", "x2", "x5"}, {"x2", "x3", "x4", "x5"}, True),
        two({"x1", "x4", "x5"}, {"x1", "x2", "x3", "x4"}, False),
        two({"x1", "x4", "x5"}, {"x1", "x2", "x3", "x4"}, True),
        PMTD(one, 0, (0,), cqap.head, cqap.access),
    ]


def paper_pmtds_square() -> List[PMTD]:
    """The two PMTDs of Figure 2 for the square CQAP."""
    from repro.query.catalog import square_cqap

    cqap = square_cqap()
    two = TreeDecomposition(
        {0: {"x1", "x3", "x4"}, 1: {"x1", "x2", "x3"}}, [(0, 1)]
    )
    one = TreeDecomposition({0: {"x1", "x2", "x3", "x4"}}, [])
    return [
        PMTD(two, 0, (), cqap.head, cqap.access),
        PMTD(one, 0, (0,), cqap.head, cqap.access),
    ]
