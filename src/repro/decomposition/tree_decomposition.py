"""Tree decompositions (Definition 3.1) with free-connex checks.

A tree decomposition is a tree whose nodes carry *bags* of variables such
that (1) every hyperedge fits inside some bag and (2) each variable's bag set
induces a connected subtree (the running-intersection property).

The class is root-agnostic; rooted notions (parents, ancestors, ``TOP_r``,
free-connexness w.r.t. a root) take the root as an argument, because PMTDs
fix a root while enumeration considers several.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.query.hypergraph import Hypergraph, VarSet, varset

NodeId = int
Edge = Tuple[NodeId, NodeId]


class DecompositionError(ValueError):
    """Raised for structurally invalid tree decompositions."""


class TreeDecomposition:
    """An undirected tree with variable bags on its nodes."""

    def __init__(self, bags: Dict[NodeId, Iterable[str]],
                 edges: Iterable[Edge]) -> None:
        self.bags: Dict[NodeId, VarSet] = {
            node: varset(bag) for node, bag in bags.items()
        }
        self.edges: Tuple[Edge, ...] = tuple(
            (a, b) if a <= b else (b, a) for a, b in edges
        )
        self._adj: Dict[NodeId, Set[NodeId]] = {n: set() for n in self.bags}
        for a, b in self.edges:
            if a not in self.bags or b not in self.bags:
                raise DecompositionError(f"edge ({a},{b}) uses unknown node")
            self._adj[a].add(b)
            self._adj[b].add(a)
        self._check_tree()
        self._check_running_intersection()

    # ------------------------------------------------------------------
    # structure checks
    # ------------------------------------------------------------------
    def _check_tree(self) -> None:
        n = len(self.bags)
        if n == 0:
            raise DecompositionError("a decomposition needs at least one bag")
        if len(set(self.edges)) != n - 1:
            raise DecompositionError(
                f"{n} nodes need exactly {n - 1} distinct edges, "
                f"got {len(set(self.edges))}"
            )
        # connectivity
        start = next(iter(self.bags))
        seen = {start}
        stack = [start]
        while stack:
            for nxt in self._adj[stack.pop()]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        if seen != set(self.bags):
            raise DecompositionError("decomposition tree is disconnected")

    def _check_running_intersection(self) -> None:
        for var in self.all_variables:
            nodes = {n for n, bag in self.bags.items() if var in bag}
            start = next(iter(nodes))
            seen = {start}
            stack = [start]
            while stack:
                for nxt in self._adj[stack.pop()]:
                    if nxt in nodes and nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            if seen != nodes:
                raise DecompositionError(
                    f"variable {var!r} does not induce a connected subtree"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return sorted(self.bags)

    @property
    def all_variables(self) -> VarSet:
        out: Set[str] = set()
        for bag in self.bags.values():
            out |= bag
        return varset(out)

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        return set(self._adj[node])

    def __len__(self) -> int:
        return len(self.bags)

    def __repr__(self) -> str:
        bags = "; ".join(
            f"{n}:{{{','.join(sorted(bag))}}}" for n, bag in sorted(self.bags.items())
        )
        return f"TreeDecomposition({bags})"

    # ------------------------------------------------------------------
    # validity w.r.t. a hypergraph
    # ------------------------------------------------------------------
    def covers(self, hypergraph: Hypergraph) -> bool:
        """True when every hyperedge is contained in some bag."""
        return all(
            any(edge <= bag for bag in self.bags.values())
            for edge in hypergraph.edges
        )

    def validate(self, hypergraph: Hypergraph) -> None:
        """Raise unless this is a valid decomposition of ``hypergraph``."""
        if not hypergraph.vertices <= self.all_variables:
            missing = hypergraph.vertices - self.all_variables
            raise DecompositionError(f"variables {set(missing)} not in any bag")
        if not self.covers(hypergraph):
            raise DecompositionError("some hyperedge is not inside any bag")

    def is_non_redundant(self) -> bool:
        """No bag contained in another bag (§3, Redundancy)."""
        bags = list(self.bags.values())
        return not any(
            a <= b for a, b in combinations(bags, 2)
        ) and not any(b <= a for a, b in combinations(bags, 2))

    # ------------------------------------------------------------------
    # rooted structure
    # ------------------------------------------------------------------
    def parent_map(self, root: NodeId) -> Dict[NodeId, Optional[NodeId]]:
        """Parent of every node when rooted at ``root`` (root maps to None)."""
        parents: Dict[NodeId, Optional[NodeId]] = {root: None}
        stack = [root]
        while stack:
            current = stack.pop()
            for nxt in self._adj[current]:
                if nxt not in parents:
                    parents[nxt] = current
                    stack.append(nxt)
        return parents

    def children_map(self, root: NodeId) -> Dict[NodeId, List[NodeId]]:
        """Children of every node when rooted at ``root``."""
        children: Dict[NodeId, List[NodeId]] = {n: [] for n in self.bags}
        for node, parent in self.parent_map(root).items():
            if parent is not None:
                children[parent].append(node)
        for kids in children.values():
            kids.sort()
        return children

    def subtree(self, node: NodeId, root: NodeId) -> Set[NodeId]:
        """All nodes in ``node``'s subtree when rooted at ``root``."""
        children = self.children_map(root)
        out = {node}
        stack = [node]
        while stack:
            for kid in children[stack.pop()]:
                out.add(kid)
                stack.append(kid)
        return out

    def ancestors(self, node: NodeId, root: NodeId) -> List[NodeId]:
        """Proper ancestors of ``node`` from parent up to the root."""
        parents = self.parent_map(root)
        out = []
        current = parents[node]
        while current is not None:
            out.append(current)
            current = parents[current]
        return out

    def top(self, variable: str, root: NodeId) -> NodeId:
        """``TOP_r(x)``: the highest node (closest to root) whose bag has x."""
        holders = [n for n, bag in self.bags.items() if variable in bag]
        if not holders:
            raise DecompositionError(f"variable {variable!r} in no bag")
        depths = self.depths(root)
        return min(holders, key=lambda n: depths[n])

    def depths(self, root: NodeId) -> Dict[NodeId, int]:
        """Distance from the root for every node."""
        depths = {root: 0}
        stack = [root]
        while stack:
            current = stack.pop()
            for nxt in self._adj[current]:
                if nxt not in depths:
                    depths[nxt] = depths[current] + 1
                    stack.append(nxt)
        return depths

    def is_free_connex_wrt(self, root: NodeId, head: Iterable[str]) -> bool:
        """Free-connexness w.r.t. ``root`` (§3).

        For every head variable x and non-head variable y, ``TOP_r(y)`` must
        not be a *proper* ancestor of ``TOP_r(x)``.
        """
        head = varset(head)
        non_head = self.all_variables - head
        if not non_head or not head:
            return True
        ancestor_cache: Dict[NodeId, Set[NodeId]] = {}

        def proper_ancestors(node: NodeId) -> Set[NodeId]:
            if node not in ancestor_cache:
                ancestor_cache[node] = set(self.ancestors(node, root))
            return ancestor_cache[node]

        tops_head = {self.top(x, root) for x in head if x in self.all_variables}
        tops_non = {self.top(y, root) for y in non_head}
        for tx in tops_head:
            above = proper_ancestors(tx)
            if above & tops_non:
                return False
        return True

    def root_to_leaf_paths(self, root: NodeId) -> List[List[NodeId]]:
        """Every path from the root to a leaf (used by §6.3 tradeoffs)."""
        children = self.children_map(root)
        paths: List[List[NodeId]] = []

        def descend(node: NodeId, prefix: List[NodeId]) -> None:
            prefix = prefix + [node]
            if not children[node]:
                paths.append(prefix)
                return
            for kid in children[node]:
                descend(kid, prefix)

        descend(root, [])
        return paths

    def signature(self) -> Tuple:
        """Shape-insensitive identity: sorted bags plus bag-pair edges."""
        bag_key = tuple(sorted(tuple(sorted(b)) for b in self.bags.values()))
        edge_key = tuple(sorted(
            tuple(sorted([tuple(sorted(self.bags[a])), tuple(sorted(self.bags[b]))]))
            for a, b in self.edges
        ))
        return (bag_key, edge_key)


def path_decomposition(bags: Sequence[Iterable[str]]) -> TreeDecomposition:
    """Convenience builder: bags chained in a path, node ids 0..m-1."""
    bag_map = {i: varset(bag) for i, bag in enumerate(bags)}
    edges = [(i, i + 1) for i in range(len(bags) - 1)]
    return TreeDecomposition(bag_map, edges)
