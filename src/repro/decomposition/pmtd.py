"""Partially materialized tree decompositions (Definition 3.2).

A PMTD augments a free-connex tree decomposition with a *materialization set*
``M`` (closed under taking descendants away from the root).  Nodes in ``M``
carry *S-views* — materialized in the preprocessing phase — while the other
nodes carry *T-views*, computed online.  The view schema ``ν(t)`` follows the
three-case definition in §3; redundancy (Def. 3.4) and domination (Def. 3.5)
are defined over these views rather than the raw bags.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.decomposition.tree_decomposition import NodeId, TreeDecomposition
from repro.query.cq import CQAP
from repro.query.hypergraph import VarSet, varset

S_VIEW = "S"
T_VIEW = "T"

_XNUM = re.compile(r"^[A-Za-z]+(\d+)$")


def view_label(kind: str, variables: Iterable[str]) -> str:
    """Compact paper-style label, e.g. ``T134`` for a T-view on x1,x3,x4.

    Falls back to explicit names (``S{a,b}``) when variables do not all end
    in distinct numeric suffixes.
    """
    return _view_label(kind, tuple(sorted(variables)))


@lru_cache(maxsize=4096)
def _view_label(kind: str, variables: Tuple[str, ...]) -> str:
    # cached: view labels are consulted on the per-probe view-assembly
    # path, and the regex formatting showed up in probe profiles
    suffixes = []
    for var in variables:
        match = _XNUM.match(var)
        if not match:
            suffixes = None
            break
        suffixes.append(match.group(1))
    if suffixes is not None and len(set(suffixes)) == len(suffixes):
        return kind + "".join(sorted(suffixes, key=lambda s: (len(s), s)))
    return kind + "{" + ",".join(variables) + "}"


@dataclass(frozen=True)
class View:
    """A (kind, schema) pair attached to a PMTD node."""

    kind: str  # S_VIEW or T_VIEW
    variables: VarSet

    @property
    def label(self) -> str:
        return view_label(self.kind, self.variables)

    def __repr__(self) -> str:
        return self.label


class PMTD:
    """A partially materialized tree decomposition for a CQAP.

    Args:
        td: the underlying tree decomposition (of the access hypergraph).
        root: node whose bag contains the access pattern.
        mat_set: the materialization set ``M`` (descendant-closed).
        head: head variables ``H`` of the CQAP.
        access: access pattern ``A ⊆ H``.
    """

    def __init__(self, td: TreeDecomposition, root: NodeId,
                 mat_set: Iterable[NodeId], head: Iterable[str],
                 access: Iterable[str]) -> None:
        self.td = td
        self.root = root
        self.mat_set: FrozenSet[NodeId] = frozenset(mat_set)
        self.head: VarSet = varset(head)
        self.access: VarSet = varset(access)
        self._validate()
        self._views = self._compute_views()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.root not in self.td.bags:
            raise ValueError(f"root {self.root} not a decomposition node")
        if not self.access <= self.td.bags[self.root]:
            raise ValueError(
                f"access pattern {set(self.access)} not inside the root bag "
                f"{set(self.td.bags[self.root])}"
            )
        if not self.access <= self.head:
            raise ValueError("PMTDs require A ⊆ H (normalize the CQAP first)")
        if not self.td.is_free_connex_wrt(self.root, self.head):
            raise ValueError("decomposition is not free-connex w.r.t. root")
        for node in self.mat_set:
            subtree = self.td.subtree(node, self.root)
            if not subtree <= self.mat_set:
                raise ValueError(
                    f"materialization set is not descendant-closed at {node}"
                )

    def _compute_views(self) -> Dict[NodeId, View]:
        """ν(·) per Definition 3.2."""
        parents = self.td.parent_map(self.root)
        views: Dict[NodeId, View] = {}
        for node, bag in self.td.bags.items():
            if node not in self.mat_set:
                views[node] = View(T_VIEW, bag)
                continue
            if node == self.root:
                views[node] = View(S_VIEW, bag & self.head)
                continue
            parent = parents[node]
            parent_bag = self.td.bags[parent]
            if parent not in self.mat_set:
                schema = bag & (self.head | parent_bag)
            elif not (bag & self.head) <= (parent_bag & self.head):
                schema = bag & self.head
            else:
                schema = varset(())
            views[node] = View(S_VIEW, schema)
        return views

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def views(self) -> Dict[NodeId, View]:
        """Node -> view mapping (ν plus the S/T kind)."""
        return dict(self._views)

    def ordered_views(self) -> List[View]:
        """The node set's views in canonical iteration order.

        Sorted by (kind, schema size, schema), independently of node ids —
        so every consumer that iterates a PMTD's choices (rule generation,
        cost estimation, display) sees the same deterministic order no
        matter how the decomposition was enumerated or deduplicated.
        """
        return sorted(
            self._views.values(),
            key=lambda v: (v.kind, len(v.variables), tuple(sorted(v.variables))),
        )

    def view(self, node: NodeId) -> View:
        return self._views[node]

    @property
    def s_views(self) -> Dict[NodeId, View]:
        return {n: v for n, v in self._views.items() if v.kind == S_VIEW}

    @property
    def t_views(self) -> Dict[NodeId, View]:
        return {n: v for n, v in self._views.items() if v.kind == T_VIEW}

    @property
    def labels(self) -> List[str]:
        """View labels in root-first BFS order (paper display order)."""
        order = sorted(self.td.nodes,
                       key=lambda n: (self.td.depths(self.root)[n], n))
        return [self._views[n].label for n in order]

    def __repr__(self) -> str:
        return "PMTD(" + ", ".join(self.labels) + ")"

    def signature(self) -> Tuple:
        """View-level identity used for deduplication.

        Two PMTDs with the same multiset of (kind, schema) views and the same
        parent-child view relationships are interchangeable everywhere in the
        framework.
        """
        parents = self.td.parent_map(self.root)

        def key(node: NodeId) -> Tuple:
            view = self._views[node]
            return (view.kind, tuple(sorted(view.variables)))

        edges = []
        for node, parent in parents.items():
            if parent is not None:
                edges.append((key(parent), key(node)))
        return (
            tuple(sorted(key(n) for n in self.td.nodes)),
            tuple(sorted(edges)),
        )

    # ------------------------------------------------------------------
    # redundancy / domination
    # ------------------------------------------------------------------
    def is_redundant(self) -> bool:
        """Definition 3.4 (negated: returns True when redundant)."""
        s_schemas = [v.variables for v in self.s_views.values()]
        t_schemas = [v.variables for v in self.t_views.values()]
        if any(not schema for schema in s_schemas):
            return True
        for group in (s_schemas, t_schemas):
            for i, a in enumerate(group):
                for j, b in enumerate(group):
                    if i != j and a <= b:
                        return True
        return False

    def dominated_by(self, other: "PMTD") -> bool:
        """Definition 3.5: every view fits inside a same-kind view of other."""
        mine_s = [v.variables for v in self.s_views.values()]
        mine_t = [v.variables for v in self.t_views.values()]
        theirs_s = [v.variables for v in other.s_views.values()]
        theirs_t = [v.variables for v in other.t_views.values()]
        return all(any(a <= b for b in theirs_s) for a in mine_s) and all(
            any(a <= b for b in theirs_t) for a in mine_t
        )

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def for_cqap(cls, cqap: CQAP, td: TreeDecomposition, root: NodeId,
                 mat_set: Iterable[NodeId] = ()) -> "PMTD":
        """Build and validate a PMTD of ``cqap``'s access hypergraph."""
        td.validate(cqap.access_hypergraph())
        return cls(td, root, mat_set, cqap.head, cqap.access)


def trivial_pmtds(cqap: CQAP) -> List[PMTD]:
    """The two one-bag PMTDs used by Theorem 6.1.

    Bag = all variables; either nothing is materialized (answer from scratch)
    or the single bag is materialized, giving the S-view on ``H`` — for
    ``H = A`` this is exactly "store the full answer table".
    """
    all_vars = sorted(cqap.variables)
    td1 = TreeDecomposition({0: all_vars}, [])
    td2 = TreeDecomposition({0: all_vars}, [])
    return [
        PMTD(td1, 0, (), cqap.head, cqap.access),
        PMTD(td2, 0, (0,), cqap.head, cqap.access),
    ]
