"""Incremental single-tuple updates through a preprocessed CQAP index.

The paper's data structure is built for a *static* database: preprocessing
materializes the S-views, freezes the compiled online steps, and every
serving layer (answer caches, shard partitions, worker processes) assumes
the stored state never moves.  This module is the one place that is
allowed to move it: :func:`apply_delta` pushes a single-tuple insert or
delete through every materialized structure and leaves the index in the
exact logical state a rebuild against the post-update database would
produce — answers are bit-identical; only the internal piece assignment
may differ (see below), which answers never observe.

The maintenance algorithm, per delta ``±R(t)``:

1. **Base mutation.**  ``index.db[R]`` gains/loses ``t`` (no-op deltas
   return immediately with ``changed=False``).

2. **Affected access keys.**  Conjunctive queries are monotone in every
   atom, so the access bindings whose answers change are *exactly*
   ``Π_A(Q_A-free join with one occurrence of R pinned to {t})`` —
   evaluated on the post-state for inserts and the pre-state for deletes,
   unioned over occurrences of ``R``.  Serving caches evict exactly these
   keys and keep everything else (the surgical-eviction contract the
   tests pin down).

3. **Piece routing.**  Each plan's split sequence partitions ``R`` into
   heavy/light pieces per subproblem signature.  The inserted tuple is
   assigned a deterministic side per split — heavy iff its X-key degree
   in the *post-insert full base relation* exceeds the split threshold —
   and joins every subproblem whose signature matches.  This rule may
   disagree with the bucket-at-build-time rule that placed the original
   rows, and that is sound: correctness only needs each tuple to live in
   exactly one signature cell per relation (the union over all ``2^k``
   cells then covers every combination of per-atom rows), while the
   degree thresholds only sharpen the *cost bounds*, which drift
   re-selection restores when they erode.  Deletes simply remove the
   tuple from whichever piece holds it.

4. **S-target deltas.**  For an insert, each S-decision of a hosting
   subproblem gains ``Π_target({t} ⋈ other pieces)`` (post-state).  For a
   delete, candidates ``Π_target({t} ⋈ pre-state pieces)`` are computed
   first, then checked for re-derivability against *every* contributing
   decision's post-state pieces — a candidate is only removed when no
   contributor can still derive it.  Both directions start their generic
   join from the singleton, so the work scales with the delta's join
   neighbourhood, not the database.

5. **Derived-state coherence.**  Subproblem pieces, their ``atom_relation``
   cache entries, and the compiled online steps' relations form families
   that share (or copy) tuple sets; every family member is mutated once
   per distinct set and has its derived caches reset, affected
   :class:`~repro.core.kernels.CompiledProbePlan`\\ s are recompiled (they
   pin hash indexes at compile time), and the per-PMTD Online Yannakakis
   instances are rebuilt whenever an S-target moved (their semijoin-
   reduced views are preprocessing-time snapshots).

6. **Drift re-selection.**  When the measured cardinality drift since the
   catalog statistics were taken exceeds ``index.staleness_threshold``,
   the whole configuration pipeline reruns (:meth:`CQAPIndex.reselect`) —
   incremental maintenance keeps answers right forever, but the chosen
   rule set stops being the *cheapest* one once the data moves far.

Every registered delta listener (prepared queries, sharded indexes,
process fleets, batch schedulers) then receives the resulting
:class:`UpdateEvent` and patches its own state — surgical cache
eviction, shard-routed view deltas, worker messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.joins import project_join
from repro.core.split import HEAVY, LIGHT, Subproblem
from repro.core.two_phase import S_PHASE
from repro.data.relation import Relation
from repro.obs.registry import REGISTRY
from repro.obs.trace import STATE as _OBS
from repro.query.hypergraph import VarSet
from repro.util.counters import Counters, global_counters

Tuple_ = Tuple[object, ...]

INSERT = "insert"
DELETE = "delete"


@dataclass
class UpdateEvent:
    """What one applied delta changed, for serving-layer listeners.

    ``target_deltas`` maps each S-target key to ``(added, removed)`` row
    sets (already applied to the index's target relations when the event
    fires).  ``affected_keys`` is the exact set of normalized access
    bindings whose cached answers went stale — ``None`` means "unknown,
    flush everything" (never produced by :func:`apply_delta` itself, but
    part of the listener contract so degraded paths stay expressible).
    """

    op: str
    relation: str
    row: Tuple_
    #: whether the database actually changed (False for no-op deltas)
    changed: bool
    #: whether the relation appears in the index's query body
    in_query: bool
    target_deltas: Dict[VarSet, Tuple[FrozenSet[Tuple_], FrozenSet[Tuple_]]] \
        = field(default_factory=dict)
    affected_keys: Optional[FrozenSet[Tuple_]] = None
    #: indices into ``index.compiled_online`` of the T-phase steps whose
    #: piece relations this delta mutated — what a remote replica (the
    #: process fleet's workers) must patch in its own copy of the steps
    step_slots: Tuple[int, ...] = ()
    #: True when the delta pushed measured drift past the staleness
    #: threshold and the index re-selected + re-preprocessed itself
    reselected: bool = False

    @property
    def targets_changed(self) -> bool:
        """True iff at least one S-target gained or lost a row."""
        return any(added or removed
                   for added, removed in self.target_deltas.values())


# ----------------------------------------------------------------------
# family mutation: every relation object representing one logical piece
# ----------------------------------------------------------------------
def _collect_family(index, subproblem: Subproblem, name: str,
                    ) -> List[Relation]:
    """Every relation object holding ``subproblem``'s piece of ``name``.

    The piece itself, its ``atom_relation`` cache entries (constructor
    copies), and the compiled online steps' relations (which either *are*
    the cache entries or are backend re-wraps sharing their sets).  Rows
    are positionally identical across all of them — pieces relabel the
    stored schema to atom variables without reordering.
    """
    members: List[Relation] = []
    piece = subproblem.relations.get(name)
    if piece is not None:
        members.append(piece)
    cache = getattr(subproblem, "_atom_cache", None)
    if cache:
        members.extend(rel for (rel_name, _), rel in cache.items()
                       if rel_name == name)
    for step in index._compiled_online:
        if step.decision.subproblem is not subproblem:
            continue
        for atom, rel in zip(index.cqap.atoms, step.relations):
            if atom.relation == name:
                members.append(rel)
    return members


def _mutate_family(members: List[Relation], row: Tuple_,
                   insert: bool) -> bool:
    """Apply one delta to a piece family, once per distinct tuple set.

    Members sharing a set get their derived caches reset (the set moved
    under them); members with private copies get the same delta applied.
    Returns True iff any member's content changed.
    """
    seen: set = set()
    changed = False
    for rel in members:
        set_id = id(rel.tuples)
        if set_id in seen:
            rel.version += 1
            rel._reset_derived()
            continue
        seen.add(set_id)
        if insert:
            changed |= rel._delta_add(row)
        else:
            changed |= rel._delta_discard(row)
    return changed


# ----------------------------------------------------------------------
# split-side routing
# ----------------------------------------------------------------------
def _row_sides(base: Relation, atom_variables: Tuple[str, ...],
               row: Tuple_, splits) -> Tuple[str, ...]:
    """The inserted row's deterministic H/L side per split (in order).

    Heavy iff the row's X-key bucket in the full post-insert base
    relation is strictly larger than the split threshold — the same
    shape of rule ``SplitStep.partition`` uses, evaluated against the
    freshest state available.  Any deterministic per-row rule preserves
    the partition-cover invariant (module docstring, step 3).
    """
    sides = []
    for split in splits:
        pos = tuple(atom_variables.index(v) for v in split.x_vars)
        base_key = tuple(base.schema[p] for p in pos)
        key = tuple(row[p] for p in pos)
        degree = len(base.index_on(base_key).get(key, ()))
        sides.append(HEAVY if degree > split.threshold else LIGHT)
    return tuple(sides)


def _hosting_subproblems(index, plan, name: str, row: Tuple_,
                         insert: bool) -> List:
    """The plan's decisions whose subproblem piece holds (or gains) ``row``.

    For deletes membership is just presence in the piece.  For inserts the
    row's side vector over the plan's splits of ``name`` selects exactly
    the signatures it joins.
    """
    split_slots = [i for i, split in enumerate(plan.splits)
                   if split.atom.relation == name]
    sides: Optional[Tuple[str, ...]] = None
    if insert and split_slots:
        atom = plan.splits[split_slots[0]].atom
        sides = _row_sides(index.db[name], atom.variables, row,
                           [plan.splits[i] for i in split_slots])
    hosting = []
    for decision in plan.decisions:
        subproblem = decision.subproblem
        piece = subproblem.relations.get(name)
        if piece is None:
            continue
        if insert:
            if sides is not None:
                chosen = tuple(subproblem.signature[i] for i in split_slots)
                if chosen != sides:
                    continue
            hosting.append(decision)
        elif row in piece.tuples:
            hosting.append(decision)
    return hosting


# ----------------------------------------------------------------------
# pinned joins
# ----------------------------------------------------------------------
def _pinned_join(cqap, relation_of, name: str, row: Tuple_,
                 onto: Tuple[str, ...], ctr: Counters) -> set:
    """``Π_onto(join with one occurrence of name pinned to {row})``.

    ``relation_of(atom)`` supplies each unpinned atom's relation; the
    union runs over every occurrence of ``name`` in the body, which is
    the standard single-tuple delta rule for self-joining bodies.
    """
    out: set = set()
    occurrences = [atom for atom in cqap.atoms if atom.relation == name]
    for pinned in occurrences:
        relations = []
        for atom in cqap.atoms:
            if atom is pinned:
                relations.append(
                    Relation._wrap("__delta__", atom.variables, {row}))
            else:
                relations.append(relation_of(atom))
        out |= project_join(relations, onto, name="__delta_join__",
                            counters=ctr).tuples
    return out


def _affected_keys(index, name: str, row: Tuple_,
                   ctr: Counters) -> FrozenSet[Tuple_]:
    """Exact normalized access bindings whose answers the delta touches.

    Evaluated against the *current* database state (post-insert /
    pre-delete as arranged by the caller).  An empty access pattern
    yields ``{()}`` iff the pinned join is nonempty — the Boolean
    query's single cached answer may have flipped.
    """
    db = index.db

    def relation_of(atom):
        base = db[atom.relation]
        return Relation._wrap(atom.relation, atom.variables, base.tuples)

    return frozenset(_pinned_join(index.cqap, relation_of, name, row,
                                  index.cqap.access, ctr))


# ----------------------------------------------------------------------
# the maintenance driver
# ----------------------------------------------------------------------
def _publish_update_metrics(event: "UpdateEvent") -> None:
    """Publish one applied delta into the observability registry."""
    if not _OBS.enabled:
        return
    REGISTRY.counter("repro_update_deltas_total",
                     "single-tuple deltas applied, by operation",
                     ("op",)).labels(op=event.op).inc()
    if event.reselected:
        REGISTRY.counter("repro_update_reselections_total",
                         "drift-triggered rule re-selections").inc()


def apply_delta(index, op: str, name: str, row: Tuple_,
                counters: Optional[Counters] = None) -> UpdateEvent:
    """Apply one single-tuple delta through ``index`` and its listeners.

    ``op`` is ``"insert"`` or ``"delete"``; ``name`` must be a relation
    of ``index.db`` (unknown names raise ``KeyError``, arity mismatches
    ``SchemaError``).  Returns the :class:`UpdateEvent` describing what
    changed; the event has already been fanned out to every registered
    delta listener when this returns.

    On an index that has not been preprocessed yet, only the database
    (and, past the drift threshold, the rule selection) moves — there is
    no materialized state to maintain.
    """
    if op not in (INSERT, DELETE):
        raise ValueError(f"op must be '{INSERT}' or '{DELETE}', got {op!r}")
    ctr = counters if counters is not None else global_counters
    row = tuple(row)
    insert = op == INSERT
    in_query = any(atom.relation == name for atom in index.cqap.atoms)
    ready = index.ready

    # -- no-op detection and (delete) pre-state capture -----------------
    base = index.db[name]
    present = row in base.tuples
    if (insert and present) or (not insert and not present):
        return UpdateEvent(op, name, row, changed=False, in_query=in_query,
                           affected_keys=frozenset())

    affected: FrozenSet[Tuple_] = frozenset()
    candidates_by_target: Dict[VarSet, set] = {}
    hosting_by_plan: Dict[int, list] = {}
    if ready and in_query and not insert:
        # deletes read the pre-state: affected keys and removal candidates
        # must see the row still joined in
        affected = _affected_keys(index, name, row, ctr)
        for plan_i, plan in enumerate(index.plans):
            hosting = _hosting_subproblems(index, plan, name, row,
                                           insert=False)
            hosting_by_plan[plan_i] = hosting
            for decision in hosting:
                if decision.phase != S_PHASE:
                    continue
                schema = tuple(sorted(decision.target))
                rows = _pinned_join(
                    index.cqap, decision.subproblem.atom_relation,
                    name, row, schema, ctr)
                candidates_by_target.setdefault(
                    decision.target, set()).update(rows)

    # -- base mutation ---------------------------------------------------
    if insert:
        index.db.insert(name, row, counters=ctr)
        index.update_counts["inserts"] += 1
    else:
        index.db.delete(name, row, counters=ctr)
        index.update_counts["deletes"] += 1

    event = UpdateEvent(op, name, row, changed=True, in_query=in_query,
                        affected_keys=affected)
    if not ready:
        # nothing materialized yet; keep the selection fresh if the data
        # has drifted far since construction-time statistics
        if index.statistics.cardinality_drift(index.db) \
                > index.staleness_threshold:
            index._configure(None)
            index.update_counts["reselections"] += 1
            event.reselected = True
        _publish_update_metrics(event)
        return event

    if not in_query:
        # db-only mutation: no materialized structure references ``name``
        _publish_update_metrics(event)
        index.notify_delta(event)
        return event

    if insert:
        affected = _affected_keys(index, name, row, ctr)
        event.affected_keys = affected
        for plan_i, plan in enumerate(index.plans):
            hosting_by_plan[plan_i] = _hosting_subproblems(
                index, plan, name, row, insert=True)

    # -- piece / step mutation -------------------------------------------
    touched_steps = []
    step_slots = []
    for plan_i, plan in enumerate(index.plans):
        for decision in hosting_by_plan.get(plan_i, ()):
            family = _collect_family(index, decision.subproblem, name)
            _mutate_family(family, row, insert)
    for slot, step in enumerate(index._compiled_online):
        subproblem = step.decision.subproblem
        if any(decision.subproblem is subproblem
               for hosting in hosting_by_plan.values()
               for decision in hosting):
            touched_steps.append(step)
            step_slots.append(slot)
    event.step_slots = tuple(step_slots)

    # -- S-target deltas --------------------------------------------------
    target_deltas: Dict[VarSet, Tuple[FrozenSet, FrozenSet]] = {}
    if insert:
        adds_by_target: Dict[VarSet, set] = {}
        for hosting in hosting_by_plan.values():
            for decision in hosting:
                if decision.phase != S_PHASE:
                    continue
                schema = tuple(sorted(decision.target))
                rows = _pinned_join(
                    index.cqap, decision.subproblem.atom_relation,
                    name, row, schema, ctr)
                adds_by_target.setdefault(decision.target, set()).update(rows)
        for target, rows in adds_by_target.items():
            relation = index._s_targets.get(target)
            if relation is None:
                continue
            added = frozenset(r for r in rows if r not in relation.tuples)
            for r in added:
                relation._delta_add(r)
                ctr.stores += 1
            if added:
                target_deltas[target] = (added, frozenset())
    else:
        for target, candidates in candidates_by_target.items():
            relation = index._s_targets.get(target)
            if relation is None or not candidates:
                continue
            schema = tuple(sorted(target))
            candidate_rel = Relation("__candidates__", schema, candidates)
            survivors: set = set()
            # a candidate survives when ANY decision contributing to this
            # target can still derive it from the post-state pieces
            for plan in index.plans:
                for decision in plan.decisions:
                    if decision.phase != S_PHASE or decision.target != target:
                        continue
                    relations = [candidate_rel] + [
                        decision.subproblem.atom_relation(atom)
                        for atom in index.cqap.atoms
                    ]
                    survivors |= project_join(
                        relations, schema, name="__rederive__",
                        counters=ctr).tuples
                    if survivors >= candidates:
                        break
            removed = frozenset(
                r for r in candidates - survivors if r in relation.tuples)
            for r in removed:
                relation._delta_discard(r)
                ctr.stores += 1
            if removed:
                target_deltas[target] = (frozenset(), removed)
    event.target_deltas = target_deltas

    # -- derived-structure refresh ----------------------------------------
    for step in touched_steps:
        if step.plan is not None:
            step.plan._compile()
    if event.targets_changed:
        index._yannakakis = [
            type(oy)(oy.pmtd,
                     index._assemble_views(oy.pmtd.s_views,
                                           index._s_targets))
            for oy in index._yannakakis
        ]
        index.stats.stored_tuples = sum(
            len(rel) for rel in index._s_targets.values())
        index.stats.s_view_tuples = {
            "|".join(sorted(schema)): len(rel)
            for schema, rel in index._s_targets.items()
        }
    index.update_counts["deltas_applied"] += 1

    # -- drift-triggered re-selection --------------------------------------
    if index.statistics.cardinality_drift(index.db) \
            > index.staleness_threshold:
        index.reselect(counters=ctr)
        event.reselected = True

    _publish_update_metrics(event)
    index.notify_delta(event)
    return event
