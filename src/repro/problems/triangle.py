"""Triangle structures (Example E.4, §1's edge-triangle detection).

Both structures exploit the Example E.4 observation: the pairs that need
storing are supported by an input edge, so the materialized view is *linear*
in the database — the "empty proof sequence" ``log |D| ≥ h_S(13)``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.core.joins import project_join
from repro.data.relation import Relation
from repro.util.counters import Counters, global_counters


class TrianglePairIndex:
    """Example E.4: all (x1, x3) pairs that occur in a triangle.

    ``φ(x1, x3 | ∅) ← R(x1,x2) ∧ R(x2,x3) ∧ R(x3,x1)`` — the access pattern
    is empty, so the whole (linear-size) answer is materialized and queries
    are free-form scans/probes of it.
    """

    def __init__(self, edges: Iterable[Tuple],
                 counters: Optional[Counters] = None) -> None:
        ctr = counters or global_counters
        edge_set = set(tuple(e) for e in edges)
        rels = [
            Relation("R1", ("x1", "x2"), edge_set),
            Relation("R2", ("x2", "x3"), edge_set),
            Relation("R3", ("x3", "x1"), edge_set),
        ]
        self.pairs: Relation = project_join(rels, ("x1", "x3"),
                                            name="triangle_pairs",
                                            counters=ctr)
        ctr.stores += len(self.pairs)
        self.stored_tuples = len(self.pairs)
        # linear-space guarantee: every stored pair is backed by an R3 edge
        self._edge_count = len(edge_set)

    def __contains__(self, pair: Tuple) -> bool:
        return tuple(pair) in self.pairs

    def all_pairs(self) -> Set[Tuple]:
        return set(self.pairs.tuples)

    @property
    def is_linear(self) -> bool:
        """Stored pairs never exceed the edge count (Example E.4)."""
        return self.stored_tuples <= self._edge_count


class EdgeTriangleIndex:
    """§1's edge-triangle detection: does edge (u, v) close a triangle?

    Materializes the set of edges participating in a triangle (again linear
    space); queries are single hash probes, i.e. S = O(|E|), T = O(1).
    """

    def __init__(self, edges: Iterable[Tuple],
                 counters: Optional[Counters] = None) -> None:
        ctr = counters or global_counters
        edge_set = set(tuple(e) for e in edges)
        rels = [
            Relation("R1", ("x1", "x2"), edge_set),
            Relation("R2", ("x2", "x3"), edge_set),
            Relation("R3", ("x3", "x1"), edge_set),
        ]
        closed = project_join(rels, ("x1", "x2"), name="closing_edges",
                              counters=ctr)
        # only actual edges can be queried; intersect for safety
        self._closed: Set[Tuple] = closed.tuples & edge_set
        ctr.stores += len(self._closed)
        self.stored_tuples = len(self._closed)

    def query(self, edge: Tuple,
              counters: Optional[Counters] = None) -> bool:
        (counters or global_counters).probes += 1
        return tuple(edge) in self._closed

    def brute_force(self, edge: Tuple, edges: Iterable[Tuple]) -> bool:
        u, v = edge
        edge_set = set(tuple(e) for e in edges)
        succ = {b for a, b in edge_set if a == v}
        return any((w, u) in edge_set for w in succ)
