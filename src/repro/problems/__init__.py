"""Problem-specific data structures: the paper's application catalog."""

from repro.problems.hierarchical import (
    AdaptedKaraBaseline,
    assert_hierarchical,
    HierarchicalAnalysis,
    HierarchicalIndex,
    canonical_order,
    figure6_decomposition,
    is_hierarchical,
    static_width,
)
from repro.problems.reachability import (
    AtMostKReachOracle,
    KReachOracle,
    chain_decomposition,
    graph_database,
)
from repro.problems.set_disjointness import (
    KSetDisjointnessIndex,
    KSetIntersectionIndex,
    SetFamily,
)
from repro.problems.square import SquareOracle, square_graph_database
from repro.problems.triangle import EdgeTriangleIndex, TrianglePairIndex

__all__ = [
    "AdaptedKaraBaseline",
    "AtMostKReachOracle",
    "EdgeTriangleIndex",
    "HierarchicalAnalysis",
    "HierarchicalIndex",
    "KReachOracle",
    "KSetDisjointnessIndex",
    "KSetIntersectionIndex",
    "SetFamily",
    "SquareOracle",
    "TrianglePairIndex",
    "assert_hierarchical",
    "canonical_order",
    "chain_decomposition",
    "figure6_decomposition",
    "graph_database",
    "is_hierarchical",
    "square_graph_database",
    "static_width",
]
