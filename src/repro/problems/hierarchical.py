"""Boolean hierarchical CQAPs (§F, Figure 6).

Provides:

* :func:`is_hierarchical` / :func:`canonical_order` — the §F definition: for
  any two variables their atom sets are disjoint or nested; the canonical
  order is the forest induced by atom-set containment.
* :func:`static_width` — the width ``w`` entering Theorem F.4, computed as
  the fractional edge cover number of the access variables (the root bag of
  the Figure-6b-style decomposition).  For the Figure 6a query ``w = 4``.
* :func:`figure6_decomposition` — the Fig. 6b tree for the binary-tree query.
* :class:`AdaptedKaraBaseline` — Theorem F.4's structure for the Figure 6a
  query: heavy/light indicator views at threshold ``N^ε`` giving answering
  time ``O(N^{1-ε})`` with space ``O(N^{1+(w-1)ε})``.
* :class:`HierarchicalIndex` — the general framework route: CQAPIndex over
  the induced PMTD set of the Fig. 6b decomposition, realizing the improved
  ``S · T³ ≍ D⁴`` (and the §F bucketize-on-bound-variables refinements).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.index import CQAPIndex
from repro.data.database import Database
from repro.data.relation import Relation
from repro.decomposition.enumeration import induced_pmtds
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.query.cq import Atom, CQAP, ConjunctiveQuery
from repro.query.catalog import hierarchical_binary_tree_cqap
from repro.tradeoff.edge_cover import fractional_edge_cover
from repro.util.counters import Counters, global_counters


def atom_sets(cq: ConjunctiveQuery) -> Dict[str, frozenset]:
    """Variable -> frozenset of atom indexes containing it."""
    out: Dict[str, set] = {}
    for idx, atom in enumerate(cq.atoms):
        for var in atom.variables:
            out.setdefault(var, set()).add(idx)
    return {v: frozenset(s) for v, s in out.items()}


def is_hierarchical(cq: ConjunctiveQuery) -> bool:
    """§F: every variable pair has nested or disjoint atom sets."""
    try:
        assert_hierarchical(cq)
    except ValueError:
        return False
    return True


def assert_hierarchical(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    """Raise ``ValueError`` naming a violating variable pair if not §F.

    The single authoritative check (:func:`is_hierarchical` delegates
    here).  The workload fuzzer uses it to certify that generated
    "hierarchical" queries really are hierarchical; the error pinpoints
    the first pair of variables whose atom sets properly overlap.
    """
    sets = atom_sets(cq)
    variables = sorted(sets)
    for i, u in enumerate(variables):
        for v in variables[i + 1:]:
            a, b = sets[u], sets[v]
            if not (a <= b or b <= a or not (a & b)):
                raise ValueError(
                    f"query {cq.name!r} is not hierarchical: variables "
                    f"{u!r} and {v!r} have properly overlapping atom sets "
                    f"{sorted(a)} and {sorted(b)}"
                )
    return cq


def canonical_order(cq: ConjunctiveQuery) -> Dict[str, Optional[str]]:
    """Parent map of the canonical variable order (roots map to None).

    Variable u is an ancestor of v iff atoms(v) ⊆ atoms(u); ties (equal atom
    sets) are broken by name so the order is deterministic.
    """
    if not is_hierarchical(cq):
        raise ValueError("query is not hierarchical")
    sets = atom_sets(cq)
    variables = sorted(sets)

    def dominates(u: str, v: str) -> bool:
        su, sv = sets[u], sets[v]
        if su == sv:
            return u < v
        return sv < su

    parents: Dict[str, Optional[str]] = {}
    for v in variables:
        ancestors = [u for u in variables if u != v and dominates(u, v)]
        if not ancestors:
            parents[v] = None
            continue
        # the immediate ancestor is the one dominated by all others
        immediate = min(
            ancestors,
            key=lambda u: (len([w for w in ancestors if dominates(u, w)]),
                           u),
        )
        parents[v] = immediate
    return parents


def static_width(cqap: CQAP) -> float:
    """Width ``w`` for Theorem F.4: ρ* of the access variables.

    For Boolean hierarchical CQAPs whose access pattern sits on the leaves
    (the §F setting) this equals the static width of [20] with free
    variables x_A — e.g. 4 for the Figure 6a query.
    """
    cover = fractional_edge_cover(cqap.hypergraph(), cqap.access_set)
    return float(sum(cover.values()))


def figure6_decomposition() -> TreeDecomposition:
    """The Figure 6b tree decomposition for the binary-tree query."""
    return TreeDecomposition(
        {
            0: {"x", "z1", "z2", "z3", "z4"},
            1: {"x", "y1", "z1", "z2"},
            2: {"x", "y2", "z3", "z4"},
        },
        [(0, 1), (0, 2)],
    )


class HierarchicalAnalysis:
    """General §F analysis of a connected hierarchical CQAP with leaf access.

    Requirements (checked): the body is hierarchical; some *root variable*
    occurs in every atom; every access variable occurs in exactly one atom,
    one access variable per atom.  The Figure 6a query, the k-set
    disjointness star, and the 2-path query all qualify.

    Provides:

    * :meth:`decomposition` — the Figure-6b-style tree: root bag = A ∪
      {root var}; one bag per non-access variable v holding ``anc(v) ∪ v``
      plus the access leaves under v;
    * :meth:`improved_inequality_parts` — the end-of-§F general joint
      Shannon-flow inequality ``w·logD + w·logQ ≥ h_S(Z) + w·h_T(root ∪ Z)``
      built from per-leaf split pairs (verifiable via
      ``JointFlowProgram.verify_joint_inequality``);
    * :meth:`improved_tradeoff` / :meth:`first_tradeoff` — the closed forms
      S·T^w ≍ D^w·Q^w and S·T^{w-1} ≍ D^w·Q^{w-1}.
    """

    def __init__(self, cqap: CQAP) -> None:
        if not is_hierarchical(cqap):
            raise ValueError("query is not hierarchical")
        if not cqap.access:
            raise ValueError("analysis needs a nonempty access pattern")
        self.cqap = cqap
        self.parents = canonical_order(cqap)
        sets = atom_sets(cqap)
        roots = [v for v, s in sets.items()
                 if len(s) == len(cqap.atoms)]
        if not roots:
            raise ValueError("no variable occurs in every atom "
                             "(query is not connected hierarchical)")
        self.root_var = sorted(roots)[0]
        self.leaf_atoms: Dict[str, int] = {}
        used_atoms: Set[int] = set()
        for z in cqap.access:
            atom_ids = sets[z]
            if len(atom_ids) != 1:
                raise ValueError(
                    f"access variable {z} must occur in exactly one atom"
                )
            (atom_id,) = atom_ids
            if atom_id in used_atoms:
                raise ValueError(
                    f"atom {cqap.atoms[atom_id]} carries two access "
                    "variables; one per atom is required"
                )
            used_atoms.add(atom_id)
            self.leaf_atoms[z] = atom_id
        self.width = len(cqap.access)

    # ------------------------------------------------------------------
    def _subtree_access(self, var: str) -> frozenset:
        """Access variables at or below ``var`` in the canonical order."""
        children: Dict[str, List[str]] = {}
        for v, parent in self.parents.items():
            if parent is not None:
                children.setdefault(parent, []).append(v)
        out: Set[str] = set()
        stack = [var]
        while stack:
            current = stack.pop()
            if current in self.cqap.access_set:
                out.add(current)
            stack.extend(children.get(current, ()))
        return frozenset(out)

    def _ancestors(self, var: str) -> List[str]:
        out = []
        current = self.parents[var]
        while current is not None:
            out.append(current)
            current = self.parents[current]
        return out

    def decomposition(self) -> Tuple[TreeDecomposition, int]:
        """The generalized Figure-6b tree; returns (tree, root node id)."""
        access = self.cqap.access_set
        bags: Dict[int, frozenset] = {
            0: frozenset(access | {self.root_var})
        }
        node_of: Dict[str, int] = {self.root_var: 0}
        edges: List[Tuple[int, int]] = []
        order = sorted(
            (v for v in self.cqap.variables
             if v not in access and v != self.root_var),
            key=lambda v: (len(self._ancestors(v)), v),
        )
        next_id = 1
        for var in order:
            bag = set(self._ancestors(var)) | {var} | set(
                self._subtree_access(var)
            )
            bags[next_id] = frozenset(bag)
            parent_var = self.parents[var]
            parent_node = node_of.get(parent_var, 0)
            edges.append((parent_node, next_id))
            node_of[var] = next_id
            next_id += 1
        return TreeDecomposition(bags, edges), 0

    # ------------------------------------------------------------------
    def improved_inequality_parts(self) -> Dict[str, Dict]:
        """Terms of the eq.-(36)-style inequality for this query."""
        from repro.query.hypergraph import varset as _vs

        empty = _vs(())
        z = self.cqap.access_set
        lhs_s: Dict = {}
        lhs_t: Dict = {}
        for leaf, atom_id in self.leaf_atoms.items():
            leaf_set = _vs({leaf})
            lhs_s[(empty, leaf_set)] = lhs_s.get((empty, leaf_set), 0) + 1
            atom_vars = self.cqap.atoms[atom_id].varset
            lhs_t[(leaf_set, atom_vars)] = (
                lhs_t.get((leaf_set, atom_vars), 0) + 1
            )
        lhs_t[(empty, z)] = lhs_t.get((empty, z), 0) + self.width
        return {
            "lhs_s": lhs_s,
            "lhs_t": lhs_t,
            "rhs_s": {z: 1.0},
            "rhs_t": {z | {self.root_var}: float(self.width)},
        }

    def verify_improved(self) -> bool:
        """LP-check the generalized eq. (36) for this query."""
        from repro.tradeoff.joint_flow import symbolic_program

        parts = self.improved_inequality_parts()
        return symbolic_program(self.cqap).verify_joint_inequality(
            parts["lhs_s"], parts["lhs_t"],
            parts["rhs_s"], parts["rhs_t"],
        )

    def improved_tradeoff(self):
        """``S · T^w ≍ D^w · Q^w`` (end of §F)."""
        from fractions import Fraction as F

        from repro.tradeoff.curves import TradeoffFormula

        w = F(self.width)
        return TradeoffFormula(F(1), w, w, w)

    def first_tradeoff(self):
        """``S · T^{w-1} ≍ D^w · Q^{w-1}`` (the Theorem F.4 shape)."""
        from fractions import Fraction as F

        from repro.tradeoff.curves import TradeoffFormula

        w = F(self.width)
        return TradeoffFormula(F(1), w - 1, w, w - 1)


class HierarchicalIndex:
    """Framework route for the Figure 6a CQAP at a space budget."""

    def __init__(self, db: Database, space_budget: float,
                 measure_degrees: bool = True) -> None:
        self.cqap = hierarchical_binary_tree_cqap()
        pmtds = induced_pmtds(self.cqap, figure6_decomposition(), 0)
        self.index = CQAPIndex(
            self.cqap, db, space_budget, pmtds=pmtds,
            measure_degrees=measure_degrees,
        ).preprocess()
        self.stored_tuples = self.index.stored_tuples

    def query(self, z_values: Tuple,
              counters: Optional[Counters] = None) -> bool:
        return self.index.answer_boolean(tuple(z_values), counters=counters)


class AdaptedKaraBaseline:
    """Theorem F.4's adapted enumeration structure for the Fig. 6a query.

    With threshold parameter ε ∈ [0, 1]:

    * x-values of total fanout > N^ε are *heavy* — at most N^{1-ε} of them;
    * for light x, the query result restricted to that x is materialized
      directly into ``V0(z1,z2,z3,z4)``;
    * for heavy x, each subtree gets a light-side witness view
      (``W1(x,z1,z2)`` for light (x,y1); ``W2(x,z3,z4)``) plus the list of
      heavy (x,y_i) pairs, which are checked against the base relations by
      O(1) hash probes at query time.

    Answering scans the heavy x list — O(N^{1-ε}) probes — matching the
    theorem's ``T = O(N^{1-ε})``; measured space tracks ``O(N^{1+3ε})``.
    """

    def __init__(self, db: Database, epsilon: float,
                 counters: Optional[Counters] = None) -> None:
        if not 0 <= epsilon <= 1:
            raise ValueError("epsilon must be in [0, 1]")
        ctr = counters or global_counters
        self.epsilon = epsilon
        r, s, t, u = (db["R"], db["S"], db["T"], db["U"])
        n = max(1, db.size)
        self.threshold = max(1.0, n ** epsilon)

        degree: Dict[object, int] = {}
        for rel in (r, s, t, u):
            for row in rel.tuples:
                degree[row[0]] = degree.get(row[0], 0) + 1
        self.heavy_x: List = sorted(
            (x for x, d in degree.items() if d > self.threshold), key=str
        )
        heavy = set(self.heavy_x)

        # witness views; schemas: V0(z1..z4), W1(x,z1,z2), W2(x,z3,z4)
        self.v0: Set[Tuple] = set()
        self.w1: Set[Tuple] = set()
        self.w2: Set[Tuple] = set()
        self.heavy_pairs_left: Dict[object, List] = {}
        self.heavy_pairs_right: Dict[object, List] = {}

        r_idx = self._group(r)          # x -> y1 -> [z1]
        s_idx = self._group(s)
        t_idx = self._group(t)
        u_idx = self._group(u)

        pair_degree: Dict[Tuple, int] = {}
        for idx in (r_idx, s_idx):
            for x, by_y in idx.items():
                for y, zs in by_y.items():
                    pair_degree[("L", x, y)] = (
                        pair_degree.get(("L", x, y), 0) + len(zs)
                    )
        for idx in (t_idx, u_idx):
            for x, by_y in idx.items():
                for y, zs in by_y.items():
                    pair_degree[("R", x, y)] = (
                        pair_degree.get(("R", x, y), 0) + len(zs)
                    )

        for x in set(r_idx) | set(s_idx) | set(t_idx) | set(u_idx):
            left = self._side_pairs(x, r_idx, s_idx)
            right = self._side_pairs(x, t_idx, u_idx)
            if x not in heavy:
                for z1, z2 in left:
                    for z3, z4 in right:
                        self.v0.add((z1, z2, z3, z4))
                continue
            for (y, z1, z2) in self._side_triples(x, r_idx, s_idx):
                if pair_degree.get(("L", x, y), 0) > self.threshold:
                    self.heavy_pairs_left.setdefault(x, [])
                    if y not in self.heavy_pairs_left[x]:
                        self.heavy_pairs_left[x].append(y)
                else:
                    self.w1.add((x, z1, z2))
            for (y, z3, z4) in self._side_triples(x, t_idx, u_idx):
                if pair_degree.get(("R", x, y), 0) > self.threshold:
                    self.heavy_pairs_right.setdefault(x, [])
                    if y not in self.heavy_pairs_right[x]:
                        self.heavy_pairs_right[x].append(y)
                else:
                    self.w2.add((x, z3, z4))

        # base-relation hash sets for O(1) membership probes
        self._r = set(r.tuples)
        self._s = set(s.tuples)
        self._t = set(t.tuples)
        self._u = set(u.tuples)
        self.stored_tuples = (
            len(self.v0) + len(self.w1) + len(self.w2)
            + sum(len(v) for v in self.heavy_pairs_left.values())
            + sum(len(v) for v in self.heavy_pairs_right.values())
        )
        ctr.stores += self.stored_tuples

    # ------------------------------------------------------------------
    @staticmethod
    def _group(rel: Relation) -> Dict:
        out: Dict[object, Dict[object, List]] = {}
        for x, y, z in rel.tuples:
            out.setdefault(x, {}).setdefault(y, []).append(z)
        return out

    @staticmethod
    def _side_pairs(x, first: Dict, second: Dict) -> List[Tuple]:
        """(z_a, z_b) pairs witnessed by a shared y under x."""
        out = []
        ys = set(first.get(x, ())) & set(second.get(x, ()))
        for y in ys:
            for za in first[x][y]:
                for zb in second[x][y]:
                    out.append((za, zb))
        return out

    @staticmethod
    def _side_triples(x, first: Dict, second: Dict) -> List[Tuple]:
        out = []
        ys = set(first.get(x, ())) & set(second.get(x, ()))
        for y in ys:
            for za in first[x][y]:
                for zb in second[x][y]:
                    out.append((y, za, zb))
        return out

    # ------------------------------------------------------------------
    def query(self, z_values: Sequence,
              counters: Optional[Counters] = None) -> bool:
        """Boolean answer for the access request (z1, z2, z3, z4)."""
        z1, z2, z3, z4 = tuple(z_values)
        ctr = counters or global_counters
        ctr.probes += 1
        if (z1, z2, z3, z4) in self.v0:
            return True
        for x in self.heavy_x:
            ctr.scans += 1
            left_ok = False
            ctr.probes += 1
            if (x, z1, z2) in self.w1:
                left_ok = True
            else:
                for y in self.heavy_pairs_left.get(x, ()):
                    ctr.probes += 2
                    if (x, y, z1) in self._r and (x, y, z2) in self._s:
                        left_ok = True
                        break
            if not left_ok:
                continue
            ctr.probes += 1
            if (x, z3, z4) in self.w2:
                return True
            for y in self.heavy_pairs_right.get(x, ()):
                ctr.probes += 2
                if (x, y, z3) in self._t and (x, y, z4) in self._u:
                    return True
        return False

    def brute_force(self, db: Database, z_values: Sequence) -> bool:
        cqap = hierarchical_binary_tree_cqap()
        from repro.data.relation import singleton_request

        request = singleton_request(cqap.access, tuple(z_values))
        return not cqap.answer_from_scratch(db, request).is_empty()
